/// \file sleep.hpp
/// \brief SleepScale-style idle C-state management.
///
/// Tracks per-CPU idle spans between allocations. When an allocation
/// claims CPUs that have been idle long enough to have descended the
/// sleep ladder (power::PowerModel::sleep_states, or a default two-state
/// ladder), the manager emits one kSleepInterval event per state with the
/// core-seconds spent there — EnergyProbe reprices those intervals below
/// idle power — and charges the deepest reached state's wake latency to
/// the allocation as a StartDecision::wake_delay. Remaining idle spans
/// are flushed at on_run_end so end-of-run idleness is priced too.
///
/// Idle tracking starts at the first submission, matching the energy
/// meter's measurement horizon (first submit to last completion).
#pragma once

#include <cstdint>
#include <vector>

#include "pm/power_manager.hpp"
#include "power/power_model.hpp"

namespace bsld::pm {

/// The default two-state ladder used when the power model declares none:
/// nap at half idle power after 5 minutes (10 s wake), deep sleep at a
/// tenth of idle power after an hour (60 s wake).
[[nodiscard]] std::vector<power::SleepState> default_sleep_states(
    const power::PowerModel& model);

/// Family "sleep".
class SleepManager : public PowerManager {
 public:
  explicit SleepManager(const power::PowerModel& model);

  [[nodiscard]] const char* name() const override;

  void on_run_begin(PmContext& context) override;
  void on_job_submit(PmContext& context, JobId id) override;
  [[nodiscard]] StartDecision on_job_start(PmContext& context, JobId id,
                                           const std::vector<CpuId>& cpus,
                                           GearIndex gear) override;
  void on_job_finish(PmContext& context, JobId id,
                     const std::vector<CpuId>& cpus) override;
  void on_run_end(PmContext& context) override;

 private:
  /// Accounts the sleep intervals of `cpus` idle since their recorded
  /// times, emitting kSleepInterval per state. Returns the wake latency
  /// of the deepest state reached by any of them (0 when `charge_wake`
  /// is false or none slept).
  Time account_idle(PmContext& context, const std::vector<CpuId>& cpus,
                    bool charge_wake);

  std::vector<power::SleepState> states_;
  std::vector<Time> idle_since_;  ///< Per CPU; kNoTime = busy or untracked.
  bool tracking_ = false;         ///< Becomes true at the first submission.
};

}  // namespace bsld::pm
