/// \file setpoint.hpp
/// \brief Closed-loop cluster power control to a target (Cerf et al.).
///
/// SetpointController is a CapManager whose cap is not fixed: every
/// control interval it measures cluster power (active CPUs at their
/// engaged gears plus idle power for the rest), computes the error
/// against the setpoint, and moves the effective cap by gain * error
/// (clamped to [0, cluster max active power]) — an integral controller
/// over the simulation's own observer-visible state. Each step emits
/// kCapChange with the new cap and the measurement, then re-levels
/// running jobs and releases gated ones the way any cap move would.
///
/// The timer only runs while jobs are admitted (it re-arms from submit
/// and start hooks), so an idle simulation schedules no events and a run
/// always drains.
#pragma once

#include <cstdint>
#include <vector>

#include "pm/cap.hpp"

namespace bsld::pm {

/// Family "setpoint".
class SetpointController : public CapManager {
 public:
  /// `initial_cap` seeds the effective cap (specs default it to the
  /// setpoint); `interval_s` is the control period; `gain` the cap
  /// correction per watt of error.
  SetpointController(const power::PowerModel& model, double setpoint_watts,
                     double initial_cap, Time interval_s, double gain);

  [[nodiscard]] const char* name() const override;

  void on_run_begin(PmContext& context) override;
  void on_job_submit(PmContext& context, JobId id) override;
  [[nodiscard]] StartDecision on_job_start(PmContext& context, JobId id,
                                           const std::vector<CpuId>& cpus,
                                           GearIndex gear) override;
  void on_timer(PmContext& context) override;

  /// Current effective cap (tests observe convergence through this).
  [[nodiscard]] double effective_cap() const { return cap_watts_; }

 private:
  void arm(PmContext& context);

  double setpoint_watts_;
  Time interval_s_;
  double gain_;
  std::int32_t cluster_cpus_ = 0;
  bool armed_ = false;
};

}  // namespace bsld::pm
