#include "pm/registry.hpp"

#include "pm/cap.hpp"
#include "pm/setpoint.hpp"
#include "pm/sleep.hpp"
#include "util/error.hpp"

namespace bsld::pm {

namespace {

constexpr Time kDefaultIntervalS = 300;
constexpr double kDefaultGain = 0.5;

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// `pm=none`: a real manager whose hooks all default to no-ops, so the
/// parity suite proves the hook plumbing itself is inert.
class NoopPowerManager final : public PowerManager {
 public:
  [[nodiscard]] const char* name() const override { return "none"; }
};

void register_builtins(PowerManagerRegistry& registry) {
  registry.add("none",
               "no power management (the default; bit-identical to the "
               "paper's baseline)",
               [](const PmSpec&, const power::PowerModel&) {
                 return std::make_unique<NoopPowerManager>();
               });
  registry.add("cap-uniform",
               "cluster power cap (pm.cap_watts): throttle every running "
               "job to one uniform gear level that fits",
               [](const PmSpec& spec, const power::PowerModel& model) {
                 return std::make_unique<CapManager>(
                     model, *spec.cap_watts, CapManager::Share::kUniform);
               });
  registry.add("cap-proportional",
               "cluster power cap (pm.cap_watts): split the budget in "
               "proportion to demand, then redistribute slack",
               [](const PmSpec& spec, const power::PowerModel& model) {
                 return std::make_unique<CapManager>(
                     model, *spec.cap_watts, CapManager::Share::kProportional);
               });
  registry.add("sleep",
               "idle-CPU C-states (power.sleep.* ladder or defaults): "
               "reduced idle power, wake latency charged to allocations",
               [](const PmSpec&, const power::PowerModel& model) {
                 return std::make_unique<SleepManager>(model);
               });
  registry.add("setpoint",
               "closed-loop controller: drive measured cluster power to "
               "pm.setpoint_watts by moving the cap every pm.interval_s",
               [](const PmSpec& spec, const power::PowerModel& model) {
                 return std::make_unique<SetpointController>(
                     model, *spec.setpoint_watts,
                     spec.cap_watts.value_or(*spec.setpoint_watts),
                     spec.interval_s.value_or(kDefaultIntervalS),
                     spec.gain.value_or(kDefaultGain));
               });
}

}  // namespace

PowerManagerRegistry& PowerManagerRegistry::global() {
  static PowerManagerRegistry* registry = [] {
    // bsld-lint: allow(new-delete): leaked singleton, outlives static dtors
    auto* r = new PowerManagerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void PowerManagerRegistry::add(const std::string& name,
                               std::string description, Factory factory) {
  const util::WriterLock lock(mutex_);
  BSLD_REQUIRE(!entries_.contains(name),
               "PowerManagerRegistry: `" + name + "` already registered");
  entries_.emplace(name,
                   Entry{std::move(description), std::move(factory)});
}

bool PowerManagerRegistry::has(const std::string& name) const {
  const util::ReaderLock lock(mutex_);
  return entries_.contains(name);
}

void PowerManagerRegistry::require(const std::string& name) const {
  if (!has(name)) {
    throw Error("PowerManagerRegistry: unknown power manager `" + name +
                "` (registered: " + join(names()) + ")");
  }
}

std::vector<std::string> PowerManagerRegistry::names() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::string>>
PowerManagerRegistry::entries() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

std::unique_ptr<PowerManager> PowerManagerRegistry::make(
    const PmSpec& spec, const power::PowerModel& model) const {
  validate(spec);
  Factory factory;
  {
    const util::ReaderLock lock(mutex_);
    const auto it = entries_.find(spec.name);
    if (it != entries_.end()) factory = it->second.factory;
  }
  BSLD_REQUIRE(static_cast<bool>(factory),
               "PowerManagerRegistry: unknown power manager `" + spec.name +
                   "`");
  return factory(spec, model);
}

}  // namespace bsld::pm
