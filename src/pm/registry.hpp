/// \file registry.hpp
/// \brief String-keyed construction of power managers, mirroring
/// core::PolicyRegistry and sim::InstrumentRegistry.
///
/// A PmSpec names a manager family; the registry resolves the name to a
/// factory over (spec, power model). Downstream code can register new
/// families under new names without touching pm — every entry point that
/// consumes a report::RunSpec picks them up automatically. Registration
/// must happen before experiment grids start executing (the registry is
/// read concurrently by sweep worker threads; a shared mutex guards
/// registration against lookup races).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pm/power_manager.hpp"
#include "pm/spec.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::pm {

/// Name -> factory resolution for power managers.
class PowerManagerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PowerManager>(
      const PmSpec&, const power::PowerModel&)>;

  /// The process-wide registry, pre-loaded with the built-ins: none,
  /// cap-uniform, cap-proportional, sleep, setpoint.
  static PowerManagerRegistry& global();

  /// Registers a manager factory with a one-line description (shown by
  /// `bsldsim --list-pms`). Throws bsld::Error on a duplicate name.
  void add(const std::string& name, std::string description, Factory factory);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Throws bsld::Error when `name` is unknown, listing what is registered.
  void require(const std::string& name) const;

  /// Registered names in sorted order (for error messages and --help).
  [[nodiscard]] std::vector<std::string> names() const;

  /// (name, description) pairs in sorted order (for --list-pms).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries()
      const;

  /// Builds the manager `spec` describes. Validates the spec first, so a
  /// hand-built spec gets the same family-rule checks as a parsed one.
  [[nodiscard]] std::unique_ptr<PowerManager> make(
      const PmSpec& spec, const power::PowerModel& model) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };

  mutable util::SharedMutex mutex_;
  std::map<std::string, Entry> entries_ BSLD_GUARDED_BY(mutex_);
};

}  // namespace bsld::pm
