/// \file event.hpp
/// \brief Power-management events: the pm subsystem's observable actions.
///
/// Every decision a pm::PowerManager takes (throttling a job under a cap,
/// gating an admission, waking sleeping CPUs, moving the effective cap of
/// the closed-loop controller) is emitted as a PmEvent into the run's
/// sim::SimObserver stream via pm::PmContext::emit, so instruments can
/// account capped and sleeping intervals without the manager knowing who
/// listens. The struct is deliberately flat and union-like — one type for
/// all kinds keeps the observer seam to a single hook; the per-kind field
/// meaning is documented on the enum.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace bsld::pm {

/// What happened. Field usage per kind (unused fields stay defaulted):
enum class PmEventKind : int {
  /// The effective cluster power cap moved (setpoint control step):
  /// `watts` = new cap, `aux_watts` = measured cluster power.
  kCapChange = 0,
  /// A running job's gear was lowered to fit the cap: `job`, `cpu_count`,
  /// `gear_from` > `gear_to`.
  kThrottle = 1,
  /// A previously-throttled job got slack back: `job`, `cpu_count`,
  /// `gear_from` < `gear_to` (never above the policy-assigned gear).
  kRaise = 2,
  /// An admission was power-gated — the job holds its CPUs but makes no
  /// progress until released: `job`, `cpu_count`.
  kGate = 3,
  /// A gated job was released into execution: `job`, `cpu_count`,
  /// `gear_to` = execution gear, `seconds` = time spent gated.
  kRelease = 4,
  /// The cap cannot fit even one job at the lowest gear; the manager
  /// force-admits rather than deadlock: `job`, `cpu_count`, `watts` = cap.
  kInfeasible = 5,
  /// Idle CPUs completed a sleep interval in one C-state: `cpu_count`,
  /// `sleep_state`, `watts` = per-CPU state power, `seconds` =
  /// core-seconds slept in that state.
  kSleepInterval = 6,
  /// Sleeping CPUs were woken for an allocation: `cpu_count` = CPUs woken,
  /// `seconds` = wake latency charged to the allocation.
  kWake = 7,
};

/// Display name of a kind ("cap-change", "throttle", ...).
[[nodiscard]] const char* to_string(PmEventKind kind);

/// One power-management action, stamped with simulation time. Emitted by
/// managers through PmContext::emit and delivered to every observer via
/// sim::SimObserver::on_pm (the "pm-trace" instrument records them all).
struct PmEvent {
  PmEventKind kind = PmEventKind::kCapChange;
  Time time = 0;
  JobId job = kNoJob;
  std::int32_t cpu_count = 0;
  GearIndex gear_from = 0;
  GearIndex gear_to = 0;
  double watts = 0.0;          ///< Primary power figure of the event.
  double aux_watts = 0.0;      ///< Secondary power figure (kCapChange).
  double seconds = 0.0;        ///< Duration figure (gated/slept/wake delay).
  std::int32_t sleep_state = -1;  ///< C-state index (kSleepInterval only).
};

}  // namespace bsld::pm
