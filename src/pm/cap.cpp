#include "pm/cap.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::pm {

namespace {

/// Absolute tolerance for cap comparisons: powers are O(1e2..1e6) W and
/// built from a handful of multiplies, so 1e-9 W absorbs rounding noise
/// without ever admitting real overshoot.
constexpr double kEps = 1e-9;

}  // namespace

CapManager::CapManager(const power::PowerModel& model, double cap_watts,
                       Share share)
    : model_(model), cap_watts_(cap_watts), share_(share) {
  BSLD_REQUIRE(cap_watts > 0.0, "CapManager: cap must be positive");
}

const char* CapManager::name() const {
  return share_ == Share::kUniform ? "cap-uniform" : "cap-proportional";
}

void CapManager::on_run_begin(PmContext& context) {
  (void)context;
  jobs_.clear();
  gate_order_.clear();
}

CapManager::ActiveLoad CapManager::active_load() const {
  ActiveLoad load;
  for (const auto& [id, job] : jobs_) {
    if (job.gated) continue;
    load.watts += job.cpus * model_.active_power(job.current);
    load.cpus += job.cpus;
  }
  return load;
}

bool CapManager::fits_with(std::int32_t extra_cpus) const {
  const double floor_gear_power = model_.active_power(0);
  double watts = extra_cpus * floor_gear_power;
  for (const auto& [id, job] : jobs_) {
    if (!job.gated) watts += job.cpus * floor_gear_power;
  }
  return watts <= cap_watts_ + kEps;
}

std::map<JobId, GearIndex> CapManager::assign() const {
  std::map<JobId, GearIndex> targets;
  const GearIndex top = model_.gears().top_index();

  if (share_ == Share::kUniform) {
    // Highest uniform level that fits; jobs below the level keep their
    // desired gear. Falls through to 0 when even the floor is over the
    // cap (forced admissions) — over-cap at the floor is tolerated.
    GearIndex level = 0;
    for (GearIndex u = top; u >= 0; --u) {
      double watts = 0.0;
      for (const auto& [id, job] : jobs_) {
        if (job.gated) continue;
        watts += job.cpus * model_.active_power(std::min(job.desired, u));
      }
      if (watts <= cap_watts_ + kEps) {
        level = u;
        break;
      }
    }
    for (const auto& [id, job] : jobs_) {
      if (!job.gated) targets.emplace(id, std::min(job.desired, level));
    }
    return targets;
  }

  // Proportional: demand at desired gears; if it already fits, nobody is
  // throttled.
  double demand = 0.0;
  for (const auto& [id, job] : jobs_) {
    if (!job.gated) demand += job.cpus * model_.active_power(job.desired);
  }
  if (demand <= cap_watts_ + kEps) {
    for (const auto& [id, job] : jobs_) {
      if (!job.gated) targets.emplace(id, job.desired);
    }
    return targets;
  }

  // Each job's share of the cap is proportional to its desired demand;
  // take the best gear that fits the share (floor at 0).
  double used = 0.0;
  for (const auto& [id, job] : jobs_) {
    if (job.gated) continue;
    const double share =
        cap_watts_ * (job.cpus * model_.active_power(job.desired)) / demand;
    GearIndex gear = 0;
    for (GearIndex g = std::min(job.desired, top); g >= 1; --g) {
      if (job.cpus * model_.active_power(g) <= share + kEps) {
        gear = g;
        break;
      }
    }
    targets.emplace(id, gear);
    used += job.cpus * model_.active_power(gear);
  }

  // Redistribute leftover slack one gear step at a time, JobId order, until
  // no raise fits (PoLiMEr-style increase loop).
  bool raised = true;
  while (raised) {
    raised = false;
    for (auto& [id, gear] : targets) {
      const Job& job = jobs_.at(id);
      if (gear >= job.desired) continue;
      const double step = job.cpus * (model_.active_power(gear + 1) -
                                      model_.active_power(gear));
      if (used + step <= cap_watts_ + kEps) {
        used += step;
        ++gear;
        raised = true;
      }
    }
  }
  return targets;
}

void CapManager::apply(PmContext& context,
                       const std::map<JobId, GearIndex>& targets, JobId skip) {
  for (const auto& [id, gear] : targets) {
    if (id == skip) continue;
    Job& job = jobs_.at(id);
    if (gear == job.current) continue;
    PmEvent event;
    event.kind = gear < job.current ? PmEventKind::kThrottle : PmEventKind::kRaise;
    event.time = context.now();
    event.job = id;
    event.cpu_count = job.cpus;
    event.gear_from = job.current;
    event.gear_to = gear;
    context.set_job_gear(id, gear);
    job.current = gear;
    context.emit(event);
  }
}

void CapManager::rebalance(PmContext& context) {
  apply(context, assign(), kNoJob);
}

void CapManager::try_release(PmContext& context) {
  while (!gate_order_.empty()) {
    const JobId head = gate_order_.front();
    Job& job = jobs_.at(head);
    bool any_active = false;
    for (const auto& [id, other] : jobs_) {
      if (!other.gated) {
        any_active = true;
        break;
      }
    }
    const bool fits = fits_with(job.cpus);
    if (!fits && any_active) {
      return;  // A future finish will free budget; keep waiting.
    }
    PmEvent release;
    release.time = context.now();
    release.job = head;
    release.cpu_count = job.cpus;
    release.seconds = static_cast<double>(context.now() - job.gate_start);
    if (!fits) {
      // Nothing active to wait for: the cap cannot fit this job at any
      // gear. Force it through at the floor so the run terminates.
      PmEvent infeasible;
      infeasible.kind = PmEventKind::kInfeasible;
      infeasible.time = context.now();
      infeasible.job = head;
      infeasible.cpu_count = job.cpus;
      infeasible.watts = cap_watts_;
      context.emit(infeasible);
    }
    gate_order_.pop_front();
    job.gated = false;
    job.gate_start = kNoTime;
    if (fits) {
      const std::map<JobId, GearIndex> targets = assign();
      job.current = targets.at(head);
      context.release_job(head, job.current);
      release.kind = PmEventKind::kRelease;
      release.gear_to = job.current;
      context.emit(release);
      apply(context, targets, head);
    } else {
      job.current = 0;
      context.release_job(head, 0);
      release.kind = PmEventKind::kRelease;
      release.gear_to = 0;
      context.emit(release);
    }
  }
}

StartDecision CapManager::on_job_start(PmContext& context, JobId id,
                                       const std::vector<CpuId>& cpus,
                                       GearIndex gear) {
  const auto size = static_cast<std::int32_t>(cpus.size());
  if (fits_with(size)) {
    Job job;
    job.cpus = size;
    job.desired = gear;
    jobs_.emplace(id, job);
    const std::map<JobId, GearIndex> targets = assign();
    const GearIndex start_gear = targets.at(id);
    jobs_.at(id).current = start_gear;
    if (start_gear < gear) {
      PmEvent event;
      event.kind = PmEventKind::kThrottle;
      event.time = context.now();
      event.job = id;
      event.cpu_count = size;
      event.gear_from = gear;
      event.gear_to = start_gear;
      context.emit(event);
    }
    apply(context, targets, id);
    return StartDecision{false, start_gear, 0};
  }

  bool any_active = false;
  for (const auto& [other_id, other] : jobs_) {
    if (!other.gated) {
      any_active = true;
      break;
    }
  }
  if (any_active) {
    Job job;
    job.cpus = size;
    job.desired = gear;
    job.current = gear;
    job.gated = true;
    job.gate_start = context.now();
    jobs_.emplace(id, job);
    gate_order_.push_back(id);
    PmEvent event;
    event.kind = PmEventKind::kGate;
    event.time = context.now();
    event.job = id;
    event.cpu_count = size;
    context.emit(event);
    return StartDecision{true, gear, 0};
  }

  // The cap cannot fit even this one job at gear 0 and nothing else is
  // running: force-admit at the floor rather than deadlock the run.
  Job job;
  job.cpus = size;
  job.desired = gear;
  job.current = 0;
  jobs_.emplace(id, job);
  PmEvent event;
  event.kind = PmEventKind::kInfeasible;
  event.time = context.now();
  event.job = id;
  event.cpu_count = size;
  event.watts = cap_watts_;
  context.emit(event);
  return StartDecision{false, 0, 0};
}

void CapManager::on_job_finish(PmContext& context, JobId id,
                               const std::vector<CpuId>& cpus) {
  (void)cpus;
  jobs_.erase(id);
  try_release(context);
  rebalance(context);
}

void CapManager::on_job_raised(PmContext& context, JobId id, GearIndex gear) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.desired = gear;
  if (it->second.gated) {
    it->second.current = gear;  // Planned release gear follows the raise.
    return;
  }
  // The simulation already applied the raise; record it, then re-level —
  // the cap may immediately take part or all of it back.
  it->second.current = gear;
  rebalance(context);
}

}  // namespace bsld::pm
