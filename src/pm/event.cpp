#include "pm/event.hpp"

namespace bsld::pm {

const char* to_string(PmEventKind kind) {
  switch (kind) {
    case PmEventKind::kCapChange: return "cap-change";
    case PmEventKind::kThrottle: return "throttle";
    case PmEventKind::kRaise: return "raise";
    case PmEventKind::kGate: return "gate";
    case PmEventKind::kRelease: return "release";
    case PmEventKind::kInfeasible: return "infeasible";
    case PmEventKind::kSleepInterval: return "sleep";
    case PmEventKind::kWake: return "wake";
  }
  return "unknown";
}

}  // namespace bsld::pm
