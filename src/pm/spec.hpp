/// \file spec.hpp
/// \brief Serializable description of a power-management configuration.
///
/// PmSpec is to pm what core::PolicySpec is to scheduling: the value that
/// rides inside report::RunSpec, round-trips byte-identically through
/// util::Config, and is validated against the PowerManagerRegistry at
/// parse time. The default ("none") serializes to nothing at all, so
/// every pre-existing spec key — and therefore every warm cache entry —
/// is unchanged by the subsystem's existence.
#pragma once

#include <optional>
#include <string>

#include "util/config.hpp"
#include "util/types.hpp"

namespace bsld::pm {

/// Which manager to run and its parameters. Family rules (enforced by
/// validate()): `cap-uniform`/`cap-proportional` require cap_watts;
/// `setpoint` requires setpoint_watts and accepts cap_watts (initial cap,
/// defaults to the setpoint), interval_s (control period, default 300 s)
/// and gain (correction per watt of error, default 0.5); `none` and
/// `sleep` take no parameters.
struct PmSpec {
  std::string name = "none";
  std::optional<double> cap_watts;
  std::optional<double> setpoint_watts;
  std::optional<Time> interval_s;
  std::optional<double> gain;

  /// True when a manager other than the no-op default is requested.
  [[nodiscard]] bool enabled() const { return name != "none"; }

  friend bool operator==(const PmSpec&, const PmSpec&) = default;
};

/// Reads `pm` / `pm.*` keys from a config (absent keys mean the no-op
/// default) and validates the result. Throws bsld::Error on unknown
/// manager names or family-rule violations.
[[nodiscard]] PmSpec pm_from_config(const util::Config& config);

/// Writes the spec back as `pm` / `pm.*` keys: the exact inverse of
/// pm_from_config, and nothing at all for the default spec.
void pm_to_config(const PmSpec& spec, util::Config& config);

/// Checks the name against the registry and the family rules above.
/// Throws bsld::Error with an actionable message on violation.
void validate(const PmSpec& spec);

/// Short human label, e.g. "cap-uniform@5000W" or "sleep"; empty for the
/// default spec (run labels omit it).
[[nodiscard]] std::string pm_label(const PmSpec& spec);

}  // namespace bsld::pm
