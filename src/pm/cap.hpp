/// \file cap.hpp
/// \brief Cluster power capping with slack redistribution.
///
/// CapManager enforces one budget over the whole cluster's *active* power
/// (running CPUs at their gears; idle power is outside the cap, matching
/// the powercap policies in flux-power-monitor). Two sharing rules:
///
///  * kUniform — one gear level for everyone: the highest level u such
///    that running every job at min(desired, u) fits the cap.
///  * kProportional — each job gets a budget share proportional to its
///    desired-gear demand, picks the best gear within its share, then
///    leftover slack is redistributed one gear step at a time in JobId
///    order (PoLiMEr's increase/decrease scheme).
///
/// Admission control: a start that would push the lowest-gear floor of
/// the active set over the cap is *gated* — the job keeps its allocation
/// but makes no progress until a finish frees enough budget (FIFO
/// release). When the cap cannot fit even one job at gear 0, the manager
/// force-admits rather than deadlock and emits kInfeasible: the cap
/// starves admission, it never livelocks the run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "pm/power_manager.hpp"
#include "power/power_model.hpp"

namespace bsld::pm {

/// Power-cap manager: families "cap-uniform" and "cap-proportional".
class CapManager : public PowerManager {
 public:
  enum class Share { kUniform, kProportional };

  CapManager(const power::PowerModel& model, double cap_watts, Share share);

  [[nodiscard]] const char* name() const override;

  void on_run_begin(PmContext& context) override;
  [[nodiscard]] StartDecision on_job_start(PmContext& context, JobId id,
                                           const std::vector<CpuId>& cpus,
                                           GearIndex gear) override;
  void on_job_finish(PmContext& context, JobId id,
                     const std::vector<CpuId>& cpus) override;
  void on_job_raised(PmContext& context, JobId id, GearIndex gear) override;

 protected:
  /// One admitted (running or gated) job under the cap.
  struct Job {
    std::int32_t cpus = 0;      ///< Allocation size.
    GearIndex desired = 0;      ///< Policy-assigned (or raised) gear.
    GearIndex current = 0;      ///< Gear actually engaged (when !gated).
    bool gated = false;
    Time gate_start = kNoTime;  ///< When the job was gated (for kRelease).
  };

  /// Active (non-gated) power at the current gear assignment, plus the
  /// number of active CPUs — the measurement the setpoint controller uses.
  struct ActiveLoad {
    double watts = 0.0;
    std::int32_t cpus = 0;
  };
  [[nodiscard]] ActiveLoad active_load() const;

  /// Lowest-gear active power if `extra_cpus` more CPUs joined: the
  /// admission feasibility test.
  [[nodiscard]] bool fits_with(std::int32_t extra_cpus) const;

  /// Target gears for every non-gated job under the sharing rule.
  [[nodiscard]] std::map<JobId, GearIndex> assign() const;

  /// Applies `targets` to the simulation, emitting kThrottle/kRaise for
  /// each change. `skip` (kNoJob = none) is excluded — used for a job
  /// whose start is still in flight.
  void apply(PmContext& context, const std::map<JobId, GearIndex>& targets,
             JobId skip);

  /// Releases gated jobs FIFO while they fit; when nothing is active to
  /// wait for, force-releases the head at gear 0 (kInfeasible) so the run
  /// always makes progress.
  void try_release(PmContext& context);

  /// Re-levels everyone after the cap or the job set changed.
  void rebalance(PmContext& context);

  const power::PowerModel& model_;
  double cap_watts_;
  Share share_;
  /// Ordered by JobId so every scan is deterministic.
  std::map<JobId, Job> jobs_;
  std::deque<JobId> gate_order_;
};

}  // namespace bsld::pm
