#include "pm/setpoint.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::pm {

SetpointController::SetpointController(const power::PowerModel& model,
                                       double setpoint_watts,
                                       double initial_cap, Time interval_s,
                                       double gain)
    : CapManager(model, initial_cap, Share::kProportional),
      setpoint_watts_(setpoint_watts),
      interval_s_(interval_s),
      gain_(gain) {
  BSLD_REQUIRE(setpoint_watts > 0.0,
               "SetpointController: setpoint must be positive");
  BSLD_REQUIRE(interval_s >= 1,
               "SetpointController: interval must be at least 1 second");
  BSLD_REQUIRE(gain > 0.0, "SetpointController: gain must be positive");
}

const char* SetpointController::name() const { return "setpoint"; }

void SetpointController::on_run_begin(PmContext& context) {
  CapManager::on_run_begin(context);
  cluster_cpus_ = context.cpu_count();
  armed_ = false;
}

void SetpointController::arm(PmContext& context) {
  if (armed_) return;
  context.schedule_timer(context.now() + interval_s_);
  armed_ = true;
}

void SetpointController::on_job_submit(PmContext& context, JobId id) {
  (void)id;
  arm(context);
}

StartDecision SetpointController::on_job_start(PmContext& context, JobId id,
                                               const std::vector<CpuId>& cpus,
                                               GearIndex gear) {
  arm(context);
  return CapManager::on_job_start(context, id, cpus, gear);
}

void SetpointController::on_timer(PmContext& context) {
  armed_ = false;
  if (jobs_.empty()) {
    // Nothing admitted: measuring an idle cluster would just wind the cap
    // around; stay quiet until the next submission re-arms the timer.
    return;
  }
  const ActiveLoad load = active_load();
  const double idle_cpus =
      static_cast<double>(cluster_cpus_) - static_cast<double>(load.cpus);
  const double measured = load.watts + idle_cpus * model_.idle_power();
  const double max_cap = static_cast<double>(cluster_cpus_) *
                         model_.active_power(model_.gears().top_index());
  cap_watts_ = std::clamp(
      cap_watts_ + gain_ * (setpoint_watts_ - measured), 0.0, max_cap);
  PmEvent event;
  event.kind = PmEventKind::kCapChange;
  event.time = context.now();
  event.watts = cap_watts_;
  event.aux_watts = measured;
  context.emit(event);
  // A higher cap may release gated jobs; a lower one throttles the
  // running set — same machinery as a static cap move.
  try_release(context);
  rebalance(context);
  arm(context);
}

}  // namespace bsld::pm
