/// \file power_manager.hpp
/// \brief The pm::PowerManager interface and the context the simulation
/// exposes to it.
///
/// A PowerManager is the cluster-level counterpart of the paper's per-job
/// DVFS policy: it sees every submit/start/finish transition plus its own
/// timers, and acts through a narrow PmContext seam — re-gearing running
/// jobs, gating admissions under a power cap, releasing them later, and
/// charging wake latencies to allocations that hit sleeping CPUs. The
/// simulation owns the manager for the duration of one run; managers keep
/// per-run state and reset it in on_run_begin. Everything is
/// single-threaded within a run (one Simulation per thread), so managers
/// need no locking.
#pragma once

#include <cstdint>
#include <vector>

#include "pm/event.hpp"
#include "util/types.hpp"

namespace bsld::power {
class PowerModel;
}  // namespace bsld::power

namespace bsld::pm {

/// The manager's verdict on one job start. The default-constructed value
/// means "start exactly as the scheduler asked" — the no-op manager path.
struct StartDecision {
  /// Admit the job's allocation but keep it power-gated: it holds its CPUs
  /// and makes no progress until PmContext::release_job.
  bool gate = false;
  /// Gear to start (or, when gated, to plan for). Must be a valid index;
  /// capping managers lower it below the scheduler's choice.
  GearIndex gear = 0;
  /// Seconds of wake latency charged before execution begins (sleeping
  /// CPUs spinning up). Mutually exclusive with gate.
  Time wake_delay = 0;
};

/// What the simulation lets a manager do. Implemented by sim::Simulation;
/// abstract here so pm stays below sim in the layer DAG.
class PmContext {
 public:
  PmContext() = default;
  PmContext(const PmContext&) = delete;
  PmContext& operator=(const PmContext&) = delete;
  virtual ~PmContext() = default;

  /// Current simulation time.
  [[nodiscard]] virtual Time now() const = 0;
  /// Total CPUs in the cluster.
  [[nodiscard]] virtual std::int32_t cpu_count() const = 0;
  /// The run's power model (gear powers, idle power, sleep states).
  [[nodiscard]] virtual const power::PowerModel& power_model() const = 0;
  /// Re-gear a running (non-gated) job, lowering or raising it; remaining
  /// work is re-timed exactly like a policy boost. No-op if unchanged.
  virtual void set_job_gear(JobId id, GearIndex gear) = 0;
  /// Start execution of a job previously gated by a StartDecision, at the
  /// given gear. Its runtime clock begins at now().
  virtual void release_job(JobId id, GearIndex gear) = 0;
  /// Request an on_timer callback at an absolute future time.
  virtual void schedule_timer(Time at) = 0;
  /// Publish a PmEvent to the run's observer stream.
  virtual void emit(const PmEvent& event) = 0;
};

/// Cluster power-management policy, driven by the simulation at every job
/// transition. All hooks default to no-ops so a manager overrides only
/// the transitions it cares about; `pm=none` installs a manager that
/// overrides nothing, which the parity suite pins to be bit-identical to
/// running without one.
class PowerManager {
 public:
  PowerManager() = default;
  PowerManager(const PowerManager&) = delete;
  PowerManager& operator=(const PowerManager&) = delete;
  virtual ~PowerManager() = default;

  /// Registry key of this manager ("none", "cap-uniform", ...).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once before any job is scheduled (time 0).
  virtual void on_run_begin(PmContext& context) { (void)context; }
  /// A job entered the wait queue (before the scheduler sees it).
  virtual void on_job_submit(PmContext& context, JobId id) {
    (void)context;
    (void)id;
  }
  /// The scheduler is starting `id` on `cpus` at `gear`; the manager may
  /// lower the gear, gate the admission, or charge a wake delay.
  [[nodiscard]] virtual StartDecision on_job_start(PmContext& context,
                                                  JobId id,
                                                  const std::vector<CpuId>& cpus,
                                                  GearIndex gear) {
    (void)context;
    (void)id;
    (void)cpus;
    return StartDecision{false, gear, 0};
  }
  /// A running job completed and released `cpus`.
  virtual void on_job_finish(PmContext& context, JobId id,
                             const std::vector<CpuId>& cpus) {
    (void)context;
    (void)id;
    (void)cpus;
  }
  /// The DVFS policy raised a running job to `gear` (dynamic raise); the
  /// manager may immediately throttle it back via set_job_gear.
  virtual void on_job_raised(PmContext& context, JobId id, GearIndex gear) {
    (void)context;
    (void)id;
    (void)gear;
  }
  /// A timer requested via PmContext::schedule_timer fired.
  virtual void on_timer(PmContext& context) { (void)context; }
  /// Called once after the last job finished, before observers see
  /// on_run_end — final accounting events emitted here still reach the
  /// run's instruments.
  virtual void on_run_end(PmContext& context) { (void)context; }
};

}  // namespace bsld::pm
