#include "pm/spec.hpp"

#include <sstream>

#include "pm/registry.hpp"
#include "util/error.hpp"

namespace bsld::pm {

namespace {

void require_absent(const PmSpec& spec, bool cap_allowed) {
  if (!cap_allowed) {
    BSLD_REQUIRE(!spec.cap_watts.has_value(),
                 "pm.cap_watts only applies to the capping managers "
                 "(cap-uniform, cap-proportional, setpoint), not pm=" +
                     spec.name);
  }
  BSLD_REQUIRE(!spec.setpoint_watts.has_value(),
               "pm.setpoint_watts only applies to pm=setpoint, not pm=" +
                   spec.name);
  BSLD_REQUIRE(!spec.interval_s.has_value(),
               "pm.interval_s only applies to pm=setpoint, not pm=" +
                   spec.name);
  BSLD_REQUIRE(!spec.gain.has_value(),
               "pm.gain only applies to pm=setpoint, not pm=" + spec.name);
}

}  // namespace

PmSpec pm_from_config(const util::Config& config) {
  PmSpec spec;
  spec.name = config.get_string("pm", spec.name);
  if (config.contains("pm.cap_watts")) {
    spec.cap_watts = config.get_double("pm.cap_watts", 0.0);
  }
  if (config.contains("pm.setpoint_watts")) {
    spec.setpoint_watts = config.get_double("pm.setpoint_watts", 0.0);
  }
  if (config.contains("pm.interval_s")) {
    spec.interval_s = config.get_int("pm.interval_s", 0);
  }
  if (config.contains("pm.gain")) {
    spec.gain = config.get_double("pm.gain", 0.0);
  }
  validate(spec);
  return spec;
}

void pm_to_config(const PmSpec& spec, util::Config& config) {
  if (spec.name != "none") {
    config.set("pm", spec.name);
  }
  if (spec.cap_watts.has_value()) {
    config.set("pm.cap_watts", util::config_double(*spec.cap_watts));
  }
  if (spec.setpoint_watts.has_value()) {
    config.set("pm.setpoint_watts", util::config_double(*spec.setpoint_watts));
  }
  if (spec.interval_s.has_value()) {
    config.set("pm.interval_s", std::to_string(*spec.interval_s));
  }
  if (spec.gain.has_value()) {
    config.set("pm.gain", util::config_double(*spec.gain));
  }
}

void validate(const PmSpec& spec) {
  PowerManagerRegistry::global().require(spec.name);
  if (spec.name == "cap-uniform" || spec.name == "cap-proportional") {
    BSLD_REQUIRE(spec.cap_watts.has_value(),
                 "pm=" + spec.name + " requires pm.cap_watts");
    BSLD_REQUIRE(*spec.cap_watts > 0.0, "pm.cap_watts must be positive");
    require_absent(spec, /*cap_allowed=*/true);
    return;
  }
  if (spec.name == "setpoint") {
    BSLD_REQUIRE(spec.setpoint_watts.has_value(),
                 "pm=setpoint requires pm.setpoint_watts");
    BSLD_REQUIRE(*spec.setpoint_watts > 0.0,
                 "pm.setpoint_watts must be positive");
    if (spec.cap_watts.has_value()) {
      BSLD_REQUIRE(*spec.cap_watts > 0.0,
                   "pm.cap_watts (initial cap) must be positive");
    }
    if (spec.interval_s.has_value()) {
      BSLD_REQUIRE(*spec.interval_s >= 1,
                   "pm.interval_s must be at least 1 second");
    }
    if (spec.gain.has_value()) {
      BSLD_REQUIRE(*spec.gain > 0.0, "pm.gain must be positive");
    }
    return;
  }
  if (spec.name == "none" || spec.name == "sleep") {
    require_absent(spec, /*cap_allowed=*/false);
    return;
  }
  // Downstream-registered managers own their parameter rules; the name
  // check above is all we can enforce here.
}

std::string pm_label(const PmSpec& spec) {
  if (!spec.enabled()) {
    return "";
  }
  std::ostringstream os;
  os << spec.name;
  if (spec.name == "setpoint" && spec.setpoint_watts.has_value()) {
    os << '@' << *spec.setpoint_watts << 'W';
  } else if (spec.cap_watts.has_value()) {
    os << '@' << *spec.cap_watts << 'W';
  }
  return os.str();
}

}  // namespace bsld::pm
