#include "pm/sleep.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::pm {

std::vector<power::SleepState> default_sleep_states(
    const power::PowerModel& model) {
  const double idle = model.idle_power();
  std::vector<power::SleepState> states;
  states.push_back(power::SleepState{idle * 0.5, 300, 10});
  states.push_back(power::SleepState{idle * 0.1, 3600, 60});
  return states;
}

SleepManager::SleepManager(const power::PowerModel& model)
    : states_(model.sleep_states().empty() ? default_sleep_states(model)
                                           : model.sleep_states()) {}

const char* SleepManager::name() const { return "sleep"; }

void SleepManager::on_run_begin(PmContext& context) {
  idle_since_.assign(static_cast<std::size_t>(context.cpu_count()), kNoTime);
  tracking_ = false;
}

void SleepManager::on_job_submit(PmContext& context, JobId id) {
  (void)id;
  if (tracking_) return;
  // The energy meter's horizon starts at the first submission; so does
  // idle tracking, or pre-horizon idleness would be accounted.
  tracking_ = true;
  std::fill(idle_since_.begin(), idle_since_.end(), context.now());
}

Time SleepManager::account_idle(PmContext& context,
                                const std::vector<CpuId>& cpus,
                                bool charge_wake) {
  const Time now = context.now();
  // Per-state core-seconds and CPU counts across the whole batch, so one
  // event per state is emitted no matter how many CPUs are claimed.
  std::vector<double> state_seconds(states_.size(), 0.0);
  std::vector<std::int32_t> state_cpus(states_.size(), 0);
  Time wake_delay = 0;
  std::int32_t woken = 0;
  for (const CpuId cpu : cpus) {
    const std::size_t index = static_cast<std::size_t>(cpu);
    BSLD_REQUIRE(index < idle_since_.size(), "SleepManager: CPU out of range");
    const Time since = idle_since_[index];
    idle_since_[index] = kNoTime;
    if (since == kNoTime) continue;
    const Time span = now - since;
    if (span <= 0) continue;
    std::int32_t deepest = -1;
    for (std::size_t k = 0; k < states_.size(); ++k) {
      const Time begin = states_[k].enter_after_s;
      const Time end = k + 1 < states_.size()
                           ? std::min(span, states_[k + 1].enter_after_s)
                           : span;
      if (end > begin) {
        state_seconds[k] += static_cast<double>(end - begin);
        ++state_cpus[k];
      }
      if (span >= states_[k].enter_after_s) {
        deepest = static_cast<std::int32_t>(k);
      }
    }
    if (deepest >= 0) {
      ++woken;
      if (charge_wake) {
        wake_delay = std::max(
            wake_delay, states_[static_cast<std::size_t>(deepest)].wake_latency_s);
      }
    }
  }
  for (std::size_t k = 0; k < states_.size(); ++k) {
    if (state_seconds[k] <= 0.0) continue;
    PmEvent event;
    event.kind = PmEventKind::kSleepInterval;
    event.time = now;
    event.cpu_count = state_cpus[k];
    event.watts = states_[k].power_watts;
    event.seconds = state_seconds[k];
    event.sleep_state = static_cast<std::int32_t>(k);
    context.emit(event);
  }
  if (wake_delay > 0) {
    PmEvent event;
    event.kind = PmEventKind::kWake;
    event.time = now;
    event.cpu_count = woken;
    event.seconds = static_cast<double>(wake_delay);
    context.emit(event);
  }
  return wake_delay;
}

StartDecision SleepManager::on_job_start(PmContext& context, JobId id,
                                         const std::vector<CpuId>& cpus,
                                         GearIndex gear) {
  (void)id;
  const Time wake_delay = account_idle(context, cpus, /*charge_wake=*/true);
  return StartDecision{false, gear, wake_delay};
}

void SleepManager::on_job_finish(PmContext& context, JobId id,
                                 const std::vector<CpuId>& cpus) {
  (void)id;
  if (!tracking_) return;
  const Time now = context.now();
  for (const CpuId cpu : cpus) {
    const std::size_t index = static_cast<std::size_t>(cpu);
    BSLD_REQUIRE(index < idle_since_.size(), "SleepManager: CPU out of range");
    idle_since_[index] = now;
  }
}

void SleepManager::on_run_end(PmContext& context) {
  if (!tracking_) return;
  // Flush idle spans still open at the end of the horizon; nothing wakes.
  std::vector<CpuId> idle;
  for (std::size_t cpu = 0; cpu < idle_since_.size(); ++cpu) {
    if (idle_since_[cpu] != kNoTime) {
      idle.push_back(static_cast<CpuId>(cpu));
    }
  }
  (void)account_idle(context, idle, /*charge_wake=*/false);
}

}  // namespace bsld::pm
