/// \file sweep_service.hpp
/// \brief The daemon's execution core: one shared SweepRunner + cache
/// behind every client connection.
///
/// Each `run` request — a single RunSpec or a `sweep.*` grid — expands
/// through report::expand_grid and goes into SweepRunner::submit(): all
/// concurrent clients batch into the one persistent worker pool, identical
/// in-flight specs simulate once, and warm specs are answered straight
/// from the report::ResultCache without ever touching the pool. The
/// payload streams through the regular result sinks (CsvResultSink /
/// JsonlResultSink behind a ReorderingSink), so a query's bytes are
/// identical to what `bsldsim --spec/--sweep --format ...` prints for the
/// same config.
#pragma once

#include <cstddef>
#include <string>

#include "report/sweep.hpp"
#include "server/protocol.hpp"

namespace bsld::report {
class ResultCache;
}

namespace bsld::server {

/// Thread-safe request executor shared by every connection handler.
class SweepService {
 public:
  struct Options {
    /// Simulation worker threads (0 = hardware concurrency).
    unsigned threads = 0;
    /// The persistent store; non-owning, required (the daemon exists to
    /// batch requests over it).
    report::ResultCache* cache = nullptr;
  };

  explicit SweepService(const Options& options);

  /// Everything a `run` reply needs.
  struct RunReply {
    std::string payload;  ///< sink output in grid order.
    std::size_t rows = 0;  ///< grid slots rendered.
    report::SweepRunner::Progress progress;  ///< the request's counters.
  };

  /// Executes one kRun request (blocking until its batch drains). Throws
  /// bsld::Error on malformed specs — the caller turns that into an
  /// `err` reply. Safe from concurrent connection threads.
  RunReply run(const Request& request);

  /// `stats` payload: cache + store counters, config-style text.
  [[nodiscard]] std::string stats_payload() const;

  /// Graceful drain: finish queued work, stop the pool. Idempotent.
  void drain();

 private:
  report::ResultCache* cache_;
  report::SweepRunner runner_;
};

}  // namespace bsld::server
