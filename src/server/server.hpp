/// \file server.hpp
/// \brief `bsldsim serve`: the accept loop of the daemon mode.
///
/// The ROADMAP's follow-up to the persistent result cache: a long-lived
/// process that treats simulation as a query service. Server binds a
/// Unix-domain socket, accepts concurrent clients (one handler thread
/// per connection), parses requests through server::RequestParser and
/// executes them on the shared server::SweepService — so every client
/// batches into one worker pool and one cache, and a warm query never
/// simulates anything.
///
/// Lifecycle: serve() blocks in accept(); stop() — async-signal-safe,
/// wired to SIGTERM/SIGINT by the bsldsim binary — interrupts the
/// listener, after which serve() stops accepting, joins every connection
/// handler (in-flight requests finish: graceful drain), shuts the
/// service's pool down and returns 0. A client `shutdown` request
/// triggers the same path from inside a connection.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/sweep_service.hpp"
#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::server {

class Server {
 public:
  struct Options {
    /// Filesystem path of the Unix-domain socket (required; kept short —
    /// sockaddr_un limits it to ~107 bytes).
    std::string socket_path;
    /// Forwarded to SweepService.
    unsigned threads = 0;
    report::ResultCache* cache = nullptr;
  };

  /// Binds and listens immediately (so callers can report readiness
  /// before serve() blocks). Throws bsld::Error on bind failures.
  explicit Server(const Options& options);

  /// Wakes every open connection before the handler threads join, so
  /// destruction cannot deadlock even when serve() exited by exception
  /// (e.g. accept() failing on fd exhaustion) without running its drain.
  ~Server();

  /// Runs the accept loop until stop() (or a client `shutdown` request),
  /// then drains: joins connection handlers, stops the worker pool.
  /// Returns the process exit code (0 on a clean drain).
  int serve();

  /// Async-signal-safe stop: wakes the accept loop. Callable from a
  /// signal handler or any thread; idempotent.
  void stop();

  [[nodiscard]] const std::string& socket_path() const {
    return listener_.path();
  }

 private:
  void handle_connection(int fd) BSLD_EXCLUDES(state_mutex_);
  void serve_connection(util::SocketStream& stream);
  void reap_finished() BSLD_EXCLUDES(state_mutex_);
  void wake_connections() BSLD_EXCLUDES(state_mutex_);

  SweepService service_;
  util::UnixListener listener_;
  std::atomic<bool> stopping_{false};
  util::Mutex state_mutex_;
  /// Handlers ready to reap.
  std::vector<std::thread::id> done_ BSLD_GUARDED_BY(state_mutex_);
  /// Open connections, for drain wakeup.
  std::vector<int> active_fds_ BSLD_GUARDED_BY(state_mutex_);
  // Declared last: its jthread destructors join every handler while the
  // members above (and service_) are still alive — even if serve() exits
  // by exception.
  std::vector<std::jthread> connections_;
};

}  // namespace bsld::server
