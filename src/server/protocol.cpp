#include "server/protocol.hpp"

#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::server {

namespace {

/// First whitespace-separated token and the remainder (trimmed).
std::pair<std::string, std::string> split_verb(const std::string& line) {
  const std::size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) return {"", ""};
  std::size_t end = line.find_first_of(" \t", begin);
  if (end == std::string::npos) end = line.size();
  std::size_t rest = line.find_first_not_of(" \t", end);
  if (rest == std::string::npos) rest = line.size();
  std::size_t rest_end = line.find_last_not_of(" \t");
  return {line.substr(begin, end - begin),
          rest <= rest_end ? line.substr(rest, rest_end - rest + 1) : ""};
}

}  // namespace

std::optional<Request> RequestParser::feed(const std::string& line) {
  if (in_run_) {
    const auto [verb, rest] = split_verb(line);
    if (discarding_) {
      // An oversized body already answered its error; swallow the rest of
      // the request so the stream resynchronizes at its `end` instead of
      // misreading every remaining body line as a verb.
      if (verb == "end" && rest.empty()) {
        in_run_ = false;
        discarding_ = false;
      }
      return std::nullopt;
    }
    if (verb == "end" && rest.empty()) {
      in_run_ = false;
      std::string body;
      for (const std::string& body_line : body_) {
        body += body_line;
        body += '\n';
      }
      body_.clear();
      Request request;
      request.kind = Request::Kind::kRun;
      request.format = std::move(format_);
      try {
        // Config::parse reports `line N` relative to the body we feed it,
        // which matches the client's view of its request body.
        request.config = util::Config::parse(body);
      } catch (const Error& error) {
        throw Error(std::string("run request body: ") + error.what());
      }
      return request;
    }
    if (body_.size() >= kMaxBodyLines) {
      discarding_ = true;  // stay in_run_, eat lines until `end`.
      body_.clear();
      throw Error("run request body exceeds " +
                  std::to_string(kMaxBodyLines) + " lines");
    }
    body_.push_back(line);
    return std::nullopt;
  }

  const auto [verb, rest] = split_verb(line);
  if (verb.empty()) return std::nullopt;  // blank separator line.
  if (verb == "ping" || verb == "stats" || verb == "shutdown") {
    if (!rest.empty()) {
      throw Error("request `" + verb + "` takes no arguments, got `" + rest +
                  "`");
    }
    Request request;
    request.kind = verb == "ping"    ? Request::Kind::kPing
                   : verb == "stats" ? Request::Kind::kStats
                                     : Request::Kind::kShutdown;
    return request;
  }
  if (verb == "run") {
    std::string format = rest.empty() ? "csv" : rest;
    if (format != "csv" && format != "jsonl") {
      // The client has already committed to sending a body; swallow it
      // up to its `end` so those lines are not misread as verbs.
      in_run_ = true;
      discarding_ = true;
      throw Error("run request format must be csv or jsonl, got `" + rest +
                  "`");
    }
    in_run_ = true;
    format_ = std::move(format);
    body_.clear();
    return std::nullopt;
  }
  throw Error("unknown request verb `" + verb +
              "` (expected ping, stats, shutdown or run)");
}

std::string ok_reply(const std::string& attrs, const std::string& payload) {
  std::string reply = "ok ";
  if (!attrs.empty()) {
    reply += attrs;
    reply += ' ';
  }
  reply += "bytes=" + std::to_string(payload.size()) + "\n";
  reply += payload;
  reply += "end\n";
  return reply;
}

std::string err_reply(const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "err " + flat + "\n";
}

ReplyHeader parse_reply_header(const std::string& line) {
  ReplyHeader header;
  const auto [verb, rest] = split_verb(line);
  if (verb == "err") {
    header.ok = false;
    header.error = rest;
    return header;
  }
  BSLD_REQUIRE(verb == "ok",
               "malformed reply header from server: `" + line + "`");
  header.ok = true;
  std::istringstream in(rest);
  std::string token;
  bool saw_bytes = false;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    BSLD_REQUIRE(eq != std::string::npos && eq > 0,
                 "malformed reply attribute `" + token + "`");
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "bytes") {
      header.payload_bytes = static_cast<std::size_t>(
          util::require_uint(value, "reply attribute `bytes`"));
      saw_bytes = true;
    }
    header.attrs.emplace_back(std::move(key), std::move(value));
  }
  BSLD_REQUIRE(saw_bytes, "reply header missing bytes=: `" + line + "`");
  return header;
}

}  // namespace bsld::server
