/// \file protocol.hpp
/// \brief The bsldsim daemon's wire protocol: line-delimited text
/// requests, byte-framed replies.
///
/// Requests (client -> server), one verb per line:
///
///   ping                       liveness probe
///   stats                      cache/runner counters
///   shutdown                   ask the daemon to drain and exit
///   run [csv|jsonl]            submit work (default csv); followed by a
///   <config lines...>          RunSpec / sweep-grid config (exactly what
///   end                        bsldsim --spec / --sweep files contain),
///                              terminated by a line reading `end`
///
/// Replies (server -> client):
///
///   ok <k>=<v> ... bytes=<B>\n   attributes, then exactly B payload
///   <B raw payload bytes>        bytes (the sweep output in grid order,
///   end\n                        rendered by the regular result sinks),
///                                then the closing frame line
///   err <message>\n              malformed request or failed run; the
///                                message names the offending key/flag
///
/// The byte-counted frame makes the payload opaque: rows never collide
/// with protocol framing, and a client can splice the payload to stdout
/// verbatim — a warm `bsldsim query` byte-identical to the direct run.
/// Parsing is strict: unknown verbs, bad formats and malformed config
/// bodies raise bsld::Error (the server answers `err ...` and keeps the
/// connection usable), never crash the daemon.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/config.hpp"

namespace bsld::server {

/// One parsed client request.
struct Request {
  enum class Kind { kPing, kStats, kShutdown, kRun };
  Kind kind = Kind::kPing;
  /// Payload rendering for kRun: "csv" or "jsonl".
  std::string format = "csv";
  /// The spec/grid config of a kRun request (report::expand_grid input).
  util::Config config;
};

/// Incremental request assembler: feed protocol lines as they arrive;
/// a complete Request pops out when its final line lands.
class RequestParser {
 public:
  /// Consumes one line (without the trailing newline). Returns the
  /// completed Request, or std::nullopt when the request needs more
  /// lines. Blank lines between requests are ignored. Throws bsld::Error
  /// on protocol violations (unknown verb, bad format token, malformed
  /// config body, oversized body); the parser resets itself so the
  /// connection can carry further requests after an error reply.
  [[nodiscard]] std::optional<Request> feed(const std::string& line);

  /// True while inside a `run` body (useful for EOF diagnostics).
  [[nodiscard]] bool mid_request() const { return in_run_; }

  /// Longest accepted `run` body: 64k lines (a guard against unbounded
  /// buffering, far above any real grid config).
  static constexpr std::size_t kMaxBodyLines = 64 * 1024;

 private:
  bool in_run_ = false;
  /// The request already failed (oversized body, bad format) but the
  /// client is still sending its body; swallow lines until the request's
  /// `end` so the connection stays in sync.
  bool discarding_ = false;
  std::string format_;
  std::vector<std::string> body_;
};

/// Renders the reply frame around `payload`: "ok <attrs> bytes=B", the
/// payload bytes, "end". `attrs` is the preformatted "k=v k=v" list (may
/// be empty).
std::string ok_reply(const std::string& attrs, const std::string& payload);

/// Renders an error reply; newlines in `message` are flattened so the
/// reply stays one line.
std::string err_reply(const std::string& message);

/// Client-side reply header parsing: splits "ok a=1 b=2 bytes=5" into
/// {{"a","1"},{"b","2"},{"bytes","5"}}. Throws bsld::Error when `line`
/// is neither an ok nor an err header, or an ok header lacks bytes=.
struct ReplyHeader {
  bool ok = false;
  std::string error;  ///< the message of an err reply.
  std::vector<std::pair<std::string, std::string>> attrs;
  std::size_t payload_bytes = 0;
};
ReplyHeader parse_reply_header(const std::string& line);

}  // namespace bsld::server
