#include "server/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace bsld::server {

namespace {

std::string run_attrs(const SweepService::RunReply& reply) {
  const report::SweepRunner::Progress& p = reply.progress;
  std::ostringstream attrs;
  attrs << "rows=" << reply.rows << " executed=" << p.executed
        << " cache_hits=" << p.cache_hits
        << " deduplicated=" << p.deduplicated;
  return attrs.str();
}

}  // namespace

Server::Server(const Options& options)
    : service_(SweepService::Options{options.threads, options.cache}),
      listener_(options.socket_path) {}

Server::~Server() {
  stop();
  wake_connections();
  // connections_ (declared last) joins every handler next, then the
  // service's pool drains in its own destructor.
}

void Server::wake_connections() {
  const util::ScopedLock lock(state_mutex_);
  for (const int fd : active_fds_) ::shutdown(fd, SHUT_RD);
}

int Server::serve() {
  while (true) {
    const std::optional<int> client = listener_.accept();
    if (!client) break;  // stop(): interrupted.
    if (stopping_.load()) {
      ::close(*client);  // raced the stop; no new work accepted.
      break;
    }
    reap_finished();
    {
      // Register on the accept thread, before the handler exists: the
      // drain loop below must see every accepted fd, or a handler spawned
      // in the same instant as stop() would miss the SHUT_RD wakeup and
      // block its join forever.
      const util::ScopedLock lock(state_mutex_);
      active_fds_.push_back(*client);
    }
    connections_.emplace_back(
        [this, fd = *client] { handle_connection(fd); });
  }
  // Graceful drain: wake handlers parked in read_line() by shutting the
  // read side of every open connection — in-flight requests still finish
  // and their replies still deliver (writes stay open) — then join
  // everyone before stopping the pool.
  wake_connections();
  connections_.clear();  // joins every handler.
  service_.drain();
  return 0;
}

void Server::stop() {
  stopping_.store(true);
  listener_.interrupt();
}

void Server::reap_finished() {
  // Handlers that already returned announce their id; joining them is
  // instant, and a long-lived daemon stops accumulating dead threads.
  std::vector<std::thread::id> done;
  {
    const util::ScopedLock lock(state_mutex_);
    done.swap(done_);
  }
  for (const std::thread::id id : done) {
    std::erase_if(connections_,
                  [id](std::jthread& thread) { return thread.get_id() == id; });
  }
}

void Server::handle_connection(int fd) {
  util::SocketStream stream(fd);  // owns fd; registered by the acceptor.
  // A client that stops reading must not pin this handler in send()
  // forever — that would wedge the drain join. 30s is far beyond any
  // honest reader's stall.
  stream.set_send_timeout(30);
  serve_connection(stream);
  {
    // Unregister strictly before the stream's destructor closes the fd,
    // so the drain never shutdown()s a recycled descriptor.
    const util::ScopedLock lock(state_mutex_);
    std::erase(active_fds_, fd);
    done_.push_back(std::this_thread::get_id());
  }
}

void Server::serve_connection(util::SocketStream& stream) {
  RequestParser parser;
  try {
    while (true) {
      std::optional<std::string> line;
      try {
        line = stream.read_line();
      } catch (const Error&) {
        return;  // peer vanished mid-line; nothing to answer.
      }
      if (!line) return;  // clean EOF.

      std::optional<Request> request;
      try {
        request = parser.feed(*line);
      } catch (const Error& error) {
        // Malformed input answers with a named diagnostic and keeps the
        // connection (and the daemon) alive.
        stream.write_all(err_reply(error.what()));
        continue;
      }
      if (!request) continue;

      switch (request->kind) {
        case Request::Kind::kPing:
          stream.write_all(ok_reply("pong=1", ""));
          break;
        case Request::Kind::kStats:
          stream.write_all(ok_reply("", service_.stats_payload()));
          break;
        case Request::Kind::kShutdown:
          stream.write_all(ok_reply("stopping=1", ""));
          stop();
          return;
        case Request::Kind::kRun: {
          try {
            const SweepService::RunReply reply = service_.run(*request);
            stream.write_all(ok_reply(run_attrs(reply), reply.payload));
          } catch (const Error& error) {
            stream.write_all(err_reply(error.what()));
          } catch (const std::exception& error) {
            // std::bad_alloc on a huge grid, std::system_error from
            // thread spawn, ...: the protocol contract is an `err` reply
            // and a usable connection, never a silent disconnect.
            stream.write_all(err_reply(error.what()));
          }
          break;
        }
      }
    }
  } catch (const Error& error) {
    // Socket write failures end this connection only; the daemon and the
    // other connections keep running.
    BSLD_LOG_INFO() << "server: connection dropped: " << error.what();
  } catch (const std::exception& error) {
    BSLD_LOG_ERROR() << "server: connection handler failed: " << error.what();
  }
}

}  // namespace bsld::server
