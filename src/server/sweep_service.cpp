#include "server/sweep_service.hpp"

#include <optional>
#include <sstream>

#include "report/grid.hpp"
#include "report/result_cache.hpp"
#include "report/sinks.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::server {

namespace {

report::SweepRunner::Options runner_options(
    const SweepService::Options& options) {
  report::SweepRunner::Options runner;
  runner.threads = options.threads;
  runner.cache = options.cache;
  return runner;
}

}  // namespace

SweepService::SweepService(const Options& options)
    : cache_(options.cache), runner_(runner_options(options)) {
  BSLD_REQUIRE(cache_ != nullptr, "SweepService: a ResultCache is required");
}

SweepService::RunReply SweepService::run(const Request& request) {
  BSLD_REQUIRE(request.kind == Request::Kind::kRun,
               "SweepService::run(): not a run request");
  const std::vector<report::RunSpec> specs =
      report::expand_grid(request.config);

  std::ostringstream out;
  std::optional<report::CsvResultSink> csv;
  std::optional<report::JsonlResultSink> jsonl;
  report::ResultSink* inner = nullptr;
  if (request.format == "jsonl") {
    jsonl.emplace(out);
    inner = &*jsonl;
  } else {
    csv.emplace(out);
    inner = &*csv;
  }
  report::ReorderingSink ordered(*inner);

  // Results land from worker threads and from the submitting thread
  // (cache hits); the reordering sink is not thread-safe by itself.
  util::Mutex sink_mutex;
  report::SweepRunner::SubmitHandle handle = runner_.submit(
      specs, [&](std::size_t index, const report::RunResult& result) {
        const util::ScopedLock lock(sink_mutex);
        ordered.on_result(index, result);
      });
  (void)handle.wait();  // rethrows the first failed run.
  ordered.on_done(specs.size());

  RunReply reply;
  reply.payload = out.str();
  reply.rows = specs.size();
  reply.progress = handle.progress();
  return reply;
}

std::string SweepService::stats_payload() const {
  const report::ResultCache::Counters counters = cache_->counters();
  const report::ResultCache::DiskStats disk = cache_->disk_stats();
  std::ostringstream out;
  out << "cache.root = " << cache_->root().string() << '\n'
      << "cache.epoch = " << report::ResultCache::kSchemaEpoch << '\n'
      << "cache.hits = " << counters.hits << '\n'
      << "cache.misses = " << counters.misses << '\n'
      << "cache.stores = " << counters.stores << '\n'
      << "cache.corrupt = " << counters.corrupt << '\n'
      << "store.entries = " << disk.entries << '\n'
      << "store.bytes = " << disk.bytes << '\n'
      << "store.stale_entries = " << disk.stale_entries << '\n';
  return out.str();
}

void SweepService::drain() { runner_.shutdown(); }

}  // namespace bsld::server
