#include "report/result_cache.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>
#include <system_error>
#include <vector>

#include "util/config.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"

namespace bsld::report {

namespace {

/// First line of every entry; the epoch makes old-format files invisible.
std::string header_line() {
  std::string line = "bsldsim-cache epoch=";
  line += std::to_string(ResultCache::kSchemaEpoch);
  return line;
}

/// "v<epoch>": the directory level that versions the store. (Append form
/// rather than operator+ to dodge a GCC 12 -Wrestrict false positive.)
std::string epoch_dir_name() {
  std::string name = "v";
  name += std::to_string(ResultCache::kSchemaEpoch);
  return name;
}

template <typename Int>
bool parse_int(std::string_view text, Int& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view text, double& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string int_list(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out;
}

bool parse_int_list(std::string_view text, std::vector<std::int64_t>& out) {
  out.clear();
  if (text.empty()) return true;
  for (std::string_view part : split(text, ',')) {
    while (!part.empty() && part.front() == ' ') part.remove_prefix(1);
    while (!part.empty() && part.back() == ' ') part.remove_suffix(1);
    std::int64_t value = 0;
    if (!parse_int(part, value)) return false;
    out.push_back(value);
  }
  return true;
}

/// Sequential reader over the entry bytes. Every accessor returns false on
/// any shortfall, so a truncated or garbled entry fails parsing instead of
/// crashing or misreading.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  bool line(std::string_view& out) {
    if (pos >= bytes.size()) return false;
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string_view::npos) return false;  // entries end in '\n'.
    out = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  }

  /// Exactly `count` raw bytes followed by the '\n' separator.
  bool payload(std::size_t count, std::string_view& out) {
    if (count >= bytes.size() - pos) return false;  // >=: separator too.
    if (bytes[pos + count] != '\n') return false;
    out = bytes.substr(pos, count);
    pos = pos + count + 1;
    return true;
  }

  [[nodiscard]] bool at_end() const { return pos == bytes.size(); }
};

/// Matches `[<name> <key1>=<v1> <key2>=<v2> ...]` against an expected
/// section name and attribute key list; returns the values in key order.
/// The last attribute's value may contain spaces (used for `fields=`).
bool section_attrs(std::string_view line, std::string_view name,
                   const std::vector<std::string_view>& keys,
                   std::vector<std::string_view>& values) {
  if (line.size() < 2 || line.front() != '[' || line.back() != ']') {
    return false;
  }
  std::string_view body = line.substr(1, line.size() - 2);
  values.clear();
  const std::size_t name_end = body.find(' ');
  if (keys.empty()) return body == name;
  if (name_end == std::string_view::npos || body.substr(0, name_end) != name) {
    return false;
  }
  body.remove_prefix(name_end + 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool last = i + 1 == keys.size();
    const std::size_t end = last ? body.size() : body.find(' ');
    if (end == std::string_view::npos) return false;
    const std::string_view part = body.substr(0, end);
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos || part.substr(0, eq) != keys[i]) {
      return false;
    }
    values.push_back(part.substr(eq + 1));
    if (!last) body.remove_prefix(end + 1);
  }
  return true;
}

constexpr std::string_view kJobFields =
    "id,submit,size,run_time_top,start,end,gear,final_gear,boosted,"
    "scaled_runtime,scaled_requested,bsld";

std::string serialize_entry(const RunResult& result) {
  const sim::SimulationResult& sim = result.sim();
  std::ostringstream out;
  out << header_line() << '\n';

  const std::string key = result.spec.key();
  out << "[spec bytes=" << key.size() << "]\n" << key << '\n';

  util::Config aggregates;
  aggregates.set("workload", sim.workload);
  aggregates.set("policy", sim.policy);
  aggregates.set("cpus", std::to_string(sim.cpus));
  aggregates.set("job_count", std::to_string(sim.job_count));
  aggregates.set("avg_bsld", util::config_double(sim.avg_bsld));
  aggregates.set("avg_wait", util::config_double(sim.avg_wait));
  aggregates.set("reduced_jobs", std::to_string(sim.reduced_jobs));
  aggregates.set("boosted_jobs", std::to_string(sim.boosted_jobs));
  aggregates.set("jobs_per_gear", int_list(sim.jobs_per_gear));
  aggregates.set("energy.computational_joules",
                 util::config_double(sim.energy.computational_joules));
  aggregates.set("energy.total_joules",
                 util::config_double(sim.energy.total_joules));
  aggregates.set("energy.idle_joules",
                 util::config_double(sim.energy.idle_joules));
  aggregates.set("energy.busy_core_seconds",
                 util::config_double(sim.energy.busy_core_seconds));
  aggregates.set("energy.idle_core_seconds",
                 util::config_double(sim.energy.idle_core_seconds));
  // Sleep-state fields (pm = sleep): written unconditionally for a stable
  // entry shape; 0 for every run without a sleep manager. Entries written
  // before these keys existed parse as 0 — correct, they are pm-none runs.
  aggregates.set("energy.sleep_core_seconds",
                 util::config_double(sim.energy.sleep_core_seconds));
  aggregates.set("energy.sleep_joules",
                 util::config_double(sim.energy.sleep_joules));
  aggregates.set("energy.horizon", std::to_string(sim.energy.horizon));
  aggregates.set("makespan", std::to_string(sim.makespan));
  aggregates.set("utilization", util::config_double(sim.utilization));
  aggregates.set("events_processed", std::to_string(sim.events_processed));
  out << "[sim]\n" << aggregates.to_string();

  out << "[jobs count=" << sim.jobs.size() << " fields=" << kJobFields
      << "]\n";
  for (const sim::JobOutcome& job : sim.jobs) {
    out << job.id << ',' << job.submit << ',' << job.size << ','
        << job.run_time_top << ',' << job.start << ',' << job.end << ','
        << job.gear << ',' << job.final_gear << ',' << (job.boosted ? 1 : 0)
        << ',' << job.scaled_runtime << ',' << job.scaled_requested << ','
        << util::config_double(job.bsld) << '\n';
  }

  for (const auto& instrument : result.instruments) {
    if (!instrument) continue;
    // The section header is space/bracket-delimited; a name the parser
    // cannot read back would make every lookup of this entry a corrupt
    // miss (a permanent re-simulate/re-store loop). Fail the store loudly
    // instead.
    const std::string name = instrument->name();
    BSLD_REQUIRE(!name.empty() &&
                     name.find_first_of(" []\n\r") == std::string::npos,
                 "ResultCache: instrument name `" + name +
                     "` cannot be cached (no spaces, brackets or newlines)");
    std::ostringstream csv;
    instrument->write_csv(csv);
    const std::string payload = csv.str();
    out << "[instrument name=" << name << " rows=" << instrument->rows()
        << " bytes=" << payload.size() << "]\n"
        << payload << '\n';
  }

  out << "[end]\n";
  return out.str();
}

bool parse_aggregates(const std::string& text, sim::SimulationResult& sim) {
  util::Config config;
  try {
    config = util::Config::parse(text);
  } catch (const Error&) {
    return false;
  }
  static const char* kRequired[] = {
      "workload",       "policy",
      "cpus",           "job_count",
      "avg_bsld",       "avg_wait",
      "reduced_jobs",   "boosted_jobs",
      "jobs_per_gear",  "energy.computational_joules",
      "energy.total_joules",  "energy.idle_joules",
      "energy.busy_core_seconds", "energy.idle_core_seconds",
      "energy.horizon", "makespan",
      "utilization",    "events_processed"};
  for (const char* key : kRequired) {
    if (!config.contains(key)) return false;
  }
  try {
    sim.workload = config.get_string("workload", "");
    sim.policy = config.get_string("policy", "");
    sim.cpus = static_cast<std::int32_t>(config.get_int("cpus", 0));
    sim.job_count = config.get_int("job_count", 0);
    sim.avg_bsld = config.get_double("avg_bsld", 0.0);
    sim.avg_wait = config.get_double("avg_wait", 0.0);
    sim.reduced_jobs = config.get_int("reduced_jobs", 0);
    sim.boosted_jobs = config.get_int("boosted_jobs", 0);
    if (!parse_int_list(config.get_string("jobs_per_gear", ""),
                        sim.jobs_per_gear)) {
      return false;
    }
    sim.energy.computational_joules =
        config.get_double("energy.computational_joules", 0.0);
    sim.energy.total_joules = config.get_double("energy.total_joules", 0.0);
    sim.energy.idle_joules = config.get_double("energy.idle_joules", 0.0);
    sim.energy.busy_core_seconds =
        config.get_double("energy.busy_core_seconds", 0.0);
    sim.energy.idle_core_seconds =
        config.get_double("energy.idle_core_seconds", 0.0);
    sim.energy.sleep_core_seconds =
        config.get_double("energy.sleep_core_seconds", 0.0);
    sim.energy.sleep_joules = config.get_double("energy.sleep_joules", 0.0);
    sim.energy.horizon = config.get_int("energy.horizon", 0);
    sim.makespan = config.get_int("makespan", 0);
    sim.utilization = config.get_double("utilization", 0.0);
    sim.events_processed =
        static_cast<std::uint64_t>(config.get_int("events_processed", 0));
  } catch (const Error&) {
    return false;
  }
  return true;
}

bool parse_job_row(std::string_view row, sim::JobOutcome& job) {
  const std::vector<std::string_view> cells = split(row, ',');
  if (cells.size() != 12) return false;
  std::int64_t boosted = 0;
  if (!parse_int(cells[0], job.id) || !parse_int(cells[1], job.submit) ||
      !parse_int(cells[2], job.size) || !parse_int(cells[3], job.run_time_top) ||
      !parse_int(cells[4], job.start) || !parse_int(cells[5], job.end) ||
      !parse_int(cells[6], job.gear) || !parse_int(cells[7], job.final_gear) ||
      !parse_int(cells[8], boosted) ||
      !parse_int(cells[9], job.scaled_runtime) ||
      !parse_int(cells[10], job.scaled_requested) ||
      !parse_double(cells[11], job.bsld)) {
    return false;
  }
  if (boosted != 0 && boosted != 1) return false;
  job.boosted = boosted == 1;
  return true;
}

/// Parses entry bytes into `out` (out.spec left untouched — the caller owns
/// it). Returns false on any structural or numeric anomaly; a structurally
/// valid entry whose embedded key differs from `expected_key` (64-bit hash
/// collision) sets `key_mismatch` instead.
bool parse_entry(std::string_view bytes, const std::string& expected_key,
                 RunResult& out, bool& key_mismatch) {
  key_mismatch = false;
  Reader reader{bytes};
  std::string_view line;
  if (!reader.line(line) || line != header_line()) return false;

  std::vector<std::string_view> attrs;
  if (!reader.line(line) || !section_attrs(line, "spec", {"bytes"}, attrs)) {
    return false;
  }
  std::size_t spec_bytes = 0;
  if (!parse_int(attrs[0], spec_bytes)) return false;
  std::string_view stored_key;
  if (!reader.payload(spec_bytes, stored_key)) return false;
  if (stored_key != expected_key) {
    key_mismatch = true;
    return false;
  }

  if (!reader.line(line) || !section_attrs(line, "sim", {}, attrs)) {
    return false;
  }
  std::string sim_text;
  while (true) {
    if (!reader.line(line)) return false;
    if (!line.empty() && line.front() == '[') break;  // next section header.
    sim_text.append(line);
    sim_text += '\n';
  }
  // Build the payload locally, then install it in one shot: RunResult
  // shares its (immutable) payload across aliasing slots, so there is no
  // in-place mutation path to parse into.
  sim::SimulationResult payload;
  if (!parse_aggregates(sim_text, payload)) return false;

  if (!section_attrs(line, "jobs", {"count", "fields"}, attrs)) return false;
  std::size_t job_count = 0;
  if (!parse_int(attrs[0], job_count) || attrs[1] != kJobFields) return false;
  payload.jobs.clear();
  payload.jobs.reserve(job_count);
  for (std::size_t i = 0; i < job_count; ++i) {
    sim::JobOutcome job;
    if (!reader.line(line) || !parse_job_row(line, job)) return false;
    payload.jobs.push_back(job);
  }
  out.set_sim(std::move(payload));

  out.instruments.clear();
  while (true) {
    if (!reader.line(line)) return false;
    if (line == "[end]") break;
    if (!section_attrs(line, "instrument", {"name", "rows", "bytes"}, attrs)) {
      return false;
    }
    std::size_t rows = 0;
    std::size_t payload_bytes = 0;
    if (attrs[0].empty() || !parse_int(attrs[1], rows) ||
        !parse_int(attrs[2], payload_bytes)) {
      return false;
    }
    std::string_view payload;
    if (!reader.payload(payload_bytes, payload)) return false;
    out.instruments.push_back(std::make_shared<CachedInstrument>(
        std::string(attrs[0]), rows, std::string(payload)));
  }
  return reader.at_end();
}

}  // namespace

void CachedInstrument::write_csv(std::ostream& out) const { out << csv_; }

ResultCache::ResultCache(std::filesystem::path root) : root_(std::move(root)) {
  BSLD_REQUIRE(!root_.empty(), "ResultCache: empty root directory");
}

std::filesystem::path ResultCache::default_root() {
  if (const char* dir = std::getenv("BSLD_CACHE_DIR"); dir && *dir) {
    return dir;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg) {
    return std::filesystem::path(xdg) / "bsldsim";
  }
  if (const char* home = std::getenv("HOME"); home && *home) {
    return std::filesystem::path(home) / ".cache" / "bsldsim";
  }
  return std::filesystem::path(".bsldsim-cache");
}

std::filesystem::path ResultCache::epoch_dir() const {
  return root_ / epoch_dir_name();
}

std::filesystem::path ResultCache::entry_path(const RunSpec& spec) const {
  const std::string hash = util::hex64(util::fnv1a64(spec.key()));
  return epoch_dir() / hash.substr(0, 2) / (hash + ".entry");
}

std::optional<RunResult> ResultCache::lookup(const RunSpec& spec) {
  const std::filesystem::path path = entry_path(spec);
  const std::optional<std::string> bytes = util::read_file_bytes(path);
  if (!bytes) {
    const util::ScopedLock lock(mutex_);
    counters_.misses += 1;
    return std::nullopt;
  }
  RunResult result;
  bool key_mismatch = false;
  if (!parse_entry(*bytes, spec.key(), result, key_mismatch)) {
    if (!key_mismatch) drop_entry(path);  // unreadable: recompute, rewrite.
    const util::ScopedLock lock(mutex_);
    counters_.misses += 1;
    if (!key_mismatch) counters_.corrupt += 1;
    return std::nullopt;
  }
  result.spec = spec;
  {
    const util::ScopedLock lock(mutex_);
    counters_.hits += 1;
  }
  return result;
}

void ResultCache::store(const RunResult& result) {
  const std::filesystem::path path = entry_path(result.spec);
  const std::string bytes = serialize_entry(result);
  {
    std::filesystem::path lock_path = path;
    lock_path += ".lock";
    const util::FileLock lock(lock_path);
    util::atomic_write_file(path, bytes);
  }
  const util::ScopedLock guard(mutex_);
  counters_.stores += 1;
}

ResultCache::Counters ResultCache::counters() const {
  const util::ScopedLock lock(mutex_);
  return counters_;
}

void ResultCache::drop_entry(const std::filesystem::path& path) {
  std::filesystem::path lock_path = path;
  lock_path += ".lock";
  try {
    const util::FileLock lock(lock_path);
    std::error_code ec;
    std::filesystem::remove(path, ec);
  } catch (const Error&) {
    // Best effort: an undeletable corrupt entry still reads as a miss.
  }
}

namespace {

bool is_entry(const std::filesystem::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".entry";
}

bool is_epoch_dir(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  if (name.size() < 2 || name[0] != 'v') return false;
  return std::all_of(name.begin() + 1, name.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

ResultCache::DiskStats ResultCache::disk_stats() const {
  DiskStats stats;
  std::error_code ec;
  for (const auto& epoch :
       std::filesystem::directory_iterator(root_, ec)) {
    if (!epoch.is_directory() || !is_epoch_dir(epoch.path())) continue;
    const bool current = epoch.path() == epoch_dir();
    std::error_code walk_ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             epoch.path(), walk_ec)) {
      if (!is_entry(entry)) continue;
      if (current) {
        stats.entries += 1;
        std::error_code size_ec;
        const std::uintmax_t size = entry.file_size(size_ec);
        if (!size_ec) stats.bytes += size;
      } else {
        stats.stale_entries += 1;
      }
    }
  }
  return stats;
}

std::size_t ResultCache::remove_epochs(bool include_current) {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& epoch :
       std::filesystem::directory_iterator(root_, ec)) {
    if (!epoch.is_directory() || !is_epoch_dir(epoch.path())) continue;
    if (!include_current && epoch.path() == epoch_dir()) continue;
    std::error_code walk_ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             epoch.path(), walk_ec)) {
      if (is_entry(entry)) removed += 1;
    }
    std::error_code remove_ec;
    std::filesystem::remove_all(epoch.path(), remove_ec);
  }
  return removed;
}

std::size_t ResultCache::clear() { return remove_epochs(true); }

std::size_t ResultCache::evict_stale_epochs() { return remove_epochs(false); }

std::size_t ResultCache::trim(std::uintmax_t max_bytes) {
  struct Candidate {
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
    std::filesystem::path path;
  };
  std::vector<Candidate> candidates;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           epoch_dir(), ec)) {
    if (!is_entry(entry)) continue;
    std::error_code attr_ec;
    Candidate candidate;
    candidate.size = entry.file_size(attr_ec);
    if (attr_ec) continue;
    candidate.mtime = entry.last_write_time(attr_ec);
    if (attr_ec) continue;
    candidate.path = entry.path();
    total += candidate.size;
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mtime < b.mtime;
            });
  std::size_t removed = 0;
  for (const Candidate& candidate : candidates) {
    if (total <= max_bytes) break;
    // Serialize with writers of this entry through its FileLock sidecar,
    // then re-check the write time under the lock: an entry republished
    // between the scan above and this point is a fresh result a concurrent
    // sweep is about to read — unlinking it here would race its tmp+rename
    // publish against the first lookup. A changed (or vanished) entry is
    // simply no longer this scan's eviction candidate.
    std::filesystem::path lock_path = candidate.path;
    lock_path += ".lock";
    try {
      const util::FileLock lock(lock_path);
      std::error_code attr_ec;
      const auto mtime =
          std::filesystem::last_write_time(candidate.path, attr_ec);
      if (attr_ec || mtime != candidate.mtime) continue;
      std::error_code remove_ec;
      if (std::filesystem::remove(candidate.path, remove_ec) && !remove_ec) {
        total -= candidate.size;
        removed += 1;
      }
    } catch (const Error&) {
      // Best effort: an unlockable entry stays; trim is advisory.
    }
  }
  return removed;
}

std::size_t ResultCache::absorb(const std::filesystem::path& other_root) {
  const std::filesystem::path other_epoch = other_root / epoch_dir_name();
  std::size_t copied = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           other_epoch, ec)) {
    if (!is_entry(entry)) continue;
    const std::optional<std::string> bytes =
        util::read_file_bytes(entry.path());
    if (!bytes) continue;
    const std::filesystem::path dest = epoch_dir() /
                                       entry.path().parent_path().filename() /
                                       entry.path().filename();
    std::filesystem::path lock_path = dest;
    lock_path += ".lock";
    const util::FileLock lock(lock_path);
    if (std::filesystem::exists(dest)) continue;  // equal keys, equal bytes.
    util::atomic_write_file(dest, *bytes);
    copied += 1;
  }
  return copied;
}

}  // namespace bsld::report
