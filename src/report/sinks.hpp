/// \file sinks.hpp
/// \brief Ready-made SweepRunner result sinks: stream a grid's headline
/// metrics to CSV or JSON Lines as runs complete, or collect them into an
/// aligned table for terminal output. All render one record per grid slot
/// with the spec's derived label, so any grid — paper figure or ad-hoc
/// sweep — gets uniform, diffable output without per-binary wiring.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <vector>

#include "report/sweep.hpp"
#include "util/table.hpp"

namespace bsld::report {

/// The shared column set of both sinks.
std::vector<std::string> result_row_headers();

/// Renders one result as cells matching result_row_headers().
std::vector<std::string> result_row(std::size_t index, const RunResult& result);

/// Streams results as CSV rows in completion order (the `index` column
/// recovers grid order). The header row is written up front.
class CsvResultSink final : public ResultSink {
 public:
  /// Writes into `out`; the stream must outlive the sink.
  explicit CsvResultSink(std::ostream& out);

  void on_result(std::size_t index, const RunResult& result) override;

 private:
  std::ostream& out_;
};

/// Streams results as JSON Lines: one self-contained JSON object per
/// completed run, in completion order (the "index" field recovers grid
/// order). Numbers are emitted in shortest round-trip form; attached
/// instruments are listed by name so downstream tooling knows which views
/// were captured.
class JsonlResultSink final : public ResultSink {
 public:
  /// Writes into `out`; the stream must outlive the sink.
  explicit JsonlResultSink(std::ostream& out);

  void on_result(std::size_t index, const RunResult& result) override;

 private:
  std::ostream& out_;
};

/// Decorator: buffers results and replays them into `inner` in ascending
/// grid order at on_done. Turns any streaming sink's completion-order
/// output into deterministic grid-order output — what bsldsim --sweep
/// emits, and the property that makes shard outputs mergeable into a
/// byte-identical serial result set. Costs O(grid) buffered results.
class ReorderingSink final : public ResultSink {
 public:
  /// Replays into `inner`; must outlive this sink. inner.on_done runs
  /// after the replay, with the same total.
  explicit ReorderingSink(ResultSink& inner) : inner_(inner) {}

  void on_result(std::size_t index, const RunResult& result) override;
  void on_done(std::size_t total) override;

 private:
  ResultSink& inner_;
  std::map<std::size_t, RunResult> pending_;  ///< ascending grid order.
};

/// Collects results and renders them as a util::Table in grid order.
class TableResultSink final : public ResultSink {
 public:
  /// The accumulated table; call after SweepRunner::run returns.
  [[nodiscard]] util::Table table() const;

  void on_result(std::size_t index, const RunResult& result) override;

 private:
  std::map<std::size_t, std::vector<std::string>> rows_;  ///< grid order.
};

}  // namespace bsld::report
