#include "report/grid.hpp"

#include <optional>
#include <string>

#include "pm/registry.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "workload/source.hpp"

namespace bsld::report {

namespace {

std::optional<std::int64_t> parse_wq(const std::string& token) {
  if (token == "NO") return std::nullopt;
  const std::optional<std::int64_t> value = util::parse_int(token);
  BSLD_REQUIRE(value.has_value() && *value >= 0,
               "expand_grid: bad sweep.wq_thresholds item `" + token +
                   "` (expect a non-negative integer or NO)");
  return *value;
}

}  // namespace

std::vector<RunSpec> expand_grid(const util::Config& config) {
  const RunSpec base = RunSpec::parse(config);
  const std::vector<std::string> workloads =
      config.get_string_list("sweep.workloads", {});
  const std::vector<double> bslds =
      config.get_double_list("sweep.bsld_thresholds", {});
  const std::vector<std::string> wqs =
      config.get_string_list("sweep.wq_thresholds", {});
  const std::vector<double> scales = config.get_double_list("sweep.scales", {});
  const std::vector<std::string> pms = config.get_string_list("sweep.pm", {});
  const std::vector<double> pm_watts =
      config.get_double_list("sweep.pm_cap_watts", {});

  // Each absent axis contributes its base value once, so the cross-product
  // below is uniform: workloads outermost, then BSLD, then WQ, then scale,
  // then pm names, then pm watts innermost.
  std::vector<wl::WorkloadSource> workload_axis;
  if (workloads.empty()) {
    workload_axis.push_back(base.workload);
  } else {
    for (const std::string& name : workloads) {
      workload_axis.push_back(wl::resolve_source(name, base.workload.jobs,
                                                 base.workload.seed));
    }
  }
  std::vector<std::optional<double>> bsld_axis;
  if (bslds.empty()) {
    bsld_axis.push_back(std::nullopt);  // keep the base policy's DVFS state.
  } else {
    for (const double threshold : bslds) bsld_axis.push_back(threshold);
  }
  std::vector<std::optional<std::optional<std::int64_t>>> wq_axis;
  if (wqs.empty()) {
    wq_axis.push_back(std::nullopt);
  } else {
    for (const std::string& token : wqs) wq_axis.push_back(parse_wq(token));
  }
  std::vector<double> scale_axis =
      scales.empty() ? std::vector<double>{base.size_scale} : scales;
  std::vector<std::optional<std::string>> pm_axis;
  if (pms.empty()) {
    pm_axis.push_back(std::nullopt);  // keep the base spec's power manager.
  } else {
    for (const std::string& name : pms) {
      pm::PowerManagerRegistry::global().require(name);
      pm_axis.push_back(name);
    }
  }
  std::vector<std::optional<double>> pm_watts_axis;
  if (pm_watts.empty()) {
    pm_watts_axis.push_back(std::nullopt);
  } else {
    for (const double watts : pm_watts) {
      BSLD_REQUIRE(watts > 0.0,
                   "expand_grid: sweep.pm_cap_watts items must be positive");
      pm_watts_axis.push_back(watts);
    }
  }

  std::vector<RunSpec> specs;
  specs.reserve(workload_axis.size() * bsld_axis.size() * wq_axis.size() *
                scale_axis.size() * pm_axis.size() * pm_watts_axis.size());
  for (const wl::WorkloadSource& workload : workload_axis) {
    for (const std::optional<double>& bsld : bsld_axis) {
      for (const auto& wq : wq_axis) {
        for (const double scale : scale_axis) {
          for (const auto& pm_name : pm_axis) {
            for (const auto& watts : pm_watts_axis) {
              RunSpec spec = base;
              spec.workload = workload;
              if (bsld || wq) {
                // A threshold axis implies the DVFS algorithm: refine the
                // base DVFS config (or the default one when the base is a
                // no-DVFS baseline).
                core::DvfsConfig dvfs =
                    spec.policy.dvfs.value_or(core::DvfsConfig{});
                if (bsld) dvfs.bsld_threshold = *bsld;
                if (wq) dvfs.wq_threshold = *wq;
                spec.policy.dvfs = dvfs;
              }
              spec.size_scale = scale;
              // The name axis keeps the base spec's tunables (interval,
              // gain); the watts axis lands on the knob the named family
              // regulates: the setpoint for "setpoint", the hard cap for
              // the cap-* families. "none"/"sleep" take no watts, so the
              // axis value is ignored there (SweepRunner deduplicates the
              // resulting identical specs).
              if (pm_name) spec.pm.name = *pm_name;
              if (watts && spec.pm.name != "none" && spec.pm.name != "sleep") {
                if (spec.pm.name == "setpoint") {
                  spec.pm.setpoint_watts = *watts;
                } else {
                  spec.pm.cap_watts = *watts;
                }
              }
              pm::validate(spec.pm);  // fail at expansion, not mid-sweep.
              specs.push_back(std::move(spec));
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace bsld::report
