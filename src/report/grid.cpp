#include "report/grid.hpp"

#include <optional>
#include <string>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "workload/source.hpp"

namespace bsld::report {

namespace {

std::optional<std::int64_t> parse_wq(const std::string& token) {
  if (token == "NO") return std::nullopt;
  const std::optional<std::int64_t> value = util::parse_int(token);
  BSLD_REQUIRE(value.has_value() && *value >= 0,
               "expand_grid: bad sweep.wq_thresholds item `" + token +
                   "` (expect a non-negative integer or NO)");
  return *value;
}

}  // namespace

std::vector<RunSpec> expand_grid(const util::Config& config) {
  const RunSpec base = RunSpec::parse(config);
  const std::vector<std::string> workloads =
      config.get_string_list("sweep.workloads", {});
  const std::vector<double> bslds =
      config.get_double_list("sweep.bsld_thresholds", {});
  const std::vector<std::string> wqs =
      config.get_string_list("sweep.wq_thresholds", {});
  const std::vector<double> scales = config.get_double_list("sweep.scales", {});

  // Each absent axis contributes its base value once, so the cross-product
  // below is uniform: workloads outermost, then BSLD, then WQ, then scale.
  std::vector<wl::WorkloadSource> workload_axis;
  if (workloads.empty()) {
    workload_axis.push_back(base.workload);
  } else {
    for (const std::string& name : workloads) {
      workload_axis.push_back(wl::resolve_source(name, base.workload.jobs,
                                                 base.workload.seed));
    }
  }
  std::vector<std::optional<double>> bsld_axis;
  if (bslds.empty()) {
    bsld_axis.push_back(std::nullopt);  // keep the base policy's DVFS state.
  } else {
    for (const double threshold : bslds) bsld_axis.push_back(threshold);
  }
  std::vector<std::optional<std::optional<std::int64_t>>> wq_axis;
  if (wqs.empty()) {
    wq_axis.push_back(std::nullopt);
  } else {
    for (const std::string& token : wqs) wq_axis.push_back(parse_wq(token));
  }
  std::vector<double> scale_axis =
      scales.empty() ? std::vector<double>{base.size_scale} : scales;

  std::vector<RunSpec> specs;
  specs.reserve(workload_axis.size() * bsld_axis.size() * wq_axis.size() *
                scale_axis.size());
  for (const wl::WorkloadSource& workload : workload_axis) {
    for (const std::optional<double>& bsld : bsld_axis) {
      for (const auto& wq : wq_axis) {
        for (const double scale : scale_axis) {
          RunSpec spec = base;
          spec.workload = workload;
          if (bsld || wq) {
            // A threshold axis implies the DVFS algorithm: refine the base
            // DVFS config (or the default one when the base is a no-DVFS
            // baseline).
            core::DvfsConfig dvfs =
                spec.policy.dvfs.value_or(core::DvfsConfig{});
            if (bsld) dvfs.bsld_threshold = *bsld;
            if (wq) dvfs.wq_threshold = *wq;
            spec.policy.dvfs = dvfs;
          }
          spec.size_scale = scale;
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

}  // namespace bsld::report
