/// \file experiment.hpp
/// \brief One fully-specified simulation run of the paper's evaluation:
/// which archive, which system size, which policy/parameters — and the
/// machinery to execute it reproducibly.
#pragma once

#include <optional>
#include <string>

#include "core/frequency.hpp"
#include "core/policy_factory.hpp"
#include "power/power_model.hpp"
#include "sim/simulation.hpp"
#include "workload/archives.hpp"

namespace bsld::report {

/// Declarative description of a run.
struct RunSpec {
  wl::Archive archive = wl::Archive::kCTC;
  std::int32_t num_jobs = 5000;      ///< Paper: 5000-job slices.
  double size_scale = 1.0;           ///< 1.2 = "20% larger system" (§5.2).
  core::BasePolicy base = core::BasePolicy::kEasy;
  std::optional<core::DvfsConfig> dvfs;  ///< nullopt = no-DVFS baseline.
  double beta = 0.5;                 ///< Paper's beta (Eq. 5).
  power::PowerModelConfig power;     ///< Paper defaults.
  std::string selector = "FirstFit"; ///< Paper's resource selection policy.
  /// Extension (paper §7 future work): raise running reduced jobs under
  /// queue pressure. Only meaningful with base == kEasy.
  std::optional<core::DynamicRaiseConfig> raise;
  /// Extension (paper §7 future work): per-job beta drawn uniformly from
  /// [first, second] instead of the single platform beta.
  std::optional<std::pair<double, double>> per_job_beta;

  /// "CTC x1.0 EASY BSLD<=2,WQ<=0" — for tables and logs.
  [[nodiscard]] std::string label() const;
};

/// Spec + everything the run produced.
struct RunResult {
  RunSpec spec;
  sim::SimulationResult sim;
};

/// Executes one spec: generates the canonical archive trace, builds the
/// gear set / power / time models and the policy, simulates, returns the
/// result. Deterministic: equal specs yield identical results.
RunResult run_one(const RunSpec& spec);

/// Energy of `run` normalized to `baseline` (paper's Figs. 3/7/8 y-axis).
struct NormalizedEnergy {
  double computational = 1.0;  ///< Eidle = 0 panel.
  double total = 1.0;          ///< Eidle = low panel.
};
NormalizedEnergy normalized_energy(const sim::SimulationResult& run,
                                   const sim::SimulationResult& baseline);

}  // namespace bsld::report
