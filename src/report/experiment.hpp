/// \file experiment.hpp
/// \brief One fully-specified simulation run of the paper's evaluation —
/// and the single entry point every example, bench and test uses to
/// execute it reproducibly.
///
/// A RunSpec is declarative and open on every axis:
///   * workload — any wl::WorkloadSource (canonical archive model, SWF
///     file, or inline generator spec; workload/source.hpp);
///   * policy   — any core::PolicySpec resolved by name through
///     core::PolicyRegistry (core/policy_registry.hpp), so downstream
///     policy plugins flow through unchanged;
///   * platform — gear set, power model calibration and the beta time
///     model, all serializable;
///   * power management — any pm::PmSpec resolved by name through
///     pm::PowerManagerRegistry (pm/registry.hpp); "none" (the default)
///     is bit-identical to running without a manager;
///   * measurement — extra instruments by sim::InstrumentRegistry name
///     plus a retain_jobs switch for streaming aggregate-only runs.
/// It round-trips through util::Config (parse/to_config) byte-identically,
/// so a run is savable, diffable and replayable from a file
/// (`bsldsim --spec run.conf`), and key() doubles as the deduplication key
/// for report::SweepRunner grids.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/gears.hpp"
#include "core/policy_registry.hpp"
#include "pm/spec.hpp"
#include "power/power_model.hpp"
#include "sim/instrument_registry.hpp"
#include "sim/simulation.hpp"
#include "util/config.hpp"
#include "util/sampler.hpp"
#include "workload/source.hpp"

namespace bsld::report {

/// Declarative description of a run.
struct RunSpec {
  wl::WorkloadSource workload;       ///< Where the trace comes from.
  double size_scale = 1.0;           ///< 1.2 = "20% larger system" (§5.2).
  core::PolicySpec policy;           ///< Scheduler + DVFS, by name.
  cluster::GearSet gears = cluster::paper_gear_set();  ///< DVFS operating points.
  double beta = 0.5;                 ///< Paper's beta (Eq. 5).
  power::PowerModelConfig power;     ///< Paper defaults.
  /// Extension (paper §7 future work): per-job beta drawn uniformly from
  /// [first, second] instead of the single platform beta.
  std::optional<std::pair<double, double>> per_job_beta;
  /// Power management, by pm::PowerManagerRegistry name plus tunables.
  /// The default ("none") is bit-identical to running without a manager;
  /// serialized as `pm` / `pm.*` keys only when enabled.
  pm::PmSpec pm;
  /// Extra measurement instruments attached to the run, by
  /// sim::InstrumentRegistry name (e.g. "wait-trace", "utilization").
  /// Serialized as the `instruments` config key; unknown names fail at
  /// parse time, listing what is registered.
  std::vector<std::string> instruments;
  /// Keep the per-job JobOutcome vector in the result (sim::SimulationConfig
  /// equivalent). Off = streaming aggregate-only runs with O(1) memory;
  /// serialized as `retain_jobs = false` only when disabled.
  bool retain_jobs = true;
  /// Execute through the streaming pipeline: wl::open_stream feeds the
  /// simulation directly under its submit-lookahead window, so the trace
  /// is never materialized. Results are bit-identical to the eager path;
  /// combined with retain_jobs = false the run performs no O(jobs)
  /// allocation end to end. Serialized as `stream = true` only when set.
  bool stream = false;
  /// Time-series instrument sampling (wait-trace, utilization): the
  /// default plan retains every point; a non-zero cap bounds retention at
  /// O(cap) while staying exact below it. Serialized as `sample.cap`,
  /// `sample.mode` (decimate | reservoir) and `sample.seed`, each only
  /// when it differs from the default.
  util::SamplePlan sample;

  /// Reads a spec from its serialized form. Accepts partial configs —
  /// missing keys keep their defaults. Throws bsld::Error on unknown
  /// workload kinds, archive names, or unregistered policy names.
  static RunSpec parse(const util::Config& config);

  /// Canonical serialized form: parse(to_config()) == *this and
  /// re-serializing the parsed spec is byte-identical.
  [[nodiscard]] util::Config to_config() const;

  /// to_config() rendered as text — the spec's identity. SweepRunner uses
  /// it to deduplicate identical runs inside a grid. Memoized: the first
  /// call serializes, later calls return the cached text, so a grid that
  /// keys the same specs repeatedly (SweepRunner dedup + shard + in-flight
  /// coalescing) pays the serialization once. Mutating a field after key()
  /// leaves the cache stale — treat a spec as frozen once it has been keyed
  /// (copy-assignment resets the copy's cache, so the common tweak-a-copy
  /// pattern stays safe).
  [[nodiscard]] const std::string& key() const;

  /// "CTC x1.2 EASY BSLD<=2,WQ<=0" — derived from the spec's components
  /// (wl::source_label + core::policy_label), for tables and logs.
  [[nodiscard]] std::string label() const;

  friend bool operator==(const RunSpec&, const RunSpec&) = default;

  /// key() memo. A distinct type so the defaulted operator== above ignores
  /// it (two specs are equal regardless of which has been keyed) and so
  /// copy-assignment drops the cached text instead of carrying it into a
  /// copy that is about to be tweaked.
  struct KeyCache {
    KeyCache() = default;
    KeyCache(const KeyCache&) noexcept {}
    KeyCache& operator=(const KeyCache&) noexcept {
      value.clear();
      return *this;
    }
    KeyCache(KeyCache&&) noexcept = default;
    KeyCache& operator=(KeyCache&&) noexcept = default;
    mutable std::string value;  ///< Empty = not yet computed.
    friend bool operator==(const KeyCache&, const KeyCache&) { return true; }
  };
  KeyCache key_cache;  ///< Internal; managed by key().
};

/// Spec + everything the run produced.
///
/// The simulation payload and the instruments are immutable once the run
/// finishes, so both are shared (not copied) across the grid slots a
/// deduplicated SweepRunner run fans out to: copying a RunResult is O(1)
/// in payload size, which is what keeps fanout delivery off the sweep's
/// critical path even for retained-jobs runs with thousands of outcomes.
struct RunResult {
  RunSpec spec;
  /// The instruments spec.instruments named, in spec order, holding their
  /// captured measurement.
  std::vector<std::shared_ptr<sim::Instrument>> instruments;

  RunResult() = default;
  RunResult(RunSpec spec_in, sim::SimulationResult sim_in,
            std::vector<std::shared_ptr<sim::Instrument>> instruments_in);

  /// The simulation payload (aggregates + per-job outcomes). A
  /// default-constructed result yields an empty payload, never a crash.
  [[nodiscard]] const sim::SimulationResult& sim() const;

  /// Installs/replaces the payload. The only writers are run_workload()
  /// and the result cache's deserializer; everything downstream reads
  /// through sim().
  void set_sim(sim::SimulationResult value);

  /// The instrument registered under `name`, or nullptr. Use
  /// instrument_as<T>() for the concrete type.
  [[nodiscard]] const sim::Instrument* instrument(
      std::string_view name) const;

 private:
  /// const payload behind a shared_ptr: slots that alias it can never
  /// mutate each other's view, and the last owner frees it exactly once.
  std::shared_ptr<const sim::SimulationResult> sim_;
};

/// Typed instrument lookup: the WaitQueueTrace of a run is
/// `instrument_as<sim::WaitQueueTrace>(result, "wait-trace")`.
template <typename T>
const T* instrument_as(const RunResult& result, std::string_view name) {
  return dynamic_cast<const T*>(result.instrument(name));
}

/// Executes one spec: builds the gear set / power / time models and the
/// policy (via the registry), simulates, returns the result. Dispatches on
/// spec.stream — materialize-then-run (run_workload) or pull straight from
/// the source (run_stream); both are deterministic and bit-identical for
/// equal specs.
RunResult run_one(const RunSpec& spec);

/// Lower-level entry point for callers that already hold a workload (e.g.
/// hand-written job lists): applies `spec`'s machine scaling, per-job beta
/// sampling, platform models and policy to `workload`. run_one() with
/// stream off is wl::load_source + run_workload.
RunResult run_workload(wl::Workload workload, const RunSpec& spec);

/// Streaming entry point: opens spec.workload as a wl::JobStream and pulls
/// it through the simulation's lookahead window — the trace is never held
/// in memory. Machine scaling and per-job beta sampling are applied as
/// stream decorators that reproduce run_workload()'s transforms exactly.
RunResult run_stream(const RunSpec& spec);

/// Energy of `run` normalized to `baseline` (paper's Figs. 3/7/8 y-axis).
struct NormalizedEnergy {
  double computational = 1.0;  ///< Eidle = 0 panel.
  double total = 1.0;          ///< Eidle = low panel.
};
NormalizedEnergy normalized_energy(const sim::SimulationResult& run,
                                   const sim::SimulationResult& baseline);

}  // namespace bsld::report
