#include "report/experiment.hpp"

#include <cmath>
#include <sstream>

#include "pm/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bsld::report {

RunSpec RunSpec::parse(const util::Config& config) {
  RunSpec spec;
  spec.workload = wl::source_from_config(config);
  spec.size_scale = config.get_double("scale", spec.size_scale);
  spec.policy = core::policy_from_config(config);
  spec.gears = cluster::gear_set_from_config(config);
  spec.beta = config.get_double("time.beta", spec.beta);
  spec.power = power::power_config_from(config);
  if (config.contains("beta.per_job")) {
    const std::vector<double> range =
        config.get_double_list("beta.per_job", {});
    BSLD_REQUIRE(range.size() == 2,
                 "RunSpec: beta.per_job expects `low, high`");
    spec.per_job_beta = {range[0], range[1]};
  }
  spec.pm = pm::pm_from_config(config);
  spec.instruments = config.get_string_list("instruments", {});
  for (const std::string& name : spec.instruments) {
    sim::InstrumentRegistry::global().require(name);
  }
  spec.retain_jobs = config.get_bool("retain_jobs", true);
  return spec;
}

util::Config RunSpec::to_config() const {
  util::Config config;
  wl::source_to_config(workload, config);
  config.set("scale", util::config_double(size_scale));
  core::policy_to_config(policy, config);
  std::vector<double> frequencies;
  std::vector<double> voltages;
  for (const cluster::Gear& gear : gears.all()) {
    frequencies.push_back(gear.frequency_ghz);
    voltages.push_back(gear.voltage_v);
  }
  config.set("gears.frequencies_ghz", util::config_double_list(frequencies));
  config.set("gears.voltages_v", util::config_double_list(voltages));
  config.set("time.beta", util::config_double(beta));
  config.set("power.activity_ratio", util::config_double(power.activity_ratio));
  config.set("power.static_fraction_at_top",
             util::config_double(power.static_fraction_at_top));
  config.set("power.top_active_power_watts",
             util::config_double(power.top_active_power_watts));
  if (per_job_beta) {
    config.set("beta.per_job",
               util::config_double_list(
                   {per_job_beta->first, per_job_beta->second}));
  }
  pm::pm_to_config(pm, config);
  if (!instruments.empty()) {
    config.set("instruments", util::config_string_list(instruments));
  }
  if (!retain_jobs) config.set("retain_jobs", "false");
  return config;
}

const std::string& RunSpec::key() const {
  if (key_cache.value.empty()) key_cache.value = to_config().to_string();
  return key_cache.value;
}

std::string RunSpec::label() const {
  std::ostringstream os;
  os << wl::source_label(workload) << " x" << size_scale << ' '
     << core::policy_label(policy);
  if (pm.enabled()) os << " PM:" << pm::pm_label(pm);
  return os.str();
}

RunResult run_one(const RunSpec& spec) {
  // Fail fast: don't materialize the workload for a spec run_workload
  // would reject anyway.
  BSLD_REQUIRE(spec.size_scale > 0.0, "run_one(): size_scale must be positive");
  return run_workload(wl::load_source(spec.workload), spec);
}

RunResult run_workload(wl::Workload workload, const RunSpec& spec) {
  BSLD_REQUIRE(spec.size_scale > 0.0,
               "run_workload(): size_scale must be positive");

  const auto scaled_cpus = static_cast<std::int32_t>(
      std::llround(static_cast<double>(workload.cpus) * spec.size_scale));
  BSLD_REQUIRE(scaled_cpus >= 1, "run_workload(): scaled machine has no CPUs");
  // Enlarged systems keep original job sizes (paper §1: "Since our jobs are
  // rigid we have used original job sizes"); shrunken ones must clamp.
  if (scaled_cpus < workload.cpus) {
    for (wl::Job& job : workload.jobs) {
      job.size = std::min(job.size, scaled_cpus);
    }
  }

  if (spec.per_job_beta) {
    // Deterministic per-job sensitivities (future-work extension): seeded
    // from the workload source so equal specs stay bit-identical.
    util::Rng rng(wl::source_seed(spec.workload) ^ 0xbe7abe7aULL);
    for (wl::Job& job : workload.jobs) {
      job.beta = rng.uniform(spec.per_job_beta->first,
                             spec.per_job_beta->second);
    }
  }

  // The platform models are heap-allocated and co-owned by every
  // instrument handed back on the result: EnergyProbe and UtilizationTrace
  // hold references into them (the models own their GearSet by value), so
  // they must live as long as the last instrument, not just this frame.
  struct Platform {
    power::PowerModel power;
    power::BetaTimeModel time;
    Platform(power::PowerModel p, power::BetaTimeModel t)
        : power(std::move(p)), time(std::move(t)) {}
  };
  const auto platform = std::make_shared<Platform>(
      power::PowerModel(spec.gears, spec.power),
      power::BetaTimeModel(spec.gears, spec.beta));
  const auto policy = core::PolicyRegistry::global().make(spec.policy);
  // nullptr when the spec says pm = none: the simulation takes the exact
  // pre-pm code paths, keeping the baseline bit-identical.
  std::unique_ptr<pm::PowerManager> manager;
  if (spec.pm.enabled()) {
    manager = pm::PowerManagerRegistry::global().make(spec.pm,
                                                      platform->power);
  }

  sim::SimulationConfig config;
  config.cpus = scaled_cpus;
  config.retain_jobs = spec.retain_jobs;
  config.power_manager = manager.get();
  sim::Simulation simulation(workload, *policy, platform->power,
                             platform->time, config);

  // Extra views of the run's event stream, by registry name, in spec order.
  const sim::InstrumentContext context{platform->power, platform->time};
  std::vector<std::shared_ptr<sim::Instrument>> instruments;
  instruments.reserve(spec.instruments.size());
  for (const std::string& name : spec.instruments) {
    auto built = sim::InstrumentRegistry::global().make(name, context);
    // The deleter captures `platform`, extending the models' lifetime to
    // the last surviving instrument.
    instruments.emplace_back(built.release(),
                             [platform](sim::Instrument* instrument) {
                               std::default_delete<sim::Instrument>()(
                                   instrument);
                             });
    simulation.add_observer(*instruments.back());
  }

  RunResult result{spec, simulation.run(), std::move(instruments)};
  return result;
}

RunResult::RunResult(RunSpec spec_in, sim::SimulationResult sim_in,
                     std::vector<std::shared_ptr<sim::Instrument>>
                         instruments_in)
    : spec(std::move(spec_in)), instruments(std::move(instruments_in)) {
  set_sim(std::move(sim_in));
}

const sim::SimulationResult& RunResult::sim() const {
  static const sim::SimulationResult kEmpty{};
  return sim_ ? *sim_ : kEmpty;
}

void RunResult::set_sim(sim::SimulationResult value) {
  sim_ = std::make_shared<const sim::SimulationResult>(std::move(value));
}

const sim::Instrument* RunResult::instrument(std::string_view name) const {
  for (const auto& instrument : instruments) {
    if (instrument && instrument->name() == name) return instrument.get();
  }
  return nullptr;
}

NormalizedEnergy normalized_energy(const sim::SimulationResult& run,
                                   const sim::SimulationResult& baseline) {
  BSLD_REQUIRE(baseline.energy.computational_joules > 0.0 &&
                   baseline.energy.total_joules > 0.0,
               "normalized_energy(): degenerate baseline");
  return NormalizedEnergy{
      run.energy.computational_joules / baseline.energy.computational_joules,
      run.energy.total_joules / baseline.energy.total_joules};
}

}  // namespace bsld::report
