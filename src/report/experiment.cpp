#include "report/experiment.hpp"

#include <cmath>
#include <sstream>

#include "pm/registry.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "workload/stream.hpp"

namespace bsld::report {

RunSpec RunSpec::parse(const util::Config& config) {
  RunSpec spec;
  spec.workload = wl::source_from_config(config);
  spec.size_scale = config.get_double("scale", spec.size_scale);
  spec.policy = core::policy_from_config(config);
  spec.gears = cluster::gear_set_from_config(config);
  spec.beta = config.get_double("time.beta", spec.beta);
  spec.power = power::power_config_from(config);
  if (config.contains("beta.per_job")) {
    const std::vector<double> range =
        config.get_double_list("beta.per_job", {});
    BSLD_REQUIRE(range.size() == 2,
                 "RunSpec: beta.per_job expects `low, high`");
    spec.per_job_beta = {range[0], range[1]};
  }
  spec.pm = pm::pm_from_config(config);
  spec.instruments = config.get_string_list("instruments", {});
  for (const std::string& name : spec.instruments) {
    sim::InstrumentRegistry::global().require(name);
  }
  spec.retain_jobs = config.get_bool("retain_jobs", true);
  spec.stream = config.get_bool("stream", false);
  const std::int64_t cap = config.get_int("sample.cap", 0);
  BSLD_REQUIRE(cap >= 0, "RunSpec: sample.cap must be >= 0");
  spec.sample.cap = static_cast<std::uint64_t>(cap);
  const std::string mode = config.get_string("sample.mode", "decimate");
  if (mode == "decimate") {
    spec.sample.mode = util::SamplePlan::Mode::kDecimate;
  } else if (mode == "reservoir") {
    spec.sample.mode = util::SamplePlan::Mode::kReservoir;
  } else {
    throw Error("RunSpec: unknown sample.mode `" + mode +
                "` (expected decimate or reservoir)");
  }
  // Seeds use the full uint64 range, which get_int cannot represent;
  // parse the raw text instead so every saved seed replays.
  const std::string seed_text = config.get_string("sample.seed", "0");
  const std::optional<std::uint64_t> seed = util::parse_uint(seed_text);
  BSLD_REQUIRE(seed.has_value(),
               "RunSpec: sample.seed is not a 64-bit unsigned integer");
  spec.sample.seed = *seed;
  return spec;
}

util::Config RunSpec::to_config() const {
  util::Config config;
  wl::source_to_config(workload, config);
  config.set("scale", util::config_double(size_scale));
  core::policy_to_config(policy, config);
  std::vector<double> frequencies;
  std::vector<double> voltages;
  for (const cluster::Gear& gear : gears.all()) {
    frequencies.push_back(gear.frequency_ghz);
    voltages.push_back(gear.voltage_v);
  }
  config.set("gears.frequencies_ghz", util::config_double_list(frequencies));
  config.set("gears.voltages_v", util::config_double_list(voltages));
  config.set("time.beta", util::config_double(beta));
  config.set("power.activity_ratio", util::config_double(power.activity_ratio));
  config.set("power.static_fraction_at_top",
             util::config_double(power.static_fraction_at_top));
  config.set("power.top_active_power_watts",
             util::config_double(power.top_active_power_watts));
  if (per_job_beta) {
    config.set("beta.per_job",
               util::config_double_list(
                   {per_job_beta->first, per_job_beta->second}));
  }
  pm::pm_to_config(pm, config);
  if (!instruments.empty()) {
    config.set("instruments", util::config_string_list(instruments));
  }
  if (!retain_jobs) config.set("retain_jobs", "false");
  if (stream) config.set("stream", "true");
  if (sample.cap != 0) config.set("sample.cap", std::to_string(sample.cap));
  if (sample.mode != util::SamplePlan::Mode::kDecimate) {
    config.set("sample.mode", "reservoir");
  }
  if (sample.seed != 0) config.set("sample.seed", std::to_string(sample.seed));
  return config;
}

const std::string& RunSpec::key() const {
  if (key_cache.value.empty()) key_cache.value = to_config().to_string();
  return key_cache.value;
}

std::string RunSpec::label() const {
  std::ostringstream os;
  os << wl::source_label(workload) << " x" << size_scale << ' '
     << core::policy_label(policy);
  if (pm.enabled()) os << " PM:" << pm::pm_label(pm);
  return os.str();
}

namespace {

// The platform models are heap-allocated and co-owned by every instrument
// handed back on the result: EnergyProbe and UtilizationTrace hold
// references into them (the models own their GearSet by value), so they
// must live as long as the last instrument, not just one run_* frame.
struct Platform {
  power::PowerModel power;
  power::BetaTimeModel time;
  Platform(power::PowerModel p, power::BetaTimeModel t)
      : power(std::move(p)), time(std::move(t)) {}
};

/// Everything a run needs besides its job source — shared verbatim by the
/// materialized and streaming paths so the two cannot drift.
struct RunAssembly {
  std::shared_ptr<Platform> platform;
  std::unique_ptr<core::SchedulingPolicy> policy;
  std::unique_ptr<pm::PowerManager> manager;
  sim::SimulationConfig config;
  std::vector<std::shared_ptr<sim::Instrument>> instruments;
};

RunAssembly assemble_run(const RunSpec& spec, std::int32_t scaled_cpus) {
  RunAssembly parts;
  parts.platform = std::make_shared<Platform>(
      power::PowerModel(spec.gears, spec.power),
      power::BetaTimeModel(spec.gears, spec.beta));
  parts.policy = core::PolicyRegistry::global().make(spec.policy);
  // nullptr when the spec says pm = none: the simulation takes the exact
  // pre-pm code paths, keeping the baseline bit-identical.
  if (spec.pm.enabled()) {
    parts.manager = pm::PowerManagerRegistry::global().make(
        spec.pm, parts.platform->power);
  }
  parts.config.cpus = scaled_cpus;
  parts.config.retain_jobs = spec.retain_jobs;
  parts.config.power_manager = parts.manager.get();

  // Extra views of the run's event stream, by registry name, in spec order.
  const sim::InstrumentContext context{parts.platform->power,
                                       parts.platform->time, spec.sample};
  parts.instruments.reserve(spec.instruments.size());
  const std::shared_ptr<Platform> platform = parts.platform;
  for (const std::string& name : spec.instruments) {
    auto built = sim::InstrumentRegistry::global().make(name, context);
    // The deleter captures `platform`, extending the models' lifetime to
    // the last surviving instrument.
    parts.instruments.emplace_back(built.release(),
                                   [platform](sim::Instrument* instrument) {
                                     std::default_delete<sim::Instrument>()(
                                         instrument);
                                   });
  }
  return parts;
}

/// Streaming counterpart of run_workload()'s eager per-job transforms:
/// clamps sizes for a shrunken machine and draws per-job betas, one job at
/// a time. Bit-identical to the materialized loops because both consume
/// the rng sequentially in trace order.
class ShapedStream final : public wl::JobStream {
 public:
  ShapedStream(wl::JobStream& inner, std::int32_t clamp_size,
               std::optional<std::pair<double, double>> beta_range,
               std::uint64_t beta_seed)
      : inner_(&inner),
        clamp_(clamp_size),
        beta_(beta_range),
        rng_(beta_seed) {}

  std::optional<wl::Job> next() override {
    std::optional<wl::Job> job = inner_->next();
    if (!job.has_value()) return job;
    if (clamp_ > 0) job->size = std::min(job->size, clamp_);
    if (beta_) job->beta = rng_.uniform(beta_->first, beta_->second);
    return job;
  }
  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] std::int32_t cpus() const override { return inner_->cpus(); }
  [[nodiscard]] std::int64_t size_hint() const override {
    return inner_->size_hint();
  }

 private:
  wl::JobStream* inner_;
  std::int32_t clamp_;  ///< 0 = no clamping (machine not shrunken).
  std::optional<std::pair<double, double>> beta_;
  util::Rng rng_;
};

}  // namespace

RunResult run_one(const RunSpec& spec) {
  // Fail fast: don't open the workload for a spec the run would reject
  // anyway.
  BSLD_REQUIRE(spec.size_scale > 0.0, "run_one(): size_scale must be positive");
  if (spec.stream) return run_stream(spec);
  return run_workload(wl::load_source(spec.workload), spec);
}

RunResult run_workload(wl::Workload workload, const RunSpec& spec) {
  BSLD_REQUIRE(spec.size_scale > 0.0,
               "run_workload(): size_scale must be positive");

  const auto scaled_cpus = static_cast<std::int32_t>(
      std::llround(static_cast<double>(workload.cpus) * spec.size_scale));
  BSLD_REQUIRE(scaled_cpus >= 1, "run_workload(): scaled machine has no CPUs");
  // Enlarged systems keep original job sizes (paper §1: "Since our jobs are
  // rigid we have used original job sizes"); shrunken ones must clamp.
  if (scaled_cpus < workload.cpus) {
    for (wl::Job& job : workload.jobs) {
      job.size = std::min(job.size, scaled_cpus);
    }
  }

  if (spec.per_job_beta) {
    // Deterministic per-job sensitivities (future-work extension): seeded
    // from the workload source so equal specs stay bit-identical.
    util::Rng rng(wl::source_seed(spec.workload) ^ 0xbe7abe7aULL);
    for (wl::Job& job : workload.jobs) {
      job.beta = rng.uniform(spec.per_job_beta->first,
                             spec.per_job_beta->second);
    }
  }

  RunAssembly parts = assemble_run(spec, scaled_cpus);
  sim::Simulation simulation(workload, *parts.policy, parts.platform->power,
                             parts.platform->time, parts.config);
  for (const auto& instrument : parts.instruments) {
    simulation.add_observer(*instrument);
  }

  RunResult result{spec, simulation.run(), std::move(parts.instruments)};
  return result;
}

RunResult run_stream(const RunSpec& spec) {
  BSLD_REQUIRE(spec.size_scale > 0.0,
               "run_stream(): size_scale must be positive");

  const std::unique_ptr<wl::JobStream> source = wl::open_stream(spec.workload);
  const auto scaled_cpus = static_cast<std::int32_t>(
      std::llround(static_cast<double>(source->cpus()) * spec.size_scale));
  BSLD_REQUIRE(scaled_cpus >= 1, "run_stream(): scaled machine has no CPUs");

  const std::int32_t clamp = scaled_cpus < source->cpus() ? scaled_cpus : 0;
  ShapedStream shaped(*source, clamp, spec.per_job_beta,
                      wl::source_seed(spec.workload) ^ 0xbe7abe7aULL);

  RunAssembly parts = assemble_run(spec, scaled_cpus);
  sim::Simulation simulation(shaped, *parts.policy, parts.platform->power,
                             parts.platform->time, parts.config);
  for (const auto& instrument : parts.instruments) {
    simulation.add_observer(*instrument);
  }

  RunResult result{spec, simulation.run(), std::move(parts.instruments)};
  return result;
}

RunResult::RunResult(RunSpec spec_in, sim::SimulationResult sim_in,
                     std::vector<std::shared_ptr<sim::Instrument>>
                         instruments_in)
    : spec(std::move(spec_in)), instruments(std::move(instruments_in)) {
  set_sim(std::move(sim_in));
}

const sim::SimulationResult& RunResult::sim() const {
  static const sim::SimulationResult kEmpty{};
  return sim_ ? *sim_ : kEmpty;
}

void RunResult::set_sim(sim::SimulationResult value) {
  sim_ = std::make_shared<const sim::SimulationResult>(std::move(value));
}

const sim::Instrument* RunResult::instrument(std::string_view name) const {
  for (const auto& instrument : instruments) {
    if (instrument && instrument->name() == name) return instrument.get();
  }
  return nullptr;
}

NormalizedEnergy normalized_energy(const sim::SimulationResult& run,
                                   const sim::SimulationResult& baseline) {
  BSLD_REQUIRE(baseline.energy.computational_joules > 0.0 &&
                   baseline.energy.total_joules > 0.0,
               "normalized_energy(): degenerate baseline");
  return NormalizedEnergy{
      run.energy.computational_joules / baseline.energy.computational_joules,
      run.energy.total_joules / baseline.energy.total_joules};
}

}  // namespace bsld::report
