#include "report/experiment.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bsld::report {

namespace {
const char* base_name(core::BasePolicy base) {
  switch (base) {
    case core::BasePolicy::kEasy: return "EASY";
    case core::BasePolicy::kFcfs: return "FCFS";
    case core::BasePolicy::kConservative: return "CONS";
  }
  return "?";
}
}  // namespace

std::string RunSpec::label() const {
  std::ostringstream os;
  os << wl::archive_name(archive) << " x" << size_scale << ' '
     << base_name(base);
  if (dvfs) {
    os << " BSLD<=" << dvfs->bsld_threshold << ",WQ<=";
    if (dvfs->wq_threshold) os << *dvfs->wq_threshold;
    else os << "NO";
  } else {
    os << " noDVFS";
  }
  return os.str();
}

RunResult run_one(const RunSpec& spec) {
  BSLD_REQUIRE(spec.size_scale > 0.0, "run_one(): size_scale must be positive");

  wl::Workload workload = wl::make_archive_workload(spec.archive, spec.num_jobs);
  const auto scaled_cpus = static_cast<std::int32_t>(
      std::llround(static_cast<double>(workload.cpus) * spec.size_scale));
  BSLD_REQUIRE(scaled_cpus >= 1, "run_one(): scaled machine has no CPUs");
  // Enlarged systems keep original job sizes (paper §1: "Since our jobs are
  // rigid we have used original job sizes"); shrunken ones must clamp.
  if (scaled_cpus < workload.cpus) {
    for (wl::Job& job : workload.jobs) {
      job.size = std::min(job.size, scaled_cpus);
    }
  }

  if (spec.per_job_beta) {
    // Deterministic per-job sensitivities (future-work extension): seeded
    // from the archive so equal specs stay bit-identical.
    util::Rng rng(wl::archive_seed(spec.archive) ^ 0xbe7abe7aULL);
    for (wl::Job& job : workload.jobs) {
      job.beta = rng.uniform(spec.per_job_beta->first,
                             spec.per_job_beta->second);
    }
  }

  const cluster::GearSet gears = cluster::paper_gear_set();
  const power::PowerModel power_model(gears, spec.power);
  const power::BetaTimeModel time_model(gears, spec.beta);
  const auto policy =
      spec.raise ? core::make_dynamic_raise_policy(spec.dvfs, *spec.raise,
                                                   spec.selector)
                 : core::make_policy(spec.base, spec.dvfs, spec.selector);

  sim::SimulationConfig config;
  config.cpus = scaled_cpus;
  RunResult result{spec, sim::run_simulation(workload, *policy, power_model,
                                             time_model, config)};
  return result;
}

NormalizedEnergy normalized_energy(const sim::SimulationResult& run,
                                   const sim::SimulationResult& baseline) {
  BSLD_REQUIRE(baseline.energy.computational_joules > 0.0 &&
                   baseline.energy.total_joules > 0.0,
               "normalized_energy(): degenerate baseline");
  return NormalizedEnergy{
      run.energy.computational_joules / baseline.energy.computational_joules,
      run.energy.total_joules / baseline.energy.total_joules};
}

}  // namespace bsld::report
