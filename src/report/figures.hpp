/// \file figures.hpp
/// \brief The paper's exact experiment grids and shared table formatting,
/// so each bench binary is a thin wrapper around one figure/table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "report/experiment.hpp"
#include "report/sweep.hpp"

namespace bsld::report {

/// BSLDthreshold values evaluated by the paper (§5.1).
const std::vector<double>& paper_bsld_thresholds();

/// WQthreshold values: 0, 4, 16, and NO LIMIT (nullopt).
const std::vector<std::optional<std::int64_t>>& paper_wq_thresholds();

/// System-size increases of §5.2 as scale factors (1.0 ... 2.25).
const std::vector<double>& paper_size_scales();

/// "0", "4", "16", "NO".
std::string wq_label(const std::optional<std::int64_t>& wq);

/// Grid of §5.1 (Figs. 3-5): every archive x BSLDthr x WQthr, plus one
/// no-DVFS baseline per archive (appended at the end, one per archive).
struct OriginalSizeGrid {
  std::vector<RunSpec> dvfs_specs;      ///< archive-major, then BSLD, then WQ.
  std::vector<RunSpec> baseline_specs;  ///< one per archive, same order.
};
OriginalSizeGrid original_size_grid(std::int32_t num_jobs = 5000);

/// Grid of §5.2 (Figs. 7-9): every archive x size scale for one WQ setting
/// (BSLDthreshold = 2), plus the original-size no-DVFS baselines.
struct EnlargedGrid {
  std::vector<RunSpec> dvfs_specs;      ///< archive-major, then size.
  std::vector<RunSpec> baseline_specs;  ///< one per archive (scale 1.0).
};
EnlargedGrid enlarged_grid(const std::optional<std::int64_t>& wq_threshold,
                           std::int32_t num_jobs = 5000);

/// Executes both parts of a grid in one parallel batch and splits results.
struct GridResults {
  std::vector<RunResult> dvfs;
  std::vector<RunResult> baselines;
};
GridResults run_grid(const std::vector<RunSpec>& dvfs_specs,
                     const std::vector<RunSpec>& baseline_specs,
                     unsigned threads = 0);

/// Baseline lookup: the baseline result for `archive` inside a GridResults.
const RunResult& baseline_for(const GridResults& results, wl::Archive archive);

}  // namespace bsld::report
