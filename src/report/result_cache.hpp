/// \file result_cache.hpp
/// \brief Persistent, content-addressed storage of completed runs.
///
/// The paper's figures are grids of hundreds of (archive x policy x
/// threshold x gear) runs, re-executed incrementally as studies evolve.
/// Runs are deterministic (equal specs yield identical results), so a run
/// executed once never needs executing again: the ResultCache persists each
/// RunResult — SimulationResult aggregates, the per-job outcome vector when
/// retained, and every attached instrument's rendered output — under the
/// FNV-1a hash of RunSpec::key(), and report::SweepRunner consults it
/// before simulating (warm sweeps are pure disk reads).
///
/// On-disk layout (one file per run, human-readable):
///
///   <root>/v<epoch>/<hh>/<hash16>.entry
///
/// where <epoch> is kSchemaEpoch (bumped whenever the entry format or the
/// simulation's numeric behaviour changes — stale epochs are simply never
/// read and are reclaimed by evict_stale_epochs()), <hh> the first two hex
/// digits of the hash (fan-out), and <hash16> the full 16-digit hash of
/// the spec key. Every entry embeds the full spec key and is verified on
/// read, so hash collisions degrade to cache misses.
///
/// Guarantees:
///  * atomic publication — entries are written tmp + rename
///    (util::atomic_write_file), so readers never see a partial entry;
///  * corruption tolerance — a truncated, tampered or wrong-epoch entry is
///    treated as a miss (and dropped), never an error: the run is simply
///    recomputed and the entry rewritten;
///  * concurrent writers — same-entry writers serialize through a
///    util::FileLock sidecar, and cross-process last-writer-wins is safe
///    because equal keys hold equal content.
///
/// Cache hits reconstruct instruments as CachedInstrument: name, row count
/// and rendered CSV are preserved byte-for-byte (sink output of a warm
/// sweep is byte-identical to the cold sweep), while typed accessors
/// (instrument_as<T>) intentionally return nullptr — a cached run replays
/// measurements, it does not re-measure.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "report/experiment.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::report {

/// A replayed instrument loaded from a cache entry: carries the captured
/// name, row count and rendered CSV of the original instrument, and
/// ignores the (never-delivered) observer hooks.
class CachedInstrument final : public sim::Instrument {
 public:
  CachedInstrument(std::string name, std::size_t rows, std::string csv)
      : name_(std::move(name)), rows_(rows), csv_(std::move(csv)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return rows_; }

  /// The stored CSV payload (what write_csv emits).
  [[nodiscard]] const std::string& csv() const { return csv_; }

 private:
  std::string name_;
  std::size_t rows_;
  std::string csv_;
};

/// Content-addressed on-disk store of completed RunResults.
///
/// Thread-safe: lookup/store may be called concurrently from sweep worker
/// threads (and from multiple processes sharing one root).
class ResultCache {
 public:
  /// Entry format / simulation-behaviour epoch. Bump whenever serialized
  /// fields change meaning, fields are added or removed, or the simulator's
  /// numeric output changes for identical specs — old entries then become
  /// invisible (and reclaimable) instead of silently wrong.
  static constexpr int kSchemaEpoch = 1;

  /// Process-lifetime counters (not persisted).
  struct Counters {
    std::size_t hits = 0;     ///< lookup() served from disk.
    std::size_t misses = 0;   ///< lookup() found nothing usable.
    std::size_t stores = 0;   ///< store() wrote an entry.
    std::size_t corrupt = 0;  ///< Entries dropped as unreadable (subset of
                              ///< misses).
  };

  /// What a directory scan of the store sees.
  struct DiskStats {
    std::size_t entries = 0;        ///< Current-epoch entries.
    std::uintmax_t bytes = 0;       ///< Their total size.
    std::size_t stale_entries = 0;  ///< Entries under other epochs.
  };

  /// Opens (and lazily creates) the store rooted at `root`.
  explicit ResultCache(std::filesystem::path root);

  /// The conventional store location: $BSLD_CACHE_DIR if set, else
  /// $XDG_CACHE_HOME/bsldsim, else $HOME/.cache/bsldsim, else
  /// ./.bsldsim-cache.
  [[nodiscard]] static std::filesystem::path default_root();

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  /// Where `spec`'s entry lives (exists or not) — exposed for diagnostics
  /// and corruption tests.
  [[nodiscard]] std::filesystem::path entry_path(const RunSpec& spec) const;

  /// Returns the cached result of `spec`, or std::nullopt when absent or
  /// unreadable (truncated, tampered, wrong epoch, hash collision — all
  /// count as misses; unreadable entries are dropped). Never throws for
  /// bad entries. The returned RunResult carries `spec` itself.
  [[nodiscard]] std::optional<RunResult> lookup(const RunSpec& spec)
      BSLD_EXCLUDES(mutex_);

  /// Persists `result` under its spec's key (atomic replace; same-entry
  /// writers serialize on a lock file). Throws bsld::Error when the store
  /// cannot be written (e.g. disk full) — write failures are loud, read
  /// failures are not.
  void store(const RunResult& result) BSLD_EXCLUDES(mutex_);

  [[nodiscard]] Counters counters() const BSLD_EXCLUDES(mutex_);

  /// Scans the store. Purely informational; safe concurrently with use.
  [[nodiscard]] DiskStats disk_stats() const;

  /// Removes every entry of every epoch. Returns entries removed.
  std::size_t clear();

  /// Removes entries persisted under epochs != kSchemaEpoch (left behind
  /// by older binaries). Returns entries removed.
  std::size_t evict_stale_epochs();

  /// Evicts oldest-first (by write time) until the current epoch holds at
  /// most `max_bytes` of entries. Returns entries removed.
  std::size_t trim(std::uintmax_t max_bytes);

  /// Copies entries present under `other_root` (current epoch only) but
  /// absent here — the merge step for sharded sweeps run against separate
  /// cache directories. Returns entries copied.
  std::size_t absorb(const std::filesystem::path& other_root);

 private:
  [[nodiscard]] std::filesystem::path epoch_dir() const;
  void drop_entry(const std::filesystem::path& path);
  /// Shared walk behind clear() / evict_stale_epochs().
  std::size_t remove_epochs(bool include_current);

  std::filesystem::path root_;  ///< Immutable after construction.
  mutable util::Mutex mutex_;
  Counters counters_ BSLD_GUARDED_BY(mutex_);
};

}  // namespace bsld::report
