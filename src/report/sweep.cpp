#include "report/sweep.hpp"

#include <exception>
#include <string_view>
#include <utility>

#include "report/result_cache.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bsld::report {

unsigned shard_of(const RunSpec& spec, unsigned shard_count) {
  BSLD_REQUIRE(shard_count > 0, "shard_of(): shard_count must be positive");
  if (shard_count == 1) return 0;
  return static_cast<unsigned>(util::fnv1a64(spec.key()) % shard_count);
}

namespace {

/// Within-batch deduplication shared by run() and submit(): `unique[u]`
/// is the representative spec index, `fanout[u]` every slot its result
/// serves.
void dedup_specs(const std::vector<RunSpec>& specs, bool dedup,
                 std::vector<std::size_t>& unique,
                 std::vector<std::vector<std::size_t>>& fanout) {
  if (dedup) {
    // Views into the specs' memoized key strings: stable for the duration
    // of this call, so the map never copies the (long) key text.
    std::unordered_map<std::string_view, std::size_t> by_key;
    by_key.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto [it, inserted] = by_key.emplace(specs[i].key(), unique.size());
      if (inserted) {
        unique.push_back(i);
        fanout.emplace_back();
      }
      fanout[it->second].push_back(i);
    }
  } else {
    unique.resize(specs.size());
    fanout.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      unique[i] = i;
      fanout[i] = {i};
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Batch state behind a SubmitHandle.
// ---------------------------------------------------------------------------

struct SweepRunner::SubmitHandle::Batch {
  util::Mutex mutex;
  util::CondVar done_cv;  ///< Signals unresolved reaching zero.
  std::vector<RunResult> results
      BSLD_GUARDED_BY(mutex);  ///< input order; specs pre-filled.
  Progress progress BSLD_GUARDED_BY(mutex);
  /// Slots still awaiting a result/error.
  std::size_t unresolved BSLD_GUARDED_BY(mutex) = 0;
  std::exception_ptr error BSLD_GUARDED_BY(mutex);
  /// Invoked only under `mutex` (delivery is serialized per batch).
  ResultCallback on_result BSLD_GUARDED_BY(mutex);
  /// run()'s progress-callback channel: invoked once per distinct spec's
  /// delivery group, after the slots and counters are in. Same locking
  /// discipline as on_result.
  ProgressCallback on_group BSLD_GUARDED_BY(mutex);

  /// Pre-fills one result slot per spec. Constructors run before the
  /// batch is shared, so the guarded members are safely written bare.
  Batch(const std::vector<RunSpec>& specs, ResultCallback callback,
        ProgressCallback group)
      : results(specs.size()), unresolved(specs.size()),
        on_result(std::move(callback)), on_group(std::move(group)) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i].spec = specs[i];
    }
    progress.total = specs.size();
  }

  /// How the slots of one distinct spec got their result.
  enum class Served { kExecuted, kCacheHit, kAttached, kShardSkipped };

  void deliver(const std::vector<std::size_t>& slots, const RunResult& result,
               Served served) BSLD_EXCLUDES(mutex) {
    const util::ScopedLock lock(mutex);
    for (const std::size_t slot : slots) {
      RunSpec spec = std::move(results[slot].spec);
      results[slot] = result;
      results[slot].spec = std::move(spec);  // slot keeps its own spec.
    }
    switch (served) {
      case Served::kExecuted:
        progress.completed += slots.size();
        progress.executed += 1;
        progress.deduplicated += slots.size() - 1;
        break;
      case Served::kCacheHit:
        progress.completed += slots.size();
        progress.cache_hits += 1;
        progress.deduplicated += slots.size() - 1;
        break;
      case Served::kAttached:
        // Every slot rode on a simulation another batch owns.
        progress.completed += slots.size();
        progress.deduplicated += slots.size();
        break;
      case Served::kShardSkipped:  // foreign slots never complete.
        progress.shard_skipped += slots.size();
        break;
    }
    unresolved -= slots.size();
    if ((on_result || on_group) && served != Served::kShardSkipped) {
      // A throwing callback must not escape a pool worker (std::terminate
      // would take the whole daemon down); it surfaces at wait() instead.
      try {
        if (on_result) {
          for (const std::size_t slot : slots) {
            on_result(slot, results[slot]);
          }
        }
        if (on_group) on_group(progress, results[slots.front()].spec);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (unresolved == 0) done_cv.notify_all();
  }

  void deliver_error(const std::vector<std::size_t>& slots,
                     std::exception_ptr eptr) BSLD_EXCLUDES(mutex) {
    const util::ScopedLock lock(mutex);
    if (!error) error = std::move(eptr);
    unresolved -= slots.size();
    if (unresolved == 0) done_cv.notify_all();
  }
};

std::vector<RunResult> SweepRunner::SubmitHandle::wait() {
  BSLD_REQUIRE(batch_ != nullptr, "SubmitHandle: empty handle");
  const util::ScopedLock lock(batch_->mutex);
  while (batch_->unresolved != 0) batch_->done_cv.wait(batch_->mutex);
  if (batch_->error) std::rethrow_exception(batch_->error);
  return std::move(batch_->results);
}

SweepRunner::Progress SweepRunner::SubmitHandle::progress() const {
  BSLD_REQUIRE(batch_ != nullptr, "SubmitHandle: empty handle");
  const util::ScopedLock lock(batch_->mutex);
  return batch_->progress;
}

// ---------------------------------------------------------------------------
// Persistent pool.
// ---------------------------------------------------------------------------

struct SweepRunner::PendingRun {
  RunSpec spec;
  struct Subscriber {
    std::shared_ptr<SubmitHandle::Batch> batch;
    std::vector<std::size_t> slots;
    bool owner = false;  ///< The batch that enqueued the simulation.
  };
  /// Guarded by the owning runner's pool_mutex_ (a nested struct cannot
  /// name the outer instance's member in BSLD_GUARDED_BY; every access
  /// below is inside a ScopedLock(pool_mutex_) block).
  std::vector<Subscriber> subscribers;
};

SweepRunner::SweepRunner(Options options) : options_(options) {}

SweepRunner::~SweepRunner() { shutdown(); }

void SweepRunner::add_sink(ResultSink& sink) { sinks_.push_back(&sink); }

void SweepRunner::on_progress(ProgressCallback callback) {
  callback_ = std::move(callback);
}

SweepRunner::Progress SweepRunner::progress() const {
  const util::ScopedLock lock(progress_mutex_);
  return progress_;
}

void SweepRunner::start_pool_locked() {
  if (!workers_.empty()) return;
  unsigned threads = options_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Defense against a wild Options::threads (e.g. a negative CLI value
  // cast to unsigned): simulation workers beyond a few thousand only
  // exhaust the process, never help.
  threads = std::min(threads, 4096u);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void SweepRunner::worker_loop() {
  while (true) {
    std::shared_ptr<PendingRun> task;
    {
      const util::ScopedLock lock(pool_mutex_);
      while (!stopping_ && queue_.empty()) pool_cv_.wait(pool_mutex_);
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }

    RunResult result;
    std::exception_ptr error;
    bool from_cache = false;
    try {
      // Re-check the cache: the entry may have been stored between the
      // submitter's miss and this worker picking the task up (e.g. by a
      // peer process sharing the store).
      if (options_.cache) {
        if (std::optional<RunResult> cached = options_.cache->lookup(task->spec)) {
          result = std::move(*cached);
          from_cache = true;
        }
      }
      if (!from_cache) {
        result = run_one(task->spec);
        if (options_.cache) options_.cache->store(result);
      }
    } catch (...) {
      error = std::current_exception();
    }

    std::vector<PendingRun::Subscriber> subscribers;
    {
      // Unpublish before fan-out: submitters from here on either hit the
      // cache (stored above) or enqueue a fresh task.
      const util::ScopedLock lock(pool_mutex_);
      inflight_.erase(task->spec.key());
      subscribers = std::move(task->subscribers);
    }
    for (const PendingRun::Subscriber& subscriber : subscribers) {
      if (error) {
        subscriber.batch->deliver_error(subscriber.slots, error);
      } else {
        using Served = SubmitHandle::Batch::Served;
        const Served served =
            !subscriber.owner ? Served::kAttached
            : from_cache      ? Served::kCacheHit
                              : Served::kExecuted;
        subscriber.batch->deliver(subscriber.slots, result, served);
      }
    }
  }
}

SweepRunner::SubmitHandle SweepRunner::submit(
    const std::vector<RunSpec>& specs, ResultCallback on_result) {
  return submit_impl(specs, std::move(on_result), {});
}

SweepRunner::SubmitHandle SweepRunner::submit_impl(
    const std::vector<RunSpec>& specs, ResultCallback on_result,
    ProgressCallback on_group) {
  BSLD_REQUIRE(options_.shard_count > 0,
               "SweepRunner: shard_count must be positive");
  BSLD_REQUIRE(options_.shard_index < options_.shard_count,
               "SweepRunner: shard_index must be < shard_count");

  auto batch = std::make_shared<SubmitHandle::Batch>(
      specs, std::move(on_result), std::move(on_group));

  SubmitHandle handle;
  handle.batch_ = batch;
  if (specs.empty()) return handle;

  std::vector<std::size_t> unique;
  std::vector<std::vector<std::size_t>> fanout;
  dedup_specs(specs, options_.dedup, unique, fanout);

  // Never throw once a slot may have been enqueued: an exception here
  // would unwind the submitter while queued tasks still reference its
  // on_result captures (shutdown() drains the queue and would invoke a
  // dangling callback). Failures — including submit-after-shutdown —
  // resolve the affected slots as batch errors and surface at wait(),
  // which the submitter always reaches.
  using Served = SubmitHandle::Batch::Served;
  for (std::size_t u = 0; u < unique.size(); ++u) {
    const RunSpec& spec = specs[unique[u]];
    try {
      if (options_.shard_count > 1 &&
          shard_of(spec, options_.shard_count) != options_.shard_index) {
        batch->deliver(fanout[u], RunResult{}, Served::kShardSkipped);
        continue;
      }
      // Warm path: answered on this thread, no pool involvement.
      if (options_.cache) {
        if (std::optional<RunResult> cached = options_.cache->lookup(spec)) {
          batch->deliver(fanout[u], *cached, Served::kCacheHit);
          continue;
        }
      }
      {
        const util::ScopedLock lock(pool_mutex_);
        BSLD_REQUIRE(!stopping_, "SweepRunner: submit() after shutdown()");
        start_pool_locked();
        if (options_.dedup) {
          const auto it = inflight_.find(spec.key());
          if (it != inflight_.end()) {
            // Coalesce with the identical spec another batch is running.
            it->second->subscribers.push_back({batch, fanout[u], false});
            continue;
          }
        }
        auto task = std::make_shared<PendingRun>();
        task->spec = spec;
        task->subscribers.push_back({batch, fanout[u], true});
        if (options_.dedup) inflight_.emplace(spec.key(), task);
        queue_.push_back(std::move(task));
      }
      pool_cv_.notify_one();
    } catch (...) {
      batch->deliver_error(fanout[u], std::current_exception());
    }
  }
  return handle;
}

void SweepRunner::shutdown() {
  std::vector<std::jthread> workers;
  {
    const util::ScopedLock lock(pool_mutex_);
    stopping_ = true;
    workers = std::move(workers_);
    workers_.clear();
  }
  pool_cv_.notify_all();
  workers.clear();  // joins; workers drain the queue first.
}

// ---------------------------------------------------------------------------
// One-shot batch API.
// ---------------------------------------------------------------------------

std::vector<RunResult> SweepRunner::run(const std::vector<RunSpec>& specs) {
  // One batch through the same persistent pool submit() feeds: registered
  // sinks fan out per slot, the progress callback fires once per distinct
  // completed spec. Both hooks run inside the batch's delivery lock, so
  // their view is serialized exactly as before the collapse.
  ResultCallback deliver;
  if (!sinks_.empty()) {
    deliver = [this](std::size_t index, const RunResult& result) {
      for (ResultSink* sink : sinks_) sink->on_result(index, result);
    };
  }
  SubmitHandle handle = submit_impl(specs, std::move(deliver), callback_);

  std::vector<RunResult> results;
  std::exception_ptr error;
  try {
    results = handle.wait();
  } catch (...) {
    error = std::current_exception();
  }
  {
    // run()'s counters stay pollable on the runner itself — snapshot the
    // batch's progress even when it drained into an error.
    const Progress snapshot = handle.progress();
    const util::ScopedLock lock(progress_mutex_);
    progress_ = snapshot;
  }
  if (error) std::rethrow_exception(error);
  for (ResultSink* sink : sinks_) sink->on_done(specs.size());
  return results;
}

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads) {
  SweepRunner::Options options;
  options.threads = threads;
  return SweepRunner(options).run(specs);
}

}  // namespace bsld::report
