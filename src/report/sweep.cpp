#include "report/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "report/result_cache.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bsld::report {

unsigned shard_of(const RunSpec& spec, unsigned shard_count) {
  BSLD_REQUIRE(shard_count > 0, "shard_of(): shard_count must be positive");
  if (shard_count == 1) return 0;
  return static_cast<unsigned>(util::fnv1a64(spec.key()) % shard_count);
}

SweepRunner::SweepRunner(Options options) : options_(options) {}

void SweepRunner::add_sink(ResultSink& sink) { sinks_.push_back(&sink); }

void SweepRunner::on_progress(ProgressCallback callback) {
  callback_ = std::move(callback);
}

std::vector<RunResult> SweepRunner::run(const std::vector<RunSpec>& specs) {
  BSLD_REQUIRE(options_.shard_count > 0,
               "SweepRunner: shard_count must be positive");
  BSLD_REQUIRE(options_.shard_index < options_.shard_count,
               "SweepRunner: shard_index must be < shard_count");
  progress_ = Progress{};
  progress_.total = specs.size();

  std::vector<RunResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) results[i].spec = specs[i];
  if (specs.empty()) {
    for (ResultSink* sink : sinks_) sink->on_done(0);
    return results;
  }

  // Distinct simulations: `unique[u]` is the representative spec index,
  // `fanout[u]` every grid slot its result serves.
  std::vector<std::size_t> unique;
  std::vector<std::vector<std::size_t>> fanout;
  if (options_.dedup) {
    std::unordered_map<std::string, std::size_t> by_key;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const auto [it, inserted] = by_key.emplace(specs[i].key(), unique.size());
      if (inserted) {
        unique.push_back(i);
        fanout.emplace_back();
      }
      fanout[it->second].push_back(i);
    }
  } else {
    unique.resize(specs.size());
    fanout.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      unique[i] = i;
      fanout[i] = {i};
    }
  }

  // Shard partition: this process only executes the distinct specs the
  // stable key hash assigns to shard_index; the rest are someone else's.
  std::vector<std::size_t> owned;
  owned.reserve(unique.size());
  for (std::size_t u = 0; u < unique.size(); ++u) {
    if (options_.shard_count == 1 ||
        shard_of(specs[unique[u]], options_.shard_count) ==
            options_.shard_index) {
      owned.push_back(u);
    } else {
      progress_.shard_skipped += fanout[u].size();
    }
  }
  if (owned.empty()) {
    for (ResultSink* sink : sinks_) sink->on_done(specs.size());
    return results;
  }

  unsigned threads = options_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(owned.size(), 1)));

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex mutex;  // results fan-out, progress, sinks, first_error.

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t o = next.fetch_add(1);
          if (o >= owned.size()) return;
          const std::size_t u = owned[o];
          const RunSpec& spec = specs[unique[u]];
          RunResult result;
          bool from_cache = false;
          try {
            if (options_.cache) {
              if (std::optional<RunResult> cached =
                      options_.cache->lookup(spec)) {
                result = std::move(*cached);
                from_cache = true;
              }
            }
            if (!from_cache) {
              result = run_one(spec);
              if (options_.cache) options_.cache->store(result);
            }
          } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
          const std::lock_guard<std::mutex> lock(mutex);
          for (const std::size_t slot : fanout[u]) {
            results[slot] = result;
          }
          if (from_cache) {
            progress_.cache_hits += 1;
          } else {
            progress_.executed += 1;
          }
          progress_.completed += fanout[u].size();
          progress_.deduplicated += fanout[u].size() - 1;
          try {
            for (ResultSink* sink : sinks_) {
              for (const std::size_t slot : fanout[u]) {
                sink->on_result(slot, results[slot]);
              }
            }
            if (callback_) callback_(progress_, spec);
          } catch (...) {
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // join

  if (first_error) std::rethrow_exception(first_error);
  for (ResultSink* sink : sinks_) sink->on_done(specs.size());
  return results;
}

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads) {
  SweepRunner::Options options;
  options.threads = threads;
  return SweepRunner(options).run(specs);
}

}  // namespace bsld::report
