#include "report/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace bsld::report {

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, std::max<std::size_t>(specs.size(), 1));

  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= specs.size()) return;
          try {
            results[i] = run_one(specs[i]);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // join

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace bsld::report
