#include "report/figures.hpp"

#include "util/error.hpp"

namespace bsld::report {

const std::vector<double>& paper_bsld_thresholds() {
  static const std::vector<double> values = {1.5, 2.0, 3.0};
  return values;
}

const std::vector<std::optional<std::int64_t>>& paper_wq_thresholds() {
  static const std::vector<std::optional<std::int64_t>> values = {
      std::int64_t{0}, std::int64_t{4}, std::int64_t{16}, std::nullopt};
  return values;
}

const std::vector<double>& paper_size_scales() {
  // "ranging from the original size to 125% increase in system size"
  static const std::vector<double> values = {1.0, 1.1, 1.2, 1.5,
                                             1.75, 2.0, 2.25};
  return values;
}

std::string wq_label(const std::optional<std::int64_t>& wq) {
  return wq ? std::to_string(*wq) : "NO";
}

OriginalSizeGrid original_size_grid(std::int32_t num_jobs) {
  OriginalSizeGrid grid;
  for (const wl::Archive archive : wl::all_archives()) {
    for (const double bsld : paper_bsld_thresholds()) {
      for (const auto& wq : paper_wq_thresholds()) {
        RunSpec spec;
        spec.workload = wl::WorkloadSource::from_archive(archive, num_jobs);
        core::DvfsConfig dvfs;
        dvfs.bsld_threshold = bsld;
        dvfs.wq_threshold = wq;
        spec.policy.dvfs = dvfs;
        grid.dvfs_specs.push_back(spec);
      }
    }
    RunSpec baseline;
    baseline.workload = wl::WorkloadSource::from_archive(archive, num_jobs);
    grid.baseline_specs.push_back(baseline);
  }
  return grid;
}

EnlargedGrid enlarged_grid(const std::optional<std::int64_t>& wq_threshold,
                           std::int32_t num_jobs) {
  EnlargedGrid grid;
  for (const wl::Archive archive : wl::all_archives()) {
    for (const double scale : paper_size_scales()) {
      RunSpec spec;
      spec.workload = wl::WorkloadSource::from_archive(archive, num_jobs);
      spec.size_scale = scale;
      core::DvfsConfig dvfs;
      dvfs.bsld_threshold = 2.0;  // paper: "the medium used value 2"
      dvfs.wq_threshold = wq_threshold;
      spec.policy.dvfs = dvfs;
      grid.dvfs_specs.push_back(spec);
    }
    RunSpec baseline;
    baseline.workload = wl::WorkloadSource::from_archive(archive, num_jobs);
    grid.baseline_specs.push_back(baseline);
  }
  return grid;
}

GridResults run_grid(const std::vector<RunSpec>& dvfs_specs,
                     const std::vector<RunSpec>& baseline_specs,
                     unsigned threads) {
  std::vector<RunSpec> all;
  all.reserve(dvfs_specs.size() + baseline_specs.size());
  all.insert(all.end(), dvfs_specs.begin(), dvfs_specs.end());
  all.insert(all.end(), baseline_specs.begin(), baseline_specs.end());
  std::vector<RunResult> results = run_all(all, threads);

  GridResults out;
  out.dvfs.assign(std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              dvfs_specs.size())));
  out.baselines.assign(
      std::make_move_iterator(results.begin() +
                              static_cast<std::ptrdiff_t>(dvfs_specs.size())),
      std::make_move_iterator(results.end()));
  return out;
}

const RunResult& baseline_for(const GridResults& results, wl::Archive archive) {
  for (const RunResult& result : results.baselines) {
    if (result.spec.workload.kind == wl::WorkloadSource::Kind::kArchive &&
        result.spec.workload.archive == archive) {
      return result;
    }
  }
  throw Error("baseline_for(): no baseline for archive " +
              wl::archive_name(archive));
}

}  // namespace bsld::report
