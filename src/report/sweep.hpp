/// \file sweep.hpp
/// \brief Deterministic parallel execution of experiment grids.
///
/// Every paper figure is a grid of independent simulations (up to 5
/// workloads x 12 parameter combinations); runs are embarrassingly parallel
/// and are dispatched over a worker pool of std::jthread. Results come back
/// in input order regardless of completion order, so parallel and serial
/// execution are bit-identical (covered by tests).
#pragma once

#include <vector>

#include "report/experiment.hpp"

namespace bsld::report {

/// Runs all specs, `threads` at a time (0 = hardware concurrency).
/// Exceptions from any run are rethrown on the calling thread after the
/// pool drains.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads = 0);

}  // namespace bsld::report
