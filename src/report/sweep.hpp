/// \file sweep.hpp
/// \brief Deterministic parallel execution of experiment grids.
///
/// Every paper figure is a grid of independent simulations (up to 5
/// workloads x 12 parameter combinations); runs are embarrassingly parallel
/// and are dispatched over a worker pool of std::jthread. Results come back
/// in input order regardless of completion order, so parallel and serial
/// execution are bit-identical (covered by tests).
///
/// SweepRunner is the full-featured engine: streaming result sinks that
/// observe runs as they complete, progress callbacks, and spec-keyed
/// deduplication (identical specs inside a grid — e.g. a shared baseline —
/// simulate once and fan the result out). run_all() remains as the thin
/// compatibility wrapper most call sites need.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "report/experiment.hpp"

namespace bsld::report {

/// Observer of a sweep's results as they complete (streaming).
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per grid slot, in completion order, serialized under the
  /// runner's lock. `index` is the slot's position in the submitted grid;
  /// with dedup on, one simulation may fan out to several indices.
  virtual void on_result(std::size_t index, const RunResult& result) = 0;

  /// Called once after the whole grid drained successfully.
  virtual void on_done(std::size_t total) { (void)total; }
};

/// Runs RunSpec grids over a jthread pool.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency (clamped to the number of
    /// distinct simulations).
    unsigned threads = 0;
    /// Simulate spec-identical grid entries once (keyed on RunSpec::key())
    /// and copy the result to every duplicate slot. Runs are deterministic,
    /// so this is observationally equivalent and strictly cheaper.
    bool dedup = true;
  };

  /// Counters reported to progress callbacks and kept after run().
  struct Progress {
    std::size_t completed = 0;  ///< Grid slots with a result so far.
    std::size_t total = 0;      ///< Grid size.
    std::size_t executed = 0;   ///< Simulations actually run so far.
    std::size_t deduplicated = 0;  ///< Slots served from an identical run.
  };

  /// Invoked after every completed simulation, serialized under the
  /// runner's lock; `finished` is the spec that just ran.
  using ProgressCallback =
      std::function<void(const Progress& progress, const RunSpec& finished)>;

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(Options options);

  /// Registers a non-owning streaming sink. Must outlive run().
  void add_sink(ResultSink& sink);

  /// Registers the progress callback (replacing any previous one).
  void on_progress(ProgressCallback callback);

  /// Runs all specs and returns results in input order. Exceptions from
  /// any run are rethrown on the calling thread after the pool drains;
  /// sinks only see results that completed before the failure and their
  /// on_done() is not called on error.
  std::vector<RunResult> run(const std::vector<RunSpec>& specs);

  /// Counters of the most recent run().
  [[nodiscard]] const Progress& progress() const { return progress_; }

 private:
  Options options_;
  std::vector<ResultSink*> sinks_;
  ProgressCallback callback_;
  Progress progress_;
};

/// Compatibility wrapper: runs all specs, `threads` at a time (0 = hardware
/// concurrency), no sinks, dedup on. Exceptions from any run are rethrown
/// on the calling thread after the pool drains.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads = 0);

}  // namespace bsld::report
