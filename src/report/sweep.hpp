/// \file sweep.hpp
/// \brief Deterministic parallel execution of experiment grids.
///
/// Every paper figure is a grid of independent simulations (up to 5
/// workloads x 12 parameter combinations); runs are embarrassingly parallel
/// and are dispatched over a worker pool of std::jthread. Results come back
/// in input order regardless of completion order, so parallel and serial
/// execution are bit-identical (covered by tests).
///
/// SweepRunner is the full-featured engine: streaming result sinks that
/// observe runs as they complete, progress callbacks, spec-keyed
/// deduplication (identical specs inside a grid — e.g. a shared baseline —
/// simulate once and fan the result out), transparent persistence through
/// an optional report::ResultCache (hit = no simulation), and deterministic
/// partitioning of a grid across processes/machines (shard_index /
/// shard_count — each distinct spec belongs to exactly one shard, decided
/// by the stable hash of its key, so shard outputs merge back into the
/// serial result set). run_all() remains as the thin compatibility wrapper
/// most call sites need.
///
/// For long-lived processes (bsldsim serve) the runner also offers
/// submit(): thread-safe incremental batch submission into one persistent
/// worker pool shared by every concurrent submitter, with cache hits
/// answered on the submitting thread and identical in-flight specs
/// coalesced across batches. run() is the one-shot wrapper over that same
/// pool — one execution path, so dedup, caching, sharding and in-flight
/// coalescing behave identically however a grid is dispatched.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "report/experiment.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::report {

class ResultCache;

/// The shard (in [0, shard_count)) that owns `spec`: the stable FNV-1a
/// hash of RunSpec::key() modulo shard_count. Deterministic across
/// platforms and processes — every participant of a sharded sweep
/// partitions the grid identically.
[[nodiscard]] unsigned shard_of(const RunSpec& spec, unsigned shard_count);

/// Observer of a sweep's results as they complete (streaming).
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per grid slot, in completion order, serialized under the
  /// runner's lock. `index` is the slot's position in the submitted grid;
  /// with dedup on, one simulation may fan out to several indices.
  virtual void on_result(std::size_t index, const RunResult& result) = 0;

  /// Called once after the whole grid drained successfully.
  virtual void on_done(std::size_t total) { (void)total; }
};

/// Runs RunSpec grids over a jthread pool.
class SweepRunner {
 public:
  struct Options {
    /// Worker threads in the persistent pool (started lazily by the first
    /// run()/submit()); 0 = hardware concurrency.
    unsigned threads = 0;
    /// Simulate spec-identical grid entries once (keyed on RunSpec::key())
    /// and copy the result to every duplicate slot. Runs are deterministic,
    /// so this is observationally equivalent and strictly cheaper.
    bool dedup = true;
    /// Persistent result store consulted before every distinct simulation
    /// and written back after (non-owning; nullptr = no caching). Cached
    /// results replay sink output byte-identically.
    ResultCache* cache = nullptr;
    /// This process's slice of the grid: only specs with
    /// shard_of(spec, shard_count) == shard_index are executed and streamed
    /// to sinks; foreign slots are counted as shard_skipped and returned as
    /// empty results. shard_count == 1 runs everything.
    unsigned shard_index = 0;
    unsigned shard_count = 1;
  };

  /// Counters reported to progress callbacks and kept after run().
  struct Progress {
    std::size_t completed = 0;  ///< Owned grid slots with a result so far.
    std::size_t total = 0;      ///< Grid size.
    std::size_t executed = 0;   ///< Simulations actually run so far.
    std::size_t deduplicated = 0;  ///< Slots served from an identical run.
    std::size_t cache_hits = 0;    ///< Distinct specs served from the cache.
    std::size_t shard_skipped = 0;  ///< Slots owned by other shards.
  };

  /// Invoked after every completed simulation, serialized under the
  /// runner's lock; `finished` is the spec that just ran.
  using ProgressCallback =
      std::function<void(const Progress& progress, const RunSpec& finished)>;

  /// Per-slot delivery callback for submit(): called once per input slot
  /// as results land — from worker threads or from the submitting thread
  /// (cache hits) — not necessarily in input order. Must not call back
  /// into the handle it belongs to.
  using ResultCallback =
      std::function<void(std::size_t index, const RunResult& result)>;

  SweepRunner() : SweepRunner(Options{}) {}
  explicit SweepRunner(Options options);

  /// Drains the persistent pool (shutdown()).
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Registers a non-owning streaming sink. Must outlive run().
  void add_sink(ResultSink& sink);

  /// Registers the progress callback (replacing any previous one).
  void on_progress(ProgressCallback callback);

  /// Runs all specs through the persistent pool (started lazily, shared
  /// with submit(), kept alive for the next batch) and returns results in
  /// input order. The first exception — a failed simulation or a throwing
  /// sink/progress callback — is rethrown on the calling thread after the
  /// batch drains; sinks only see the results that were delivered and
  /// their on_done() is not called on error. With shard_count > 1, slots
  /// owned by other shards come back as empty results carrying only their
  /// spec. Throws bsld::Error when shard_index >= shard_count (before
  /// anything is enqueued) and after shutdown(). Reentrant: safe to call
  /// concurrently from several threads (each call keeps its own batch;
  /// registered sinks would observe interleaved runs, so callers sharing
  /// a runner across threads should prefer submit()).
  std::vector<RunResult> run(const std::vector<RunSpec>& specs)
      BSLD_EXCLUDES(progress_mutex_, pool_mutex_);

  /// Counters of the most recently finished run(). Batches submitted via
  /// submit() report through their own SubmitHandle::progress().
  [[nodiscard]] Progress progress() const BSLD_EXCLUDES(progress_mutex_);

  /// One batch accepted by submit(): incremental result delivery plus a
  /// barrier for the submitter. Discarding the handle discards the only
  /// way to observe the batch's errors, so it is [[nodiscard]].
  class [[nodiscard]] SubmitHandle {
   public:
    /// Blocks until every slot of the batch has a result, then returns
    /// them in input order (single use — results are moved out). Rethrows
    /// the batch's first error — a failed simulation or a throwing
    /// on_result callback.
    std::vector<RunResult> wait();

    /// The batch's own counters (stable after wait() returned).
    [[nodiscard]] Progress progress() const;

   private:
    friend class SweepRunner;
    struct Batch;
    std::shared_ptr<Batch> batch_;
  };

  /// Incremental submission into a persistent worker pool shared by every
  /// submit() call on this runner — the daemon-mode entry point. Thread
  /// safe; concurrent batches interleave FIFO over options_.threads
  /// workers (0 = hardware concurrency; started lazily on first submit).
  ///
  /// Cache hits are resolved synchronously on the calling thread — a warm
  /// batch completes without ever touching the worker pool. With dedup
  /// on, slots identical to a spec already in flight (same or another
  /// batch) attach to that simulation instead of enqueueing a duplicate.
  /// Sharding options partition exactly as in run(). Registered sinks and
  /// the progress callback are NOT notified; per-slot delivery goes to
  /// `on_result`. submit() itself only throws on invalid shard options
  /// (before anything is enqueued); any later failure — including
  /// submitting after shutdown() — resolves into the batch and rethrows
  /// from wait(), so `on_result`'s captures stay alive until then.
  [[nodiscard]] SubmitHandle submit(const std::vector<RunSpec>& specs,
                                    ResultCallback on_result = {})
      BSLD_EXCLUDES(pool_mutex_);

  /// Stops accepting new batches, finishes everything already queued and
  /// joins the pool. Idempotent; also run by the destructor.
  void shutdown() BSLD_EXCLUDES(pool_mutex_);

 private:
  /// One distinct spec queued for execution; several (batch, slots)
  /// subscribers may be attached while it is in flight.
  struct PendingRun;

  /// The one batch-dispatch path behind run() and submit(): dedups,
  /// shards, answers cache hits synchronously, coalesces onto in-flight
  /// specs and enqueues the rest. `on_group` (run()'s progress callback
  /// channel) fires once per distinct completed spec, inside the batch's
  /// delivery lock; empty for plain submit().
  [[nodiscard]] SubmitHandle submit_impl(const std::vector<RunSpec>& specs,
                                         ResultCallback on_result,
                                         ProgressCallback on_group)
      BSLD_EXCLUDES(pool_mutex_);

  void start_pool_locked() BSLD_REQUIRES(pool_mutex_);
  void worker_loop() BSLD_EXCLUDES(pool_mutex_);

  Options options_;  ///< Immutable after construction.
  /// sinks_ and callback_ must be registered before the first run();
  /// worker threads read them unguarded afterwards.
  std::vector<ResultSink*> sinks_;
  ProgressCallback callback_;

  mutable util::Mutex progress_mutex_;
  Progress progress_ BSLD_GUARDED_BY(progress_mutex_);

  util::Mutex pool_mutex_;
  util::CondVar pool_cv_;  ///< Signals queue_ growth and stopping_.
  std::deque<std::shared_ptr<PendingRun>> queue_ BSLD_GUARDED_BY(pool_mutex_);
  std::unordered_map<std::string, std::shared_ptr<PendingRun>> inflight_
      BSLD_GUARDED_BY(pool_mutex_);
  std::vector<std::jthread> workers_ BSLD_GUARDED_BY(pool_mutex_);
  bool stopping_ BSLD_GUARDED_BY(pool_mutex_) = false;
};

/// Compatibility wrapper: runs all specs, `threads` at a time (0 = hardware
/// concurrency), no sinks, dedup on. Exceptions from any run are rethrown
/// on the calling thread after the pool drains.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads = 0);

}  // namespace bsld::report
