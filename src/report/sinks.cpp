#include "report/sinks.hpp"

#include <ostream>

#include "util/csv.hpp"

namespace bsld::report {

std::vector<std::string> result_row_headers() {
  return {"index",        "run",       "cpus",        "avg_bsld",
          "avg_wait_s",   "reduced",   "boosted",     "energy_comp_j",
          "energy_total_j", "makespan_s", "utilization"};
}

std::vector<std::string> result_row(std::size_t index,
                                    const RunResult& result) {
  const sim::SimulationResult& sim = result.sim;
  return {std::to_string(index),
          result.spec.label(),
          std::to_string(sim.cpus),
          util::fmt_double(sim.avg_bsld, 4),
          util::fmt_double(sim.avg_wait, 1),
          std::to_string(sim.reduced_jobs),
          std::to_string(sim.boosted_jobs),
          util::fmt_double(sim.energy.computational_joules, 0),
          util::fmt_double(sim.energy.total_joules, 0),
          std::to_string(sim.makespan),
          util::fmt_double(sim.utilization, 4)};
}

CsvResultSink::CsvResultSink(std::ostream& out) : out_(out) {
  util::CsvWriter(out_).write_row(result_row_headers());
}

void CsvResultSink::on_result(std::size_t index, const RunResult& result) {
  util::CsvWriter(out_).write_row(result_row(index, result));
}

util::Table TableResultSink::table() const {
  util::Table table(result_row_headers());
  for (std::size_t c = 2; c < result_row_headers().size(); ++c) {
    table.set_align(c, util::Align::kRight);
  }
  for (const auto& [_, row] : rows_) table.add_row(row);
  return table;
}

void TableResultSink::on_result(std::size_t index, const RunResult& result) {
  rows_[index] = result_row(index, result);
}

}  // namespace bsld::report
