#include "report/sinks.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/config.hpp"
#include "util/csv.hpp"

namespace bsld::report {

namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> result_row_headers() {
  return {"index",        "run",       "cpus",        "avg_bsld",
          "avg_wait_s",   "reduced",   "boosted",     "energy_comp_j",
          "energy_total_j", "makespan_s", "utilization"};
}

std::vector<std::string> result_row(std::size_t index,
                                    const RunResult& result) {
  const sim::SimulationResult& sim = result.sim();
  return {std::to_string(index),
          result.spec.label(),
          std::to_string(sim.cpus),
          util::fmt_double(sim.avg_bsld, 4),
          util::fmt_double(sim.avg_wait, 1),
          std::to_string(sim.reduced_jobs),
          std::to_string(sim.boosted_jobs),
          util::fmt_double(sim.energy.computational_joules, 0),
          util::fmt_double(sim.energy.total_joules, 0),
          std::to_string(sim.makespan),
          util::fmt_double(sim.utilization, 4)};
}

CsvResultSink::CsvResultSink(std::ostream& out) : out_(out) {
  util::CsvWriter(out_).write_row(result_row_headers());
}

void CsvResultSink::on_result(std::size_t index, const RunResult& result) {
  util::CsvWriter(out_).write_row(result_row(index, result));
}

JsonlResultSink::JsonlResultSink(std::ostream& out) : out_(out) {}

void JsonlResultSink::on_result(std::size_t index, const RunResult& result) {
  const sim::SimulationResult& sim = result.sim();
  std::ostringstream line;
  line << "{\"index\":" << index
       << ",\"run\":\"" << json_escape(result.spec.label())
       << "\",\"workload\":\"" << json_escape(sim.workload)
       << "\",\"policy\":\"" << json_escape(sim.policy)
       << "\",\"cpus\":" << sim.cpus
       << ",\"jobs\":" << sim.job_count
       << ",\"avg_bsld\":" << util::config_double(sim.avg_bsld)
       << ",\"avg_wait_s\":" << util::config_double(sim.avg_wait)
       << ",\"reduced\":" << sim.reduced_jobs
       << ",\"boosted\":" << sim.boosted_jobs
       << ",\"jobs_per_gear\":[";
  for (std::size_t g = 0; g < sim.jobs_per_gear.size(); ++g) {
    if (g != 0) line << ',';
    line << sim.jobs_per_gear[g];
  }
  line << "],\"energy_comp_j\":" << util::config_double(
              sim.energy.computational_joules)
       << ",\"energy_total_j\":" << util::config_double(
              sim.energy.total_joules)
       << ",\"energy_idle_j\":" << util::config_double(sim.energy.idle_joules)
       << ",\"makespan_s\":" << sim.makespan
       << ",\"utilization\":" << util::config_double(sim.utilization)
       << ",\"events\":" << sim.events_processed;
  if (!result.instruments.empty()) {
    line << ",\"instruments\":[";
    for (std::size_t i = 0; i < result.instruments.size(); ++i) {
      if (i != 0) line << ',';
      line << '"' << json_escape(result.instruments[i]->name()) << '"';
    }
    line << ']';
  }
  line << "}\n";
  out_ << line.str() << std::flush;
}

void ReorderingSink::on_result(std::size_t index, const RunResult& result) {
  pending_[index] = result;
}

void ReorderingSink::on_done(std::size_t total) {
  for (const auto& [index, result] : pending_) {
    inner_.on_result(index, result);
  }
  pending_.clear();
  inner_.on_done(total);
}

util::Table TableResultSink::table() const {
  util::Table table(result_row_headers());
  for (std::size_t c = 2; c < result_row_headers().size(); ++c) {
    table.set_align(c, util::Align::kRight);
  }
  for (const auto& [_, row] : rows_) table.add_row(row);
  return table;
}

void TableResultSink::on_result(std::size_t index, const RunResult& result) {
  rows_[index] = result_row(index, result);
}

}  // namespace bsld::report
