/// \file grid.hpp
/// \brief Declarative sweep grids: one config file that expands into a
/// cross-product of RunSpecs.
///
/// A grid config is an ordinary RunSpec config (every key RunSpec::parse
/// accepts, all optional) plus multi-valued `sweep.*` axes:
///
///   sweep.workloads       = CTC, SDSC, SDSCBlue   # archive names/SWF paths
///   sweep.bsld_thresholds = 1.5, 2, 3             # enables DVFS per value
///   sweep.wq_thresholds   = 0, 4, 16, NO          # NO = no limit
///   sweep.scales          = 1, 1.2, 1.5           # machine size multipliers
///   sweep.pm              = none, cap-uniform     # power managers by name
///   sweep.pm_cap_watts    = 400000, 600000        # cap (or setpoint) watts
///
/// expand_grid() returns the full cross-product in a fixed, documented
/// order — workloads outermost, then BSLD thresholds, then WQ thresholds,
/// then scales, then pm names, then pm watts innermost — so a grid file
/// denotes one exact spec sequence everywhere:
/// the serial run, every shard of a sharded run, and any future re-run
/// agree on grid indices. Axes left out inherit the base spec's value.
/// This is the seam bsldsim --sweep consumes; paper figures keep their
/// hand-built grids in figures.hpp.
#pragma once

#include <vector>

#include "report/experiment.hpp"
#include "util/config.hpp"

namespace bsld::report {

/// Expands `config` into the cross-product of its sweep axes over its base
/// spec. A config with no `sweep.*` keys yields exactly the base spec.
/// Throws bsld::Error on unparseable axis values (e.g. a WQ threshold that
/// is neither an integer nor "NO") — same failure surface as
/// RunSpec::parse.
std::vector<RunSpec> expand_grid(const util::Config& config);

}  // namespace bsld::report
