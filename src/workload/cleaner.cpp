#include "workload/cleaner.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/error.hpp"

namespace bsld::wl {

std::optional<Job> JobCleaner::accept(Job job) {
  if (job.size <= 0 || job.run_time < 0 || job.submit < 0) {
    ++report_.dropped_invalid;
    return std::nullopt;
  }
  if (options_.drop_zero_runtime && job.run_time == 0) {
    ++report_.dropped_invalid;
    return std::nullopt;
  }
  if (options_.machine_cpus > 0 && job.size > options_.machine_cpus) {
    job.size = options_.machine_cpus;
    ++report_.clamped_size;
  }
  if (job.requested_time <= 0) job.requested_time = std::max<Time>(job.run_time, 1);
  if (options_.clamp_runtime_to_requested &&
      job.run_time > job.requested_time) {
    job.requested_time = job.run_time;
    ++report_.clamped_runtime;
  }

  if (options_.flurry_max_jobs > 0) {
    auto& window = user_windows_[job.user_id];
    while (!window.empty() &&
           job.submit - window.front() > options_.flurry_window) {
      window.pop_front();
    }
    if (static_cast<std::int64_t>(window.size()) >=
        options_.flurry_max_jobs) {
      ++report_.dropped_flurry;
      return std::nullopt;
    }
    window.push_back(job.submit);
  }

  ++report_.kept;
  return job;
}

CleanReport clean(Workload& workload, const CleanOptions& options) {
  JobCleaner cleaner(options);
  std::vector<Job> kept;
  kept.reserve(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    if (std::optional<Job> cleaned = cleaner.accept(job)) {
      kept.push_back(*cleaned);
    }
  }
  workload.jobs = std::move(kept);
  return cleaner.report();
}

CleaningJobStream::CleaningJobStream(std::unique_ptr<JobStream> inner,
                                     CleanOptions options)
    : inner_(std::move(inner)), cleaner_(std::move(options)) {
  BSLD_REQUIRE(inner_ != nullptr, "CleaningJobStream: null inner stream");
}

std::optional<Job> CleaningJobStream::next() {
  while (std::optional<Job> job = inner_->next()) {
    if (std::optional<Job> cleaned = cleaner_.accept(std::move(*job))) {
      return cleaned;
    }
  }
  return std::nullopt;
}

Workload slice(const Workload& workload, std::size_t first_index,
               std::size_t count) {
  BSLD_REQUIRE(first_index + count <= workload.jobs.size(),
               "slice(): range exceeds workload size");
  Workload out;
  out.name = workload.name;
  out.cpus = workload.cpus;
  out.jobs.assign(workload.jobs.begin() + static_cast<std::ptrdiff_t>(first_index),
                  workload.jobs.begin() +
                      static_cast<std::ptrdiff_t>(first_index + count));
  if (!out.jobs.empty()) {
    const Time base = out.jobs.front().submit;
    for (Job& job : out.jobs) job.submit -= base;
  }
  return out;
}

}  // namespace bsld::wl
