#include "workload/cleaner.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/error.hpp"

namespace bsld::wl {

CleanReport clean(Workload& workload, const CleanOptions& options) {
  CleanReport report;
  std::vector<Job> kept;
  kept.reserve(workload.jobs.size());

  // Sliding submission window per user for flurry detection.
  std::map<std::int32_t, std::deque<Time>> user_windows;

  for (Job job : workload.jobs) {
    if (job.size <= 0 || job.run_time < 0 || job.submit < 0) {
      ++report.dropped_invalid;
      continue;
    }
    if (options.drop_zero_runtime && job.run_time == 0) {
      ++report.dropped_invalid;
      continue;
    }
    if (options.machine_cpus > 0 && job.size > options.machine_cpus) {
      job.size = options.machine_cpus;
      ++report.clamped_size;
    }
    if (job.requested_time <= 0) job.requested_time = std::max<Time>(job.run_time, 1);
    if (options.clamp_runtime_to_requested &&
        job.run_time > job.requested_time) {
      job.requested_time = job.run_time;
      ++report.clamped_runtime;
    }

    if (options.flurry_max_jobs > 0) {
      auto& window = user_windows[job.user_id];
      while (!window.empty() &&
             job.submit - window.front() > options.flurry_window) {
        window.pop_front();
      }
      if (static_cast<std::int64_t>(window.size()) >=
          options.flurry_max_jobs) {
        ++report.dropped_flurry;
        continue;
      }
      window.push_back(job.submit);
    }

    kept.push_back(job);
  }

  report.kept = kept.size();
  workload.jobs = std::move(kept);
  return report;
}

Workload slice(const Workload& workload, std::size_t first_index,
               std::size_t count) {
  BSLD_REQUIRE(first_index + count <= workload.jobs.size(),
               "slice(): range exceeds workload size");
  Workload out;
  out.name = workload.name;
  out.cpus = workload.cpus;
  out.jobs.assign(workload.jobs.begin() + static_cast<std::ptrdiff_t>(first_index),
                  workload.jobs.begin() +
                      static_cast<std::ptrdiff_t>(first_index + count));
  if (!out.jobs.empty()) {
    const Time base = out.jobs.front().submit;
    for (Job& job : out.jobs) job.submit -= base;
  }
  return out;
}

}  // namespace bsld::wl
