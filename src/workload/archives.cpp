#include "workload/archives.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bsld::wl {

namespace {

/// ln() helper so runtime class parameters read in seconds.
double ln_s(double seconds) { return std::log(seconds); }

WorkloadSpec ctc_spec() {
  WorkloadSpec spec;
  spec.name = "CTC";
  spec.cpus = 430;
  // "many large jobs but with relatively low degree of parallelism".
  // Moderate sustained load with a deep daily cycle: congestion peaks give
  // the 4.66 baseline BSLD while off-peak valleys drain the queue (the
  // WQthreshold = 0 configuration only saves energy in such windows).
  spec.arrival.load_target = 0.85;
  spec.arrival.burst_probability = 0.50;
  spec.arrival.burst_gap_mean = 4.0;
  spec.arrival.daily_amplitude = 0.65;
  spec.size.p_sequential = 0.40;
  spec.size.log2_mean = 2.4;
  spec.size.log2_sigma = 1.8;
  spec.size.p_power_of_two = 0.45;
  spec.size.max_size = 336;  // CTC batch partition cap
  spec.runtime.classes = {
      {0.45, ln_s(180), 1.3},    // short-job mass drives avg BSLD
      {0.30, ln_s(3600), 1.0},   // medium
      {0.25, ln_s(30000), 0.6},  // long ("many large jobs" carry core-hours)
  };
  spec.runtime.max_runtime = 18 * 3600;
  spec.estimate.factor_mu = 1.4;
  spec.estimate.factor_sigma = 1.0;
  spec.estimate.max_requested = 18 * 3600;
  return spec;
}

WorkloadSpec sdsc_spec() {
  WorkloadSpec spec;
  spec.name = "SDSC";
  spec.cpus = 128;
  // The saturated trace: baseline avg BSLD ~ 25. "less sequential jobs than
  // CTC while run time distribution is very similar". Sustained overload
  // with a shallow daily cycle: the queue never drains, so almost no job
  // sees the near-zero predicted BSLD that would allow a reduced gear —
  // reproducing the paper's "no energy decrease for SDSC".
  spec.arrival.load_target = 1.06;
  spec.arrival.burst_probability = 0.25;
  spec.arrival.daily_amplitude = 0.15;
  spec.size.p_sequential = 0.15;
  spec.size.log2_mean = 3.0;
  spec.size.log2_sigma = 1.5;
  spec.size.p_power_of_two = 0.55;
  spec.size.max_size = 128;
  spec.runtime.classes = {
      {0.30, ln_s(240), 1.2},
      {0.40, ln_s(3600), 1.0},
      {0.30, ln_s(25000), 0.7},
  };
  spec.runtime.max_runtime = 18 * 3600;
  spec.estimate.max_requested = 18 * 3600;
  return spec;
}

WorkloadSpec sdsc_blue_spec() {
  WorkloadSpec spec;
  spec.name = "SDSCBlue";
  spec.cpus = 1152;
  // "there are no sequential jobs, to each jobs is assigned at least 8
  // processors" — Blue Horizon allocated in 8-way node units. Bursty with a
  // deep daily cycle, like CTC.
  spec.arrival.load_target = 0.74;
  spec.arrival.burst_probability = 0.45;
  spec.arrival.burst_gap_mean = 4.0;
  spec.arrival.daily_amplitude = 0.70;
  spec.size.p_sequential = 0.0;
  spec.size.min_size = 8;
  spec.size.log2_mean = 5.2;
  spec.size.log2_sigma = 1.6;
  spec.size.p_power_of_two = 0.80;
  spec.size.max_size = 1152;
  spec.runtime.classes = {
      {0.40, ln_s(400), 1.2},
      {0.35, ln_s(5000), 0.9},
      {0.25, ln_s(25000), 0.6},
  };
  spec.estimate.factor_mu = 1.4;
  spec.estimate.factor_sigma = 1.0;
  spec.runtime.max_runtime = 36 * 3600;
  spec.estimate.max_requested = 36 * 3600;
  return spec;
}

WorkloadSpec llnl_thunder_spec() {
  WorkloadSpec spec;
  spec.name = "LLNLThunder";
  spec.cpus = 4008;
  // "devoted to running large numbers of smaller to medium jobs"; baseline
  // avg BSLD is exactly 1 — most jobs are shorter than the 600 s BSLD floor
  // and waits are negligible at this load.
  // Load sits where the no-DVFS system stays queue-free (BSLD = 1) but the
  // ~1.9x dilation of unconstrained DVFS would congest it — the feedback
  // that makes the WQthreshold gate bite on this trace (paper Fig. 4).
  spec.arrival.load_target = 0.75;
  spec.arrival.burst_probability = 0.35;
  spec.arrival.burst_gap_mean = 10.0;
  spec.arrival.daily_amplitude = 0.50;
  spec.size.p_sequential = 0.20;
  spec.size.log2_mean = 3.5;
  spec.size.log2_sigma = 2.0;   // wide: job-count mass is small, core-hours
  spec.size.p_power_of_two = 0.50;  // are carried by the large tail
  spec.size.max_size = 4008;
  spec.runtime.classes = {
      {0.70, ln_s(90), 1.0},    // the short-job mass (BSLD floor keeps avg=1)
      {0.20, ln_s(1800), 0.9},
      {0.10, ln_s(20000), 0.7}, // long tail carrying utilization
  };
  spec.runtime.max_runtime = 24 * 3600;
  spec.estimate.max_requested = 24 * 3600;
  return spec;
}

WorkloadSpec llnl_atlas_spec() {
  WorkloadSpec spec;
  spec.name = "LLNLAtlas";
  spec.cpus = 9216;
  // "Atlas cluster is used for running large parallel jobs."
  spec.arrival.load_target = 0.60;
  spec.arrival.burst_probability = 0.25;
  spec.arrival.daily_amplitude = 0.60;
  spec.size.p_sequential = 0.05;
  spec.size.log2_mean = 7.0;
  spec.size.log2_sigma = 1.6;
  spec.size.p_power_of_two = 0.70;
  spec.size.max_size = 9216;
  spec.runtime.classes = {
      {0.30, ln_s(300), 1.0},
      {0.45, ln_s(3600), 0.9},
      {0.25, ln_s(15000), 0.7},
  };
  spec.runtime.max_runtime = 24 * 3600;
  spec.estimate.max_requested = 24 * 3600;
  return spec;
}

}  // namespace

const std::vector<Archive>& all_archives() {
  static const std::vector<Archive> archives = {
      Archive::kCTC, Archive::kSDSC, Archive::kSDSCBlue,
      Archive::kLLNLThunder, Archive::kLLNLAtlas};
  return archives;
}

std::string archive_name(Archive archive) {
  switch (archive) {
    case Archive::kCTC: return "CTC";
    case Archive::kSDSC: return "SDSC";
    case Archive::kSDSCBlue: return "SDSCBlue";
    case Archive::kLLNLThunder: return "LLNLThunder";
    case Archive::kLLNLAtlas: return "LLNLAtlas";
  }
  throw Error("archive_name(): unknown archive");
}

Archive archive_from_name(const std::string& name) {
  for (Archive archive : all_archives()) {
    if (archive_name(archive) == name) return archive;
  }
  throw Error("archive_from_name(): unknown archive `" + name + "`");
}

double paper_avg_bsld(Archive archive) {
  switch (archive) {
    case Archive::kCTC: return 4.66;
    case Archive::kSDSC: return 24.91;
    case Archive::kSDSCBlue: return 5.15;
    case Archive::kLLNLThunder: return 1.0;
    case Archive::kLLNLAtlas: return 1.08;
  }
  throw Error("paper_avg_bsld(): unknown archive");
}

std::int32_t paper_cpus(Archive archive) {
  switch (archive) {
    case Archive::kCTC: return 430;
    case Archive::kSDSC: return 128;
    case Archive::kSDSCBlue: return 1152;
    case Archive::kLLNLThunder: return 4008;
    case Archive::kLLNLAtlas: return 9216;
  }
  throw Error("paper_cpus(): unknown archive");
}

WorkloadSpec archive_spec(Archive archive, std::int64_t num_jobs) {
  BSLD_REQUIRE(num_jobs > 0, "archive_spec(): num_jobs must be positive");
  WorkloadSpec spec;
  switch (archive) {
    case Archive::kCTC: spec = ctc_spec(); break;
    case Archive::kSDSC: spec = sdsc_spec(); break;
    case Archive::kSDSCBlue: spec = sdsc_blue_spec(); break;
    case Archive::kLLNLThunder: spec = llnl_thunder_spec(); break;
    case Archive::kLLNLAtlas: spec = llnl_atlas_spec(); break;
  }
  spec.num_jobs = num_jobs;
  return spec;
}

std::uint64_t archive_seed(Archive archive) {
  switch (archive) {
    case Archive::kCTC: return 0x00c7c001ULL;
    case Archive::kSDSC: return 0x005d5c02ULL;
    case Archive::kSDSCBlue: return 0x0b10e003ULL;
    case Archive::kLLNLThunder: return 0x07d04de7ULL;
    case Archive::kLLNLAtlas: return 0x0a71a505ULL;
  }
  throw Error("archive_seed(): unknown archive");
}

Workload make_archive_workload(Archive archive, std::int64_t num_jobs) {
  return generate(archive_spec(archive, num_jobs), archive_seed(archive));
}

}  // namespace bsld::wl
