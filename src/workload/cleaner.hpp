/// \file cleaner.hpp
/// \brief Trace cleaning, mirroring the "cleaned" Parallel Workload Archive
/// logs the paper simulates (§3.2): invalid records are dropped, jobs are
/// clamped to the machine, and flurries — bursts of activity by a single
/// user that are not representative of normal usage — are removed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "util/types.hpp"
#include "workload/job.hpp"
#include "workload/stream.hpp"

namespace bsld::wl {

/// Knobs for clean(); defaults follow the archive's cleaning conventions.
struct CleanOptions {
  /// Machine size; jobs requesting more processors are clamped (<= 0 keeps
  /// job sizes untouched).
  std::int32_t machine_cpus = 0;
  /// Drop jobs with non-positive runtime (zero-length records carry no
  /// scheduling signal and distort BSLD via the max(Th, runtime) floor).
  bool drop_zero_runtime = true;
  /// Ensure requested_time >= run_time (backfilling assumes estimates are
  /// upper bounds; archive logs occasionally violate this).
  bool clamp_runtime_to_requested = true;
  /// Flurry removal: a user submitting more than `flurry_max_jobs` within
  /// any `flurry_window`-second sliding window has the excess dropped.
  /// Set flurry_max_jobs to 0 to disable.
  std::int64_t flurry_max_jobs = 0;
  Time flurry_window = 3600;
};

/// Outcome counters for reporting/validation.
struct CleanReport {
  std::size_t kept = 0;
  std::size_t dropped_invalid = 0;
  std::size_t dropped_flurry = 0;
  std::size_t clamped_size = 0;
  std::size_t clamped_runtime = 0;
};

/// Incremental form of clean(): records are accepted one at a time in
/// trace order, so an SWF file can be cleaned while it streams. clean() is
/// a drain loop over this class — one rule set, two call shapes.
class JobCleaner {
 public:
  explicit JobCleaner(CleanOptions options) : options_(std::move(options)) {}

  /// Applies the cleaning rules to one record. Returns the (possibly
  /// clamped) job, or std::nullopt when the record is dropped; either way
  /// the outcome counters accumulate into report().
  std::optional<Job> accept(Job job);

  /// Counters over every record accepted so far.
  [[nodiscard]] const CleanReport& report() const { return report_; }

 private:
  CleanOptions options_;
  CleanReport report_;
  /// Sliding submission window per user for flurry detection.
  std::map<std::int32_t, std::deque<Time>> user_windows_;
};

/// Cleans `workload` in place; returns what happened. Jobs remain sorted by
/// (submit, id) and keep their original ids.
CleanReport clean(Workload& workload, const CleanOptions& options);

/// Streaming adapter over JobCleaner: pulls from `inner` and yields only
/// the records the cleaning rules keep. report() is complete once the
/// stream is exhausted.
class CleaningJobStream final : public JobStream {
 public:
  CleaningJobStream(std::unique_ptr<JobStream> inner, CleanOptions options);

  std::optional<Job> next() override;
  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] std::int32_t cpus() const override { return inner_->cpus(); }

  /// Counters over every record pulled so far (final after exhaustion).
  [[nodiscard]] const CleanReport& report() const { return cleaner_.report(); }

 private:
  std::unique_ptr<JobStream> inner_;
  JobCleaner cleaner_;
};

/// Extracts a contiguous `count`-job slice starting at `first_index`
/// (0-based), re-basing submit times so the slice starts at t = 0. This is
/// how the paper builds its "5000 job part of each workload". Throws
/// bsld::Error when the slice is out of range.
Workload slice(const Workload& workload, std::size_t first_index,
               std::size_t count);

}  // namespace bsld::wl
