#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace bsld::wl {

namespace {

constexpr double kSecondsPerDay = 86400.0;

/// A small population of users, Zipf-ish activity (only used by the flurry
/// cleaner and for realism of per-user patterns).
constexpr std::int32_t kUsers = 64;

/// Relative arrival rate at absolute time t (daily cycle).
double daily_rate(double t, const ArrivalModel& arrival) {
  const double phase =
      2.0 * std::numbers::pi * (t / kSecondsPerDay - arrival.peak_hour / 24.0);
  return 1.0 + arrival.daily_amplitude * std::cos(phase);
}

std::int32_t sample_size(const SizeModel& model, std::int32_t cpus,
                         util::Rng& rng) {
  const std::int32_t cap = std::min(model.max_size, cpus);
  if (model.p_sequential > 0.0 && rng.bernoulli(model.p_sequential)) return 1;
  const double log2_size = rng.normal(model.log2_mean, model.log2_sigma);
  double size = std::exp2(std::clamp(log2_size, 0.0, 30.0));
  if (rng.bernoulli(model.p_power_of_two)) {
    size = std::exp2(std::round(std::clamp(log2_size, 0.0, 30.0)));
  }
  auto result = static_cast<std::int32_t>(std::lround(size));
  result = std::clamp(result, std::max<std::int32_t>(model.min_size, 1), cap);
  return result;
}

Time sample_runtime(const RuntimeModel& model, util::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(model.classes.size());
  for (const auto& cls : model.classes) weights.push_back(cls.weight);
  const auto& cls = model.classes[rng.discrete(weights)];
  const double runtime = rng.lognormal(cls.mu, cls.sigma);
  const auto rounded = static_cast<Time>(std::llround(runtime));
  return std::clamp<Time>(rounded, model.min_runtime, model.max_runtime);
}

Time sample_requested(const EstimateModel& model, Time run_time,
                      util::Rng& rng) {
  Time requested;
  if (rng.bernoulli(model.p_exact)) {
    requested = run_time;
  } else {
    const double factor =
        std::max(1.0, rng.lognormal(model.factor_mu, model.factor_sigma));
    requested = static_cast<Time>(std::llround(
        static_cast<double>(run_time) * factor));
  }
  if (model.round_to_nice) requested = round_to_nice_request(requested);
  requested = std::min(requested, model.max_requested);
  return std::max(requested, run_time);  // estimates are upper bounds
}

}  // namespace

Time round_to_nice_request(Time seconds) {
  if (seconds <= 0) return 1;
  auto round_up = [](Time value, Time quantum) {
    return ((value + quantum - 1) / quantum) * quantum;
  };
  if (seconds <= 2 * 3600) return round_up(seconds, 300);
  if (seconds <= 6 * 3600) return round_up(seconds, 1800);
  return round_up(seconds, 3600);
}

SyntheticJobStream::SyntheticJobStream(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  BSLD_REQUIRE(spec_.cpus > 0, "generate(): cpus must be positive");
  BSLD_REQUIRE(spec_.num_jobs > 0, "generate(): num_jobs must be positive");
  BSLD_REQUIRE(spec_.arrival.load_target > 0.0,
               "generate(): load_target must be positive");
  BSLD_REQUIRE(!spec_.runtime.classes.empty(),
               "generate(): runtime mixture needs at least one class");
  BSLD_REQUIRE(spec_.arrival.daily_amplitude >= 0.0 &&
                   spec_.arrival.daily_amplitude < 1.0,
               "generate(): daily_amplitude must be in [0, 1)");

  util::Rng root(seed ^ util::hash_label(spec_.name));
  size_rng_ = root.split("size");
  runtime_rng_ = root.split("runtime");
  estimate_rng_ = root.split("estimate");
  arrival_rng_ = root.split("arrival");
  user_rng_ = root.split("user");

  // Sizing pass: the arrival process is scaled to the target offered load,
  // which needs the trace's total work content before the first job can be
  // emitted. Replay *clones* of the work-content streams (split streams are
  // concern-independent, so the estimate/arrival/user streams are not
  // consumed) and keep only the running sum — draws, not storage, so the
  // stream stays O(1) in memory at any num_jobs.
  util::Rng size_probe = size_rng_;
  util::Rng runtime_probe = runtime_rng_;
  double total_core_seconds = 0.0;
  for (std::int64_t i = 0; i < spec_.num_jobs; ++i) {
    const std::int32_t size = sample_size(spec_.size, spec_.cpus, size_probe);
    const Time runtime = sample_runtime(spec_.runtime, runtime_probe);
    total_core_seconds +=
        static_cast<double>(size) * static_cast<double>(runtime);
  }

  // Trace span implied by the load target, and the resulting mean gap.
  const double span =
      total_core_seconds /
      (static_cast<double>(spec_.cpus) * spec_.arrival.load_target);
  mean_gap_ = span / static_cast<double>(spec_.num_jobs);

  user_weights_.resize(kUsers);
  for (std::int32_t u = 0; u < kUsers; ++u) {
    user_weights_[static_cast<std::size_t>(u)] =
        1.0 / static_cast<double>(u + 1);
  }
}

std::optional<Job> SyntheticJobStream::next() {
  if (emitted_ >= spec_.num_jobs) return std::nullopt;

  Job job;
  job.id = static_cast<JobId>(emitted_ + 1);
  job.size = sample_size(spec_.size, spec_.cpus, size_rng_);
  job.run_time = sample_runtime(spec_.runtime, runtime_rng_);
  job.requested_time =
      sample_requested(spec_.estimate, job.run_time, estimate_rng_);

  job.submit = static_cast<Time>(std::llround(clock_));
  double gap;
  if (arrival_rng_.bernoulli(spec_.arrival.burst_probability)) {
    gap = arrival_rng_.exponential(spec_.arrival.burst_gap_mean);
  } else {
    // Thin the base rate by the daily cycle at the current time. The
    // burst jobs contribute little to the span, so re-scale the base gap
    // to keep the overall mean near `mean_gap_`.
    const double base =
        (mean_gap_ - spec_.arrival.burst_probability *
                         spec_.arrival.burst_gap_mean) /
        std::max(1e-9, 1.0 - spec_.arrival.burst_probability);
    gap = arrival_rng_.exponential(std::max(1.0, base)) /
          daily_rate(clock_, spec_.arrival);
  }
  clock_ += gap;

  job.user_id = static_cast<std::int32_t>(user_rng_.discrete(user_weights_));
  ++emitted_;
  // Gaps are non-negative and ids ascend, so emission order is already the
  // (submit, id) order generate() pins with its final sort.
  return job;
}

Workload generate(const WorkloadSpec& spec, std::uint64_t seed) {
  SyntheticJobStream stream(spec, seed);
  return materialize(stream);
}

}  // namespace bsld::wl
