#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <tuple>

#include "util/error.hpp"

namespace bsld::wl {

namespace {

constexpr double kSecondsPerDay = 86400.0;

/// Relative arrival rate at absolute time t (daily cycle).
double daily_rate(double t, const ArrivalModel& arrival) {
  const double phase =
      2.0 * std::numbers::pi * (t / kSecondsPerDay - arrival.peak_hour / 24.0);
  return 1.0 + arrival.daily_amplitude * std::cos(phase);
}

std::int32_t sample_size(const SizeModel& model, std::int32_t cpus,
                         util::Rng& rng) {
  const std::int32_t cap = std::min(model.max_size, cpus);
  if (model.p_sequential > 0.0 && rng.bernoulli(model.p_sequential)) return 1;
  const double log2_size = rng.normal(model.log2_mean, model.log2_sigma);
  double size = std::exp2(std::clamp(log2_size, 0.0, 30.0));
  if (rng.bernoulli(model.p_power_of_two)) {
    size = std::exp2(std::round(std::clamp(log2_size, 0.0, 30.0)));
  }
  auto result = static_cast<std::int32_t>(std::lround(size));
  result = std::clamp(result, std::max<std::int32_t>(model.min_size, 1), cap);
  return result;
}

Time sample_runtime(const RuntimeModel& model, util::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(model.classes.size());
  for (const auto& cls : model.classes) weights.push_back(cls.weight);
  const auto& cls = model.classes[rng.discrete(weights)];
  const double runtime = rng.lognormal(cls.mu, cls.sigma);
  const auto rounded = static_cast<Time>(std::llround(runtime));
  return std::clamp<Time>(rounded, model.min_runtime, model.max_runtime);
}

Time sample_requested(const EstimateModel& model, Time run_time,
                      util::Rng& rng) {
  Time requested;
  if (rng.bernoulli(model.p_exact)) {
    requested = run_time;
  } else {
    const double factor =
        std::max(1.0, rng.lognormal(model.factor_mu, model.factor_sigma));
    requested = static_cast<Time>(std::llround(
        static_cast<double>(run_time) * factor));
  }
  if (model.round_to_nice) requested = round_to_nice_request(requested);
  requested = std::min(requested, model.max_requested);
  return std::max(requested, run_time);  // estimates are upper bounds
}

}  // namespace

Time round_to_nice_request(Time seconds) {
  if (seconds <= 0) return 1;
  auto round_up = [](Time value, Time quantum) {
    return ((value + quantum - 1) / quantum) * quantum;
  };
  if (seconds <= 2 * 3600) return round_up(seconds, 300);
  if (seconds <= 6 * 3600) return round_up(seconds, 1800);
  return round_up(seconds, 3600);
}

Workload generate(const WorkloadSpec& spec, std::uint64_t seed) {
  BSLD_REQUIRE(spec.cpus > 0, "generate(): cpus must be positive");
  BSLD_REQUIRE(spec.num_jobs > 0, "generate(): num_jobs must be positive");
  BSLD_REQUIRE(spec.arrival.load_target > 0.0,
               "generate(): load_target must be positive");
  BSLD_REQUIRE(!spec.runtime.classes.empty(),
               "generate(): runtime mixture needs at least one class");
  BSLD_REQUIRE(spec.arrival.daily_amplitude >= 0.0 &&
                   spec.arrival.daily_amplitude < 1.0,
               "generate(): daily_amplitude must be in [0, 1)");

  util::Rng root(seed ^ util::hash_label(spec.name));
  util::Rng size_rng = root.split("size");
  util::Rng runtime_rng = root.split("runtime");
  util::Rng estimate_rng = root.split("estimate");
  util::Rng arrival_rng = root.split("arrival");
  util::Rng user_rng = root.split("user");

  const auto n = static_cast<std::size_t>(spec.num_jobs);

  // Draw the work content first so the arrival process can be scaled to the
  // target offered load.
  std::vector<std::int32_t> sizes(n);
  std::vector<Time> runtimes(n);
  std::vector<Time> requested(n);
  double total_core_seconds = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = sample_size(spec.size, spec.cpus, size_rng);
    runtimes[i] = sample_runtime(spec.runtime, runtime_rng);
    requested[i] = sample_requested(spec.estimate, runtimes[i], estimate_rng);
    total_core_seconds +=
        static_cast<double>(sizes[i]) * static_cast<double>(runtimes[i]);
  }

  // Trace span implied by the load target, and the resulting mean gap.
  const double span =
      total_core_seconds /
      (static_cast<double>(spec.cpus) * spec.arrival.load_target);
  const double mean_gap = span / static_cast<double>(n);

  std::vector<Time> submits(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    submits[i] = static_cast<Time>(std::llround(t));
    double gap;
    if (arrival_rng.bernoulli(spec.arrival.burst_probability)) {
      gap = arrival_rng.exponential(spec.arrival.burst_gap_mean);
    } else {
      // Thin the base rate by the daily cycle at the current time. The
      // burst jobs contribute little to the span, so re-scale the base gap
      // to keep the overall mean near `mean_gap`.
      const double base =
          (mean_gap - spec.arrival.burst_probability *
                          spec.arrival.burst_gap_mean) /
          std::max(1e-9, 1.0 - spec.arrival.burst_probability);
      gap = arrival_rng.exponential(std::max(1.0, base)) /
            daily_rate(t, spec.arrival);
    }
    t += gap;
  }

  // A small population of users, Zipf-ish activity (only used by the flurry
  // cleaner and for realism of per-user patterns).
  constexpr std::int32_t kUsers = 64;
  std::vector<double> user_weights(kUsers);
  for (std::int32_t u = 0; u < kUsers; ++u) {
    user_weights[static_cast<std::size_t>(u)] = 1.0 / static_cast<double>(u + 1);
  }

  Workload workload;
  workload.name = spec.name;
  workload.cpus = spec.cpus;
  workload.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job job;
    job.id = static_cast<JobId>(i + 1);
    job.submit = submits[i];
    job.size = sizes[i];
    job.run_time = runtimes[i];
    job.requested_time = requested[i];
    job.user_id = static_cast<std::int32_t>(user_rng.discrete(user_weights));
    workload.jobs.push_back(job);
  }
  // Submits are already non-decreasing by construction; keep the invariant
  // explicit for downstream consumers.
  std::stable_sort(workload.jobs.begin(), workload.jobs.end(),
                   [](const Job& a, const Job& b) {
                     return std::tie(a.submit, a.id) < std::tie(b.submit, b.id);
                   });
  return workload;
}

}  // namespace bsld::wl
