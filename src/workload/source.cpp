#include "workload/source.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parse.hpp"
#include "workload/swf.hpp"

namespace bsld::wl {

namespace {

const char* kind_name(WorkloadSource::Kind kind) {
  switch (kind) {
    case WorkloadSource::Kind::kArchive: return "archive";
    case WorkloadSource::Kind::kSwf: return "swf";
    case WorkloadSource::Kind::kInline: return "inline";
  }
  return "?";
}

WorkloadSource::Kind kind_from_name(const std::string& name) {
  if (name == "archive") return WorkloadSource::Kind::kArchive;
  if (name == "swf") return WorkloadSource::Kind::kSwf;
  if (name == "inline") return WorkloadSource::Kind::kInline;
  throw Error("WorkloadSource: unknown workload.source kind `" + name +
              "` (expected archive, swf or inline)");
}

/// FNV-1a: a platform-independent path hash, so SWF-derived auxiliary
/// randomness is reproducible across machines (std::hash is not).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Time get_time(const util::Config& config, const std::string& key,
              Time fallback) {
  return static_cast<Time>(config.get_int(key, fallback));
}

/// Seeds span the full uint64 range, which Config::get_int (int64) cannot
/// represent; parse the raw text instead so every saved seed replays.
std::uint64_t get_seed(const util::Config& config) {
  const std::string text = config.get_string("workload.seed", "0");
  const std::optional<std::uint64_t> seed = util::parse_uint(text);
  if (!seed) {
    throw Error("WorkloadSource: workload.seed is not a 64-bit unsigned "
                "integer: " + text);
  }
  return *seed;
}

/// `workload.spec.*` keys <-> WorkloadSpec. The runtime mixture is stored
/// as three parallel lists (weights/mus/sigmas).
WorkloadSpec spec_from_config(const util::Config& config) {
  const WorkloadSpec defaults;
  WorkloadSpec spec;
  spec.name = config.get_string("workload.spec.name", defaults.name);
  spec.cpus = static_cast<std::int32_t>(
      config.get_int("workload.spec.cpus", defaults.cpus));
  spec.num_jobs = static_cast<std::int32_t>(
      config.get_int("workload.spec.num_jobs", defaults.num_jobs));

  ArrivalModel& a = spec.arrival;
  a.load_target =
      config.get_double("workload.spec.arrival.load_target", a.load_target);
  a.burst_probability = config.get_double(
      "workload.spec.arrival.burst_probability", a.burst_probability);
  a.burst_gap_mean =
      config.get_double("workload.spec.arrival.burst_gap_mean", a.burst_gap_mean);
  a.daily_amplitude = config.get_double("workload.spec.arrival.daily_amplitude",
                                        a.daily_amplitude);
  a.peak_hour = config.get_double("workload.spec.arrival.peak_hour", a.peak_hour);

  SizeModel& s = spec.size;
  s.p_sequential =
      config.get_double("workload.spec.size.p_sequential", s.p_sequential);
  s.min_size = static_cast<std::int32_t>(
      config.get_int("workload.spec.size.min_size", s.min_size));
  s.max_size = static_cast<std::int32_t>(
      config.get_int("workload.spec.size.max_size", s.max_size));
  s.log2_mean = config.get_double("workload.spec.size.log2_mean", s.log2_mean);
  s.log2_sigma = config.get_double("workload.spec.size.log2_sigma", s.log2_sigma);
  s.p_power_of_two =
      config.get_double("workload.spec.size.p_power_of_two", s.p_power_of_two);

  RuntimeModel& r = spec.runtime;
  std::vector<double> weights;
  std::vector<double> mus;
  std::vector<double> sigmas;
  for (const RuntimeClass& klass : defaults.runtime.classes) {
    weights.push_back(klass.weight);
    mus.push_back(klass.mu);
    sigmas.push_back(klass.sigma);
  }
  weights = config.get_double_list("workload.spec.runtime.weights", weights);
  mus = config.get_double_list("workload.spec.runtime.mus", mus);
  sigmas = config.get_double_list("workload.spec.runtime.sigmas", sigmas);
  BSLD_REQUIRE(weights.size() == mus.size() && mus.size() == sigmas.size(),
               "WorkloadSource: workload.spec.runtime weights/mus/sigmas "
               "lists differ in length");
  r.classes.clear();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r.classes.push_back(RuntimeClass{weights[i], mus[i], sigmas[i]});
  }
  r.min_runtime =
      get_time(config, "workload.spec.runtime.min_runtime", r.min_runtime);
  r.max_runtime =
      get_time(config, "workload.spec.runtime.max_runtime", r.max_runtime);

  EstimateModel& e = spec.estimate;
  e.p_exact = config.get_double("workload.spec.estimate.p_exact", e.p_exact);
  e.factor_mu =
      config.get_double("workload.spec.estimate.factor_mu", e.factor_mu);
  e.factor_sigma =
      config.get_double("workload.spec.estimate.factor_sigma", e.factor_sigma);
  e.round_to_nice =
      config.get_bool("workload.spec.estimate.round_to_nice", e.round_to_nice);
  e.max_requested =
      get_time(config, "workload.spec.estimate.max_requested", e.max_requested);
  return spec;
}

void spec_to_config(const WorkloadSpec& spec, util::Config& config) {
  config.set("workload.spec.name", spec.name);
  config.set("workload.spec.cpus", std::to_string(spec.cpus));
  config.set("workload.spec.num_jobs", std::to_string(spec.num_jobs));

  const ArrivalModel& a = spec.arrival;
  config.set("workload.spec.arrival.load_target",
             util::config_double(a.load_target));
  config.set("workload.spec.arrival.burst_probability",
             util::config_double(a.burst_probability));
  config.set("workload.spec.arrival.burst_gap_mean",
             util::config_double(a.burst_gap_mean));
  config.set("workload.spec.arrival.daily_amplitude",
             util::config_double(a.daily_amplitude));
  config.set("workload.spec.arrival.peak_hour",
             util::config_double(a.peak_hour));

  const SizeModel& s = spec.size;
  config.set("workload.spec.size.p_sequential",
             util::config_double(s.p_sequential));
  config.set("workload.spec.size.min_size", std::to_string(s.min_size));
  config.set("workload.spec.size.max_size", std::to_string(s.max_size));
  config.set("workload.spec.size.log2_mean", util::config_double(s.log2_mean));
  config.set("workload.spec.size.log2_sigma",
             util::config_double(s.log2_sigma));
  config.set("workload.spec.size.p_power_of_two",
             util::config_double(s.p_power_of_two));

  std::vector<double> weights;
  std::vector<double> mus;
  std::vector<double> sigmas;
  for (const RuntimeClass& klass : spec.runtime.classes) {
    weights.push_back(klass.weight);
    mus.push_back(klass.mu);
    sigmas.push_back(klass.sigma);
  }
  config.set("workload.spec.runtime.weights", util::config_double_list(weights));
  config.set("workload.spec.runtime.mus", util::config_double_list(mus));
  config.set("workload.spec.runtime.sigmas", util::config_double_list(sigmas));
  config.set("workload.spec.runtime.min_runtime",
             std::to_string(spec.runtime.min_runtime));
  config.set("workload.spec.runtime.max_runtime",
             std::to_string(spec.runtime.max_runtime));

  const EstimateModel& e = spec.estimate;
  config.set("workload.spec.estimate.p_exact", util::config_double(e.p_exact));
  config.set("workload.spec.estimate.factor_mu",
             util::config_double(e.factor_mu));
  config.set("workload.spec.estimate.factor_sigma",
             util::config_double(e.factor_sigma));
  config.set("workload.spec.estimate.round_to_nice",
             e.round_to_nice ? "true" : "false");
  config.set("workload.spec.estimate.max_requested",
             std::to_string(e.max_requested));
}

}  // namespace

WorkloadSource WorkloadSource::from_archive(Archive archive, std::int32_t jobs,
                                            std::uint64_t seed) {
  WorkloadSource source;
  source.kind = Kind::kArchive;
  source.archive = archive;
  source.jobs = jobs;
  source.seed = seed;
  return source;
}

WorkloadSource WorkloadSource::from_swf(std::string path, std::int32_t jobs,
                                        std::int32_t cpus) {
  WorkloadSource source;
  source.kind = Kind::kSwf;
  source.path = std::move(path);
  source.jobs = jobs;
  source.cpus = cpus;
  return source;
}

WorkloadSource WorkloadSource::from_spec(WorkloadSpec spec,
                                         std::uint64_t seed) {
  WorkloadSource source;
  source.kind = Kind::kInline;
  source.spec = std::move(spec);
  source.jobs = 0;  // defer to spec.num_jobs
  source.seed = seed;
  return source;
}

Workload load_source(const WorkloadSource& source, CleanReport* clean_report) {
  Workload workload;
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive: {
      BSLD_REQUIRE(source.jobs > 0,
                   "load_source(): archive sources need jobs > 0");
      workload = source.seed == 0
                     ? make_archive_workload(source.archive, source.jobs)
                     : generate(archive_spec(source.archive, source.jobs),
                                source.seed);
      if (clean_report) {
        *clean_report = CleanReport{};
        clean_report->kept = workload.jobs.size();
      }
      return workload;
    }
    case WorkloadSource::Kind::kSwf: {
      const SwfTrace trace = load_swf_file(source.path);
      if (trace.skipped_lines != 0) {
        BSLD_LOG_WARN() << "SWF: " << source.path << ": skipped "
                        << trace.skipped_lines
                        << " malformed/unusable record(s) (parse with "
                           "SwfOptions{.strict = true} to reject the file)";
      }
      workload.name = source.path;
      workload.cpus = source.cpus > 0 ? source.cpus
                                      : trace.max_procs(/*fallback=*/1024);
      workload.jobs = trace.jobs;
      CleanOptions options;
      options.machine_cpus = workload.cpus;
      const CleanReport report = clean(workload, options);
      if (clean_report) *clean_report = report;
      if (source.jobs > 0 &&
          static_cast<std::size_t>(source.jobs) < workload.jobs.size()) {
        workload = slice(workload, 0, static_cast<std::size_t>(source.jobs));
      }
      return workload;
    }
    case WorkloadSource::Kind::kInline: {
      WorkloadSpec spec = source.spec;
      if (source.jobs > 0) spec.num_jobs = source.jobs;
      workload = generate(spec, source.seed);
      if (clean_report) {
        *clean_report = CleanReport{};
        clean_report->kept = workload.jobs.size();
      }
      return workload;
    }
  }
  throw Error("load_source(): invalid source kind");
}

std::string source_label(const WorkloadSource& source) {
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive: return archive_name(source.archive);
    case WorkloadSource::Kind::kSwf: return source.path;
    case WorkloadSource::Kind::kInline: return source.spec.name;
  }
  return "?";
}

std::uint64_t source_seed(const WorkloadSource& source) {
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      return source.seed == 0 ? archive_seed(source.archive) : source.seed;
    case WorkloadSource::Kind::kSwf:
      return fnv1a(source.path) ^ source.seed;
    case WorkloadSource::Kind::kInline:
      return source.seed;
  }
  return 0;
}

WorkloadSource resolve_source(const std::string& name_or_path,
                              std::int32_t jobs, std::uint64_t seed) {
  for (const Archive archive : all_archives()) {
    if (archive_name(archive) == name_or_path) {
      // jobs <= 0 means "whole file" for SWF sources but is meaningless for
      // a generator; fall back to the paper's slice length so switching a
      // whole-file spec to an archive name keeps working.
      return WorkloadSource::from_archive(archive, jobs > 0 ? jobs : 5000,
                                          seed);
    }
  }
  WorkloadSource source = WorkloadSource::from_swf(name_or_path, jobs);
  source.seed = seed;
  return source;
}

WorkloadSource source_from_config(const util::Config& config) {
  WorkloadSource source;
  source.kind = kind_from_name(config.get_string("workload.source", "archive"));
  // Kind-appropriate default, matching the factory functions: generated
  // archives default to the paper's 5000-job slices, SWF files to "whole
  // file" and inline specs to their own num_jobs (both jobs = 0).
  source.jobs = source.kind == WorkloadSource::Kind::kArchive ? 5000 : 0;
  source.jobs = static_cast<std::int32_t>(
      config.get_int("workload.jobs", source.jobs));
  source.seed = get_seed(config);
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      source.archive =
          archive_from_name(config.get_string("workload.archive", "CTC"));
      break;
    case WorkloadSource::Kind::kSwf:
      source.path = config.get_string("workload.path", "");
      BSLD_REQUIRE(!source.path.empty(),
                   "WorkloadSource: swf source needs workload.path");
      source.cpus = static_cast<std::int32_t>(
          config.get_int("workload.cpus", source.cpus));
      break;
    case WorkloadSource::Kind::kInline:
      source.spec = spec_from_config(config);
      break;
  }
  return source;
}

void source_to_config(const WorkloadSource& source, util::Config& config) {
  config.set("workload.source", kind_name(source.kind));
  config.set("workload.jobs", std::to_string(source.jobs));
  config.set("workload.seed", std::to_string(source.seed));
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      config.set("workload.archive", archive_name(source.archive));
      break;
    case WorkloadSource::Kind::kSwf:
      config.set("workload.path", source.path);
      config.set("workload.cpus", std::to_string(source.cpus));
      break;
    case WorkloadSource::Kind::kInline:
      spec_to_config(source.spec, config);
      break;
  }
}

}  // namespace bsld::wl
