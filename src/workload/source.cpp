#include "workload/source.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parse.hpp"
#include "workload/swf.hpp"

namespace bsld::wl {

namespace {

/// Reorder window for streaming SWF files. Archives are sorted by submit
/// time by convention; the window absorbs local jitter (ties resolved by
/// logging order, clock skews) while keeping memory bounded. A record out
/// of order by more than this many positions makes SortingJobStream throw.
constexpr std::size_t kSwfSortWindow = std::size_t{1} << 16;

const char* kind_name(WorkloadSource::Kind kind) {
  switch (kind) {
    case WorkloadSource::Kind::kArchive: return "archive";
    case WorkloadSource::Kind::kSwf: return "swf";
    case WorkloadSource::Kind::kInline: return "inline";
  }
  return "?";
}

WorkloadSource::Kind kind_from_name(const std::string& name) {
  if (name == "archive") return WorkloadSource::Kind::kArchive;
  if (name == "swf") return WorkloadSource::Kind::kSwf;
  if (name == "inline") return WorkloadSource::Kind::kInline;
  throw Error("WorkloadSource: unknown workload.source kind `" + name +
              "` (expected archive, swf or inline)");
}

/// FNV-1a: a platform-independent path hash, so SWF-derived auxiliary
/// randomness is reproducible across machines (std::hash is not).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Time get_time(const util::Config& config, const std::string& key,
              Time fallback) {
  return static_cast<Time>(config.get_int(key, fallback));
}

/// Seeds span the full uint64 range, which Config::get_int (int64) cannot
/// represent; parse the raw text instead so every saved seed replays.
std::uint64_t get_seed(const util::Config& config) {
  const std::string text = config.get_string("workload.seed", "0");
  const std::optional<std::uint64_t> seed = util::parse_uint(text);
  if (!seed) {
    throw Error("WorkloadSource: workload.seed is not a 64-bit unsigned "
                "integer: " + text);
  }
  return *seed;
}

/// `workload.spec.*` keys <-> WorkloadSpec. The runtime mixture is stored
/// as three parallel lists (weights/mus/sigmas).
WorkloadSpec spec_from_config(const util::Config& config) {
  const WorkloadSpec defaults;
  WorkloadSpec spec;
  spec.name = config.get_string("workload.spec.name", defaults.name);
  spec.cpus = static_cast<std::int32_t>(
      config.get_int("workload.spec.cpus", defaults.cpus));
  spec.num_jobs = config.get_int("workload.spec.num_jobs", defaults.num_jobs);

  ArrivalModel& a = spec.arrival;
  a.load_target =
      config.get_double("workload.spec.arrival.load_target", a.load_target);
  a.burst_probability = config.get_double(
      "workload.spec.arrival.burst_probability", a.burst_probability);
  a.burst_gap_mean =
      config.get_double("workload.spec.arrival.burst_gap_mean", a.burst_gap_mean);
  a.daily_amplitude = config.get_double("workload.spec.arrival.daily_amplitude",
                                        a.daily_amplitude);
  a.peak_hour = config.get_double("workload.spec.arrival.peak_hour", a.peak_hour);

  SizeModel& s = spec.size;
  s.p_sequential =
      config.get_double("workload.spec.size.p_sequential", s.p_sequential);
  s.min_size = static_cast<std::int32_t>(
      config.get_int("workload.spec.size.min_size", s.min_size));
  s.max_size = static_cast<std::int32_t>(
      config.get_int("workload.spec.size.max_size", s.max_size));
  s.log2_mean = config.get_double("workload.spec.size.log2_mean", s.log2_mean);
  s.log2_sigma = config.get_double("workload.spec.size.log2_sigma", s.log2_sigma);
  s.p_power_of_two =
      config.get_double("workload.spec.size.p_power_of_two", s.p_power_of_two);

  RuntimeModel& r = spec.runtime;
  std::vector<double> weights;
  std::vector<double> mus;
  std::vector<double> sigmas;
  for (const RuntimeClass& klass : defaults.runtime.classes) {
    weights.push_back(klass.weight);
    mus.push_back(klass.mu);
    sigmas.push_back(klass.sigma);
  }
  weights = config.get_double_list("workload.spec.runtime.weights", weights);
  mus = config.get_double_list("workload.spec.runtime.mus", mus);
  sigmas = config.get_double_list("workload.spec.runtime.sigmas", sigmas);
  BSLD_REQUIRE(weights.size() == mus.size() && mus.size() == sigmas.size(),
               "WorkloadSource: workload.spec.runtime weights/mus/sigmas "
               "lists differ in length");
  r.classes.clear();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r.classes.push_back(RuntimeClass{weights[i], mus[i], sigmas[i]});
  }
  r.min_runtime =
      get_time(config, "workload.spec.runtime.min_runtime", r.min_runtime);
  r.max_runtime =
      get_time(config, "workload.spec.runtime.max_runtime", r.max_runtime);

  EstimateModel& e = spec.estimate;
  e.p_exact = config.get_double("workload.spec.estimate.p_exact", e.p_exact);
  e.factor_mu =
      config.get_double("workload.spec.estimate.factor_mu", e.factor_mu);
  e.factor_sigma =
      config.get_double("workload.spec.estimate.factor_sigma", e.factor_sigma);
  e.round_to_nice =
      config.get_bool("workload.spec.estimate.round_to_nice", e.round_to_nice);
  e.max_requested =
      get_time(config, "workload.spec.estimate.max_requested", e.max_requested);
  return spec;
}

void spec_to_config(const WorkloadSpec& spec, util::Config& config) {
  config.set("workload.spec.name", spec.name);
  config.set("workload.spec.cpus", std::to_string(spec.cpus));
  config.set("workload.spec.num_jobs", std::to_string(spec.num_jobs));

  const ArrivalModel& a = spec.arrival;
  config.set("workload.spec.arrival.load_target",
             util::config_double(a.load_target));
  config.set("workload.spec.arrival.burst_probability",
             util::config_double(a.burst_probability));
  config.set("workload.spec.arrival.burst_gap_mean",
             util::config_double(a.burst_gap_mean));
  config.set("workload.spec.arrival.daily_amplitude",
             util::config_double(a.daily_amplitude));
  config.set("workload.spec.arrival.peak_hour",
             util::config_double(a.peak_hour));

  const SizeModel& s = spec.size;
  config.set("workload.spec.size.p_sequential",
             util::config_double(s.p_sequential));
  config.set("workload.spec.size.min_size", std::to_string(s.min_size));
  config.set("workload.spec.size.max_size", std::to_string(s.max_size));
  config.set("workload.spec.size.log2_mean", util::config_double(s.log2_mean));
  config.set("workload.spec.size.log2_sigma",
             util::config_double(s.log2_sigma));
  config.set("workload.spec.size.p_power_of_two",
             util::config_double(s.p_power_of_two));

  std::vector<double> weights;
  std::vector<double> mus;
  std::vector<double> sigmas;
  for (const RuntimeClass& klass : spec.runtime.classes) {
    weights.push_back(klass.weight);
    mus.push_back(klass.mu);
    sigmas.push_back(klass.sigma);
  }
  config.set("workload.spec.runtime.weights", util::config_double_list(weights));
  config.set("workload.spec.runtime.mus", util::config_double_list(mus));
  config.set("workload.spec.runtime.sigmas", util::config_double_list(sigmas));
  config.set("workload.spec.runtime.min_runtime",
             std::to_string(spec.runtime.min_runtime));
  config.set("workload.spec.runtime.max_runtime",
             std::to_string(spec.runtime.max_runtime));

  const EstimateModel& e = spec.estimate;
  config.set("workload.spec.estimate.p_exact", util::config_double(e.p_exact));
  config.set("workload.spec.estimate.factor_mu",
             util::config_double(e.factor_mu));
  config.set("workload.spec.estimate.factor_sigma",
             util::config_double(e.factor_sigma));
  config.set("workload.spec.estimate.round_to_nice",
             e.round_to_nice ? "true" : "false");
  config.set("workload.spec.estimate.max_requested",
             std::to_string(e.max_requested));
}

/// JobStream facade over an SwfRecordStream owned by the enclosing
/// SwfSourceStream (which also owns the file handle). Optionally replays
/// one record that was pulled ahead to resolve MaxProcs.
class RecordAdapter final : public JobStream {
 public:
  RecordAdapter(SwfRecordStream* records, const std::string* name,
                std::int32_t cpus, std::optional<Job> pending)
      : records_(records), name_(name), cpus_(cpus),
        pending_(std::move(pending)) {}

  std::optional<Job> next() override {
    if (pending_) {
      std::optional<Job> job = std::move(pending_);
      pending_.reset();
      return job;
    }
    return records_->next();
  }
  [[nodiscard]] const std::string& name() const override { return *name_; }
  [[nodiscard]] std::int32_t cpus() const override { return cpus_; }

 private:
  SwfRecordStream* records_;
  const std::string* name_;
  std::int32_t cpus_ = 0;
  std::optional<Job> pending_;
};

/// Streaming kSwf pipeline: file → incremental parse → bounded (submit, id)
/// sort → incremental clean → truncate/rebase. Matches the materialized
/// parse_swf → stable_sort → clean → slice pipeline byte for byte: the
/// cleaning rules applied here are per-record (flurry removal is off on
/// this path), so they commute with the sort, and the truncation/rebase
/// decision is made from a counting pre-pass over the whole file exactly
/// when `source.jobs` would have sliced the materialized trace.
class SwfSourceStream final : public JobStream {
 public:
  SwfSourceStream(const WorkloadSource& source, CleanReport* clean_report)
      : name_(source.path), limit_(source.jobs),
        report_out_(clean_report) {
    if (limit_ > 0) {
      // Counting pre-pass: whole-file clean counters (the report the
      // materialized path computes before slicing), the full header, and
      // the kept-record total that decides truncation + rebase. O(1)
      // memory — nothing is retained but counters.
      std::ifstream in(name_);
      BSLD_REQUIRE(in.good(), "SWF: cannot open file `" + name_ + "`");
      SwfRecordStream records(in);
      std::optional<Job> first = records.next();
      cpus_ = source.cpus > 0 ? source.cpus : records.max_procs(1024);
      JobCleaner counter(clean_options());
      while (first) {
        counter.accept(std::move(*first));
        first = records.next();
      }
      warn_skipped(records.skipped_lines());
      total_kept_ = static_cast<std::int64_t>(counter.report().kept);
      rebase_ = total_kept_ > limit_;
      if (report_out_) *report_out_ = counter.report();
      open_data_pass(source);
    } else {
      open_data_pass(source);
    }
  }

  std::optional<Job> next() override {
    if (done_) return std::nullopt;
    if (limit_ > 0 && emitted_ >= std::min(limit_, total_kept_)) {
      finish();
      return std::nullopt;
    }
    while (std::optional<Job> raw = sorter_->next()) {
      std::optional<Job> cleaned = cleaner_->accept(std::move(*raw));
      if (!cleaned) continue;
      Job job = *cleaned;
      if (rebase_) {
        if (emitted_ == 0) base_ = job.submit;
        job.submit -= base_;
      }
      ++emitted_;
      return job;
    }
    finish();
    return std::nullopt;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::int32_t cpus() const override { return cpus_; }
  [[nodiscard]] std::int64_t size_hint() const override {
    // Known exactly after a counting pre-pass; unknown for whole-file
    // streaming (cleaning drops records as they come).
    return limit_ > 0 ? std::min(limit_, total_kept_) : -1;
  }

 private:
  [[nodiscard]] CleanOptions clean_options() const {
    CleanOptions options;
    options.machine_cpus = cpus_;
    return options;
  }

  void warn_skipped(std::size_t skipped) const {
    if (skipped == 0) return;
    BSLD_LOG_WARN() << "SWF: " << name_ << ": skipped " << skipped
                    << " malformed/unusable record(s) (parse with "
                       "SwfOptions{.strict = true} to reject the file)";
  }

  /// Opens the emitting pass: parse in file order, pull one record ahead
  /// when MaxProcs is still unresolved, then sort within the bounded
  /// window and clean incrementally.
  void open_data_pass(const WorkloadSource& source) {
    file_.open(name_);
    BSLD_REQUIRE(file_.good(), "SWF: cannot open file `" + name_ + "`");
    records_.emplace(file_);
    std::optional<Job> pending;
    if (limit_ <= 0) {
      // No pre-pass ran: resolve MaxProcs from the header block before the
      // first data record (the SWF convention).
      pending = records_->next();
      cpus_ = source.cpus > 0 ? source.cpus : records_->max_procs(1024);
    }
    sorter_.emplace(
        std::make_unique<RecordAdapter>(&*records_, &name_, cpus_,
                                        std::move(pending)),
        kSwfSortWindow);
    cleaner_.emplace(clean_options());
  }

  void finish() {
    if (done_) return;
    done_ = true;
    if (limit_ <= 0) {
      // Whole-file streaming: counters and skip totals only complete now.
      warn_skipped(records_->skipped_lines());
      if (report_out_) *report_out_ = cleaner_->report();
    }
  }

  std::string name_;
  std::int64_t limit_ = 0;
  CleanReport* report_out_ = nullptr;
  std::int32_t cpus_ = 0;
  std::int64_t total_kept_ = 0;
  bool rebase_ = false;

  std::ifstream file_;
  std::optional<SwfRecordStream> records_;
  std::optional<SortingJobStream> sorter_;
  std::optional<JobCleaner> cleaner_;
  std::int64_t emitted_ = 0;
  Time base_ = 0;
  bool done_ = false;
};

}  // namespace

WorkloadSource WorkloadSource::from_archive(Archive archive, std::int64_t jobs,
                                            std::uint64_t seed) {
  WorkloadSource source;
  source.kind = Kind::kArchive;
  source.archive = archive;
  source.jobs = jobs;
  source.seed = seed;
  return source;
}

WorkloadSource WorkloadSource::from_swf(std::string path, std::int64_t jobs,
                                        std::int32_t cpus) {
  WorkloadSource source;
  source.kind = Kind::kSwf;
  source.path = std::move(path);
  source.jobs = jobs;
  source.cpus = cpus;
  return source;
}

WorkloadSource WorkloadSource::from_spec(WorkloadSpec spec,
                                         std::uint64_t seed) {
  WorkloadSource source;
  source.kind = Kind::kInline;
  source.spec = std::move(spec);
  source.jobs = 0;  // defer to spec.num_jobs
  source.seed = seed;
  return source;
}

std::unique_ptr<JobStream> open_stream(const WorkloadSource& source,
                                       CleanReport* clean_report) {
  auto generated = [&](WorkloadSpec spec,
                       std::uint64_t seed) -> std::unique_ptr<JobStream> {
    auto stream = std::make_unique<SyntheticJobStream>(std::move(spec), seed);
    if (clean_report) {
      // Generated traces need no cleaning; every job the stream will yield
      // counts as kept (spec validation already ran in the constructor).
      *clean_report = CleanReport{};
      clean_report->kept = static_cast<std::size_t>(stream->size_hint());
    }
    return stream;
  };
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive: {
      BSLD_REQUIRE(source.jobs > 0,
                   "load_source(): archive sources need jobs > 0");
      const std::uint64_t seed =
          source.seed == 0 ? archive_seed(source.archive) : source.seed;
      return generated(archive_spec(source.archive, source.jobs), seed);
    }
    case WorkloadSource::Kind::kSwf:
      return std::make_unique<SwfSourceStream>(source, clean_report);
    case WorkloadSource::Kind::kInline: {
      WorkloadSpec spec = source.spec;
      if (source.jobs > 0) spec.num_jobs = source.jobs;
      return generated(std::move(spec), source.seed);
    }
  }
  throw Error("load_source(): invalid source kind");
}

Workload load_source(const WorkloadSource& source, CleanReport* clean_report) {
  const std::unique_ptr<JobStream> stream = open_stream(source, clean_report);
  return materialize(*stream);
}

std::string source_label(const WorkloadSource& source) {
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive: return archive_name(source.archive);
    case WorkloadSource::Kind::kSwf: return source.path;
    case WorkloadSource::Kind::kInline: return source.spec.name;
  }
  return "?";
}

std::uint64_t source_seed(const WorkloadSource& source) {
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      return source.seed == 0 ? archive_seed(source.archive) : source.seed;
    case WorkloadSource::Kind::kSwf:
      return fnv1a(source.path) ^ source.seed;
    case WorkloadSource::Kind::kInline:
      return source.seed;
  }
  return 0;
}

WorkloadSource resolve_source(const std::string& name_or_path,
                              std::int64_t jobs, std::uint64_t seed) {
  for (const Archive archive : all_archives()) {
    if (archive_name(archive) == name_or_path) {
      // jobs <= 0 means "whole file" for SWF sources but is meaningless for
      // a generator; fall back to the paper's slice length so switching a
      // whole-file spec to an archive name keeps working.
      return WorkloadSource::from_archive(archive, jobs > 0 ? jobs : 5000,
                                          seed);
    }
  }
  WorkloadSource source = WorkloadSource::from_swf(name_or_path, jobs);
  source.seed = seed;
  return source;
}

WorkloadSource source_from_config(const util::Config& config) {
  WorkloadSource source;
  source.kind = kind_from_name(config.get_string("workload.source", "archive"));
  // Kind-appropriate default, matching the factory functions: generated
  // archives default to the paper's 5000-job slices, SWF files to "whole
  // file" and inline specs to their own num_jobs (both jobs = 0).
  source.jobs = source.kind == WorkloadSource::Kind::kArchive ? 5000 : 0;
  source.jobs = config.get_int("workload.jobs", source.jobs);
  source.seed = get_seed(config);
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      source.archive =
          archive_from_name(config.get_string("workload.archive", "CTC"));
      break;
    case WorkloadSource::Kind::kSwf:
      source.path = config.get_string("workload.path", "");
      BSLD_REQUIRE(!source.path.empty(),
                   "WorkloadSource: swf source needs workload.path");
      source.cpus = static_cast<std::int32_t>(
          config.get_int("workload.cpus", source.cpus));
      break;
    case WorkloadSource::Kind::kInline:
      source.spec = spec_from_config(config);
      break;
  }
  return source;
}

void source_to_config(const WorkloadSource& source, util::Config& config) {
  config.set("workload.source", kind_name(source.kind));
  config.set("workload.jobs", std::to_string(source.jobs));
  config.set("workload.seed", std::to_string(source.seed));
  switch (source.kind) {
    case WorkloadSource::Kind::kArchive:
      config.set("workload.archive", archive_name(source.archive));
      break;
    case WorkloadSource::Kind::kSwf:
      config.set("workload.path", source.path);
      config.set("workload.cpus", std::to_string(source.cpus));
      break;
    case WorkloadSource::Kind::kInline:
      spec_to_config(source.spec, config);
      break;
  }
}

}  // namespace bsld::wl
