/// \file source.hpp
/// \brief Open workload sources: where a trace comes from, declaratively.
///
/// Every experiment in this library consumes a wl::Workload; a
/// WorkloadSource describes *how to obtain one* — and unlike the closed
/// Archive enum, it is open to the outside world:
///
///  * kArchive — one of the five calibrated synthetic archive models
///    (archives.hpp), optionally re-seeded;
///  * kSwf     — a Standard Workload Format file on disk, loaded, cleaned
///    and sliced through the same pipeline the paper's "cleaned logs" went
///    through;
///  * kInline  — an arbitrary generator profile (synthetic.hpp) plus a
///    seed, for workloads no archive models.
///
/// open_stream() is the single acquisition point: it yields a pull-based
/// JobStream (stream.hpp) so SWF cleaning and slicing logic lives in
/// exactly one place and million-job traces never need to be materialized.
/// load_source() is its drain — open_stream() + materialize() — kept for
/// every consumer that wants random access; both paths produce identical
/// bytes by construction. Sources serialize to util::Config (`workload.*`
/// keys) as part of report::RunSpec's round-trippable form.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/config.hpp"
#include "workload/archives.hpp"
#include "workload/cleaner.hpp"
#include "workload/stream.hpp"
#include "workload/synthetic.hpp"

namespace bsld::wl {

/// Declarative description of where a workload comes from.
struct WorkloadSource {
  enum class Kind { kArchive, kSwf, kInline };

  Kind kind = Kind::kArchive;
  /// kArchive: which calibrated model.
  Archive archive = Archive::kCTC;
  /// kSwf: path to the trace file.
  std::string path;
  /// kInline: the generator profile (its num_jobs yields to `jobs` > 0).
  WorkloadSpec spec;
  /// Trace length in jobs. For kSwf, 0 means the whole file; for the
  /// generated kinds it must be positive (falls back to spec.num_jobs for
  /// kInline when 0). 64-bit: streaming sources scale past the old int32
  /// trace-length ceiling.
  std::int64_t jobs = 5000;
  /// Generator seed; 0 means the archive's canonical seed (kArchive) or
  /// the literal seed 0 (kInline). Ignored for kSwf.
  std::uint64_t seed = 0;
  /// kSwf: machine size override; 0 uses the trace's MaxProcs directive
  /// (fallback 1024). Ignored for the generated kinds.
  std::int32_t cpus = 0;

  static WorkloadSource from_archive(Archive archive, std::int64_t jobs = 5000,
                                     std::uint64_t seed = 0);
  static WorkloadSource from_swf(std::string path, std::int64_t jobs = 0,
                                 std::int32_t cpus = 0);
  static WorkloadSource from_spec(WorkloadSpec spec, std::uint64_t seed = 0);

  friend bool operator==(const WorkloadSource&, const WorkloadSource&) =
      default;
};

/// Opens the source as a pull-based stream in strict (submit, id) order —
/// the lazy counterpart of load_source(), identical bytes guaranteed.
/// Generated kinds (kArchive, kInline) stream straight from the arrival
/// process in O(1) memory. kSwf streams the file through an incremental
/// parse → bounded sort → clean pipeline; when `source.jobs` truncates the
/// trace, a counting pre-pass over the file determines the slice length and
/// submit rebase up front (O(file) time, O(1) memory), so the emitted jobs
/// match the materialized parse → sort → clean → slice pipeline exactly.
/// MaxProcs is resolved from the header block preceding the first data
/// record (where the SWF convention puts it).
///
/// `clean_report`, when non-null, is written by the time the stream is
/// exhausted (for truncated kSwf sources: already at open; counters always
/// cover the whole file, as in load_source()). Throws bsld::Error on
/// unreadable files or invalid generator parameters.
std::unique_ptr<JobStream> open_stream(const WorkloadSource& source,
                                       CleanReport* clean_report = nullptr);

/// Materializes the source: open_stream() drained into a Workload.
/// Deterministic: equal sources yield identical workloads. For kSwf the
/// trace is loaded, cleaned (invalid records dropped, sizes clamped to the
/// machine) and sliced to `jobs`; the cleaning outcome is written to
/// `*clean_report` when non-null (generated kinds report all jobs kept).
/// Throws bsld::Error on unreadable files or invalid generator parameters.
Workload load_source(const WorkloadSource& source,
                     CleanReport* clean_report = nullptr);

/// Short display name: archive name, SWF path, or the inline spec's name.
std::string source_label(const WorkloadSource& source);

/// Effective seed of the source: the canonical archive seed or the explicit
/// override for generated kinds, a path hash for SWF files. Experiments
/// derive auxiliary randomness (e.g. per-job beta sampling) from this so
/// equal sources stay bit-identical.
std::uint64_t source_seed(const WorkloadSource& source);

/// CLI convenience: a string naming an archive model resolves to kArchive,
/// anything else is treated as an SWF file path.
WorkloadSource resolve_source(const std::string& name_or_path,
                              std::int64_t jobs = 5000, std::uint64_t seed = 0);

/// Reads a source from `workload.*` config keys (see source_to_config).
/// Throws bsld::Error on an unknown `workload.source` kind or archive name.
WorkloadSource source_from_config(const util::Config& config);

/// Writes the canonical `workload.*` keys for the source: exactly the keys
/// its kind needs, values in canonical form, so
/// source_from_config(to_config(s)) == s and re-serialization is
/// byte-identical.
void source_to_config(const WorkloadSource& source, util::Config& config);

}  // namespace bsld::wl
