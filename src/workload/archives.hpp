/// \file archives.hpp
/// \brief Generator profiles standing in for the paper's five Parallel
/// Workload Archive traces (Table 1).
///
/// | Archive            | CPUs | Paper's baseline avg BSLD | Character |
/// |--------------------|------|---------------------------|-----------|
/// | CTC (SP2)          |  430 |  4.66 | many long jobs, many sequential |
/// | SDSC (SP2)         |  128 | 24.91 | saturated; CTC-like runtimes    |
/// | SDSC-Blue          | 1152 |  5.15 | no sequential jobs; >= 8 CPUs   |
/// | LLNL-Thunder       | 4008 |  1.00 | masses of short/small jobs      |
/// | LLNL-Atlas         | 9216 |  1.08 | large parallel jobs             |
///
/// Each profile is calibrated so a 5000-job trace scheduled with plain EASY
/// (no DVFS) lands near the paper's baseline avg BSLD; `bench_table1`
/// reports paper-vs-measured. The seeds below are the library defaults so
/// all experiments agree on the exact trace bytes.
#pragma once

#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace bsld::wl {

/// Stable identifiers for the five modelled archives.
enum class Archive {
  kCTC,
  kSDSC,
  kSDSCBlue,
  kLLNLThunder,
  kLLNLAtlas,
};

/// All archives, in the paper's presentation order.
const std::vector<Archive>& all_archives();

/// Archive display name as used in the paper ("CTC", "SDSC", "SDSCBlue",
/// "LLNLThunder", "LLNLAtlas").
std::string archive_name(Archive archive);

/// Parses a display name back to the enum; throws bsld::Error on unknown.
Archive archive_from_name(const std::string& name);

/// Paper-reported baseline (no-DVFS) average BSLD, for comparison output.
double paper_avg_bsld(Archive archive);

/// Paper-reported machine size.
std::int32_t paper_cpus(Archive archive);

/// The calibrated generator profile for an archive. `num_jobs` defaults to
/// the paper's 5000-job slices.
WorkloadSpec archive_spec(Archive archive, std::int64_t num_jobs = 5000);

/// Default deterministic seed used by benches/tests for this archive.
std::uint64_t archive_seed(Archive archive);

/// Generates the canonical trace for the archive: calibrated spec + default
/// seed. All paper-reproduction benches consume exactly this trace.
Workload make_archive_workload(Archive archive, std::int64_t num_jobs = 5000);

}  // namespace bsld::wl
