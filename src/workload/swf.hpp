/// \file swf.hpp
/// \brief Standard Workload Format (SWF) reader/writer.
///
/// SWF is the trace format of the Parallel Workload Archive the paper takes
/// its five logs from. Each data line has 18 whitespace-separated fields;
/// lines starting with `;` are header comments, some of which are `Key:
/// value` directives (MaxProcs, UnixStartTime, ...). Missing values are -1.
///
/// The reproduction runs on synthetic traces (see archives.hpp), but this
/// module makes real archive logs first-class inputs: any downloaded
/// `*.swf` can be replayed through the identical pipeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace bsld::wl {

/// Result of parsing an SWF stream: jobs plus header directives.
struct SwfTrace {
  std::vector<Job> jobs;
  /// Header directives such as {"MaxProcs", "430"}; keys as written.
  std::map<std::string, std::string> header;
  /// Number of data lines skipped: structurally broken (< 18 fields),
  /// unparsable mandatory fields, or unusable values (id/size <= 0).
  std::size_t skipped_lines = 0;

  /// MaxProcs directive as an integer, or `fallback` when absent/invalid.
  [[nodiscard]] std::int32_t max_procs(std::int32_t fallback) const;
};

/// Parsing behaviour switches.
struct SwfOptions {
  /// Lenient (default): a malformed record — short line or unparsable
  /// mandatory field — is skipped and counted in `skipped_lines`, so one
  /// bad line in a multi-million-job archive cannot abort an hours-long
  /// sweep. Strict: such a record throws bsld::Error naming the line
  /// number. Records whose values are merely unusable (id or size <= 0,
  /// the archives' own convention for cancelled jobs) are skipped and
  /// counted in both modes.
  bool strict = false;
};

/// Incremental SWF record cursor: yields jobs one line at a time, in *file
/// order* (SWF archives are sorted by submit time by convention, but this
/// cursor does not enforce or restore that — wrap it in a
/// wl::SortingJobStream for strict (submit, id) order). Header directives
/// and skip counts accumulate as lines are consumed; both are complete once
/// next() has returned std::nullopt. This is the O(1)-memory primitive
/// under parse_swf() and the streaming half of wl::open_stream().
///
/// The referenced istream must outlive the cursor.
class SwfRecordStream {
 public:
  explicit SwfRecordStream(std::istream& in, const SwfOptions& options = {});

  /// The next usable record, or std::nullopt at end of input. Applies the
  /// same per-record fallbacks and skip/strict rules as parse_swf().
  std::optional<Job> next();

  /// Header directives seen so far (complete after exhaustion; by SWF
  /// convention all of them precede the first data record).
  [[nodiscard]] const std::map<std::string, std::string>& header() const {
    return header_;
  }

  /// Skipped-record count so far (complete after exhaustion).
  [[nodiscard]] std::size_t skipped_lines() const { return skipped_; }

  /// MaxProcs directive seen so far as an integer, or `fallback`.
  [[nodiscard]] std::int32_t max_procs(std::int32_t fallback) const;

 private:
  std::istream* in_;
  SwfOptions options_;
  std::map<std::string, std::string> header_;
  std::size_t skipped_ = 0;
  std::size_t line_no_ = 0;
  std::string line_;
};

/// Parses SWF text. Tolerates missing optional fields (-1): processor count
/// falls back from allocated to requested processors, requested time falls
/// back to the actual runtime. Malformed records are skipped and counted
/// (or rejected with their line number under `options.strict`).
SwfTrace parse_swf(std::istream& in, const SwfOptions& options = {});

/// Convenience overload over a string.
SwfTrace parse_swf_text(const std::string& text,
                        const SwfOptions& options = {});

/// Reads and parses a file. Throws bsld::Error when it cannot be opened.
SwfTrace load_swf_file(const std::string& path,
                       const SwfOptions& options = {});

/// Writes a workload as SWF (18 fields; unknown fields emitted as -1),
/// including a small header with MaxProcs and the workload name.
void write_swf(std::ostream& out, const Workload& workload);

/// Writes to a file. Throws bsld::Error when the file cannot be created.
void save_swf_file(const std::string& path, const Workload& workload);

}  // namespace bsld::wl
