#include "workload/workload_stats.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace bsld::wl {

WorkloadStats compute_stats(const Workload& workload) {
  BSLD_REQUIRE(!workload.jobs.empty(), "compute_stats(): empty workload");
  BSLD_REQUIRE(workload.cpus > 0, "compute_stats(): workload has no cpus");

  WorkloadStats stats;
  stats.jobs = workload.jobs.size();
  double size_sum = 0.0;
  double run_sum = 0.0;
  double req_sum = 0.0;
  double over_sum = 0.0;
  std::size_t sequential = 0;
  std::size_t shorter_than_th = 0;
  for (const Job& job : workload.jobs) {
    size_sum += job.size;
    run_sum += static_cast<double>(job.run_time);
    req_sum += static_cast<double>(job.requested_time);
    if (job.run_time > 0) {
      over_sum += static_cast<double>(job.requested_time) /
                  static_cast<double>(job.run_time);
    }
    if (job.size == 1) ++sequential;
    if (job.run_time < 600) ++shorter_than_th;
    stats.total_core_seconds +=
        static_cast<double>(job.size) * static_cast<double>(job.run_time);
  }
  const auto n = static_cast<double>(stats.jobs);
  stats.mean_size = size_sum / n;
  stats.mean_runtime = run_sum / n;
  stats.mean_requested = req_sum / n;
  stats.mean_overestimation = over_sum / n;
  stats.sequential_fraction = static_cast<double>(sequential) / n;
  stats.short_fraction = static_cast<double>(shorter_than_th) / n;
  stats.span = workload.jobs.back().submit - workload.jobs.front().submit;
  if (stats.span > 0) {
    stats.offered_load = stats.total_core_seconds /
                         (static_cast<double>(workload.cpus) *
                          static_cast<double>(stats.span));
  }
  return stats;
}

std::string to_string(const WorkloadStats& stats) {
  std::ostringstream os;
  os << "jobs=" << stats.jobs
     << " mean_size=" << util::fmt_double(stats.mean_size, 1)
     << " mean_runtime=" << util::fmt_double(stats.mean_runtime, 0) << "s"
     << " seq=" << util::fmt_percent(stats.sequential_fraction)
     << " short(<600s)=" << util::fmt_percent(stats.short_fraction)
     << " offered_load=" << util::fmt_double(stats.offered_load, 3)
     << " overest=" << util::fmt_double(stats.mean_overestimation, 1) << "x";
  return os.str();
}

}  // namespace bsld::wl
