#include "workload/stream.hpp"

#include <algorithm>
#include <tuple>

#include "util/error.hpp"

namespace bsld::wl {

Workload materialize(JobStream& stream) {
  Workload workload;
  workload.name = stream.name();
  workload.cpus = stream.cpus();
  const std::int64_t hint = stream.size_hint();
  if (hint > 0) workload.jobs.reserve(static_cast<std::size_t>(hint));
  while (std::optional<Job> job = stream.next()) {
    workload.jobs.push_back(*job);
  }
  return workload;
}

SortingJobStream::SortingJobStream(std::unique_ptr<JobStream> inner,
                                   std::size_t window)
    : inner_(std::move(inner)), window_(window) {
  BSLD_REQUIRE(inner_ != nullptr, "SortingJobStream: null inner stream");
  BSLD_REQUIRE(window_ > 0, "SortingJobStream: window must be positive");
}

void SortingJobStream::refill() {
  auto after = [](const Pending& a, const Pending& b) {
    return std::tie(a.job.submit, a.job.id, a.seq) >
           std::tie(b.job.submit, b.job.id, b.seq);
  };
  while (!inner_done_ && heap_.size() <= window_) {
    std::optional<Job> job = inner_->next();
    if (!job) {
      inner_done_ = true;
      break;
    }
    heap_.push_back(Pending{*job, next_seq_++});
    std::push_heap(heap_.begin(), heap_.end(), after);
  }
}

std::optional<Job> SortingJobStream::next() {
  refill();
  if (heap_.empty()) return std::nullopt;
  auto after = [](const Pending& a, const Pending& b) {
    return std::tie(a.job.submit, a.job.id, a.seq) >
           std::tie(b.job.submit, b.job.id, b.seq);
  };
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Job job = heap_.back().job;
  heap_.pop_back();
  if (emitted_any_ &&
      std::tie(job.submit, job.id) < std::tie(last_submit_, last_id_)) {
    throw Error("SortingJobStream: record out of order by more than " +
                std::to_string(window_) +
                " positions (job " + std::to_string(job.id) + " at t=" +
                std::to_string(job.submit) + " after t=" +
                std::to_string(last_submit_) + ")");
  }
  emitted_any_ = true;
  last_submit_ = job.submit;
  last_id_ = job.id;
  return job;
}

}  // namespace bsld::wl
