/// \file workload_stats.hpp
/// \brief Descriptive statistics of a workload trace, used by the Table 1
/// bench and by calibration tests.
#pragma once

#include <string>

#include "util/types.hpp"
#include "workload/job.hpp"

namespace bsld::wl {

/// Summary moments of a trace.
struct WorkloadStats {
  std::size_t jobs = 0;
  double mean_size = 0.0;
  double mean_runtime = 0.0;
  double mean_requested = 0.0;
  /// Fraction of 1-CPU jobs.
  double sequential_fraction = 0.0;
  /// Fraction of jobs shorter than the BSLD threshold Th = 600 s.
  double short_fraction = 0.0;
  /// Sum over jobs of size * run_time (core-seconds at top frequency).
  double total_core_seconds = 0.0;
  /// Submit-time span: last submit - first submit, seconds.
  Time span = 0;
  /// total_core_seconds / (cpus * span): the offered load.
  double offered_load = 0.0;
  /// Mean of requested_time / run_time (user overestimation).
  double mean_overestimation = 0.0;
};

/// Computes the summary; throws bsld::Error on an empty workload.
WorkloadStats compute_stats(const Workload& workload);

/// Multi-line human-readable rendering.
std::string to_string(const WorkloadStats& stats);

}  // namespace bsld::wl
