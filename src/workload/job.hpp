/// \file job.hpp
/// \brief Immutable job trace records and the Workload bundle.
///
/// A Job is a row of a (possibly synthetic) workload trace in the spirit of
/// the Standard Workload Format: what the user submitted, when, how long it
/// actually ran at the machine's top frequency, and how long the user
/// *requested* (the runtime estimate backfilling depends on). Per-run state
/// (start time, assigned gear, ...) lives in the simulator, never here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace bsld::wl {

/// One job of a workload trace. Times are whole seconds (SWF convention);
/// `run_time` is the execution time at the top CPU frequency.
struct Job {
  JobId id = kNoJob;            ///< 1-based job number.
  Time submit = 0;              ///< Submission time since trace start.
  Time run_time = 0;            ///< Actual runtime at top frequency.
  Time requested_time = 0;      ///< User's runtime estimate (>= 1).
  std::int32_t size = 1;        ///< Number of processors (rigid job).
  std::int32_t user_id = -1;    ///< Submitting user (for flurry cleaning).
  /// Per-job frequency sensitivity for the beta time model; negative means
  /// "use the platform-wide beta" (the paper's assumption — per-job beta is
  /// its stated future work, exercised by the ablation bench).
  double beta = -1.0;

  friend bool operator==(const Job&, const Job&) = default;
};

/// A named trace plus the machine size it targets.
struct Workload {
  std::string name;
  std::int32_t cpus = 0;        ///< Number of processors of the system.
  std::vector<Job> jobs;        ///< Sorted by (submit, id).
};

}  // namespace bsld::wl
