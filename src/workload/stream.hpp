/// \file stream.hpp
/// \brief Pull-based job streams: the lazy counterpart of wl::Workload.
///
/// A JobStream yields the rows of a trace one at a time, in (submit, id)
/// order, so million-job workloads can flow through the simulation without
/// ever being materialized. Every producer in this library — the synthetic
/// generator, the streaming SWF reader, the archive profiles — implements
/// this interface; wl::load_source() is a thin materialize() wrapper over
/// wl::open_stream(), which is how the eager and streaming paths are kept
/// byte-identical (see docs/simulation-internals.md, "Job ingestion &
/// streaming").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace bsld::wl {

/// A pull-based source of jobs in strict (submit, id) order.
///
/// Contract: next() returns each job exactly once, non-decreasing in
/// (submit, id); after the first empty optional the stream is exhausted and
/// stays exhausted. name()/cpus() are stable across the whole drain.
/// Streams are single-pass and not thread-safe.
class JobStream {
 public:
  virtual ~JobStream() = default;

  /// The next job of the trace, or std::nullopt when exhausted.
  virtual std::optional<Job> next() = 0;

  /// Display name of the trace (Workload::name of the materialized form).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Machine size the trace targets (Workload::cpus).
  [[nodiscard]] virtual std::int32_t cpus() const = 0;

  /// Total number of jobs the stream will yield, or -1 when that is not
  /// known ahead of time (e.g. an SWF file cleaned on the fly). When
  /// non-negative the hint is exact.
  [[nodiscard]] virtual std::int64_t size_hint() const { return -1; }
};

/// Adapts an already-materialized Workload (moved in) to the stream
/// interface — the bridge for consumers that only speak JobStream.
class VectorJobStream final : public JobStream {
 public:
  explicit VectorJobStream(Workload workload)
      : workload_(std::move(workload)) {}

  std::optional<Job> next() override {
    if (next_ >= workload_.jobs.size()) return std::nullopt;
    return workload_.jobs[next_++];
  }
  [[nodiscard]] const std::string& name() const override {
    return workload_.name;
  }
  [[nodiscard]] std::int32_t cpus() const override { return workload_.cpus; }
  [[nodiscard]] std::int64_t size_hint() const override {
    return static_cast<std::int64_t>(workload_.jobs.size());
  }

 private:
  Workload workload_;
  std::size_t next_ = 0;
};

/// Non-owning counterpart of VectorJobStream: streams a Workload the
/// caller keeps alive (no copy). The simulation's materialized constructor
/// routes through this so the windowed streaming machinery is the only
/// execution path. The referenced workload must outlive the stream.
class WorkloadViewStream final : public JobStream {
 public:
  explicit WorkloadViewStream(const Workload& workload)
      : workload_(&workload) {}

  std::optional<Job> next() override {
    if (next_ >= workload_->jobs.size()) return std::nullopt;
    return workload_->jobs[next_++];
  }
  [[nodiscard]] const std::string& name() const override {
    return workload_->name;
  }
  [[nodiscard]] std::int32_t cpus() const override { return workload_->cpus; }
  [[nodiscard]] std::int64_t size_hint() const override {
    return static_cast<std::int64_t>(workload_->jobs.size());
  }

 private:
  const Workload* workload_;
  std::size_t next_ = 0;
};

/// Drains a stream into a materialized Workload. The inverse of
/// VectorJobStream; load_source() is exactly open_stream() + materialize().
Workload materialize(JobStream& stream);

/// Re-orders a nearly-sorted inner stream into strict (submit, id) order
/// through a bounded min-heap of `window` pending jobs. Ties on
/// (submit, id) keep the inner stream's arrival order — the streaming
/// equivalent of a stable_sort. Memory is O(window), not O(jobs).
///
/// If the inner stream is out of order by more than `window` positions the
/// violation is detected at emission time and next() throws bsld::Error —
/// silently emitting a time-travelling job would corrupt the simulation's
/// causality downstream.
class SortingJobStream final : public JobStream {
 public:
  SortingJobStream(std::unique_ptr<JobStream> inner, std::size_t window);

  std::optional<Job> next() override;
  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] std::int32_t cpus() const override { return inner_->cpus(); }
  [[nodiscard]] std::int64_t size_hint() const override {
    return inner_->size_hint();
  }

 private:
  struct Pending {
    Job job;
    std::uint64_t seq = 0;  ///< Arrival order; stable_sort tie-break.
  };

  void refill();

  std::unique_ptr<JobStream> inner_;
  std::size_t window_;
  std::vector<Pending> heap_;  ///< Min-heap on (submit, id, seq).
  std::uint64_t next_seq_ = 0;
  bool inner_done_ = false;
  bool emitted_any_ = false;
  Time last_submit_ = 0;
  JobId last_id_ = 0;
};

}  // namespace bsld::wl
