#include "workload/swf.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <tuple>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::wl {

namespace {

/// Parses one signed integer token; returns false on garbage.
bool parse_int(std::string_view token, std::int64_t& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

/// SWF allows fractional seconds in some fields; accept and truncate.
bool parse_time_like(std::string_view token, std::int64_t& out) {
  if (parse_int(token, out)) return true;
  const std::optional<double> value = util::parse_double(token);
  if (!value) return false;
  // Truncating a double outside int64's range is undefined behaviour;
  // such a "time" is a malformed field, not a usable record. 2^63 is
  // exactly representable, so these bounds are precise.
  if (*value < -9223372036854775808.0 || *value >= 9223372036854775808.0) {
    return false;
  }
  out = static_cast<std::int64_t>(*value);
  return true;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

void parse_header_line(std::string_view line,
                       std::map<std::string, std::string>& header) {
  // `; Key: value` — anything else is free-form commentary.
  std::size_t i = 1;  // past ';'
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  const auto colon = line.find(':', i);
  if (colon == std::string_view::npos) return;
  std::string key(line.substr(i, colon - i));
  if (key.empty() ||
      !std::all_of(key.begin(), key.end(), [](unsigned char c) {
        return std::isalnum(c) || c == '_' || c == '-' || c == ' ';
      })) {
    return;
  }
  while (!key.empty() && key.back() == ' ') key.pop_back();
  std::size_t v = colon + 1;
  while (v < line.size() && std::isspace(static_cast<unsigned char>(line[v]))) {
    ++v;
  }
  std::string value(line.substr(v));
  while (!value.empty() &&
         std::isspace(static_cast<unsigned char>(value.back()))) {
    value.pop_back();
  }
  if (!header.contains(key)) header.emplace(std::move(key), std::move(value));
}

}  // namespace

std::int32_t SwfTrace::max_procs(std::int32_t fallback) const {
  const auto it = header.find("MaxProcs");
  if (it == header.end()) return fallback;
  std::int64_t value = 0;
  if (!parse_int(it->second, value) || value <= 0) return fallback;
  return static_cast<std::int32_t>(value);
}

SwfRecordStream::SwfRecordStream(std::istream& in, const SwfOptions& options)
    : in_(&in), options_(options) {}

std::int32_t SwfRecordStream::max_procs(std::int32_t fallback) const {
  const auto it = header_.find("MaxProcs");
  if (it == header_.end()) return fallback;
  std::int64_t value = 0;
  if (!parse_int(it->second, value) || value <= 0) return fallback;
  return static_cast<std::int32_t>(value);
}

std::optional<Job> SwfRecordStream::next() {
  while (std::getline(*in_, line_)) {
    ++line_no_;
    // Strip trailing CR from CRLF files.
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    std::string_view view(line_);
    std::size_t first = 0;
    while (first < view.size() &&
           std::isspace(static_cast<unsigned char>(view[first]))) {
      ++first;
    }
    if (first == view.size()) continue;  // blank
    if (view[first] == ';') {
      parse_header_line(view.substr(first), header_);
      continue;
    }

    const auto fields = split_fields(view);
    if (fields.size() < 18) {
      // A malformed record must not abort the whole archive mid-sweep:
      // skip and count it, unless the caller asked for strict validation.
      BSLD_REQUIRE(!options_.strict,
                   "SWF: line " + std::to_string(line_no_) + " has only " +
                       std::to_string(fields.size()) + " fields (expected 18)");
      ++skipped_;
      continue;
    }

    // Field indices per SWF definition (0-based here).
    std::int64_t id = 0, submit = 0, run = 0, alloc = 0, req_procs = 0,
                 req_time = 0, user = 0;
    const bool ok = parse_int(fields[0], id) &&
                    parse_time_like(fields[1], submit) &&
                    parse_time_like(fields[3], run) &&
                    parse_int(fields[4], alloc) &&
                    parse_int(fields[7], req_procs) &&
                    parse_time_like(fields[8], req_time) &&
                    parse_int(fields[11], user);
    if (!ok) {
      BSLD_REQUIRE(!options_.strict,
                   "SWF: line " + std::to_string(line_no_) +
                       " has an unparsable mandatory field");
      ++skipped_;
      continue;
    }

    Job job;
    job.id = id;
    job.submit = std::max<Time>(submit, 0);
    job.run_time = run;
    job.size = static_cast<std::int32_t>(alloc > 0 ? alloc : req_procs);
    job.requested_time = req_time > 0 ? req_time : run;
    job.user_id = static_cast<std::int32_t>(user);

    if (job.id <= 0 || job.size <= 0 || job.run_time < 0) {
      ++skipped_;
      continue;
    }
    return job;
  }
  return std::nullopt;
}

SwfTrace parse_swf(std::istream& in, const SwfOptions& options) {
  SwfTrace trace;
  SwfRecordStream records(in, options);
  while (std::optional<Job> job = records.next()) {
    trace.jobs.push_back(*job);
  }
  trace.header = records.header();
  trace.skipped_lines = records.skipped_lines();
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const Job& a, const Job& b) {
                     return std::tie(a.submit, a.id) < std::tie(b.submit, b.id);
                   });
  return trace;
}

SwfTrace parse_swf_text(const std::string& text, const SwfOptions& options) {
  std::istringstream in(text);
  return parse_swf(in, options);
}

SwfTrace load_swf_file(const std::string& path, const SwfOptions& options) {
  std::ifstream in(path);
  BSLD_REQUIRE(in.good(), "SWF: cannot open file `" + path + "`");
  return parse_swf(in, options);
}

void write_swf(std::ostream& out, const Workload& workload) {
  out << "; Workload: " << workload.name << '\n';
  out << "; MaxProcs: " << workload.cpus << '\n';
  out << "; Generated by bsldsched (synthetic trace, SWF layout)\n";
  for (const Job& job : workload.jobs) {
    // 18 SWF fields; unknowns are -1 per the format definition.
    out << job.id << ' '            // 1 job number
        << job.submit << ' '        // 2 submit time
        << -1 << ' '                // 3 wait time (filled by schedulers)
        << job.run_time << ' '      // 4 run time
        << job.size << ' '          // 5 allocated processors
        << -1 << ' '                // 6 average CPU time used
        << -1 << ' '                // 7 used memory
        << job.size << ' '          // 8 requested processors
        << job.requested_time << ' '// 9 requested time
        << -1 << ' '                // 10 requested memory
        << 1 << ' '                 // 11 status (completed)
        << job.user_id << ' '       // 12 user id
        << -1 << ' '                // 13 group id
        << -1 << ' '                // 14 executable id
        << -1 << ' '                // 15 queue
        << -1 << ' '                // 16 partition
        << -1 << ' '                // 17 preceding job
        << -1 << '\n';              // 18 think time
  }
}

void save_swf_file(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  BSLD_REQUIRE(out.good(), "SWF: cannot create file `" + path + "`");
  write_swf(out, workload);
}

}  // namespace bsld::wl
