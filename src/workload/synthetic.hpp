/// \file synthetic.hpp
/// \brief Statistical workload generator.
///
/// Substitute for the Parallel Workload Archive logs (see DESIGN.md §3):
/// the archive is online-only, so each of the paper's five traces is
/// replaced by a generator profile matched on the moments that drive every
/// result in the paper — offered load, job-size mix, runtime mix, and the
/// user's requested-time overestimation. The model family follows the
/// classic workload-modelling literature (Lublin/Feitelson-style):
///
///  * arrivals: exponential gaps modulated by a daily cycle, plus a
///    burst component (a fraction of jobs arrives in back-to-back clumps);
///  * sizes: a sequential-job fraction and a log2-normal parallel part with
///    optional power-of-two snapping and a minimum-size floor (SDSC-Blue
///    allocates at least 8 CPUs per job);
///  * runtimes: a mixture of lognormal classes (short/medium/long);
///  * estimates: requested time = runtime x lognormal overestimation
///    factor, rounded up to "nice" values, capped by a site limit —
///    mirroring the Mu'alem/Feitelson observations EASY backfilling relies
///    on.
///
/// Generation is fully deterministic given (spec, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"
#include "workload/stream.hpp"

namespace bsld::wl {

/// Arrival process parameters.
struct ArrivalModel {
  /// Target offered load: total core-seconds / (cpus * trace span). The
  /// central calibration knob per archive profile.
  double load_target = 0.7;
  /// Fraction of jobs arriving as part of a burst (tiny gap to predecessor).
  double burst_probability = 0.25;
  /// Mean gap inside a burst, seconds.
  double burst_gap_mean = 15.0;
  /// Relative amplitude of the daily arrival-rate cycle in [0, 1).
  double daily_amplitude = 0.5;
  /// Hour of day (0-24) at which the arrival rate peaks.
  double peak_hour = 14.0;

  friend bool operator==(const ArrivalModel&, const ArrivalModel&) = default;
};

/// Job-size distribution parameters.
struct SizeModel {
  double p_sequential = 0.3;      ///< Fraction of 1-CPU jobs.
  std::int32_t min_size = 1;      ///< Floor for parallel jobs (Blue: 8).
  std::int32_t max_size = 1 << 30;///< Cap (clamped to machine later).
  double log2_mean = 3.0;         ///< Mean of log2(size) for parallel jobs.
  double log2_sigma = 1.5;        ///< Stddev of log2(size).
  double p_power_of_two = 0.6;    ///< Probability of snapping to 2^k.

  friend bool operator==(const SizeModel&, const SizeModel&) = default;
};

/// One lognormal runtime class of the mixture.
struct RuntimeClass {
  double weight = 1.0;  ///< Mixture weight (normalized internally).
  double mu = 6.0;      ///< Mean of ln(runtime seconds).
  double sigma = 1.0;   ///< Stddev of ln(runtime seconds).

  friend bool operator==(const RuntimeClass&, const RuntimeClass&) = default;
};

/// Runtime mixture parameters.
struct RuntimeModel {
  /// Defaults to one medium class (mu=6 ~ 400 s, sigma=1).
  std::vector<RuntimeClass> classes = std::vector<RuntimeClass>(1);
  Time min_runtime = 1;
  Time max_runtime = 36 * 3600;

  friend bool operator==(const RuntimeModel&, const RuntimeModel&) = default;
};

/// Requested-time (user estimate) model.
struct EstimateModel {
  double p_exact = 0.10;        ///< Estimate equals runtime (rounded up).
  double factor_mu = 1.0;       ///< ln of the overestimation factor: mean.
  double factor_sigma = 0.9;    ///< ln of the overestimation factor: stddev.
  bool round_to_nice = true;    ///< Round estimates up to human-ish values.
  Time max_requested = 36 * 3600;  ///< Site limit on estimates.

  friend bool operator==(const EstimateModel&, const EstimateModel&) = default;
};

/// Complete generator profile.
struct WorkloadSpec {
  std::string name = "synthetic";
  std::int32_t cpus = 128;
  std::int64_t num_jobs = 5000;
  ArrivalModel arrival;
  SizeModel size;
  RuntimeModel runtime;
  EstimateModel estimate;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Lazy form of generate(): jobs are drawn on demand, already in
/// (submit, id) order, with O(1) memory regardless of num_jobs — the
/// arrival process emits non-decreasing submit times and ids ascend, so no
/// sort is needed. The constructor validates the spec (same errors as
/// generate()) and runs one sizing pass over clones of the work-content
/// RNG streams to calibrate the arrival rate to the offered-load target;
/// that pass stores nothing, so a 10^7-job trace costs draws, not gigabytes.
///
/// Bit-compatibility contract: materialize(SyntheticJobStream(spec, seed))
/// equals generate(spec, seed) exactly, job for job. generate() is
/// implemented as precisely that drain, so the contract cannot drift.
class SyntheticJobStream final : public JobStream {
 public:
  SyntheticJobStream(WorkloadSpec spec, std::uint64_t seed);

  std::optional<Job> next() override;
  [[nodiscard]] const std::string& name() const override { return spec_.name; }
  [[nodiscard]] std::int32_t cpus() const override { return spec_.cpus; }
  [[nodiscard]] std::int64_t size_hint() const override {
    return spec_.num_jobs;
  }

 private:
  WorkloadSpec spec_;
  util::Rng size_rng_;
  util::Rng runtime_rng_;
  util::Rng estimate_rng_;
  util::Rng arrival_rng_;
  util::Rng user_rng_;
  std::vector<double> user_weights_;
  double mean_gap_ = 0.0;  ///< From the sizing pass (offered-load target).
  double clock_ = 0.0;     ///< Arrival-process time; next submit = round().
  std::int64_t emitted_ = 0;
};

/// Generates a workload from `spec` with deterministic randomness derived
/// from `seed`. Jobs are sorted by submit time, ids 1..num_jobs, and always
/// satisfy: 1 <= size <= cpus, run_time >= 1, requested_time >= run_time.
/// Throws bsld::Error on invalid specs. Equivalent to draining a
/// SyntheticJobStream — materialize when you need random access, stream
/// when you do not.
Workload generate(const WorkloadSpec& spec, std::uint64_t seed);

/// Rounds a requested time up to a "nice" human value: multiples of 5 min
/// below 2 h, of 30 min below 6 h, of 1 h above. Exposed for tests.
Time round_to_nice_request(Time seconds);

}  // namespace bsld::wl
