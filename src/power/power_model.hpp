/// \file power_model.hpp
/// \brief CPU power model of the paper's §4.
///
/// Total CPU power = dynamic + static.
///   P_dynamic = A * C * f * V^2   (Eq. 3)
///   P_static  = alpha * V        (Eq. 4, Butts & Sohi)
///
/// Calibration follows the paper:
///  * all applications share one average activity factor; a running CPU's
///    activity is `activity_ratio` (2.5x) that of an idle CPU;
///  * static power is `static_fraction_at_top` (25%) of the total active
///    power at the top gear, which pins alpha;
///  * an idle CPU runs at the lowest gear with the idle activity factor —
///    with the paper's constants that lands at ~21% of top active power.
///
/// Powers are reported in watts by anchoring the top-gear active power at
/// `top_active_power_watts`; energy ratios are invariant to that anchor.
#pragma once

#include <vector>

#include "cluster/gears.hpp"
#include "util/config.hpp"
#include "util/types.hpp"

namespace bsld::power {

/// One idle C-state of the SleepScale-style ladder consumed by the
/// `sleep` power manager: a CPU idle for `enter_after_s` seconds drops to
/// `power_watts` (below the model's idle power) and pays `wake_latency_s`
/// when an allocation claims it again.
struct SleepState {
  double power_watts = 0.0;  ///< Per-CPU power while in this state (W).
  Time enter_after_s = 0;    ///< Idle seconds before the state is entered.
  Time wake_latency_s = 0;   ///< Seconds to come back to active.

  friend bool operator==(const SleepState&, const SleepState&) = default;
};

/// Calibration constants (paper defaults).
struct PowerModelConfig {
  double activity_ratio = 2.5;          ///< running / idle activity factor.
  double static_fraction_at_top = 0.25; ///< share of static power at Ftop.
  double top_active_power_watts = 95.0; ///< anchor: P_active(Ftop) in W.
  /// Optional sleep-state ladder, ascending by enter_after_s with
  /// non-increasing power. Empty = the `sleep` manager uses its default
  /// ladder; never consulted unless that manager is selected.
  std::vector<SleepState> sleep_states;

  friend bool operator==(const PowerModelConfig&,
                         const PowerModelConfig&) = default;
};

/// Evaluates active/idle CPU power per gear.
class PowerModel {
 public:
  /// Throws bsld::Error on non-physical configuration values.
  PowerModel(cluster::GearSet gears, PowerModelConfig config = {});

  /// Power of a CPU executing a job at `gear` (W).
  [[nodiscard]] double active_power(GearIndex gear) const;

  /// Power of an idle CPU: lowest gear, idle activity factor (W).
  [[nodiscard]] double idle_power() const;

  /// Dynamic component of the active power at `gear` (W).
  [[nodiscard]] double dynamic_power(GearIndex gear) const;

  /// Static component at `gear`'s voltage (W).
  [[nodiscard]] double static_power(GearIndex gear) const;

  /// idle_power() / active_power(top): ~0.21 with paper constants.
  [[nodiscard]] double idle_fraction_of_top() const;

  [[nodiscard]] const cluster::GearSet& gears() const { return gears_; }
  [[nodiscard]] const PowerModelConfig& config() const { return config_; }

  /// The configured sleep-state ladder (possibly empty).
  [[nodiscard]] const std::vector<SleepState>& sleep_states() const {
    return config_.sleep_states;
  }

 private:
  cluster::GearSet gears_;
  PowerModelConfig config_;
  double dynamic_unit_ = 0.0;  ///< A_running * C, in W per (GHz * V^2).
  double alpha_ = 0.0;         ///< Static coefficient, W per volt.
};

/// Reads `power.activity_ratio`, `power.static_fraction_at_top` and
/// `power.top_active_power_watts` from a Config (paper defaults otherwise),
/// plus the optional sleep ladder: `power.sleep.power_watts`,
/// `power.sleep.enter_after_s`, `power.sleep.wake_latency_s` — three
/// equal-length comma-separated lists, all present or all absent.
PowerModelConfig power_config_from(const util::Config& config);

}  // namespace bsld::power
