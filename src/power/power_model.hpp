/// \file power_model.hpp
/// \brief CPU power model of the paper's §4.
///
/// Total CPU power = dynamic + static.
///   P_dynamic = A * C * f * V^2   (Eq. 3)
///   P_static  = alpha * V        (Eq. 4, Butts & Sohi)
///
/// Calibration follows the paper:
///  * all applications share one average activity factor; a running CPU's
///    activity is `activity_ratio` (2.5x) that of an idle CPU;
///  * static power is `static_fraction_at_top` (25%) of the total active
///    power at the top gear, which pins alpha;
///  * an idle CPU runs at the lowest gear with the idle activity factor —
///    with the paper's constants that lands at ~21% of top active power.
///
/// Powers are reported in watts by anchoring the top-gear active power at
/// `top_active_power_watts`; energy ratios are invariant to that anchor.
#pragma once

#include "cluster/gears.hpp"
#include "util/config.hpp"

namespace bsld::power {

/// Calibration constants (paper defaults).
struct PowerModelConfig {
  double activity_ratio = 2.5;          ///< running / idle activity factor.
  double static_fraction_at_top = 0.25; ///< share of static power at Ftop.
  double top_active_power_watts = 95.0; ///< anchor: P_active(Ftop) in W.

  friend bool operator==(const PowerModelConfig&,
                         const PowerModelConfig&) = default;
};

/// Evaluates active/idle CPU power per gear.
class PowerModel {
 public:
  /// Throws bsld::Error on non-physical configuration values.
  PowerModel(cluster::GearSet gears, PowerModelConfig config = {});

  /// Power of a CPU executing a job at `gear` (W).
  [[nodiscard]] double active_power(GearIndex gear) const;

  /// Power of an idle CPU: lowest gear, idle activity factor (W).
  [[nodiscard]] double idle_power() const;

  /// Dynamic component of the active power at `gear` (W).
  [[nodiscard]] double dynamic_power(GearIndex gear) const;

  /// Static component at `gear`'s voltage (W).
  [[nodiscard]] double static_power(GearIndex gear) const;

  /// idle_power() / active_power(top): ~0.21 with paper constants.
  [[nodiscard]] double idle_fraction_of_top() const;

  [[nodiscard]] const cluster::GearSet& gears() const { return gears_; }
  [[nodiscard]] const PowerModelConfig& config() const { return config_; }

 private:
  cluster::GearSet gears_;
  PowerModelConfig config_;
  double dynamic_unit_ = 0.0;  ///< A_running * C, in W per (GHz * V^2).
  double alpha_ = 0.0;         ///< Static coefficient, W per volt.
};

/// Reads `power.activity_ratio`, `power.static_fraction_at_top` and
/// `power.top_active_power_watts` from a Config (paper defaults otherwise).
PowerModelConfig power_config_from(const util::Config& config);

}  // namespace bsld::power
