/// \file energy_meter.hpp
/// \brief Workload-level CPU energy accounting under the paper's two
/// scenarios:
///
///  * computational energy (`Eidle = 0`): idle processors dissipate no
///    power — the paper's proxy for PowerNap-style systems;
///  * total energy (`Eidle = low`): idle processors consume the idle power
///    of the PowerModel (lowest gear, idle activity).
///
/// Busy core-seconds are accumulated per gear as jobs run; idle energy is
/// derived from the measurement horizon (first submission to last
/// completion) when the report is taken.
#pragma once

#include <vector>

#include "power/power_model.hpp"
#include "util/types.hpp"

namespace bsld::power {

/// Final energy numbers for one simulation run.
struct EnergyReport {
  double computational_joules = 0.0;  ///< Eidle = 0 scenario.
  double total_joules = 0.0;          ///< Eidle = low scenario.
  double idle_joules = 0.0;           ///< Idle share inside total_joules.
  double busy_core_seconds = 0.0;     ///< Sum over jobs of size * runtime.
  double idle_core_seconds = 0.0;     ///< cpus * horizon - busy.
  double sleep_core_seconds = 0.0;    ///< Subset of idle spent in C-states.
  double sleep_joules = 0.0;          ///< Energy of the sleeping intervals.
  Time horizon = 0;                   ///< Measurement span in seconds.
};

/// Accumulates per-job energies during a simulation.
class EnergyMeter {
 public:
  explicit EnergyMeter(const PowerModel& model);

  /// Records a completed execution: `size` CPUs ran at `gear` for
  /// `scaled_runtime` seconds (already dilated by the time model).
  void add_execution(std::int32_t size, GearIndex gear, Time scaled_runtime);

  /// Records idle core-seconds spent in a sleep C-state drawing
  /// `power_watts` instead of the model's idle power. The interval stays
  /// part of idle_core_seconds; report() swaps its price.
  void add_sleep(double core_seconds, double power_watts);

  /// Produces the report for a machine of `cpus` processors observed over
  /// `horizon` seconds. Throws bsld::Error when the horizon is too short to
  /// contain the recorded busy time (accounting bug guard).
  [[nodiscard]] EnergyReport report(std::int32_t cpus, Time horizon) const;

  /// Busy core-seconds recorded at `gear`.
  [[nodiscard]] double core_seconds_at(GearIndex gear) const;

  /// Jobs recorded per gear (diagnostics; Fig. 4 counts come from the
  /// simulation result, which also knows requested gears).
  [[nodiscard]] std::int64_t executions_at(GearIndex gear) const;

  [[nodiscard]] const PowerModel& model() const { return model_; }

 private:
  const PowerModel& model_;
  std::vector<double> core_seconds_;   ///< Indexed by gear.
  std::vector<std::int64_t> executions_;
  double sleep_core_seconds_ = 0.0;
  double sleep_joules_ = 0.0;
};

}  // namespace bsld::power
