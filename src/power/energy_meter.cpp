#include "power/energy_meter.hpp"

#include "util/error.hpp"

namespace bsld::power {

EnergyMeter::EnergyMeter(const PowerModel& model)
    : model_(model),
      core_seconds_(model.gears().size(), 0.0),
      executions_(model.gears().size(), 0) {}

void EnergyMeter::add_execution(std::int32_t size, GearIndex gear,
                                Time scaled_runtime) {
  BSLD_REQUIRE(size > 0, "EnergyMeter: size must be positive");
  BSLD_REQUIRE(scaled_runtime >= 0, "EnergyMeter: negative runtime");
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < core_seconds_.size(),
               "EnergyMeter: gear out of range");
  core_seconds_[static_cast<std::size_t>(gear)] +=
      static_cast<double>(size) * static_cast<double>(scaled_runtime);
  ++executions_[static_cast<std::size_t>(gear)];
}

void EnergyMeter::add_sleep(double core_seconds, double power_watts) {
  BSLD_REQUIRE(core_seconds >= 0.0, "EnergyMeter: negative sleep interval");
  BSLD_REQUIRE(power_watts >= 0.0, "EnergyMeter: negative sleep power");
  BSLD_REQUIRE(power_watts <= model_.idle_power() * (1.0 + 1e-9),
               "EnergyMeter: sleep power exceeds idle power");
  sleep_core_seconds_ += core_seconds;
  sleep_joules_ += core_seconds * power_watts;
}

EnergyReport EnergyMeter::report(std::int32_t cpus, Time horizon) const {
  BSLD_REQUIRE(cpus > 0, "EnergyMeter: cpus must be positive");
  BSLD_REQUIRE(horizon >= 0, "EnergyMeter: negative horizon");

  EnergyReport out;
  out.horizon = horizon;
  for (GearIndex g = 0; g <= model_.gears().top_index(); ++g) {
    const double cs = core_seconds_[static_cast<std::size_t>(g)];
    out.busy_core_seconds += cs;
    out.computational_joules += cs * model_.active_power(g);
  }
  const double capacity =
      static_cast<double>(cpus) * static_cast<double>(horizon);
  BSLD_REQUIRE(out.busy_core_seconds <= capacity * (1.0 + 1e-9),
               "EnergyMeter: busy core-seconds exceed machine capacity over "
               "the horizon");
  out.idle_core_seconds = std::max(0.0, capacity - out.busy_core_seconds);
  if (sleep_core_seconds_ == 0.0) {
    // Keep the exact historical expression when no sleep was recorded so
    // runs without the sleep manager stay bit-identical.
    out.idle_joules = out.idle_core_seconds * model_.idle_power();
  } else {
    BSLD_REQUIRE(
        sleep_core_seconds_ <= out.idle_core_seconds * (1.0 + 1e-9),
        "EnergyMeter: sleeping core-seconds exceed idle core-seconds");
    out.sleep_core_seconds = sleep_core_seconds_;
    out.sleep_joules = sleep_joules_;
    out.idle_joules =
        (out.idle_core_seconds - sleep_core_seconds_) * model_.idle_power() +
        sleep_joules_;
  }
  out.total_joules = out.computational_joules + out.idle_joules;
  return out;
}

double EnergyMeter::core_seconds_at(GearIndex gear) const {
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < core_seconds_.size(),
               "EnergyMeter: gear out of range");
  return core_seconds_[static_cast<std::size_t>(gear)];
}

std::int64_t EnergyMeter::executions_at(GearIndex gear) const {
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < executions_.size(),
               "EnergyMeter: gear out of range");
  return executions_[static_cast<std::size_t>(gear)];
}

}  // namespace bsld::power
