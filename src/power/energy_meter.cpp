#include "power/energy_meter.hpp"

#include "util/error.hpp"

namespace bsld::power {

EnergyMeter::EnergyMeter(const PowerModel& model)
    : model_(model),
      core_seconds_(model.gears().size(), 0.0),
      executions_(model.gears().size(), 0) {}

void EnergyMeter::add_execution(std::int32_t size, GearIndex gear,
                                Time scaled_runtime) {
  BSLD_REQUIRE(size > 0, "EnergyMeter: size must be positive");
  BSLD_REQUIRE(scaled_runtime >= 0, "EnergyMeter: negative runtime");
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < core_seconds_.size(),
               "EnergyMeter: gear out of range");
  core_seconds_[static_cast<std::size_t>(gear)] +=
      static_cast<double>(size) * static_cast<double>(scaled_runtime);
  ++executions_[static_cast<std::size_t>(gear)];
}

EnergyReport EnergyMeter::report(std::int32_t cpus, Time horizon) const {
  BSLD_REQUIRE(cpus > 0, "EnergyMeter: cpus must be positive");
  BSLD_REQUIRE(horizon >= 0, "EnergyMeter: negative horizon");

  EnergyReport out;
  out.horizon = horizon;
  for (GearIndex g = 0; g <= model_.gears().top_index(); ++g) {
    const double cs = core_seconds_[static_cast<std::size_t>(g)];
    out.busy_core_seconds += cs;
    out.computational_joules += cs * model_.active_power(g);
  }
  const double capacity =
      static_cast<double>(cpus) * static_cast<double>(horizon);
  BSLD_REQUIRE(out.busy_core_seconds <= capacity * (1.0 + 1e-9),
               "EnergyMeter: busy core-seconds exceed machine capacity over "
               "the horizon");
  out.idle_core_seconds = std::max(0.0, capacity - out.busy_core_seconds);
  out.idle_joules = out.idle_core_seconds * model_.idle_power();
  out.total_joules = out.computational_joules + out.idle_joules;
  return out;
}

double EnergyMeter::core_seconds_at(GearIndex gear) const {
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < core_seconds_.size(),
               "EnergyMeter: gear out of range");
  return core_seconds_[static_cast<std::size_t>(gear)];
}

std::int64_t EnergyMeter::executions_at(GearIndex gear) const {
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < executions_.size(),
               "EnergyMeter: gear out of range");
  return executions_[static_cast<std::size_t>(gear)];
}

}  // namespace bsld::power
