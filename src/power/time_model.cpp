#include "power/time_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bsld::power {

BetaTimeModel::BetaTimeModel(cluster::GearSet gears, double beta)
    : gears_(std::move(gears)), beta_(beta) {
  BSLD_REQUIRE(beta_ >= 0.0 && beta_ <= 1.0,
               "BetaTimeModel: beta must be in [0, 1]");
  coefficients_.reserve(gears_.size());
  for (GearIndex g = 0; g <= gears_.top_index(); ++g) {
    coefficients_.push_back(beta_ * (gears_.frequency_ratio(g) - 1.0) + 1.0);
  }
}

double BetaTimeModel::coefficient(GearIndex gear) const {
  BSLD_REQUIRE(gear >= 0 && static_cast<std::size_t>(gear) < coefficients_.size(),
               "BetaTimeModel: gear index out of range");
  return coefficients_[static_cast<std::size_t>(gear)];
}

double BetaTimeModel::coefficient_with_beta(GearIndex gear,
                                            double beta_override) const {
  if (beta_override < 0.0) return coefficient(gear);
  BSLD_REQUIRE(beta_override <= 1.0,
               "BetaTimeModel: per-job beta must be in [0, 1]");
  return beta_override * (gears_.frequency_ratio(gear) - 1.0) + 1.0;
}

Time BetaTimeModel::scale_duration(Time duration_at_top, GearIndex gear) const {
  return scale_duration_with_beta(duration_at_top, gear, -1.0);
}

Time BetaTimeModel::scale_duration_with_beta(Time duration_at_top,
                                             GearIndex gear,
                                             double beta_override) const {
  BSLD_REQUIRE(duration_at_top >= 0,
               "BetaTimeModel: durations must be non-negative");
  if (duration_at_top == 0) return 0;
  const double scaled = static_cast<double>(duration_at_top) *
                        coefficient_with_beta(gear, beta_override);
  return std::max<Time>(1, static_cast<Time>(std::llround(scaled)));
}

}  // namespace bsld::power
