#include "power/power_model.hpp"

#include "util/error.hpp"

namespace bsld::power {

PowerModel::PowerModel(cluster::GearSet gears, PowerModelConfig config)
    : gears_(std::move(gears)), config_(config) {
  BSLD_REQUIRE(config_.activity_ratio >= 1.0,
               "PowerModel: activity_ratio must be >= 1");
  BSLD_REQUIRE(config_.static_fraction_at_top >= 0.0 &&
                   config_.static_fraction_at_top < 1.0,
               "PowerModel: static_fraction_at_top must be in [0, 1)");
  BSLD_REQUIRE(config_.top_active_power_watts > 0.0,
               "PowerModel: top_active_power_watts must be positive");

  const cluster::Gear& top = gears_.top();
  const double p_top = config_.top_active_power_watts;
  // P_active(top) = dynamic_unit * f_top * V_top^2 + alpha * V_top, with the
  // static share pinned at static_fraction_at_top.
  dynamic_unit_ = (1.0 - config_.static_fraction_at_top) * p_top /
                  (top.frequency_ghz * top.voltage_v * top.voltage_v);
  alpha_ = config_.static_fraction_at_top * p_top / top.voltage_v;
}

double PowerModel::dynamic_power(GearIndex gear) const {
  const cluster::Gear& g = gears_[gear];
  return dynamic_unit_ * g.frequency_ghz * g.voltage_v * g.voltage_v;
}

double PowerModel::static_power(GearIndex gear) const {
  return alpha_ * gears_[gear].voltage_v;
}

double PowerModel::active_power(GearIndex gear) const {
  return dynamic_power(gear) + static_power(gear);
}

double PowerModel::idle_power() const {
  const cluster::Gear& low = gears_.lowest();
  const double idle_dynamic = dynamic_unit_ / config_.activity_ratio *
                              low.frequency_ghz * low.voltage_v * low.voltage_v;
  return idle_dynamic + alpha_ * low.voltage_v;
}

double PowerModel::idle_fraction_of_top() const {
  return idle_power() / active_power(gears_.top_index());
}

PowerModelConfig power_config_from(const util::Config& config) {
  PowerModelConfig out;
  out.activity_ratio = config.get_double("power.activity_ratio", out.activity_ratio);
  out.static_fraction_at_top =
      config.get_double("power.static_fraction_at_top", out.static_fraction_at_top);
  out.top_active_power_watts =
      config.get_double("power.top_active_power_watts", out.top_active_power_watts);
  return out;
}

}  // namespace bsld::power
