#include "power/power_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bsld::power {

PowerModel::PowerModel(cluster::GearSet gears, PowerModelConfig config)
    : gears_(std::move(gears)), config_(config) {
  BSLD_REQUIRE(config_.activity_ratio >= 1.0,
               "PowerModel: activity_ratio must be >= 1");
  BSLD_REQUIRE(config_.static_fraction_at_top >= 0.0 &&
                   config_.static_fraction_at_top < 1.0,
               "PowerModel: static_fraction_at_top must be in [0, 1)");
  BSLD_REQUIRE(config_.top_active_power_watts > 0.0,
               "PowerModel: top_active_power_watts must be positive");

  const cluster::Gear& top = gears_.top();
  const double p_top = config_.top_active_power_watts;
  // P_active(top) = dynamic_unit * f_top * V_top^2 + alpha * V_top, with the
  // static share pinned at static_fraction_at_top.
  dynamic_unit_ = (1.0 - config_.static_fraction_at_top) * p_top /
                  (top.frequency_ghz * top.voltage_v * top.voltage_v);
  alpha_ = config_.static_fraction_at_top * p_top / top.voltage_v;

  // Sleep ladder sanity: states deepen over idle time — later states must
  // wait longer, draw no more power, and never exceed the idle power they
  // improve on. (Validated after alpha_/dynamic_unit_ so idle_power()
  // works.)
  const double idle = idle_power();
  for (std::size_t i = 0; i < config_.sleep_states.size(); ++i) {
    const SleepState& state = config_.sleep_states[i];
    BSLD_REQUIRE(state.power_watts >= 0.0,
                 "PowerModel: sleep-state power must be non-negative");
    BSLD_REQUIRE(state.power_watts <= idle * (1.0 + 1e-9),
                 "PowerModel: sleep-state power must not exceed idle power");
    BSLD_REQUIRE(state.enter_after_s >= 0,
                 "PowerModel: sleep-state enter_after_s must be non-negative");
    BSLD_REQUIRE(state.wake_latency_s >= 0,
                 "PowerModel: sleep-state wake_latency_s must be non-negative");
    if (i > 0) {
      BSLD_REQUIRE(
          state.enter_after_s > config_.sleep_states[i - 1].enter_after_s,
          "PowerModel: sleep-state enter_after_s must be strictly ascending");
      BSLD_REQUIRE(
          state.power_watts <= config_.sleep_states[i - 1].power_watts,
          "PowerModel: sleep-state power must be non-increasing with depth");
    }
  }
}

double PowerModel::dynamic_power(GearIndex gear) const {
  const cluster::Gear& g = gears_[gear];
  return dynamic_unit_ * g.frequency_ghz * g.voltage_v * g.voltage_v;
}

double PowerModel::static_power(GearIndex gear) const {
  return alpha_ * gears_[gear].voltage_v;
}

double PowerModel::active_power(GearIndex gear) const {
  return dynamic_power(gear) + static_power(gear);
}

double PowerModel::idle_power() const {
  const cluster::Gear& low = gears_.lowest();
  const double idle_dynamic = dynamic_unit_ / config_.activity_ratio *
                              low.frequency_ghz * low.voltage_v * low.voltage_v;
  return idle_dynamic + alpha_ * low.voltage_v;
}

double PowerModel::idle_fraction_of_top() const {
  return idle_power() / active_power(gears_.top_index());
}

PowerModelConfig power_config_from(const util::Config& config) {
  PowerModelConfig out;
  out.activity_ratio = config.get_double("power.activity_ratio", out.activity_ratio);
  out.static_fraction_at_top =
      config.get_double("power.static_fraction_at_top", out.static_fraction_at_top);
  out.top_active_power_watts =
      config.get_double("power.top_active_power_watts", out.top_active_power_watts);
  const bool has_power = config.contains("power.sleep.power_watts");
  const bool has_enter = config.contains("power.sleep.enter_after_s");
  const bool has_wake = config.contains("power.sleep.wake_latency_s");
  BSLD_REQUIRE(has_power == has_enter && has_enter == has_wake,
               "power.sleep.{power_watts,enter_after_s,wake_latency_s} must "
               "be given together");
  if (has_power) {
    const std::vector<double> watts =
        config.get_double_list("power.sleep.power_watts", {});
    const std::vector<double> enter =
        config.get_double_list("power.sleep.enter_after_s", {});
    const std::vector<double> wake =
        config.get_double_list("power.sleep.wake_latency_s", {});
    BSLD_REQUIRE(watts.size() == enter.size() && enter.size() == wake.size(),
                 "power.sleep.* lists must have equal lengths");
    BSLD_REQUIRE(!watts.empty(), "power.sleep.* lists must not be empty");
    out.sleep_states.reserve(watts.size());
    for (std::size_t i = 0; i < watts.size(); ++i) {
      SleepState state;
      state.power_watts = watts[i];
      state.enter_after_s = static_cast<Time>(std::llround(enter[i]));
      state.wake_latency_s = static_cast<Time>(std::llround(wake[i]));
      out.sleep_states.push_back(state);
    }
  }
  return out;
}

}  // namespace bsld::power
