/// \file time_model.hpp
/// \brief The beta execution-time dilation model (paper §4, Eq. 5, from
/// Hsu & Feng / Freeh et al.):
///
///   T(f) / T(fmax) = beta * (fmax / f - 1) + 1
///
/// beta = 1: perfectly CPU-bound (halving f doubles runtime);
/// beta = 0: frequency-insensitive (memory/communication bound).
/// The paper assumes beta = 0.5 for all jobs.
#pragma once

#include "cluster/gears.hpp"
#include "util/config.hpp"
#include "util/types.hpp"

namespace bsld::power {

/// Frequency-to-runtime dilation.
class BetaTimeModel {
 public:
  /// Throws bsld::Error unless beta is in [0, 1].
  BetaTimeModel(cluster::GearSet gears, double beta = 0.5);

  /// Dilation coefficient Coef(f) = beta * (fmax/f - 1) + 1 (>= 1).
  [[nodiscard]] double coefficient(GearIndex gear) const;

  /// Coefficient with a per-job beta override; `beta_override < 0` falls
  /// back to the model beta (paper future work: per-job beta analysis).
  /// Throws bsld::Error when the override exceeds [0, 1].
  [[nodiscard]] double coefficient_with_beta(GearIndex gear,
                                             double beta_override) const;

  /// Duration at `gear` for a job that takes `duration_at_top` at the top
  /// gear, rounded to whole seconds (minimum 1 s for positive inputs).
  [[nodiscard]] Time scale_duration(Time duration_at_top, GearIndex gear) const;

  /// scale_duration with a per-job beta override (< 0 = model beta).
  [[nodiscard]] Time scale_duration_with_beta(Time duration_at_top,
                                              GearIndex gear,
                                              double beta_override) const;

  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] const cluster::GearSet& gears() const { return gears_; }

 private:
  cluster::GearSet gears_;
  double beta_;
  std::vector<double> coefficients_;  ///< Precomputed per gear.
};

}  // namespace bsld::power
