#include "core/frequency.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bsld::core {

GearIndex TopFrequency::reservation_gear(const SchedulerContext& ctx,
                                         const wl::Job& job, Time start,
                                         std::size_t wq_size) const {
  (void)job;
  (void)start;
  (void)wq_size;
  return ctx.time_model().gears().top_index();
}

std::optional<GearIndex> TopFrequency::backfill_gear(
    const SchedulerContext& ctx, const wl::Job& job,
    util::FunctionRef<bool(GearIndex)> feasible,
    std::size_t wq_size) const {
  (void)job;
  (void)wq_size;
  const GearIndex top = ctx.time_model().gears().top_index();
  if (feasible(top)) return top;
  return std::nullopt;
}

BsldThresholdAssigner::BsldThresholdAssigner(DvfsConfig config)
    : config_(config) {
  BSLD_REQUIRE(config_.bsld_threshold >= 1.0,
               "DvfsConfig: bsld_threshold below 1 can never be satisfied");
  BSLD_REQUIRE(!config_.wq_threshold || *config_.wq_threshold >= 0,
               "DvfsConfig: wq_threshold must be non-negative");
  BSLD_REQUIRE(config_.bsld_floor > 0, "DvfsConfig: bsld_floor must be positive");
}

bool BsldThresholdAssigner::wq_allows_dvfs(std::size_t wq_size) const {
  if (!config_.wq_threshold) return true;  // NO LIMIT
  const std::int64_t counted = static_cast<std::int64_t>(wq_size) +
                               (config_.wq_counts_self ? 1 : 0);
  return counted <= *config_.wq_threshold;
}

bool BsldThresholdAssigner::satisfies_bsld(const SchedulerContext& ctx,
                                           const wl::Job& job, Time start,
                                           GearIndex gear) const {
  BSLD_REQUIRE(start >= job.submit,
               "satisfies_bsld(): start precedes submission");
  const Time wait = start - job.submit;
  const double coefficient = job_coefficient(ctx, job, gear);
  const double predicted = predicted_bsld(wait, job.requested_time,
                                          coefficient, config_.bsld_floor);
  return predicted <= config_.bsld_threshold;
}

GearIndex BsldThresholdAssigner::reservation_gear(const SchedulerContext& ctx,
                                                  const wl::Job& job,
                                                  Time start,
                                                  std::size_t wq_size) const {
  const GearIndex top = ctx.time_model().gears().top_index();
  if (!wq_allows_dvfs(wq_size)) return top;  // Fig. 1 else-branch
  // Fig. 1 loop: lowest gear first; first gear satisfying the predicted
  // BSLD wins. When even Ftop fails, the job still runs at Ftop (the loop
  // cannot leave the head unscheduled — DESIGN.md §4 decision 2).
  for (GearIndex g = 0; g <= top; ++g) {
    if (satisfies_bsld(ctx, job, start, g)) return g;
  }
  return top;
}

std::optional<GearIndex> BsldThresholdAssigner::backfill_gear(
    const SchedulerContext& ctx, const wl::Job& job,
    util::FunctionRef<bool(GearIndex)> feasible,
    std::size_t wq_size) const {
  const GearIndex top = ctx.time_model().gears().top_index();
  const Time now = ctx.now();
  if (wq_allows_dvfs(wq_size)) {
    // Fig. 2 loop: the first gear with a correct allocation and an
    // acceptable predicted BSLD.
    for (GearIndex g = 0; g <= top; ++g) {
      if (feasible(g) && satisfies_bsld(ctx, job, now, g)) return g;
    }
    return std::nullopt;
  }
  // Fig. 2 else-branch: try only Ftop; the literal pseudocode also demands
  // the BSLD check here (ablatable, DESIGN.md §4 decision 3).
  if (!feasible(top)) return std::nullopt;
  if (config_.backfill_requires_bsld_at_top &&
      !satisfies_bsld(ctx, job, now, top)) {
    return std::nullopt;
  }
  return top;
}

std::string BsldThresholdAssigner::name() const {
  std::ostringstream os;
  os << "BSLD<=" << config_.bsld_threshold << ",WQ<=";
  if (config_.wq_threshold) os << *config_.wq_threshold;
  else os << "NO";
  return os.str();
}

}  // namespace bsld::core
