#include "core/dynamic_raise.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bsld::core {

DynamicRaiseEasy::DynamicRaiseEasy(
    std::unique_ptr<cluster::ResourceSelector> selector,
    std::unique_ptr<FrequencyAssigner> assigner, DynamicRaiseConfig config)
    : inner_(std::move(selector), std::move(assigner)), config_(config) {
  BSLD_REQUIRE(config_.queue_limit >= 0,
               "DynamicRaiseConfig: queue_limit must be non-negative");
}

std::string DynamicRaiseEasy::name() const {
  std::ostringstream os;
  os << inner_.name() << "+raise>" << config_.queue_limit
     << (config_.one_step ? ",step" : ",top");
  return os.str();
}

void DynamicRaiseEasy::on_submit(SchedulerContext& ctx, JobId id) {
  inner_.on_submit(ctx, id);
  maybe_raise(ctx);
}

void DynamicRaiseEasy::on_job_end(SchedulerContext& ctx, JobId id) {
  inner_.on_job_end(ctx, id);
  maybe_raise(ctx);
}

void DynamicRaiseEasy::maybe_raise(SchedulerContext& ctx) {
  if (static_cast<std::int64_t>(inner_.queue_size()) <= config_.queue_limit) {
    return;
  }
  const GearIndex top = ctx.time_model().gears().top_index();
  for (const JobId id : ctx.running_jobs()) {
    const GearIndex current = ctx.running_gear(id);
    if (current >= top) continue;
    const GearIndex target =
        config_.one_step ? static_cast<GearIndex>(current + 1) : top;
    ctx.boost_job(id, target);
  }
}

}  // namespace bsld::core
