/// \file scheduler.hpp
/// \brief The scheduling-policy seam between the simulation engine and the
/// job scheduling algorithms.
///
/// The simulator (sim::Simulation) owns the clock, the machine, and the
/// per-job bookkeeping; a SchedulingPolicy owns the wait queue and decides
/// who starts when, on which CPUs, at which DVFS gear. The policy acts
/// through SchedulerContext::start_job, never on the Machine directly, so
/// every state change is recorded exactly once.
///
/// Concrete policies live next door (easy.hpp, fcfs.hpp, conservative.hpp,
/// dynamic_raise.hpp) and are constructed by name through
/// core::PolicyRegistry (policy_registry.hpp), the seam where downstream
/// code plugs in new policies without touching this interface.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/allocation.hpp"
#include "cluster/machine.hpp"
#include "power/time_model.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace bsld::core {

/// Simulator services available to scheduling policies.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// Current simulation time.
  [[nodiscard]] virtual Time now() const = 0;

  /// The machine (read-only; mutate via start_job).
  [[nodiscard]] virtual const cluster::Machine& machine() const = 0;

  /// Trace record of a job.
  [[nodiscard]] virtual const wl::Job& job(JobId id) const = 0;

  /// The execution-time dilation model in force.
  [[nodiscard]] virtual const power::BetaTimeModel& time_model() const = 0;

  /// Starts `id` immediately on `cpus` at `gear`: occupies the machine until
  /// now() + dilated requested time, schedules the completion event at
  /// now() + dilated actual runtime, and accounts energy. Throws bsld::Error
  /// on oversubscription or a size mismatch.
  virtual void start_job(JobId id, const std::vector<CpuId>& cpus,
                         GearIndex gear) = 0;

  /// Ids of jobs currently executing (unspecified order).
  [[nodiscard]] virtual std::vector<JobId> running_jobs() const = 0;

  /// Current gear of a running job. Throws bsld::Error when not running.
  [[nodiscard]] virtual GearIndex running_gear(JobId id) const = 0;

  /// Raises a *running* job to `gear` (>= its current gear): the remaining
  /// work is re-timed at the new gear, its completion event moves earlier,
  /// and energy is accounted per gear segment. Supports the paper's stated
  /// future work — dynamically increasing frequencies of reduced jobs when
  /// too many jobs are waiting (§7). Throws bsld::Error on a gear decrease
  /// or a job that is not running.
  virtual void boost_job(JobId id, GearIndex gear) = 0;
};

/// A parallel job scheduling policy (EASY backfilling, FCFS, ...).
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// A job entered the system.
  virtual void on_submit(SchedulerContext& ctx, JobId id) = 0;

  /// A running job completed (its CPUs are already free).
  virtual void on_job_end(SchedulerContext& ctx, JobId id) = 0;

  /// Jobs currently waiting on execution.
  [[nodiscard]] virtual std::size_t queue_size() const = 0;

  /// Active head-of-queue reservation, or nullptr (introspection/tests).
  [[nodiscard]] virtual const cluster::Reservation* reservation() const {
    return nullptr;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bsld::core
