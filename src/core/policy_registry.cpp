#include "core/policy_registry.hpp"

#include <sstream>

#include "core/conservative.hpp"
#include "core/easy.hpp"
#include "core/fcfs.hpp"
#include "util/error.hpp"

namespace bsld::core {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::unique_ptr<cluster::ResourceSelector> selector_for(
    const PolicySpec& spec) {
  return cluster::make_selector(spec.selector);
}

void register_builtins(PolicyRegistry& registry) {
  registry.add_assigner("ftop", "every job starts at the top gear (no DVFS)",
                        [](const PolicySpec&) {
                          return std::make_unique<TopFrequency>();
                        });
  registry.add_assigner(
      "bsld", "BSLD-threshold gear selection (the paper's policy)",
      [](const PolicySpec& spec) {
        BSLD_REQUIRE(spec.dvfs.has_value(),
                     "PolicyRegistry: assigner `bsld` needs a DVFS config");
        return std::make_unique<BsldThresholdAssigner>(*spec.dvfs);
      });

  registry.add_policy(
      "easy", "aggressive EASY backfilling (the paper's baseline scheduler)",
      [&registry](const PolicySpec& spec) {
        return std::make_unique<EasyBackfilling>(selector_for(spec),
                                                 registry.make_assigner(spec));
      });
  registry.add_policy("fcfs", "first-come first-served, no backfilling",
                      [&registry](const PolicySpec& spec) {
                        return std::make_unique<Fcfs>(
                            selector_for(spec), registry.make_assigner(spec));
                      });
  registry.add_policy(
      "conservative",
      "conservative backfilling: every queued job holds a reservation",
      [&registry](const PolicySpec& spec) {
        return std::make_unique<ConservativeBackfilling>(
            selector_for(spec), registry.make_assigner(spec));
      });
  registry.add_policy(
      "easy+raise",
      "EASY plus dynamic frequency raise when the queue passes "
      "policy.raise.queue_limit",
      [&registry](const PolicySpec& spec) {
        BSLD_REQUIRE(spec.raise.has_value(),
                     "PolicyRegistry: policy `easy+raise` needs a raise "
                     "config");
        return std::make_unique<DynamicRaiseEasy>(
            selector_for(spec), registry.make_assigner(spec), *spec.raise);
      });
}

}  // namespace

std::string PolicySpec::resolved_name() const {
  if (raise && name == "easy") return "easy+raise";
  return name;
}

std::string PolicySpec::resolved_assigner() const {
  if (!assigner.empty()) return assigner;
  return dvfs ? "bsld" : "ftop";
}

PolicyRegistry& PolicyRegistry::global() {
  static PolicyRegistry* registry = [] {
    // bsld-lint: allow(new-delete): leaked singleton, outlives static dtors
    auto* r = new PolicyRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void PolicyRegistry::add_policy(const std::string& name,
                                PolicyFactory factory) {
  add_policy(name, "", std::move(factory));
}

void PolicyRegistry::add_policy(const std::string& name,
                                std::string description,
                                PolicyFactory factory) {
  const util::WriterLock lock(mutex_);
  BSLD_REQUIRE(!policies_.contains(name),
               "PolicyRegistry: policy `" + name + "` already registered");
  policies_.emplace(name,
                    PolicyEntry{std::move(description), std::move(factory)});
}

void PolicyRegistry::add_assigner(const std::string& name,
                                  AssignerFactory factory) {
  add_assigner(name, "", std::move(factory));
}

void PolicyRegistry::add_assigner(const std::string& name,
                                  std::string description,
                                  AssignerFactory factory) {
  const util::WriterLock lock(mutex_);
  BSLD_REQUIRE(!assigners_.contains(name),
               "PolicyRegistry: assigner `" + name + "` already registered");
  assigners_.emplace(
      name, AssignerEntry{std::move(description), std::move(factory)});
}

bool PolicyRegistry::has_policy(const std::string& name) const {
  const util::ReaderLock lock(mutex_);
  return policies_.contains(name);
}

bool PolicyRegistry::has_assigner(const std::string& name) const {
  const util::ReaderLock lock(mutex_);
  return assigners_.contains(name);
}

std::vector<std::string> PolicyRegistry::policy_names() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(policies_.size());
  for (const auto& [name, _] : policies_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::assigner_names() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(assigners_.size());
  for (const auto& [name, _] : assigners_) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, std::string>>
PolicyRegistry::policy_entries() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(policies_.size());
  for (const auto& [name, entry] : policies_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
PolicyRegistry::assigner_entries() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(assigners_.size());
  for (const auto& [name, entry] : assigners_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::make(
    const PolicySpec& spec) const {
  const std::string name = spec.resolved_name();
  PolicyFactory factory;
  {
    const util::ReaderLock lock(mutex_);
    const auto it = policies_.find(name);
    if (it != policies_.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw Error("PolicyRegistry: unknown policy `" + name +
                "` (registered: " + join(policy_names()) + ")");
  }
  return factory(spec);
}

std::unique_ptr<FrequencyAssigner> PolicyRegistry::make_assigner(
    const PolicySpec& spec) const {
  const std::string name = spec.resolved_assigner();
  AssignerFactory factory;
  {
    const util::ReaderLock lock(mutex_);
    const auto it = assigners_.find(name);
    if (it != assigners_.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw Error("PolicyRegistry: unknown assigner `" + name +
                "` (registered: " + join(assigner_names()) + ")");
  }
  return factory(spec);
}

PolicySpec policy_from_config(const util::Config& config) {
  PolicySpec spec;
  spec.name = config.get_string("policy.name", spec.name);
  spec.selector = config.get_string("policy.selector", spec.selector);
  spec.assigner = config.get_string("policy.assigner", "");
  if (config.get_bool("policy.dvfs", false)) {
    DvfsConfig dvfs;
    dvfs.bsld_threshold =
        config.get_double("policy.bsld_threshold", dvfs.bsld_threshold);
    const std::string wq = config.get_string("policy.wq_threshold", "NO");
    if (wq == "NO") {
      dvfs.wq_threshold = std::nullopt;
    } else {
      dvfs.wq_threshold = config.get_int("policy.wq_threshold", 0);
    }
    dvfs.bsld_floor = static_cast<Time>(
        config.get_int("policy.bsld_floor", dvfs.bsld_floor));
    dvfs.wq_counts_self =
        config.get_bool("policy.wq_counts_self", dvfs.wq_counts_self);
    dvfs.backfill_requires_bsld_at_top =
        config.get_bool("policy.backfill_requires_bsld_at_top",
                        dvfs.backfill_requires_bsld_at_top);
    spec.dvfs = dvfs;
  }
  if (config.contains("policy.raise.queue_limit")) {
    DynamicRaiseConfig raise;
    raise.queue_limit =
        config.get_int("policy.raise.queue_limit", raise.queue_limit);
    raise.one_step = config.get_bool("policy.raise.one_step", raise.one_step);
    spec.raise = raise;
  }
  BSLD_REQUIRE(
      PolicyRegistry::global().has_policy(spec.resolved_name()),
      "policy_from_config(): unknown policy `" + spec.resolved_name() +
          "` (registered: " + join(PolicyRegistry::global().policy_names()) +
          ")");
  return spec;
}

void policy_to_config(const PolicySpec& spec, util::Config& config) {
  config.set("policy.name", spec.name);
  config.set("policy.selector", spec.selector);
  if (!spec.assigner.empty()) config.set("policy.assigner", spec.assigner);
  config.set("policy.dvfs", spec.dvfs ? "true" : "false");
  if (spec.dvfs) {
    config.set("policy.bsld_threshold",
               util::config_double(spec.dvfs->bsld_threshold));
    config.set("policy.wq_threshold",
               spec.dvfs->wq_threshold
                   ? std::to_string(*spec.dvfs->wq_threshold)
                   : std::string("NO"));
    config.set("policy.bsld_floor", std::to_string(spec.dvfs->bsld_floor));
    config.set("policy.wq_counts_self",
               spec.dvfs->wq_counts_self ? "true" : "false");
    config.set("policy.backfill_requires_bsld_at_top",
               spec.dvfs->backfill_requires_bsld_at_top ? "true" : "false");
  }
  if (spec.raise) {
    config.set("policy.raise.queue_limit",
               std::to_string(spec.raise->queue_limit));
    config.set("policy.raise.one_step",
               spec.raise->one_step ? "true" : "false");
  }
}

std::string policy_label(const PolicySpec& spec) {
  std::ostringstream os;
  const std::string name = spec.resolved_name();
  if (name == "easy") os << "EASY";
  else if (name == "fcfs") os << "FCFS";
  else if (name == "conservative") os << "CONS";
  else if (name == "easy+raise") {
    os << "EASY+raise";
    if (spec.raise) os << '>' << spec.raise->queue_limit;
  }
  else os << name;
  if (spec.dvfs) {
    os << " BSLD<=" << spec.dvfs->bsld_threshold << ",WQ<=";
    if (spec.dvfs->wq_threshold) os << *spec.dvfs->wq_threshold;
    else os << "NO";
  } else {
    os << " noDVFS";
  }
  return os.str();
}

}  // namespace bsld::core
