/// \file fcfs.hpp
/// \brief Plain first-come-first-served scheduling (no backfilling).
///
/// Baseline and proof of the paper's portability claim: the same
/// FrequencyAssigner that powers the EASY integration drops into FCFS
/// unchanged.
#pragma once

#include <memory>

#include "cluster/first_fit.hpp"
#include "core/frequency.hpp"
#include "core/scheduler.hpp"
#include "core/wait_queue.hpp"

namespace bsld::core {

/// FCFS: the head starts as soon as enough CPUs are free; nobody overtakes.
class Fcfs final : public SchedulingPolicy {
 public:
  Fcfs(std::unique_ptr<cluster::ResourceSelector> selector,
       std::unique_ptr<FrequencyAssigner> assigner);

  void on_submit(SchedulerContext& ctx, JobId id) override;
  void on_job_end(SchedulerContext& ctx, JobId id) override;

  [[nodiscard]] std::size_t queue_size() const override {
    return queue_.size();
  }
  [[nodiscard]] std::string name() const override;

 private:
  /// Starts head jobs while they fit right now.
  void drain(SchedulerContext& ctx);

  std::unique_ptr<cluster::ResourceSelector> selector_;
  std::unique_ptr<FrequencyAssigner> assigner_;
  WaitQueue queue_;
};

}  // namespace bsld::core
