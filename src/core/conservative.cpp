#include "core/conservative.hpp"

#include <sstream>
#include <vector>

#include "cluster/profile.hpp"
#include "util/error.hpp"

namespace bsld::core {

ConservativeBackfilling::ConservativeBackfilling(
    std::unique_ptr<cluster::ResourceSelector> selector,
    std::unique_ptr<FrequencyAssigner> assigner)
    : selector_(std::move(selector)), assigner_(std::move(assigner)) {
  BSLD_REQUIRE(selector_ != nullptr,
               "ConservativeBackfilling: selector is required");
  BSLD_REQUIRE(assigner_ != nullptr,
               "ConservativeBackfilling: assigner is required");
}

std::string ConservativeBackfilling::name() const {
  std::ostringstream os;
  os << "CONS[" << selector_->name() << "," << assigner_->name() << "]";
  return os.str();
}

void ConservativeBackfilling::on_submit(SchedulerContext& ctx, JobId id) {
  queue_.push(id);
  schedule_pass(ctx);
}

void ConservativeBackfilling::on_job_end(SchedulerContext& ctx, JobId id) {
  (void)id;
  schedule_pass(ctx);
}

void ConservativeBackfilling::schedule_pass(SchedulerContext& ctx) {
  const cluster::Machine& machine = ctx.machine();
  const Time now = ctx.now();

  // Re-plan from scratch (the "compression" step): start with the capacity
  // consumed by running jobs, then reserve a slot for every queued job in
  // FCFS order. Replanning on each event means planned starts only move
  // earlier, preserving conservative semantics.
  while (true) {
    cluster::AvailabilityProfile profile(machine.cpu_count(), now);
    for (CpuId cpu = 0; cpu < machine.cpu_count(); ++cpu) {
      if (!machine.is_free(cpu)) {
        const Time end = machine.avail_time(cpu, now);
        profile.reserve(now, end, 1);
      }
    }

    JobId to_start = kNoJob;
    GearIndex start_gear = 0;
    for (const JobId id : queue_) {
      const wl::Job& job = ctx.job(id);
      BSLD_REQUIRE(job.size <= machine.cpu_count(),
                   "ConservativeBackfilling: job larger than the machine");
      // Plan the gear first (duration depends on it), using the slot the
      // top gear would get as the wait estimate — the paper's Fig. 1 loop
      // evaluated against this policy's findAllocation.
      const Time top_duration = job_scaled_duration(
          ctx, job, job.requested_time, ctx.time_model().gears().top_index());
      const Time top_start = profile.earliest_slot(job.size, top_duration, now);
      const GearIndex gear = assigner_->reservation_gear(
          ctx, job, top_start, queue_.size() - 1);
      const Time duration = std::max<Time>(
          1, job_scaled_duration(ctx, job, job.requested_time, gear));
      const Time start = profile.earliest_slot(job.size, duration, now);
      if (start <= now && to_start == kNoJob) {
        to_start = id;
        start_gear = gear;
        break;  // start it, then re-plan against the new machine state
      }
      profile.reserve(start, start + duration, job.size);
    }

    if (to_start == kNoJob) return;
    const wl::Job& job = ctx.job(to_start);
    const std::vector<CpuId> cpus =
        selector_->select_at(machine, job.size, now, now);
    queue_.remove(to_start);
    ctx.start_job(to_start, cpus, start_gear);
  }
}

}  // namespace bsld::core
