/// \file dynamic_raise.hpp
/// \brief The paper's stated future work (§7): "add a possibility to
/// dynamically increase frequencies of jobs running at lower frequencies
/// when there are too many jobs waiting on execution."
///
/// DynamicRaiseEasy decorates EASY backfilling (with any FrequencyAssigner)
/// and, after every scheduling event, raises running reduced-frequency jobs
/// when the wait queue exceeds `queue_limit` — either straight to Ftop or
/// one gear per event (`one_step`), which trades responsiveness for a
/// gentler energy give-back.
#pragma once

#include <memory>

#include "core/easy.hpp"

namespace bsld::core {

/// Tunables for the raise rule.
struct DynamicRaiseConfig {
  /// Raise running reduced jobs while more than this many jobs wait.
  std::int64_t queue_limit = 16;
  /// Raise one gear per event instead of jumping to Ftop.
  bool one_step = false;

  friend bool operator==(const DynamicRaiseConfig&,
                         const DynamicRaiseConfig&) = default;
};

/// EASY backfilling + dynamic frequency raising under queue pressure.
class DynamicRaiseEasy final : public SchedulingPolicy {
 public:
  DynamicRaiseEasy(std::unique_ptr<cluster::ResourceSelector> selector,
                   std::unique_ptr<FrequencyAssigner> assigner,
                   DynamicRaiseConfig config);

  void on_submit(SchedulerContext& ctx, JobId id) override;
  void on_job_end(SchedulerContext& ctx, JobId id) override;

  [[nodiscard]] std::size_t queue_size() const override {
    return inner_.queue_size();
  }
  [[nodiscard]] const cluster::Reservation* reservation() const override {
    return inner_.reservation();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DynamicRaiseConfig& config() const { return config_; }

 private:
  /// Applies the raise rule to every running reduced job.
  void maybe_raise(SchedulerContext& ctx);

  EasyBackfilling inner_;
  DynamicRaiseConfig config_;
};

}  // namespace bsld::core
