#include "core/fcfs.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bsld::core {

Fcfs::Fcfs(std::unique_ptr<cluster::ResourceSelector> selector,
           std::unique_ptr<FrequencyAssigner> assigner)
    : selector_(std::move(selector)), assigner_(std::move(assigner)) {
  BSLD_REQUIRE(selector_ != nullptr, "Fcfs: selector is required");
  BSLD_REQUIRE(assigner_ != nullptr, "Fcfs: assigner is required");
}

void Fcfs::on_submit(SchedulerContext& ctx, JobId id) {
  queue_.push(id);
  drain(ctx);
}

void Fcfs::on_job_end(SchedulerContext& ctx, JobId id) {
  (void)id;
  drain(ctx);
}

void Fcfs::drain(SchedulerContext& ctx) {
  const cluster::Machine& machine = ctx.machine();
  while (!queue_.empty()) {
    const JobId head = queue_.head();
    const wl::Job& job = ctx.job(head);
    BSLD_REQUIRE(job.size <= machine.cpu_count(),
                 "Fcfs: job larger than the machine");
    if (machine.free_now() < job.size) return;
    const GearIndex gear = assigner_->reservation_gear(
        ctx, job, ctx.now(), queue_.size() - 1);
    const std::vector<CpuId> cpus =
        selector_->select_at(machine, job.size, ctx.now(), ctx.now());
    queue_.pop_head();
    ctx.start_job(head, cpus, gear);
  }
}

std::string Fcfs::name() const {
  std::ostringstream os;
  os << "FCFS[" << selector_->name() << "," << assigner_->name() << "]";
  return os.str();
}

}  // namespace bsld::core
