/// \file policy_registry.hpp
/// \brief String-keyed construction of scheduling policies and frequency
/// assigners — the open counterpart of the closed BasePolicy enum.
///
/// Mirrors cluster::make_selector: a PolicySpec names a policy ("easy",
/// "fcfs", "conservative", "easy+raise") and an assigner ("ftop", "bsld",
/// or auto-derived from the DVFS config) and carries their tunables; the
/// PolicyRegistry resolves names to factories. Downstream code can register
/// additional policies/assigners under new names without touching core —
/// every entry point that consumes a report::RunSpec picks them up
/// automatically.
///
/// Registration must happen before experiment grids start executing (the
/// registry is read concurrently by sweep worker threads; a shared mutex
/// guards registration against lookup races).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dynamic_raise.hpp"
#include "core/frequency.hpp"
#include "util/config.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::core {

/// Declarative description of a fully-configured scheduling policy.
struct PolicySpec {
  /// Registry key: "easy", "fcfs", "conservative", "easy+raise", or any
  /// downstream-registered name.
  std::string name = "easy";
  /// Resource selector, resolved by cluster::make_selector.
  std::string selector = "FirstFit";
  /// Frequency assigner registry key; empty = auto ("bsld" when `dvfs`
  /// holds a config, "ftop" otherwise).
  std::string assigner;
  std::optional<DvfsConfig> dvfs;          ///< nullopt = no-DVFS baseline.
  std::optional<DynamicRaiseConfig> raise; ///< Dynamic-raise extension.

  /// The registry key actually looked up: "easy" with a raise config set
  /// resolves to "easy+raise", everything else resolves to `name`.
  [[nodiscard]] std::string resolved_name() const;

  /// The assigner key actually looked up (applies the auto rule).
  [[nodiscard]] std::string resolved_assigner() const;

  friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

/// Name -> factory resolution for policies and frequency assigners.
class PolicyRegistry {
 public:
  using PolicyFactory =
      std::function<std::unique_ptr<SchedulingPolicy>(const PolicySpec&)>;
  using AssignerFactory =
      std::function<std::unique_ptr<FrequencyAssigner>(const PolicySpec&)>;

  /// The process-wide registry, pre-loaded with the built-ins.
  static PolicyRegistry& global();

  /// Registers a policy factory. Throws bsld::Error on a duplicate name.
  void add_policy(const std::string& name, PolicyFactory factory);

  /// Same, with a one-line description shown by `bsldsim --list-policies`.
  void add_policy(const std::string& name, std::string description,
                  PolicyFactory factory);

  /// Registers an assigner factory. Throws bsld::Error on a duplicate name.
  void add_assigner(const std::string& name, AssignerFactory factory);

  /// Same, with a one-line description shown by `bsldsim --list-policies`.
  void add_assigner(const std::string& name, std::string description,
                    AssignerFactory factory);

  [[nodiscard]] bool has_policy(const std::string& name) const;
  [[nodiscard]] bool has_assigner(const std::string& name) const;

  /// Registered names in sorted order (for error messages and --help).
  [[nodiscard]] std::vector<std::string> policy_names() const;
  [[nodiscard]] std::vector<std::string> assigner_names() const;

  /// (name, description) pairs in sorted order; descriptions registered
  /// without one are empty.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  policy_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  assigner_entries() const;

  /// Builds the policy `spec` describes (via resolved_name()). Throws
  /// bsld::Error on unknown names, listing what is registered.
  [[nodiscard]] std::unique_ptr<SchedulingPolicy> make(
      const PolicySpec& spec) const;

  /// Builds the frequency assigner `spec` describes (via
  /// resolved_assigner()). Throws bsld::Error on unknown names.
  [[nodiscard]] std::unique_ptr<FrequencyAssigner> make_assigner(
      const PolicySpec& spec) const;

 private:
  struct PolicyEntry {
    std::string description;
    PolicyFactory factory;
  };
  struct AssignerEntry {
    std::string description;
    AssignerFactory factory;
  };

  mutable util::SharedMutex mutex_;
  std::map<std::string, PolicyEntry> policies_ BSLD_GUARDED_BY(mutex_);
  std::map<std::string, AssignerEntry> assigners_ BSLD_GUARDED_BY(mutex_);
};

/// Reads a PolicySpec from `policy.*` config keys (see policy_to_config).
/// Validates the policy name against the global registry.
PolicySpec policy_from_config(const util::Config& config);

/// Writes the canonical `policy.*` keys: name and selector always, DVFS
/// keys only when configured, raise keys only when configured, so
/// round-trips are byte-identical.
void policy_to_config(const PolicySpec& spec, util::Config& config);

/// Display form for labels/tables: "EASY BSLD<=2,WQ<=16", "FCFS noDVFS",
/// "EASY+raise>16 BSLD<=2,WQ<=NO", ...
std::string policy_label(const PolicySpec& spec);

}  // namespace bsld::core
