#include "core/easy.hpp"

#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace bsld::core {

EasyBackfilling::EasyBackfilling(
    std::unique_ptr<cluster::ResourceSelector> selector,
    std::unique_ptr<FrequencyAssigner> assigner)
    : selector_(std::move(selector)), assigner_(std::move(assigner)) {
  BSLD_REQUIRE(selector_ != nullptr, "EasyBackfilling: selector is required");
  BSLD_REQUIRE(assigner_ != nullptr, "EasyBackfilling: assigner is required");
}

const cluster::Reservation* EasyBackfilling::reservation() const {
  return reservation_.active() ? &reservation_ : nullptr;
}

std::string EasyBackfilling::name() const {
  std::ostringstream os;
  os << "EASY[" << selector_->name() << "," << assigner_->name() << "]";
  return os.str();
}

std::size_t EasyBackfilling::wq_size_excluding(JobId self) const {
  BSLD_REQUIRE(queue_.contains(self),
               "EasyBackfilling: WQsize queried for a job not in the queue");
  return queue_.size() - 1;
}

void EasyBackfilling::on_submit(SchedulerContext& ctx, JobId id) {
  queue_.push(id);
  if (queue_.size() == 1) {
    // The newcomer is the head: MakeJobReservation (start now or reserve).
    schedule_heads(ctx);
    return;
  }
  // A head reservation already exists (class invariant: a non-empty queue
  // always has one after every handler); machine state did not change, so
  // only the new job gets a backfill attempt.
  BSLD_REQUIRE(reservation_.active(),
               "EasyBackfilling: non-empty queue without a reservation");
  try_backfill_one(ctx, id);
}

void EasyBackfilling::on_job_end(SchedulerContext& ctx, JobId id) {
  (void)id;  // CPUs are already released; identity is irrelevant here.
  // "Rescheduling of all queued jobs is done when a job finishes earlier
  // than it has been expected" — we rebuild the schedule on every
  // completion (an exact-time completion is the boundary case of that rule
  // and needs the same pass to start the jobs the completion unblocks).
  if (queue_.empty()) {
    reservation_ = cluster::Reservation{};
    return;
  }
  if (schedule_heads(ctx)) backfill_scan(ctx);
}

void EasyBackfilling::start_head(SchedulerContext& ctx, JobId id) {
  const wl::Job& job = ctx.job(id);
  const GearIndex gear = assigner_->reservation_gear(
      ctx, job, ctx.now(), wq_size_excluding(id));
  const std::vector<CpuId> cpus =
      selector_->select_at(ctx.machine(), job.size, ctx.now(), ctx.now());
  queue_.pop_head();
  ctx.start_job(id, cpus, gear);
}

bool EasyBackfilling::schedule_heads(SchedulerContext& ctx) {
  reservation_ = cluster::Reservation{};
  const cluster::Machine& machine = ctx.machine();
  while (!queue_.empty()) {
    const JobId head = queue_.head();
    const wl::Job& job = ctx.job(head);
    BSLD_REQUIRE(job.size <= machine.cpu_count(),
                 "EasyBackfilling: job larger than the machine");
    const Time start = machine.earliest_start(job.size, ctx.now());
    if (start <= ctx.now()) {
      start_head(ctx, head);
      continue;
    }
    // Future start: reserve the First-Fit CPU set available at `start`.
    // The head's earliest start does not depend on its gear (free capacity
    // is non-decreasing in time), so the reservation is gear-agnostic; the
    // binding gear decision happens at the pass in which the job starts
    // (DESIGN.md §4 decision 4).
    reservation_.job = head;
    reservation_.start = start;
    reservation_.cpus = selector_->select_at(machine, job.size, start, ctx.now());
    reservation_.mask.assign(static_cast<std::size_t>(machine.cpu_count()), 0);
    for (const CpuId cpu : reservation_.cpus) {
      reservation_.mask[static_cast<std::size_t>(cpu)] = 1;
    }
    free_outside_reservation_ = 0;
    for (CpuId cpu = 0; cpu < machine.cpu_count(); ++cpu) {
      if (machine.is_free(cpu) && !reservation_.contains(cpu)) {
        ++free_outside_reservation_;
      }
    }
    return true;
  }
  return false;
}

void EasyBackfilling::backfill_scan(SchedulerContext& ctx) {
  // Copy the candidate ids: backfilled jobs are removed from the queue
  // during the scan. FCFS order, head excluded (it owns the reservation).
  std::vector<JobId> candidates;
  candidates.reserve(queue_.size());
  bool first = true;
  for (const JobId id : queue_) {
    if (first) {
      first = false;
      continue;
    }
    candidates.push_back(id);
  }
  for (const JobId id : candidates) try_backfill_one(ctx, id);
}

bool EasyBackfilling::try_backfill_one(SchedulerContext& ctx, JobId id) {
  const cluster::Machine& machine = ctx.machine();
  const wl::Job& job = ctx.job(id);
  if (machine.free_now() < job.size) return false;  // cheap reject

  const Time now = ctx.now();
  const auto feasible = [&](GearIndex gear) {
    const Time end = now + job_scaled_duration(ctx, job, job.requested_time, gear);
    if (reservation_.active() && end > reservation_.start) {
      // Would still hold CPUs at the reserved start: only CPUs outside the
      // reservation qualify.
      return free_outside_reservation_ >= job.size;
    }
    return machine.free_now() >= job.size;
  };

  const std::optional<GearIndex> gear =
      assigner_->backfill_gear(ctx, job, feasible, wq_size_excluding(id));
  if (!gear) return false;

  const Time end = now + job_scaled_duration(ctx, job, job.requested_time, *gear);
  const std::optional<std::vector<CpuId>> cpus = selector_->select_backfill(
      machine, job.size, now, end, reservation_.active() ? &reservation_ : nullptr);
  BSLD_REQUIRE(cpus.has_value(),
               "EasyBackfilling: selector disagreed with feasibility counters");
  for (const CpuId cpu : *cpus) {
    if (reservation_.active() && !reservation_.contains(cpu)) {
      --free_outside_reservation_;
    }
  }
  queue_.remove(id);
  ctx.start_job(id, *cpus, *gear);
  return true;
}

}  // namespace bsld::core
