/// \file easy.hpp
/// \brief EASY backfilling (Mu'alem & Feitelson) with pluggable frequency
/// assignment — the paper's power-aware scheduler when combined with
/// BsldThresholdAssigner, and the baseline when combined with TopFrequency.
///
/// Semantics (paper §2.1/§2.2):
///  * jobs run in FCFS order; only the head of the wait queue holds a
///    reservation at its earliest possible start time;
///  * a later job may be backfilled iff it can start immediately without
///    delaying the reservation (it must either finish before the reserved
///    start or use only CPUs outside the reserved set);
///  * all queued jobs are rescheduled whenever a job finishes (early
///    completions shift the whole schedule, so the reservation is
///    recomputed from scratch);
///  * gear selection follows Fig. 1 (head path) and Fig. 2 (backfill path)
///    via the injected FrequencyAssigner.
#pragma once

#include <memory>

#include "cluster/first_fit.hpp"
#include "core/frequency.hpp"
#include "core/scheduler.hpp"
#include "core/wait_queue.hpp"

namespace bsld::core {

/// EASY backfilling policy.
class EasyBackfilling final : public SchedulingPolicy {
 public:
  /// Both collaborators are required; the policy owns them.
  EasyBackfilling(std::unique_ptr<cluster::ResourceSelector> selector,
                  std::unique_ptr<FrequencyAssigner> assigner);

  void on_submit(SchedulerContext& ctx, JobId id) override;
  void on_job_end(SchedulerContext& ctx, JobId id) override;

  [[nodiscard]] std::size_t queue_size() const override {
    return queue_.size();
  }
  [[nodiscard]] const cluster::Reservation* reservation() const override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Jobs waiting on execution other than `self` (WQsize of the paper).
  [[nodiscard]] std::size_t wq_size_excluding(JobId self) const;

  /// Starts queued head jobs while possible, then (re)builds the head
  /// reservation. Returns true when a reservation is active afterwards.
  bool schedule_heads(SchedulerContext& ctx);

  /// One FCFS scan over the non-head queue attempting backfills.
  void backfill_scan(SchedulerContext& ctx);

  /// BackfillJob(J) for a single candidate; true when it started.
  bool try_backfill_one(SchedulerContext& ctx, JobId id);

  /// MakeJobReservation's immediate-start body for the current head.
  void start_head(SchedulerContext& ctx, JobId id);

  std::unique_ptr<cluster::ResourceSelector> selector_;
  std::unique_ptr<FrequencyAssigner> assigner_;
  WaitQueue queue_;
  cluster::Reservation reservation_;
  /// Free CPUs outside the reserved set (maintained during backfill scans).
  std::int32_t free_outside_reservation_ = 0;
};

}  // namespace bsld::core
