/// \file policy_factory.hpp
/// \brief Convenience constructors wiring selectors, frequency assigners and
/// base policies into the configurations the paper evaluates.
///
/// These are enum-keyed compatibility wrappers over core::PolicyRegistry
/// (policy_registry.hpp) — new code and anything driven by a serialized
/// RunSpec should go through the registry's string-keyed PolicySpec
/// directly, which is open to downstream-registered policies.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/conservative.hpp"
#include "core/dynamic_raise.hpp"
#include "core/easy.hpp"
#include "core/fcfs.hpp"
#include "core/frequency.hpp"

namespace bsld::core {

/// Identifies the base scheduling policy.
enum class BasePolicy { kEasy, kFcfs, kConservative };

/// Builds a frequency assigner: the BSLD-threshold algorithm when `dvfs`
/// holds a config, the Ftop baseline otherwise.
std::unique_ptr<FrequencyAssigner> make_assigner(
    const std::optional<DvfsConfig>& dvfs);

/// Builds a ready-to-run policy. `selector_name` is resolved by
/// cluster::make_selector ("FirstFit" is the paper's choice).
std::unique_ptr<SchedulingPolicy> make_policy(
    BasePolicy base, const std::optional<DvfsConfig>& dvfs,
    const std::string& selector_name = "FirstFit");

/// EASY + the dynamic frequency-raising extension (paper §7 future work).
std::unique_ptr<SchedulingPolicy> make_dynamic_raise_policy(
    const std::optional<DvfsConfig>& dvfs, DynamicRaiseConfig raise,
    const std::string& selector_name = "FirstFit");

/// Parses "easy"/"fcfs"/"conservative"; throws bsld::Error on unknown.
BasePolicy base_policy_from_name(const std::string& name);

}  // namespace bsld::core
