/// \file frequency.hpp
/// \brief CPU frequency assignment — the paper's primary contribution.
///
/// The FrequencyAssigner seam lets any base scheduling policy (EASY, FCFS,
/// conservative, ...) delegate gear selection, matching the paper's claim
/// that "the frequency scaling algorithm can be applied with any parallel
/// job scheduling policy". Two implementations:
///
///  * TopFrequency — the no-DVFS baseline: every job runs at Ftop.
///  * BsldThresholdAssigner — the paper's algorithm (Fig. 1 / Fig. 2):
///    starting from the lowest gear, accept the first gear whose predicted
///    BSLD stays within `bsld_threshold`, but only when no more than
///    `wq_threshold` jobs are waiting; otherwise run at Ftop.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "util/function_ref.hpp"
#include "util/types.hpp"

namespace bsld::core {

/// Dilation coefficient for `job` at `gear`, honouring a per-job beta when
/// the trace carries one (job.beta >= 0) and the platform beta otherwise.
inline double job_coefficient(const SchedulerContext& ctx, const wl::Job& job,
                              GearIndex gear) {
  return ctx.time_model().coefficient_with_beta(gear, job.beta);
}

/// Dilated duration for `job` at `gear` (same beta resolution rule).
inline Time job_scaled_duration(const SchedulerContext& ctx,
                                const wl::Job& job, Time duration_at_top,
                                GearIndex gear) {
  return ctx.time_model().scale_duration_with_beta(duration_at_top, gear,
                                                   job.beta);
}

/// Tunables of the BSLD-threshold policy (paper §2.2 + DESIGN.md §4).
struct DvfsConfig {
  /// Maximum acceptable predicted BSLD for a reduced-frequency start.
  double bsld_threshold = 2.0;
  /// Maximum wait-queue size (excluding the job being scheduled, see
  /// `wq_counts_self`) at which DVFS may still be applied; nullopt means
  /// "NO LIMIT" in the paper's terminology.
  std::optional<std::int64_t> wq_threshold = 0;
  /// Th of Eqs. 1/2/6.
  Time bsld_floor = kDefaultBsldFloor;
  /// Count the job being scheduled in WQsize (paper ambiguity; default off
  /// — see DESIGN.md §4 decision 1).
  bool wq_counts_self = false;
  /// Fig. 2 else-branch: require satisfiesBSLD at Ftop before backfilling
  /// when the queue is over threshold (literal reading; ablated).
  bool backfill_requires_bsld_at_top = true;

  friend bool operator==(const DvfsConfig&, const DvfsConfig&) = default;
};

/// Strategy interface for gear selection at schedule time.
class FrequencyAssigner {
 public:
  virtual ~FrequencyAssigner() = default;

  /// Fig. 1 (MakeJobReservation) path: gear for `job` with planned start
  /// `start` (>= now; the head's start time does not depend on the gear).
  /// `wq_size` counts jobs waiting on execution, excluding `job` itself.
  [[nodiscard]] virtual GearIndex reservation_gear(
      const SchedulerContext& ctx, const wl::Job& job, Time start,
      std::size_t wq_size) const = 0;

  /// Fig. 2 (BackfillJob) path: gear for backfill candidate `job` starting
  /// now. `feasible(g)` reports whether a reservation-respecting allocation
  /// exists at gear g (duration dilates with the gear, so feasibility is
  /// gear-dependent); the reference is borrowed for this call only (see
  /// util/function_ref.hpp — no std::function, no per-call allocation).
  /// Returns nullopt when the job must not be backfilled.
  [[nodiscard]] virtual std::optional<GearIndex> backfill_gear(
      const SchedulerContext& ctx, const wl::Job& job,
      util::FunctionRef<bool(GearIndex)> feasible,
      std::size_t wq_size) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Baseline: no DVFS, everything at the top gear.
class TopFrequency final : public FrequencyAssigner {
 public:
  [[nodiscard]] GearIndex reservation_gear(const SchedulerContext& ctx,
                                           const wl::Job& job, Time start,
                                           std::size_t wq_size) const override;
  [[nodiscard]] std::optional<GearIndex> backfill_gear(
      const SchedulerContext& ctx, const wl::Job& job,
      util::FunctionRef<bool(GearIndex)> feasible,
      std::size_t wq_size) const override;
  [[nodiscard]] std::string name() const override { return "Ftop"; }
};

/// The paper's BSLD-threshold + WQ-threshold frequency assignment.
class BsldThresholdAssigner final : public FrequencyAssigner {
 public:
  explicit BsldThresholdAssigner(DvfsConfig config);

  [[nodiscard]] GearIndex reservation_gear(const SchedulerContext& ctx,
                                           const wl::Job& job, Time start,
                                           std::size_t wq_size) const override;
  [[nodiscard]] std::optional<GearIndex> backfill_gear(
      const SchedulerContext& ctx, const wl::Job& job,
      util::FunctionRef<bool(GearIndex)> feasible,
      std::size_t wq_size) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DvfsConfig& config() const { return config_; }

  /// The predicted-BSLD acceptance test (Eq. 2) for one gear; exposed for
  /// unit tests.
  [[nodiscard]] bool satisfies_bsld(const SchedulerContext& ctx,
                                    const wl::Job& job, Time start,
                                    GearIndex gear) const;

 private:
  [[nodiscard]] bool wq_allows_dvfs(std::size_t wq_size) const;

  DvfsConfig config_;
};

}  // namespace bsld::core
