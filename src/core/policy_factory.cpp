#include "core/policy_factory.hpp"

#include "util/error.hpp"

namespace bsld::core {

std::unique_ptr<FrequencyAssigner> make_assigner(
    const std::optional<DvfsConfig>& dvfs) {
  if (dvfs) return std::make_unique<BsldThresholdAssigner>(*dvfs);
  return std::make_unique<TopFrequency>();
}

std::unique_ptr<SchedulingPolicy> make_policy(
    BasePolicy base, const std::optional<DvfsConfig>& dvfs,
    const std::string& selector_name) {
  auto selector = cluster::make_selector(selector_name);
  auto assigner = make_assigner(dvfs);
  switch (base) {
    case BasePolicy::kEasy:
      return std::make_unique<EasyBackfilling>(std::move(selector),
                                               std::move(assigner));
    case BasePolicy::kFcfs:
      return std::make_unique<Fcfs>(std::move(selector), std::move(assigner));
    case BasePolicy::kConservative:
      return std::make_unique<ConservativeBackfilling>(std::move(selector),
                                                       std::move(assigner));
  }
  throw Error("make_policy(): unknown base policy");
}

std::unique_ptr<SchedulingPolicy> make_dynamic_raise_policy(
    const std::optional<DvfsConfig>& dvfs, DynamicRaiseConfig raise,
    const std::string& selector_name) {
  return std::make_unique<DynamicRaiseEasy>(
      cluster::make_selector(selector_name), make_assigner(dvfs), raise);
}

BasePolicy base_policy_from_name(const std::string& name) {
  if (name == "easy") return BasePolicy::kEasy;
  if (name == "fcfs") return BasePolicy::kFcfs;
  if (name == "conservative") return BasePolicy::kConservative;
  throw Error("base_policy_from_name(): unknown policy `" + name + "`");
}

}  // namespace bsld::core
