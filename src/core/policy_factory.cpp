#include "core/policy_factory.hpp"

#include "core/policy_registry.hpp"
#include "util/error.hpp"

namespace bsld::core {

namespace {

const char* base_key(BasePolicy base) {
  switch (base) {
    case BasePolicy::kEasy: return "easy";
    case BasePolicy::kFcfs: return "fcfs";
    case BasePolicy::kConservative: return "conservative";
  }
  throw Error("base_key(): unknown base policy");
}

}  // namespace

std::unique_ptr<FrequencyAssigner> make_assigner(
    const std::optional<DvfsConfig>& dvfs) {
  PolicySpec spec;
  spec.dvfs = dvfs;
  return PolicyRegistry::global().make_assigner(spec);
}

std::unique_ptr<SchedulingPolicy> make_policy(
    BasePolicy base, const std::optional<DvfsConfig>& dvfs,
    const std::string& selector_name) {
  PolicySpec spec;
  spec.name = base_key(base);
  spec.dvfs = dvfs;
  spec.selector = selector_name;
  return PolicyRegistry::global().make(spec);
}

std::unique_ptr<SchedulingPolicy> make_dynamic_raise_policy(
    const std::optional<DvfsConfig>& dvfs, DynamicRaiseConfig raise,
    const std::string& selector_name) {
  PolicySpec spec;
  spec.name = "easy";
  spec.dvfs = dvfs;
  spec.raise = raise;  // resolves to "easy+raise"
  spec.selector = selector_name;
  return PolicyRegistry::global().make(spec);
}

BasePolicy base_policy_from_name(const std::string& name) {
  if (name == "easy") return BasePolicy::kEasy;
  if (name == "fcfs") return BasePolicy::kFcfs;
  if (name == "conservative") return BasePolicy::kConservative;
  throw Error("base_policy_from_name(): unknown policy `" + name + "`");
}

}  // namespace bsld::core
