/// \file wait_queue.hpp
/// \brief FCFS wait queue with stable order and O(1) head access.
///
/// EASY backfilling needs: FCFS iteration, head inspection, pop-head, and
/// removal of an arbitrary backfilled job without disturbing the relative
/// order of the rest.
#pragma once

#include <cstddef>
#include <deque>

#include "util/types.hpp"

namespace bsld::core {

/// First-come-first-served queue of job ids.
class WaitQueue {
 public:
  /// Appends a job (jobs arrive in submit order). Throws bsld::Error on
  /// duplicates.
  void push(JobId id);

  /// Head of the queue; throws bsld::Error when empty.
  [[nodiscard]] JobId head() const;

  /// Removes and returns the head; throws bsld::Error when empty.
  JobId pop_head();

  /// Removes `id` wherever it is; throws bsld::Error when absent.
  void remove(JobId id);

  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool contains(JobId id) const;

  /// FCFS-ordered view for backfill scans.
  [[nodiscard]] auto begin() const { return jobs_.begin(); }
  [[nodiscard]] auto end() const { return jobs_.end(); }

 private:
  std::deque<JobId> jobs_;
};

}  // namespace bsld::core
