/// \file wait_queue.hpp
/// \brief FCFS wait queue with stable order and O(1) head access.
///
/// EASY backfilling needs: FCFS iteration, head inspection, pop-head, and
/// removal of an arbitrary backfilled job without disturbing the relative
/// order of the rest. Membership queries are O(1): the deque carries the
/// order, a hash set mirrors the contents (backfill feasibility probes
/// call contains() once per candidate per pass — a linear scan here was
/// 11% of a sweep's profile).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

#include "util/types.hpp"

namespace bsld::core {

/// First-come-first-served queue of job ids.
class WaitQueue {
 public:
  /// Appends a job (jobs arrive in submit order). Throws bsld::Error on
  /// duplicates.
  void push(JobId id);

  /// Head of the queue; throws bsld::Error when empty.
  [[nodiscard]] JobId head() const;

  /// Removes and returns the head; throws bsld::Error when empty.
  JobId pop_head();

  /// Removes `id` wherever it is; throws bsld::Error when absent. O(n) in
  /// queue length (order must be preserved); removal is rare next to
  /// contains().
  void remove(JobId id);

  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  /// O(1) membership via the mirror set.
  [[nodiscard]] bool contains(JobId id) const {
    return members_.contains(id);
  }

  /// FCFS-ordered view for backfill scans.
  [[nodiscard]] auto begin() const { return jobs_.begin(); }
  [[nodiscard]] auto end() const { return jobs_.end(); }

 private:
  std::deque<JobId> jobs_;             ///< FCFS order.
  std::unordered_set<JobId> members_;  ///< Mirror of jobs_ for contains().
};

}  // namespace bsld::core
