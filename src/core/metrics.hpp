/// \file metrics.hpp
/// \brief BSLD (bounded slowdown) metric family (paper Eqs. 1, 2, 6).
///
/// The 600 s floor Th keeps very short jobs from dominating averages: any
/// job shorter than Th is slowed down relative to Th, not to its own tiny
/// runtime.
#pragma once

#include "util/types.hpp"

namespace bsld::core {

/// Default BSLD floor Th (paper: "600 seconds as HPC jobs shorter than 10
/// minutes can be assumed to be very short jobs").
inline constexpr Time kDefaultBsldFloor = 600;

/// Eq. 1: BSLD = max((wait + run) / max(Th, run), 1).
double bounded_slowdown(Time wait, Time run_time, Time floor = kDefaultBsldFloor);

/// Eq. 2: predicted BSLD of starting a job after `wait` seconds at a gear
/// with dilation `coefficient`, given the user's `requested` runtime:
/// max((wait + requested * coefficient) / max(Th, requested), 1).
double predicted_bsld(Time wait, Time requested, double coefficient,
                      Time floor = kDefaultBsldFloor);

/// Eq. 6: BSLD of a completed, possibly frequency-reduced job. The numerator
/// uses the penalized (dilated) runtime; the denominator keeps the runtime
/// at top frequency (see DESIGN.md §4, decision 5).
double penalized_bsld(Time wait, Time penalized_run_time, Time run_time_at_top,
                      Time floor = kDefaultBsldFloor);

}  // namespace bsld::core
