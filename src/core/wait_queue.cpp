#include "core/wait_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::core {

void WaitQueue::push(JobId id) {
  BSLD_REQUIRE(!contains(id), "WaitQueue: duplicate job id");
  jobs_.push_back(id);
}

JobId WaitQueue::head() const {
  BSLD_REQUIRE(!jobs_.empty(), "WaitQueue: head() on empty queue");
  return jobs_.front();
}

JobId WaitQueue::pop_head() {
  BSLD_REQUIRE(!jobs_.empty(), "WaitQueue: pop_head() on empty queue");
  const JobId id = jobs_.front();
  jobs_.pop_front();
  return id;
}

void WaitQueue::remove(JobId id) {
  const auto it = std::find(jobs_.begin(), jobs_.end(), id);
  BSLD_REQUIRE(it != jobs_.end(), "WaitQueue: removing absent job");
  jobs_.erase(it);
}

bool WaitQueue::contains(JobId id) const {
  return std::find(jobs_.begin(), jobs_.end(), id) != jobs_.end();
}

}  // namespace bsld::core
