#include "core/wait_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::core {

void WaitQueue::push(JobId id) {
  BSLD_REQUIRE(members_.insert(id).second, "WaitQueue: duplicate job id");
  jobs_.push_back(id);
}

JobId WaitQueue::head() const {
  BSLD_REQUIRE(!jobs_.empty(), "WaitQueue: head() on empty queue");
  return jobs_.front();
}

JobId WaitQueue::pop_head() {
  BSLD_REQUIRE(!jobs_.empty(), "WaitQueue: pop_head() on empty queue");
  const JobId id = jobs_.front();
  jobs_.pop_front();
  members_.erase(id);
  return id;
}

void WaitQueue::remove(JobId id) {
  BSLD_REQUIRE(members_.erase(id) == 1, "WaitQueue: removing absent job");
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), id));
}

}  // namespace bsld::core
