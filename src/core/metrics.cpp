#include "core/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::core {

namespace {

double bsld_impl(Time wait, double effective_run, Time run_for_floor,
                 Time floor) {
  BSLD_REQUIRE(wait >= 0, "BSLD: negative wait time");
  BSLD_REQUIRE(effective_run >= 0.0, "BSLD: negative runtime");
  BSLD_REQUIRE(floor > 0, "BSLD: floor must be positive");
  const double denominator =
      static_cast<double>(std::max<Time>(floor, run_for_floor));
  const double slowdown =
      (static_cast<double>(wait) + effective_run) / denominator;
  return std::max(slowdown, 1.0);
}

}  // namespace

double bounded_slowdown(Time wait, Time run_time, Time floor) {
  return bsld_impl(wait, static_cast<double>(run_time), run_time, floor);
}

double predicted_bsld(Time wait, Time requested, double coefficient,
                      Time floor) {
  BSLD_REQUIRE(coefficient >= 1.0, "BSLD: dilation coefficient below 1");
  return bsld_impl(wait, static_cast<double>(requested) * coefficient,
                   requested, floor);
}

double penalized_bsld(Time wait, Time penalized_run_time,
                      Time run_time_at_top, Time floor) {
  return bsld_impl(wait, static_cast<double>(penalized_run_time),
                   run_time_at_top, floor);
}

}  // namespace bsld::core
