/// \file conservative.hpp
/// \brief Conservative backfilling with pluggable frequency assignment.
///
/// Extension beyond the paper (its §6 discusses EASY only): under
/// conservative backfilling *every* queued job holds a reservation and a
/// later job may only backfill when it delays none of them. We implement
/// the standard recompute-with-compression variant: on every event the full
/// reservation schedule is rebuilt in FCFS order against the availability
/// profile (cluster/profile.hpp), so planned starts can only improve.
/// Demonstrates the paper's claim that the BSLD-threshold frequency
/// assigner composes with any base scheduling policy.
#pragma once

#include <memory>

#include "cluster/first_fit.hpp"
#include "core/frequency.hpp"
#include "core/scheduler.hpp"
#include "core/wait_queue.hpp"

namespace bsld::core {

/// Conservative backfilling policy.
class ConservativeBackfilling final : public SchedulingPolicy {
 public:
  ConservativeBackfilling(std::unique_ptr<cluster::ResourceSelector> selector,
                          std::unique_ptr<FrequencyAssigner> assigner);

  void on_submit(SchedulerContext& ctx, JobId id) override;
  void on_job_end(SchedulerContext& ctx, JobId id) override;

  [[nodiscard]] std::size_t queue_size() const override {
    return queue_.size();
  }
  [[nodiscard]] std::string name() const override;

 private:
  /// Rebuilds the whole plan and starts every job whose slot begins now.
  void schedule_pass(SchedulerContext& ctx);

  std::unique_ptr<cluster::ResourceSelector> selector_;
  std::unique_ptr<FrequencyAssigner> assigner_;
  WaitQueue queue_;
};

}  // namespace bsld::core
