/// \file observer.hpp
/// \brief The measurement seam of the simulator: sim::SimObserver.
///
/// The paper's whole evaluation (Figs. 3-9, Tables 1-3) is observational —
/// different views of one event stream. A SimObserver receives that stream
/// at the exact points sim::Simulation changes job state:
///
///   on_run_begin  once, before the first event;
///   on_submit     a job entered the system (before the policy sees it);
///   on_start      a job began executing at a gear;
///   on_gear_change a running job was raised mid-flight (boost_job);
///   on_finish     a job completed, with its fully-populated JobOutcome;
///   on_pm         the run's power manager acted (cap moves, throttles,
///                 gated admissions, sleep intervals — pm/event.hpp);
///   on_run_end    once, after the event queue drained.
///
/// All built-in measurement (per-job recording, aggregate BSLD/wait
/// statistics, energy metering, time-series traces) is implemented as
/// observers over this interface — see instruments.hpp — and downstream
/// code adds its own views via Simulation::add_observer without touching
/// the core loop. Observers are invoked synchronously on the simulation
/// thread, in registration order (defaults first), so a run's observation
/// sequence is deterministic: parallel sweeps over independent simulations
/// observe bit-identical streams per run.
///
/// Thread compatibility: observers (and the Instruments built on them)
/// are deliberately lock-free and unannotated — every observer instance
/// belongs to exactly one simulation, and a simulation runs entirely on
/// one sweep-worker thread. Mutable observer state is therefore
/// thread-confined, never shared; sharing one instance across concurrent
/// simulations is a contract violation, not a locking bug.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <variant>

#include "pm/event.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace bsld::sim {

/// Resolves a global trace index to the job's trace record during batched
/// delivery. The streaming simulation implements this over its live job
/// window, so observers can read job fields without the whole workload ever
/// being materialized. Resolution is only valid for indices carried by the
/// span currently being delivered — the referenced jobs are guaranteed live
/// for exactly that long (eviction happens after delivery returns).
class JobResolver {
 public:
  virtual ~JobResolver() = default;

  /// The trace record at 0-based stream position `trace_index`.
  [[nodiscard]] virtual const wl::Job& job_at(
      std::uint64_t trace_index) const = 0;
};

/// JobResolver over a materialized workload — for tests and standalone
/// replay of recorded spans.
class WorkloadJobResolver final : public JobResolver {
 public:
  explicit WorkloadJobResolver(const wl::Workload& workload)
      : workload_(&workload) {}

  [[nodiscard]] const wl::Job& job_at(
      std::uint64_t trace_index) const override {
    return workload_->jobs[static_cast<std::size_t>(trace_index)];
  }

 private:
  const wl::Workload* workload_;
};

/// Everything recorded about one job's execution. Built by the simulator
/// when the job finishes and delivered through SimObserver::on_finish; the
/// JobRecorder instrument retains these as SimulationResult::jobs.
struct JobOutcome {
  JobId id = kNoJob;
  Time submit = 0;
  std::int32_t size = 0;
  Time run_time_top = 0;       ///< Trace runtime (at Ftop).
  Time start = kNoTime;
  Time end = kNoTime;
  GearIndex gear = 0;          ///< Gear assigned at start (Fig. 4 counts this).
  GearIndex final_gear = 0;    ///< Gear at completion (differs when boosted).
  bool boosted = false;        ///< Raised mid-flight (future-work extension).
  Time scaled_runtime = 0;     ///< Actual runtime (end - start).
  Time scaled_requested = 0;   ///< Requested time dilated by the start gear.
  double bsld = 1.0;           ///< Penalized BSLD (Eq. 6).

  [[nodiscard]] Time wait() const { return start - submit; }
};

/// Payload of SimObserver::on_run_begin. Carries no workload reference —
/// a streaming run has no materialized trace to hand out. Instruments that
/// pre-size per-job storage use job_count_hint and grow on demand when the
/// hint is unknown.
struct RunBeginEvent {
  std::string_view workload_name;     ///< Display name of the trace.
  std::int64_t job_count_hint = -1;   ///< Exact job count, or -1 unknown.
  std::int32_t cpus = 0;              ///< Effective machine size.
  std::size_t gear_count = 0;         ///< Size of the DVFS gear set.
  Time bsld_floor = 0;                ///< Th of the BSLD metric in force.
};

/// Payload of SimObserver::on_submit, fired before the policy reacts.
struct SubmitEvent {
  const wl::Job& job;              ///< Trace record of the submitted job.
  std::uint64_t trace_index = 0;   ///< Position in stream order.
  Time time = 0;                   ///< == job.submit.
};

/// Payload of SimObserver::on_start.
struct StartEvent {
  const wl::Job& job;              ///< Trace record of the started job.
  std::uint64_t trace_index = 0;   ///< Position in stream order.
  Time time = 0;                   ///< Start time (now).
  GearIndex gear = 0;              ///< Gear engaged at start.
  Time scaled_runtime = 0;         ///< Expected runtime at `gear`.
  Time scaled_requested = 0;       ///< Requested time dilated by `gear`.
};

/// Payload of SimObserver::on_gear_change (mid-flight boost). The closed
/// segment [time - segment_seconds, time) ran at `from`; execution
/// continues at `to`.
struct GearChangeEvent {
  JobId id = kNoJob;
  std::uint64_t trace_index = 0;   ///< Position in stream order.
  std::int32_t size = 0;           ///< CPUs held by the job.
  Time time = 0;                   ///< When the new gear was engaged.
  GearIndex from = 0;
  GearIndex to = 0;
  Time segment_seconds = 0;        ///< Wall seconds spent at `from`.
};

/// Payload of SimObserver::on_finish. `outcome` is complete (including the
/// penalized BSLD); the final gear segment [outcome.end -
/// final_segment_seconds, outcome.end) ran at outcome.final_gear.
struct FinishEvent {
  const JobOutcome& outcome;
  std::uint64_t trace_index = 0;   ///< Position in stream order.
  Time final_segment_seconds = 0;
};

/// Payload of SimObserver::on_run_end.
struct RunEndEvent {
  Time first_submit = 0;         ///< Submit time of the first trace job.
  Time makespan = 0;             ///< Last completion time.
  Time horizon = 0;              ///< max(makespan - first_submit, 1).
  std::int32_t cpus = 0;         ///< Effective machine size.
  std::int64_t jobs = 0;         ///< Jobs simulated.
  std::uint64_t events_processed = 0;
};

/// Value-form records of the batched event stream. The reference-carrying
/// payloads above are views valid only for the duration of one hook call;
/// these records store indices and values instead, so the simulation can
/// buffer a span of them and deliver it later (SimObserver::on_events).
/// The delivering JobResolver resolves trace_index back to the wl::Job.
struct SubmitRecord {
  std::uint64_t trace_index = 0;
  Time time = 0;
};

/// Value form of StartEvent (see SubmitRecord).
struct StartRecord {
  std::uint64_t trace_index = 0;
  Time time = 0;
  GearIndex gear = 0;
  Time scaled_runtime = 0;
  Time scaled_requested = 0;
};

/// Value form of FinishEvent: the outcome is carried by value so the
/// record outlives the simulator's transient per-job state.
struct FinishRecord {
  JobOutcome outcome;
  std::uint64_t trace_index = 0;
  Time final_segment_seconds = 0;
};

/// One buffered notification. GearChangeEvent and pm::PmEvent are already
/// flat value types and are stored verbatim. Relative order inside the
/// batch is exactly emission order — replay preserves the interleaving of
/// submits, starts, gear changes, finishes, and pm actions.
using BatchedEvent = std::variant<SubmitRecord, StartRecord, GearChangeEvent,
                                  FinishRecord, pm::PmEvent>;

/// Passive view over one simulation run. All hooks default to no-ops so
/// concrete observers override only what they measure. Observers are
/// single-run: Simulation::run() delivers exactly one on_run_begin /
/// on_run_end pair (built-in instruments reset themselves on on_run_begin,
/// so reusing one across runs observes only the latest).
///
/// Dispatch is batched: the simulation buffers the mid-run stream
/// (submit/start/gear-change/finish/pm) and delivers it in spans through
/// on_events — one virtual call per observer per span instead of one per
/// event. The default on_events replays the span through the per-event
/// virtuals below in emission order, so observers that only override
/// per-event hooks see exactly the stream they always did; high-volume
/// observers may override on_events itself to amortize dispatch.
/// Ordering contract: every buffered event is flushed before on_run_end,
/// and batching never reorders events — only delays delivery until the
/// simulation's next flush point. Hooks must not re-enter the simulation.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_run_begin(const RunBeginEvent& event) { (void)event; }
  virtual void on_submit(const SubmitEvent& event) { (void)event; }
  virtual void on_start(const StartEvent& event) { (void)event; }
  virtual void on_gear_change(const GearChangeEvent& event) { (void)event; }
  virtual void on_finish(const FinishEvent& event) { (void)event; }
  /// A power-management action (pm/event.hpp). Runs without a manager —
  /// or under `pm=none` — never deliver one.
  virtual void on_pm(const pm::PmEvent& event) { (void)event; }
  virtual void on_run_end(const RunEndEvent& event) { (void)event; }

  /// Batched delivery of `count` records in emission order. `jobs`
  /// resolves the records' trace indices; resolution is valid only during
  /// this call (a streaming simulation evicts delivered jobs afterwards).
  /// The default implementation replays each record through the matching
  /// per-event virtual.
  virtual void on_events(const JobResolver& jobs, const BatchedEvent* events,
                         std::size_t count);
};

}  // namespace bsld::sim
