/// \file job_window.hpp
/// \brief Bounded ring of in-flight jobs addressed by global trace index.
///
/// The streaming simulation never holds the whole trace: jobs enter the
/// window when their submit event is scheduled (the lookahead pump) and
/// leave once they have finished *and* their batched observer records have
/// been delivered. Engine events and observer records carry the job's
/// *global* trace index — its 0-based position in (submit, id) stream
/// order — and the window maps that index to a slot in a power-of-two ring
/// (slot = global & (capacity - 1)). Because admissions are contiguous and
/// evictions retire the oldest live index first, a global index is live iff
/// it lies in [evicted(), admitted()); a stale engine event for an already
/// evicted job is detected by that range check alone, with no per-slot
/// generation counters.
///
/// Capacity grows geometrically when the live span outruns the ring, so a
/// materialized run (which admits the whole trace up front) behaves exactly
/// like the old flat per-slot vectors, while a streaming run's memory is
/// bounded by the submit lookahead plus the number of jobs simultaneously
/// queued or running. peak_live() reports the high-water mark — the number
/// SimulationResult::peak_live_jobs exposes and the million-job memory test
/// asserts on. Storage is recycled across runs through sim::RunArena.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"
#include "workload/job.hpp"

namespace bsld::sim {

/// Live state of an executing job, valid while `running` is set. The CPU
/// list lives in the simulation's cpu_slab_ at [cpu_offset, cpu_offset +
/// cpu_len) — no per-job heap allocation. Energy is accounted per gear
/// segment so mid-flight gear raises stay exact; remaining work is tracked
/// in top-gear seconds (running at gear g consumes 1/Coef(g) top-seconds of
/// work per wall second).
struct RunningRec {
  std::uint32_t cpu_offset = 0;   ///< Into the run's CPU slab.
  std::uint32_t cpu_len = 0;
  GearIndex gear = 0;
  GearIndex start_gear = 0;       ///< Gear engaged at start.
  Time segment_start = 0;         ///< When the current gear was engaged
                                  ///< (in the future during a wake delay).
  double remaining_run_top = 0;   ///< Runtime work left, top-gear seconds.
  double remaining_req_top = 0;   ///< Requested work left, top-gear seconds.
  Time pending_end = kNoTime;     ///< Valid completion event time.
  Time start = kNoTime;           ///< When the job began executing.
  Time scaled_requested = 0;      ///< Requested time dilated at start.
  bool boosted = false;           ///< Raised mid-flight.
  bool gated = false;             ///< Power-gated: holds CPUs, no progress,
                                  ///< no completion event until released.
  bool running = false;           ///< Row is live.
};

/// Ring buffer of in-flight jobs (see file comment for the addressing and
/// lifetime contract). Not thread-safe; owned by one simulation.
class JobWindow {
 public:
  /// One ring slot: the trace record plus its execution state.
  struct Slot {
    wl::Job job;
    RunningRec state;
    bool started = false;  ///< start_job() ran for this trace index.
  };
  /// Recyclable backing capacity (see sim::RunArena).
  using Storage = std::vector<Slot>;

  /// Adopts `storage`'s capacity (contents are discarded). The ring starts
  /// at a small power-of-two size and grows on demand.
  explicit JobWindow(Storage&& storage) : slots_(std::move(storage)) {
    const std::size_t kept = size_floor(slots_.capacity());
    slots_.clear();
    slots_.resize(std::max(kept, kInitialCapacity));
  }

  /// Admits the next trace index. `global` must equal admitted() —
  /// admissions are contiguous by construction. Returns the slot, reset.
  Slot& admit(std::uint64_t global, wl::Job job) {
    BSLD_REQUIRE(global == admitted_,
                 "JobWindow: admissions must be contiguous");
    if (admitted_ - evicted_ == slots_.size()) grow();
    Slot& slot = slots_[static_cast<std::size_t>(global) &
                        (slots_.size() - 1)];
    slot.job = std::move(job);
    slot.state = RunningRec{};
    slot.started = false;
    ++admitted_;
    peak_live_ = std::max(peak_live_, admitted_ - evicted_);
    return slot;
  }

  /// True while `global` is admitted and not yet evicted.
  [[nodiscard]] bool contains(std::uint64_t global) const {
    return global >= evicted_ && global < admitted_;
  }

  [[nodiscard]] Slot& at(std::uint64_t global) {
    BSLD_REQUIRE(contains(global),
                 "JobWindow: trace index outside the live window");
    return slots_[static_cast<std::size_t>(global) & (slots_.size() - 1)];
  }
  [[nodiscard]] const Slot& at(std::uint64_t global) const {
    BSLD_REQUIRE(contains(global),
                 "JobWindow: trace index outside the live window");
    return slots_[static_cast<std::size_t>(global) & (slots_.size() - 1)];
  }

  /// Oldest live slot (the eviction candidate). live() must be > 0.
  [[nodiscard]] Slot& front() { return at(evicted_); }

  /// Retires the oldest live index. Only the front can be evicted — a
  /// finished job behind a still-live older one stays resident until the
  /// older one retires (that gap is part of peak_live()).
  void pop_front() {
    BSLD_REQUIRE(evicted_ < admitted_, "JobWindow: pop_front() on empty");
    ++evicted_;
  }

  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] std::uint64_t live() const { return admitted_ - evicted_; }
  /// High-water mark of live() over the run — the streaming memory bound.
  [[nodiscard]] std::uint64_t peak_live() const { return peak_live_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Moves the backing storage out for recycling (the window is dead
  /// afterwards).
  [[nodiscard]] Storage release() { return std::move(slots_); }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  /// Largest power of two <= n (kInitialCapacity floor).
  static std::size_t size_floor(std::size_t n) {
    std::size_t p = kInitialCapacity;
    while (p * 2 <= n) p *= 2;
    return p;
  }

  /// Doubles the ring and re-places every live slot at its new position
  /// (global & (new_capacity - 1)).
  void grow() {
    Storage next(slots_.size() * 2);
    for (std::uint64_t g = evicted_; g < admitted_; ++g) {
      next[static_cast<std::size_t>(g) & (next.size() - 1)] = std::move(
          slots_[static_cast<std::size_t>(g) & (slots_.size() - 1)]);
    }
    slots_ = std::move(next);
  }

  Storage slots_;  ///< Power-of-two ring.
  std::uint64_t admitted_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t peak_live_ = 0;
};

}  // namespace bsld::sim
