/// \file instrument_registry.hpp
/// \brief String-keyed construction of measurement instruments — the open
/// counterpart of the fixed default observer set, mirroring
/// core::PolicyRegistry.
///
/// A report::RunSpec names its extra instruments ("wait-trace",
/// "utilization", ...) and the registry resolves names to factories, so a
/// serialized spec selects views of the event stream the same way it
/// selects policies. Downstream code registers additional instruments
/// under new names without touching sim — bsldsim --instruments=... and
/// SweepRunner grids pick them up automatically.
///
/// Registration must happen before experiment grids start executing (the
/// registry is read concurrently by sweep worker threads; a shared mutex
/// guards registration against lookup races).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/instruments.hpp"
#include "util/sampler.hpp"
#include "util/thread_annotations.hpp"

namespace bsld::sim {

/// Per-run context handed to instrument factories: the platform models of
/// the run being instrumented (both outlive the instrument), plus the
/// run's time-series sampling policy (RunSpec `sample.*`; the default
/// plan retains every point).
struct InstrumentContext {
  const power::PowerModel& power_model;
  const power::BetaTimeModel& time_model;
  util::SamplePlan sample{};
};

/// Name -> factory resolution for instruments.
class InstrumentRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Instrument>(const InstrumentContext&)>;

  /// The process-wide registry, pre-loaded with the built-ins: "jobs",
  /// "aggregates", "energy", "wait-trace", "utilization".
  static InstrumentRegistry& global();

  /// Registers an instrument factory. Throws bsld::Error on a duplicate
  /// name.
  void add(const std::string& name, Factory factory);

  /// Same, with a one-line description shown by `bsldsim
  /// --list-instruments`.
  void add(const std::string& name, std::string description, Factory factory);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Validates that `name` is registered without constructing it: throws
  /// the same discoverable bsld::Error make() raises on unknown names —
  /// the one shared check behind RunSpec::parse and CLI flag validation.
  void require(const std::string& name) const;

  /// Registered names in sorted order (for error messages and --help).
  [[nodiscard]] std::vector<std::string> names() const;

  /// (name, description) pairs in sorted order; the description is empty
  /// for entries registered without one.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries()
      const;

  /// Builds the named instrument. Throws bsld::Error on unknown names,
  /// listing what is registered.
  [[nodiscard]] std::unique_ptr<Instrument> make(
      const std::string& name, const InstrumentContext& context) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };

  mutable util::SharedMutex mutex_;
  std::map<std::string, Entry> factories_ BSLD_GUARDED_BY(mutex_);
};

}  // namespace bsld::sim
