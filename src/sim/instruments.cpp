#include "sim/instruments.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace bsld::sim {

// ---------------------------------------------------------------------------
// JobRecorder
// ---------------------------------------------------------------------------

void JobRecorder::on_run_begin(const RunBeginEvent& event) {
  jobs_.clear();
  if (event.job_count_hint >= 0) {
    jobs_.assign(static_cast<std::size_t>(event.job_count_hint), JobOutcome{});
  }
}

void JobRecorder::on_finish(const FinishEvent& event) {
  // Jobs finish out of trace order; grow to cover the index when the run
  // began without an exact job-count hint.
  const auto index = static_cast<std::size_t>(event.trace_index);
  if (index >= jobs_.size()) jobs_.resize(index + 1);
  jobs_[index] = event.outcome;
}

void JobRecorder::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"id", "submit_s", "start_s", "end_s", "size", "gear",
                 "final_gear", "boosted", "wait_s", "scaled_runtime_s",
                 "bsld"});
  for (const JobOutcome& job : jobs_) {
    csv.write_row({std::to_string(job.id), std::to_string(job.submit),
                   std::to_string(job.start), std::to_string(job.end),
                   std::to_string(job.size), std::to_string(job.gear),
                   std::to_string(job.final_gear), job.boosted ? "1" : "0",
                   std::to_string(job.wait()),
                   std::to_string(job.scaled_runtime),
                   util::fmt_double(job.bsld, 6)});
  }
}

// ---------------------------------------------------------------------------
// AggregateAccumulator
// ---------------------------------------------------------------------------

void AggregateAccumulator::on_run_begin(const RunBeginEvent& event) {
  count_ = 0;
  bsld_sum_ = 0.0;
  wait_sum_ = 0;
  reduced_ = 0;
  boosted_ = 0;
  jobs_per_gear_.assign(event.gear_count, 0);
  top_gear_ = static_cast<GearIndex>(event.gear_count) - 1;
  makespan_ = 0;
  next_index_ = 0;
  pending_bsld_.clear();
  pm_events_.clear();
  gated_seconds_ = 0.0;
  sleep_core_seconds_ = 0.0;
  wake_delay_seconds_ = 0.0;
}

void AggregateAccumulator::on_pm(const pm::PmEvent& event) {
  ++pm_events_[event.kind];
  switch (event.kind) {
    case pm::PmEventKind::kRelease:
      gated_seconds_ += event.seconds;
      break;
    case pm::PmEventKind::kSleepInterval:
      sleep_core_seconds_ += event.seconds;
      break;
    case pm::PmEventKind::kWake:
      wake_delay_seconds_ += event.seconds;
      break;
    default:
      break;
  }
}

std::int64_t AggregateAccumulator::pm_events(pm::PmEventKind kind) const {
  const auto it = pm_events_.find(kind);
  return it == pm_events_.end() ? 0 : it->second;
}

void AggregateAccumulator::on_finish(const FinishEvent& event) {
  const JobOutcome& outcome = event.outcome;
  ++count_;
  wait_sum_ += outcome.wait();
  ++jobs_per_gear_[static_cast<std::size_t>(outcome.gear)];
  if (outcome.gear != top_gear_) ++reduced_;
  if (outcome.boosted) ++boosted_;
  makespan_ = std::max(makespan_, outcome.end);

  // Drain the reorder buffer in trace order so the naive double sum is
  // bit-identical to iterating a retained JobOutcome vector.
  if (event.trace_index == next_index_) {
    bsld_sum_ += outcome.bsld;
    ++next_index_;
    auto it = pending_bsld_.begin();
    while (it != pending_bsld_.end() && it->first == next_index_) {
      bsld_sum_ += it->second;
      ++next_index_;
      it = pending_bsld_.erase(it);
    }
  } else {
    pending_bsld_.emplace(event.trace_index, outcome.bsld);
  }
}

double AggregateAccumulator::avg_bsld() const {
  BSLD_REQUIRE(pending_bsld_.empty(),
               "AggregateAccumulator: BSLD reorder buffer not drained — "
               "some jobs never finished");
  return count_ == 0 ? 0.0 : bsld_sum_ / static_cast<double>(count_);
}

double AggregateAccumulator::avg_wait() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(wait_sum_) /
                           static_cast<double>(count_);
}

void AggregateAccumulator::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  std::vector<std::string> headers{"jobs",    "avg_bsld", "avg_wait_s",
                                   "reduced", "boosted",  "makespan_s"};
  std::vector<std::string> row{
      std::to_string(count_),   util::fmt_double(avg_bsld(), 6),
      util::fmt_double(avg_wait(), 3), std::to_string(reduced_),
      std::to_string(boosted_), std::to_string(makespan_)};
  for (std::size_t g = 0; g < jobs_per_gear_.size(); ++g) {
    headers.push_back("jobs_gear" + std::to_string(g));
    row.push_back(std::to_string(jobs_per_gear_[g]));
  }
  csv.write_row(headers);
  csv.write_row(row);
}

// ---------------------------------------------------------------------------
// EnergyProbe
// ---------------------------------------------------------------------------

EnergyProbe::EnergyProbe(const power::PowerModel& model) : model_(model) {
  meter_.emplace(model_);
}

void EnergyProbe::on_run_begin(const RunBeginEvent& event) {
  (void)event;
  meter_.emplace(model_);
  report_ = power::EnergyReport{};
  utilization_ = 0.0;
}

void EnergyProbe::on_gear_change(const GearChangeEvent& event) {
  meter_->add_execution(event.size, event.from, event.segment_seconds);
}

void EnergyProbe::on_finish(const FinishEvent& event) {
  meter_->add_execution(event.outcome.size, event.outcome.final_gear,
                        event.final_segment_seconds);
}

void EnergyProbe::on_pm(const pm::PmEvent& event) {
  if (event.kind == pm::PmEventKind::kSleepInterval) {
    meter_->add_sleep(event.seconds, event.watts);
  }
}

void EnergyProbe::on_run_end(const RunEndEvent& event) {
  report_ = meter_->report(event.cpus, event.horizon);
  utilization_ = report_.busy_core_seconds /
                 (static_cast<double>(event.cpus) *
                  static_cast<double>(event.horizon));
}

void EnergyProbe::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"computational_j", "total_j", "idle_j", "busy_core_s",
                 "idle_core_s", "horizon_s", "utilization"});
  csv.write_row({util::fmt_double(report_.computational_joules, 0),
                 util::fmt_double(report_.total_joules, 0),
                 util::fmt_double(report_.idle_joules, 0),
                 util::fmt_double(report_.busy_core_seconds, 0),
                 util::fmt_double(report_.idle_core_seconds, 0),
                 std::to_string(report_.horizon),
                 util::fmt_double(utilization_, 6)});
}

// ---------------------------------------------------------------------------
// WaitQueueTrace
// ---------------------------------------------------------------------------

WaitQueueTrace::WaitQueueTrace(util::SamplePlan plan)
    : plan_(plan), wait_sampler_(plan), depth_sampler_(plan) {}

void WaitQueueTrace::on_run_begin(const RunBeginEvent& event) {
  waits_.clear();
  wait_rows_.clear();
  if (plan_.cap == 0 && event.job_count_hint >= 0) {
    waits_.assign(static_cast<std::size_t>(event.job_count_hint), JobWait{});
  }
  depth_.clear();
  queued_ = 0;
  pending_.clear();
  wait_sampler_.reset();
  depth_sampler_.reset();
  has_open_ = false;
}

void WaitQueueTrace::on_submit(const SubmitEvent& event) {
  ++queued_;
  sample(event.time);
  if (plan_.cap == 0) {
    const auto index = static_cast<std::size_t>(event.trace_index);
    if (index >= waits_.size()) waits_.resize(index + 1);
    waits_[index].submit = event.job.submit;
    waits_[index].depth_after_submit = queued_;
  } else {
    JobWait& wait = pending_[event.trace_index];
    wait.submit = event.job.submit;
    wait.depth_after_submit = queued_;
  }
}

void WaitQueueTrace::on_start(const StartEvent& event) {
  --queued_;
  sample(event.time);
  if (plan_.cap == 0) {
    const auto index = static_cast<std::size_t>(event.trace_index);
    if (index >= waits_.size()) waits_.resize(index + 1);
    JobWait& wait = waits_[index];
    wait.start = event.time;
    wait.wait = event.time - event.job.submit;
  } else {
    const auto it = pending_.find(event.trace_index);
    JobWait wait = it == pending_.end() ? JobWait{} : it->second;
    if (it != pending_.end()) pending_.erase(it);
    wait.start = event.time;
    wait.wait = event.time - event.job.submit;
    wait_sampler_.push({event.trace_index, wait});
  }
}

void WaitQueueTrace::on_run_end(const RunEndEvent& event) {
  (void)event;
  if (plan_.cap == 0) return;
  if (has_open_) {
    depth_sampler_.push(open_);
    has_open_ = false;
  }
  // Retained waits are sampled in start order; present them in trace order
  // like the dense path, with the true trace index labelling each row.
  auto retained = wait_sampler_.sorted();
  std::sort(retained.begin(), retained.end(),
            [](const auto& a, const auto& b) {
              return a.value.first < b.value.first;
            });
  waits_.clear();
  wait_rows_.clear();
  waits_.reserve(retained.size());
  wait_rows_.reserve(retained.size());
  for (const auto& item : retained) {
    wait_rows_.push_back(item.value.first);
    waits_.push_back(item.value.second);
  }
  depth_.clear();
  depth_.reserve(depth_sampler_.retained());
  for (const auto& item : depth_sampler_.sorted()) {
    depth_.push_back(item.value);
  }
}

void WaitQueueTrace::sample(Time time) {
  if (plan_.cap == 0) {
    if (!depth_.empty() && depth_.back().time == time) {
      depth_.back().depth = queued_;
    } else {
      depth_.push_back(DepthSample{time, queued_});
    }
    return;
  }
  // Coalesce same-time changes in the open sample; only closed instants
  // enter the sampler, so retention below the cap matches the dense path.
  if (has_open_ && open_.time == time) {
    open_.depth = queued_;
    return;
  }
  if (has_open_) depth_sampler_.push(open_);
  open_ = DepthSample{time, queued_};
  has_open_ = true;
}

void WaitQueueTrace::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"job_index", "submit_s", "start_s", "wait_s",
                 "queue_depth_after_submit"});
  for (std::size_t i = 0; i < waits_.size(); ++i) {
    const std::uint64_t label = i < wait_rows_.size() ? wait_rows_[i] : i;
    csv.write_row({std::to_string(label), std::to_string(waits_[i].submit),
                   std::to_string(waits_[i].start),
                   std::to_string(waits_[i].wait),
                   std::to_string(waits_[i].depth_after_submit)});
  }
}

// ---------------------------------------------------------------------------
// UtilizationTrace
// ---------------------------------------------------------------------------

UtilizationTrace::UtilizationTrace(const power::PowerModel& model,
                                   util::SamplePlan plan)
    : model_(model), plan_(plan), sampler_(plan) {}

void UtilizationTrace::on_run_begin(const RunBeginEvent& event) {
  samples_.clear();
  busy_ = 0;
  power_ = 0.0;
  cpus_ = event.cpus;
  sampler_.reset();
  has_open_ = false;
}

void UtilizationTrace::on_start(const StartEvent& event) {
  busy_ += event.job.size;
  power_ += static_cast<double>(event.job.size) *
            model_.active_power(event.gear);
  sample(event.time);
}

void UtilizationTrace::on_gear_change(const GearChangeEvent& event) {
  power_ += static_cast<double>(event.size) *
            (model_.active_power(event.to) - model_.active_power(event.from));
  sample(event.time);
}

void UtilizationTrace::on_finish(const FinishEvent& event) {
  busy_ -= event.outcome.size;
  power_ -= static_cast<double>(event.outcome.size) *
            model_.active_power(event.outcome.final_gear);
  sample(event.outcome.end);
}

void UtilizationTrace::sample(Time time) {
  const Sample next{time, busy_,
                    cpus_ > 0 ? static_cast<double>(busy_) / cpus_ : 0.0,
                    power_};
  if (plan_.cap == 0) {
    if (!samples_.empty() && samples_.back().time == time) {
      samples_.back() = next;
    } else {
      samples_.push_back(next);
    }
    return;
  }
  if (has_open_ && open_.time == time) {
    open_ = next;
    return;
  }
  if (has_open_) sampler_.push(open_);
  open_ = next;
  has_open_ = true;
}

void UtilizationTrace::on_run_end(const RunEndEvent& event) {
  (void)event;
  if (plan_.cap == 0) return;
  if (has_open_) {
    sampler_.push(open_);
    has_open_ = false;
  }
  samples_.clear();
  samples_.reserve(sampler_.retained());
  for (const auto& item : sampler_.sorted()) samples_.push_back(item.value);
}

void UtilizationTrace::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"time_s", "busy_cores", "utilization", "power_watts"});
  for (const Sample& sample : samples_) {
    csv.write_row({std::to_string(sample.time),
                   std::to_string(sample.busy_cores),
                   util::fmt_double(sample.utilization, 6),
                   util::fmt_double(sample.power_watts, 1)});
  }
}

// ---------------------------------------------------------------------------
// PmTrace
// ---------------------------------------------------------------------------

void PmTrace::on_run_begin(const RunBeginEvent& event) {
  (void)event;
  events_.clear();
}

void PmTrace::on_pm(const pm::PmEvent& event) { events_.push_back(event); }

void PmTrace::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write_row({"time_s", "kind", "job", "cpu_count", "gear_from", "gear_to",
                 "watts", "aux_watts", "seconds", "sleep_state"});
  for (const pm::PmEvent& event : events_) {
    csv.write_row({std::to_string(event.time), pm::to_string(event.kind),
                   std::to_string(event.job), std::to_string(event.cpu_count),
                   std::to_string(event.gear_from),
                   std::to_string(event.gear_to),
                   util::fmt_double(event.watts, 3),
                   util::fmt_double(event.aux_watts, 3),
                   util::fmt_double(event.seconds, 3),
                   std::to_string(event.sleep_state)});
  }
}

}  // namespace bsld::sim
