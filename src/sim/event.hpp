/// \file event.hpp
/// \brief Discrete events of the cluster simulation.
///
/// Ordering is total and deterministic: by time, then kind (completions
/// before submissions at the same instant, so arrivals observe the CPUs
/// freed "now"), then insertion sequence. Every container that holds
/// pending events — today the calendar queue in engine.hpp — must pop in
/// exactly this order; golden-file parity across runs depends on it.
#pragma once

#include <cstdint>
#include <tuple>

#include "util/types.hpp"

namespace bsld::sim {

/// Event kinds; numeric order defines same-time processing order.
enum class EventKind : int {
  kJobEnd = 0,    ///< A running job completed.
  kJobSubmit = 1, ///< A job entered the system.
  kPmTimer = 2,   ///< A power-manager control timer fired (after arrivals,
                  ///< so a control step observes the instant's final state).
};

/// One scheduled event.
///
/// `time` is in simulated seconds (the trace unit; see util/types.hpp).
/// `sequence` is assigned by Engine::schedule and is unique per engine,
/// which makes the (time, kind, sequence) order total: two events never
/// compare equal, so processing order cannot depend on container
/// internals. `job` identifies the subject for kJobEnd/kJobSubmit and is
/// kNoJob for kPmTimer.
struct Event {
  Time time = 0;
  EventKind kind = EventKind::kJobSubmit;
  std::uint64_t sequence = 0;  ///< Assigned by the engine on scheduling.
  JobId job = kNoJob;
};

/// Strict-weak order "a pops before b" (ascending engine order).
struct EventBefore {
  bool operator()(const Event& a, const Event& b) const {
    return std::tuple(a.time, static_cast<int>(a.kind), a.sequence) <
           std::tuple(b.time, static_cast<int>(b.kind), b.sequence);
  }
};

/// Strict-weak order "a pops after b" (max-heap comparator form, kept for
/// callers that want the inverted sense).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tuple(a.time, static_cast<int>(a.kind), a.sequence) >
           std::tuple(b.time, static_cast<int>(b.kind), b.sequence);
  }
};

}  // namespace bsld::sim
