/// \file simulation.hpp
/// \brief Drives one workload through one scheduling policy on one machine.
///
/// Measurement is decoupled from the driver: the Simulation owns the
/// machine, the clock and job mechanics, and emits a sim::SimObserver
/// event stream (observer.hpp) at every state change. All numbers the
/// paper's evaluation reports are produced by observers over that stream
/// (instruments.hpp); run() attaches the default set — AggregateAccumulator
/// + EnergyProbe, plus a JobRecorder unless retain_jobs is off — and
/// assembles their output into SimulationResult. Additional views
/// (time-series instruments, downstream custom observers) attach via
/// add_observer() without touching this class.
///
/// Job ingestion is pull-based (docs/simulation-internals.md, "Job
/// ingestion & streaming"): the simulation reads a wl::JobStream and keeps
/// at most `submit_lookahead` un-popped submit events in the calendar
/// queue, so a million-job trace flows through without ever being
/// materialized. Job state lives in a sim::JobWindow — a bounded ring of
/// in-flight jobs addressed by global trace index; engine events carry
/// that index, so the event loop never hashes a JobId — and finished,
/// delivered jobs are evicted from the front, bounding per-job memory by
/// the lookahead window plus the jobs simultaneously queued or running.
/// The materialized constructor streams the caller's wl::Workload through
/// the same machinery with an unlimited lookahead, reproducing the classic
/// schedule-everything-up-front behavior exactly. CPU lists are allocated
/// from one run-wide slab with exact-size run reuse, and observer dispatch
/// is batched (observer.hpp). The engine slab, CPU slab, and job-window
/// ring are recycled across runs through the thread-local sim::RunArena.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/machine.hpp"
#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "pm/power_manager.hpp"
#include "power/energy_meter.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/engine.hpp"
#include "sim/job_window.hpp"
#include "sim/observer.hpp"
#include "workload/job.hpp"
#include "workload/stream.hpp"

namespace bsld::sim {

/// Per-run knobs.
struct SimulationConfig {
  /// Machine size; 0 means "use the workload's cpus". The enlarged-system
  /// study (paper §5.2) passes scaled values here while keeping job sizes.
  std::int32_t cpus = 0;
  /// Th of the BSLD metric (Eqs. 1/6).
  Time bsld_floor = core::kDefaultBsldFloor;
  /// Retain the per-job JobOutcome vector in the result. Switching this
  /// off drops the O(jobs) storage — aggregate-only sweeps over very large
  /// synthetic workloads run in O(1) memory per worker; SimulationResult
  /// aggregates are bit-identical either way.
  bool retain_jobs = true;
  /// Streaming-constructor only: maximum submit events admitted to the
  /// calendar queue ahead of the clock (clamped to >= 1). Larger values
  /// trade memory for fewer stream pulls per event; event order — and
  /// therefore every result — is independent of the value. The
  /// materialized constructor ignores this and admits the whole trace.
  std::int64_t submit_lookahead = 4096;
  /// Optional cluster power manager (non-owning; must outlive run()).
  /// nullptr — like the registered `pm=none` manager — leaves every run
  /// bit-identical to the pre-pm simulator.
  pm::PowerManager* power_manager = nullptr;
};

/// Aggregate results of one run — the product of the default observer set.
struct SimulationResult {
  std::string workload;
  std::string policy;
  std::int32_t cpus = 0;
  std::int64_t job_count = 0;           ///< Jobs simulated (valid always).
  std::vector<JobOutcome> jobs;         ///< Trace order; empty when
                                        ///< SimulationConfig::retain_jobs
                                        ///< is off.
  double avg_bsld = 0.0;                ///< Mean penalized BSLD (paper Fig. 5/9).
  double avg_wait = 0.0;                ///< Mean wait, seconds (Table 3).
  std::int64_t reduced_jobs = 0;        ///< Jobs started below Ftop (Fig. 4).
  std::int64_t boosted_jobs = 0;        ///< Jobs raised mid-flight (extension).
  std::vector<std::int64_t> jobs_per_gear;
  power::EnergyReport energy;           ///< Fig. 3/7/8 inputs.
  Time makespan = 0;                    ///< Last completion time.
  double utilization = 0.0;             ///< Busy share of cpus*horizon.
  std::uint64_t events_processed = 0;
  /// High-water mark of simultaneously resident jobs — the streaming
  /// memory bound (equals job_count for a materialized run).
  std::int64_t peak_live_jobs = 0;
};

/// One simulation run. The Simulation is the policy's SchedulerContext and
/// the power manager's PmContext; it owns the machine and the clock, while
/// the policy owns the wait queue and all decisions, the manager owns
/// power actuation, and observers own every measurement. It is also the
/// JobResolver its batched observer deliveries resolve trace indices
/// through — resolution reaches the live job window.
class Simulation final : public core::SchedulerContext,
                         public pm::PmContext,
                         public JobResolver {
 public:
  /// Materialized form: streams `workload` (which must outlive run())
  /// through the windowed core with an unlimited lookahead, so behavior
  /// and event order match the classic eager simulator exactly — including
  /// tolerating unsorted hand-built traces. Throws bsld::Error on an empty
  /// workload, non-positive machine size, jobs larger than the machine,
  /// invalid durations, or duplicate ids.
  Simulation(const wl::Workload& workload, core::SchedulingPolicy& policy,
             const power::PowerModel& power_model,
             const power::BetaTimeModel& time_model,
             SimulationConfig config = {});
  /// Streaming form: pulls jobs from `stream` on demand under
  /// SimulationConfig::submit_lookahead. The stream must follow the
  /// JobStream contract (sorted by (submit, id)); per-job validation
  /// happens at admission, and an empty stream is diagnosed by run().
  /// All references must outlive run().
  Simulation(wl::JobStream& stream, core::SchedulingPolicy& policy,
             const power::PowerModel& power_model,
             const power::BetaTimeModel& time_model,
             SimulationConfig config = {});
  /// Recycles the engine, CPU slab, and job-window ring into the thread's
  /// RunArena.
  ~Simulation() override;

  /// Registers a non-owning observer of this run's event stream, invoked
  /// after the default instruments, in registration order. Must be called
  /// before run() and outlive it.
  void add_observer(SimObserver& observer);

  /// Runs to completion and returns the full result. Single-shot: a second
  /// call throws.
  SimulationResult run();

  // SchedulerContext interface (now() also satisfies PmContext).
  [[nodiscard]] Time now() const override { return engine_.now(); }
  [[nodiscard]] const cluster::Machine& machine() const override {
    return machine_;
  }
  /// Valid for live jobs only — admitted and not yet retired from the
  /// window (every job a policy or manager can legitimately name is live).
  [[nodiscard]] const wl::Job& job(JobId id) const override;
  [[nodiscard]] const power::BetaTimeModel& time_model() const override {
    return time_model_;
  }
  void start_job(JobId id, const std::vector<CpuId>& cpus,
                 GearIndex gear) override;
  [[nodiscard]] std::vector<JobId> running_jobs() const override;
  [[nodiscard]] GearIndex running_gear(JobId id) const override;
  void boost_job(JobId id, GearIndex gear) override;

  // PmContext interface.
  [[nodiscard]] std::int32_t cpu_count() const override {
    return machine_.cpu_count();
  }
  [[nodiscard]] const power::PowerModel& power_model() const override {
    return power_model_;
  }
  void set_job_gear(JobId id, GearIndex gear) override;
  void release_job(JobId id, GearIndex gear) override;
  void schedule_timer(Time at) override;
  void emit(const pm::PmEvent& event) override;

  // JobResolver interface (batched observer delivery).
  [[nodiscard]] const wl::Job& job_at(
      std::uint64_t trace_index) const override;

 private:
  [[nodiscard]] std::uint64_t trace_index(JobId id) const;
  [[nodiscard]] RunningRec& running(JobId id);
  [[nodiscard]] const RunningRec& running(JobId id) const;
  /// Admits jobs from the stream until the lookahead window is full or the
  /// stream ends: validates, indexes, places the job in the window, and
  /// schedules its submit event. Called before the drain and after every
  /// popped submit, so at most `lookahead_` submits are ever outstanding.
  void pump_submits();
  void finish_job(std::uint64_t global);
  /// Shared re-gearing path of boost_job (policy raise) and set_job_gear
  /// (power-manager throttle/raise): closes the current gear segment and
  /// re-times completion. Gated jobs only update their planned gear.
  void retime_job(JobId id, GearIndex gear, bool mark_boosted);

  /// Invokes `hook` on every attached observer (defaults first, then
  /// add_observer order). Only for the immediate run_begin/run_end hooks;
  /// the mid-run stream goes through the batch (push_event / flush_events).
  template <typename Hook>
  void notify(Hook&& hook) {
    for (SimObserver* observer : chain_) hook(*observer);
  }

  /// Buffers one mid-run record; flushes when the batch is full.
  void push_event(BatchedEvent&& record) {
    batch_.push_back(std::move(record));
    if (batch_.size() >= kBatchCapacity) flush_events();
  }
  /// Delivers the buffered span to every observer in emission order, then
  /// retires finished front jobs from the window — eviction strictly
  /// follows delivery, so observers never see a dead trace index.
  void flush_events();

  /// Batched-dispatch span size: large enough to amortize the per-span
  /// virtual call, small enough to stay cache-resident.
  static constexpr std::size_t kBatchCapacity = 128;

  core::SchedulingPolicy& policy_;
  const power::PowerModel& power_model_;
  const power::BetaTimeModel& time_model_;
  SimulationConfig config_;
  pm::PowerManager* pm_ = nullptr;  ///< == config_.power_manager.

  std::optional<wl::WorkloadViewStream> view_;  ///< Materialized form only.
  wl::JobStream* stream_ = nullptr;  ///< The ingestion source (or &*view_).
  std::int64_t lookahead_ = 0;       ///< Max outstanding submit events.

  cluster::Machine machine_;
  Engine engine_;
  JobWindow window_;                ///< In-flight jobs by global index.
  std::unordered_map<JobId, std::uint64_t> index_;  ///< Live JobId -> global.
  /// Exact-size free runs inside cpu_slab_, by length: finished jobs
  /// return their CPU-list run here and later starts of the same size
  /// reuse it, so the slab is bounded by the machine size (times the
  /// number of distinct allocation sizes), not by the trace length.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> free_cpu_runs_;
  std::vector<CpuId> cpu_slab_;     ///< Arena for RunningRec CPU lists.
  std::vector<CpuId> cpu_scratch_;  ///< Reused for machine re-timing calls.
  std::vector<CpuId> finish_scratch_;  ///< Reused by finish_job; separate
                                       ///< from cpu_scratch_ because the pm
                                       ///< finish hook holds a reference to
                                       ///< it while it may re-gear other
                                       ///< jobs (which use cpu_scratch_).
  std::vector<JobId> running_ids_;  ///< Sorted ascending, kept incrementally.
  std::vector<BatchedEvent> batch_; ///< Pending observer records.
  std::vector<SimObserver*> observers_;             ///< add_observer order.
  std::vector<SimObserver*> chain_;                 ///< Full set during run().
  std::int64_t submits_outstanding_ = 0;  ///< Scheduled, not yet popped.
  std::int64_t finished_ = 0;
  Time first_submit_ = 0;           ///< Submit of the first admitted job.
  bool have_first_submit_ = false;
  bool stream_done_ = false;
  Time last_end_ = 0;
  bool ran_ = false;
};

/// Convenience wrapper: wires the simulation and runs it.
SimulationResult run_simulation(const wl::Workload& workload,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config = {});

/// Streaming counterpart: drives the simulation straight off a JobStream.
SimulationResult run_simulation(wl::JobStream& stream,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config = {});

}  // namespace bsld::sim
