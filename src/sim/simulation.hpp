/// \file simulation.hpp
/// \brief Drives one workload through one scheduling policy on one machine.
///
/// Measurement is decoupled from the driver: the Simulation owns the
/// machine, the clock and job mechanics, and emits a sim::SimObserver
/// event stream (observer.hpp) at every state change. All numbers the
/// paper's evaluation reports are produced by observers over that stream
/// (instruments.hpp); run() attaches the default set — AggregateAccumulator
/// + EnergyProbe, plus a JobRecorder unless retain_jobs is off — and
/// assembles their output into SimulationResult. Additional views
/// (time-series instruments, downstream custom observers) attach via
/// add_observer() without touching this class.
///
/// Hot-path layout (docs/simulation-internals.md): job state lives in a
/// flat vector of RunningRec rows indexed by trace slot — engine events
/// carry the slot, so the event loop never hashes a JobId — CPU lists are
/// bump-allocated from one run-wide slab, and observer dispatch is
/// batched (observer.hpp). The engine slab and CPU slab are recycled
/// across runs through the thread-local sim::RunArena.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/machine.hpp"
#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "pm/power_manager.hpp"
#include "power/energy_meter.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/engine.hpp"
#include "sim/observer.hpp"
#include "workload/job.hpp"

namespace bsld::sim {

/// Per-run knobs.
struct SimulationConfig {
  /// Machine size; 0 means "use workload.cpus". The enlarged-system study
  /// (paper §5.2) passes scaled values here while keeping job sizes.
  std::int32_t cpus = 0;
  /// Th of the BSLD metric (Eqs. 1/6).
  Time bsld_floor = core::kDefaultBsldFloor;
  /// Retain the per-job JobOutcome vector in the result. Switching this
  /// off drops the O(jobs) storage — aggregate-only sweeps over very large
  /// synthetic workloads run in O(1) memory per worker; SimulationResult
  /// aggregates are bit-identical either way.
  bool retain_jobs = true;
  /// Optional cluster power manager (non-owning; must outlive run()).
  /// nullptr — like the registered `pm=none` manager — leaves every run
  /// bit-identical to the pre-pm simulator.
  pm::PowerManager* power_manager = nullptr;
};

/// Aggregate results of one run — the product of the default observer set.
struct SimulationResult {
  std::string workload;
  std::string policy;
  std::int32_t cpus = 0;
  std::int64_t job_count = 0;           ///< Jobs simulated (valid always).
  std::vector<JobOutcome> jobs;         ///< Trace order; empty when
                                        ///< SimulationConfig::retain_jobs
                                        ///< is off.
  double avg_bsld = 0.0;                ///< Mean penalized BSLD (paper Fig. 5/9).
  double avg_wait = 0.0;                ///< Mean wait, seconds (Table 3).
  std::int64_t reduced_jobs = 0;        ///< Jobs started below Ftop (Fig. 4).
  std::int64_t boosted_jobs = 0;        ///< Jobs raised mid-flight (extension).
  std::vector<std::int64_t> jobs_per_gear;
  power::EnergyReport energy;           ///< Fig. 3/7/8 inputs.
  Time makespan = 0;                    ///< Last completion time.
  double utilization = 0.0;             ///< Busy share of cpus*horizon.
  std::uint64_t events_processed = 0;
};

/// One simulation run. The Simulation is the policy's SchedulerContext and
/// the power manager's PmContext; it owns the machine and the clock, while
/// the policy owns the wait queue and all decisions, the manager owns
/// power actuation, and observers own every measurement.
class Simulation final : public core::SchedulerContext,
                         public pm::PmContext {
 public:
  /// All references must outlive run(). Throws bsld::Error on an empty
  /// workload, non-positive machine size, or jobs larger than the machine.
  Simulation(const wl::Workload& workload, core::SchedulingPolicy& policy,
             const power::PowerModel& power_model,
             const power::BetaTimeModel& time_model,
             SimulationConfig config = {});
  /// Recycles the engine and CPU slabs into the thread's RunArena.
  ~Simulation() override;

  /// Registers a non-owning observer of this run's event stream, invoked
  /// after the default instruments, in registration order. Must be called
  /// before run() and outlive it.
  void add_observer(SimObserver& observer);

  /// Runs to completion and returns the full result. Single-shot: a second
  /// call throws.
  SimulationResult run();

  // SchedulerContext interface (now() also satisfies PmContext).
  [[nodiscard]] Time now() const override { return engine_.now(); }
  [[nodiscard]] const cluster::Machine& machine() const override {
    return machine_;
  }
  [[nodiscard]] const wl::Job& job(JobId id) const override;
  [[nodiscard]] const power::BetaTimeModel& time_model() const override {
    return time_model_;
  }
  void start_job(JobId id, const std::vector<CpuId>& cpus,
                 GearIndex gear) override;
  [[nodiscard]] std::vector<JobId> running_jobs() const override;
  [[nodiscard]] GearIndex running_gear(JobId id) const override;
  void boost_job(JobId id, GearIndex gear) override;

  // PmContext interface.
  [[nodiscard]] std::int32_t cpu_count() const override {
    return machine_.cpu_count();
  }
  [[nodiscard]] const power::PowerModel& power_model() const override {
    return power_model_;
  }
  void set_job_gear(JobId id, GearIndex gear) override;
  void release_job(JobId id, GearIndex gear) override;
  void schedule_timer(Time at) override;
  void emit(const pm::PmEvent& event) override;

 private:
  /// Live state of an executing job: one flat row per trace slot, valid
  /// while `running` is set. Rows are index-addressed (engine events carry
  /// the slot), and the CPU list lives in cpu_slab_ at [cpu_offset,
  /// cpu_offset + cpu_len) — no per-job heap allocation, no pointer
  /// chasing. Energy is accounted per gear segment so mid-flight gear
  /// raises stay exact; remaining work is tracked in top-gear seconds
  /// (running at gear g consumes 1/Coef(g) top-seconds of work per wall
  /// second).
  struct RunningRec {
    std::uint32_t cpu_offset = 0;   ///< Into cpu_slab_.
    std::uint32_t cpu_len = 0;
    GearIndex gear = 0;
    GearIndex start_gear = 0;       ///< Gear engaged at start.
    Time segment_start = 0;         ///< When the current gear was engaged
                                    ///< (in the future during a wake delay).
    double remaining_run_top = 0;   ///< Runtime work left, top-gear seconds.
    double remaining_req_top = 0;   ///< Requested work left, top-gear seconds.
    Time pending_end = kNoTime;     ///< Valid completion event time.
    Time start = kNoTime;           ///< When the job began executing.
    Time scaled_requested = 0;      ///< Requested time dilated at start.
    bool boosted = false;           ///< Raised mid-flight.
    bool gated = false;             ///< Power-gated: holds CPUs, no progress,
                                    ///< no completion event until released.
    bool running = false;           ///< Row is live.
  };

  [[nodiscard]] std::uint32_t trace_index(JobId id) const;
  [[nodiscard]] RunningRec& running(JobId id);
  [[nodiscard]] const RunningRec& running(JobId id) const;
  void finish_job(std::uint32_t slot);
  /// Shared re-gearing path of boost_job (policy raise) and set_job_gear
  /// (power-manager throttle/raise): closes the current gear segment and
  /// re-times completion. Gated jobs only update their planned gear.
  void retime_job(JobId id, GearIndex gear, bool mark_boosted);

  /// Invokes `hook` on every attached observer (defaults first, then
  /// add_observer order). Only for the immediate run_begin/run_end hooks;
  /// the mid-run stream goes through the batch (push_event / flush_events).
  template <typename Hook>
  void notify(Hook&& hook) {
    for (SimObserver* observer : chain_) hook(*observer);
  }

  /// Buffers one mid-run record; flushes when the batch is full.
  void push_event(BatchedEvent&& record) {
    batch_.push_back(std::move(record));
    if (batch_.size() >= kBatchCapacity) flush_events();
  }
  /// Delivers the buffered span to every observer, in emission order.
  void flush_events();

  /// Batched-dispatch span size: large enough to amortize the per-span
  /// virtual call, small enough to stay cache-resident.
  static constexpr std::size_t kBatchCapacity = 128;

  const wl::Workload& workload_;
  core::SchedulingPolicy& policy_;
  const power::PowerModel& power_model_;
  const power::BetaTimeModel& time_model_;
  SimulationConfig config_;
  pm::PowerManager* pm_ = nullptr;  ///< == config_.power_manager.

  cluster::Machine machine_;
  Engine engine_;
  std::unordered_map<JobId, std::uint32_t> index_;  ///< JobId -> trace slot.
  std::vector<char> started_;                       ///< By trace slot.
  std::vector<RunningRec> run_state_;               ///< By trace slot.
  std::vector<CpuId> cpu_slab_;     ///< Bump arena for RunningRec CPU lists.
  std::vector<CpuId> cpu_scratch_;  ///< Reused for machine re-timing calls.
  std::vector<CpuId> finish_scratch_;  ///< Reused by finish_job; separate
                                       ///< from cpu_scratch_ because the pm
                                       ///< finish hook holds a reference to
                                       ///< it while it may re-gear other
                                       ///< jobs (which use cpu_scratch_).
  std::vector<JobId> running_ids_;  ///< Sorted ascending, kept incrementally.
  std::vector<BatchedEvent> batch_; ///< Pending observer records.
  std::vector<SimObserver*> observers_;             ///< add_observer order.
  std::vector<SimObserver*> chain_;                 ///< Full set during run().
  std::size_t finished_ = 0;
  Time last_end_ = 0;
  bool ran_ = false;
};

/// Convenience wrapper: wires the simulation and runs it.
SimulationResult run_simulation(const wl::Workload& workload,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config = {});

}  // namespace bsld::sim
