#include "sim/engine.hpp"

#include "util/error.hpp"

namespace bsld::sim {

void Engine::schedule(Event event) {
  BSLD_REQUIRE(event.time >= now_, "Engine: scheduling an event in the past");
  event.sequence = next_sequence_++;
  heap_.push(event);
}

std::optional<Event> Engine::pop() {
  if (heap_.empty()) return std::nullopt;
  const Event event = heap_.top();
  heap_.pop();
  BSLD_REQUIRE(event.time >= now_, "Engine: time went backwards");
  now_ = event.time;
  ++processed_;
  return event;
}

}  // namespace bsld::sim
