#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace bsld::sim {

namespace {
/// Node order: packed (time, kind) key, then insertion sequence.
constexpr auto kNodeBefore = [](const auto& a, const auto& b) {
  return a.key != b.key ? a.key < b.key : a.seq < b.seq;
};
}  // namespace

Engine::Engine() : Engine(Storage{}) {}

Engine::Engine(Storage&& recycle)
    : slab_(std::move(recycle.slab)),
      slab_alt_(std::move(recycle.slab_alt)),
      slab_nodes_(recycle.slab_nodes),
      slab_alt_nodes_(recycle.slab_alt_nodes),
      count_(std::move(recycle.count)),
      head_(std::move(recycle.head)),
      sorted_(std::move(recycle.sorted)),
      overflow_(std::move(recycle.overflow)) {
  recycle.slab_nodes = 0;
  recycle.slab_alt_nodes = 0;
  const std::size_t need = kMinBuckets << kSlotShift;
  if (slab_nodes_ < need) {
    slab_ = std::make_unique_for_overwrite<Node[]>(need);
    slab_nodes_ = need;
  }
  count_.assign(kMinBuckets, 0);
  head_.assign(kMinBuckets, 0);
  sorted_.assign(kMinBuckets, 0);
  overflow_.clear();
}

void Engine::release_storage(Storage& out) {
  out.slab = std::move(slab_);
  out.slab_alt = std::move(slab_alt_);
  out.slab_nodes = slab_nodes_;
  out.slab_alt_nodes = slab_alt_nodes_;
  out.count = std::move(count_);
  out.head = std::move(head_);
  out.sorted = std::move(sorted_);
  out.overflow = std::move(overflow_);
  out.overflow.clear();
  slab_alt_nodes_ = 0;
  overflow_head_ = 0;
  overflow_sorted_ = false;
  size_ = 0;
  mask_ = kMinBuckets - 1;
  shift_ = 0;
  const std::size_t need = kMinBuckets << kSlotShift;
  slab_ = std::make_unique_for_overwrite<Node[]>(need);
  slab_nodes_ = need;
  count_.assign(kMinBuckets, 0);
  head_.assign(kMinBuckets, 0);
  sorted_.assign(kMinBuckets, 0);
  resync_cursor(now_);
}

void Engine::resync_cursor(Time at) {
  cursor_ = bucket_of(at);
  year_key_ = pack(((at >> shift_) + 1) << shift_, static_cast<EventKind>(0));
}

void Engine::sort_segment(Node* seg, std::size_t b) {
  std::sort(seg + head_[b], seg + count_[b], kNodeBefore);
  sorted_[b] = count_[b];
}

void Engine::rebuild(std::size_t nbuckets) {
  // Width (a power of two) chosen so one "year" — nbuckets * width — covers
  // the pending time span; with occupancy bounded by the resize thresholds
  // this keeps both the lazy sorts small and the pop scans O(1) amortized.
  const Time span = std::max<Time>(1, max_time_ - now_ + 1);
  unsigned shift = 0;
  while (shift < 40 && (static_cast<std::uint64_t>(nbuckets) << shift) <
                           static_cast<std::uint64_t>(span)) {
    ++shift;
  }
  const std::size_t need = nbuckets << kSlotShift;
  if (slab_alt_nodes_ < need) {
    slab_alt_ = std::make_unique_for_overwrite<Node[]>(need);
    slab_alt_nodes_ = need;
  }
  const std::size_t nmask = nbuckets - 1;
  std::vector<std::uint8_t> ncount(nbuckets, 0);
  std::vector<Node> nover;
  const auto place = [&](const Node& node) {
    const std::size_t b = (node.key >> (shift + 2)) & nmask;
    const std::uint8_t c = ncount[b];
    if (c < kSlot) {
      slab_alt_[(b << kSlotShift) + c] = node;
      ncount[b] = static_cast<std::uint8_t>(c + 1);
    } else {
      nover.push_back(node);
    }
  };
  const std::size_t old_nb = mask_ + 1;
  for (std::size_t b = 0; b < old_nb; ++b) {
    const Node* seg = &slab_[b << kSlotShift];
    for (std::uint8_t j = head_[b]; j < count_[b]; ++j) place(seg[j]);
  }
  for (std::size_t j = overflow_head_; j < overflow_.size(); ++j) {
    place(overflow_[j]);
  }
  overflow_ = std::move(nover);
  overflow_head_ = 0;
  overflow_sorted_ = false;
  std::swap(slab_, slab_alt_);
  std::swap(slab_nodes_, slab_alt_nodes_);
  count_ = std::move(ncount);
  head_.assign(nbuckets, 0);
  sorted_.assign(nbuckets, 0);
  mask_ = nmask;
  shift_ = shift;
  resync_cursor(now_);
}

void Engine::grow() { rebuild(std::min(kMaxBuckets, (mask_ + 1) * 4)); }

void Engine::shrink() { rebuild(std::max(kMinBuckets, (mask_ + 1) / 4)); }

void Engine::spill(const Node& node) {
  const std::size_t b = (node.key >> (shift_ + 2)) & mask_;
  Node* seg = &slab_[b << kSlotShift];
  const std::uint8_t h = head_[b];
  if (h > 0) {
    // The segment has a consumed prefix: compact it away and reuse the
    // freed slots instead of spilling.
    const std::uint8_t n = static_cast<std::uint8_t>(kSlot - h);
    std::move(seg + h, seg + kSlot, seg);
    head_[b] = 0;
    sorted_[b] = sorted_[b] == kSlot ? n : 0;
    seg[n] = node;
    count_[b] = static_cast<std::uint8_t>(n + 1);
    return;
  }
  // A genuinely full segment with more than one distinct key means the
  // bucket width is too coarse: growing the table (finer width) will
  // separate the keys. Identical packed keys can never be separated, so
  // those — and saturation at kMaxBuckets — go to the overflow vector.
  bool distinct = false;
  for (std::size_t j = 0; j < kSlot; ++j) {
    if (seg[j].key != node.key) {
      distinct = true;
      break;
    }
  }
  if (distinct && mask_ + 1 < kMaxBuckets) {
    grow();
    const std::size_t nb = (node.key >> (shift_ + 2)) & mask_;
    const std::uint8_t c = count_[nb];
    if (c < kSlot) {
      slab_[(nb << kSlotShift) + c] = node;
      count_[nb] = static_cast<std::uint8_t>(c + 1);
      return;
    }
  }
  overflow_.push_back(node);
  overflow_sorted_ = false;
}

std::optional<Event> Engine::take_min_vs_overflow() {
  if (!overflow_sorted_) {
    std::sort(overflow_.begin() + overflow_head_, overflow_.end(),
              kNodeBefore);
    overflow_sorted_ = true;
  }
  // The year-scan candidate (front of bucket cursor_) is the minimum over
  // all segments; the overflow front is the minimum over all spills. The
  // earlier of the two is the global minimum.
  const Node* seg = &slab_[cursor_ << kSlotShift];
  if (kNodeBefore(overflow_[overflow_head_], seg[head_[cursor_]])) {
    return take_overflow_front();
  }
  return take_front();
}

std::optional<Event> Engine::take_overflow_front() {
  const Node node = overflow_[overflow_head_];
  if (++overflow_head_ == overflow_.size()) {
    overflow_.clear();
    overflow_head_ = 0;
    overflow_sorted_ = false;
  }
  --size_;
  const Time time = time_of(node.key);
  BSLD_REQUIRE(time >= now_, "Engine: time went backwards");
  now_ = time;
  ++processed_;
  // The year scan may have advanced past buckets that still hold events
  // later than this one; rewind the cursor to the new clock so the next
  // pop rescans from here.
  resync_cursor(now_);
  return Event{time, static_cast<EventKind>(node.key & 3), node.seq,
               node.job};
}

std::optional<Event> Engine::pop_slow() {
  // A whole simulated year held nothing: the bucket width no longer fits
  // the pending span (it was tuned for a denser or nearer cluster of
  // events). For any non-trivial queue, re-tune the width and rescan; for
  // tiny queues, jump straight to the earliest pending event.
  if (size_ > kTargetLoad / 2) {
    rebuild(mask_ + 1);
    for (std::size_t scanned = 0; scanned <= mask_; ++scanned) {
      const std::uint8_t h = head_[cursor_];
      const std::uint8_t c = count_[cursor_];
      if (h < c) {
        Node* seg = &slab_[cursor_ << kSlotShift];
        if (sorted_[cursor_] != c) sort_segment(seg, cursor_);
        if (seg[h].key < year_key_) {
          if (overflow_head_ < overflow_.size()) return take_min_vs_overflow();
          return take_front();
        }
      }
      cursor_ = (cursor_ + 1) & mask_;
      year_key_ += std::uint64_t{1} << (shift_ + 2);
    }
  }
  // Tiny queue (or a rescan miss with everything spilled): global linear
  // minimum over every segment and the overflow front.
  std::size_t best_b = mask_ + 1;
  std::uint8_t best_j = 0;
  for (std::size_t b = 0; b <= mask_; ++b) {
    const Node* seg = &slab_[b << kSlotShift];
    for (std::uint8_t j = head_[b]; j < count_[b]; ++j) {
      if (best_b > mask_ ||
          kNodeBefore(seg[j], slab_[(best_b << kSlotShift) + best_j])) {
        best_b = b;
        best_j = j;
      }
    }
  }
  if (overflow_head_ < overflow_.size()) {
    if (!overflow_sorted_) {
      std::sort(overflow_.begin() + overflow_head_, overflow_.end(),
                kNodeBefore);
      overflow_sorted_ = true;
    }
    if (best_b > mask_ || kNodeBefore(overflow_[overflow_head_],
                                      slab_[(best_b << kSlotShift) + best_j])) {
      return take_overflow_front();
    }
  }
  BSLD_REQUIRE(best_b <= mask_, "Engine: pending events lost");
  Node* seg = &slab_[best_b << kSlotShift];
  std::swap(seg[head_[best_b]], seg[best_j]);
  sorted_[best_b] = 0;
  cursor_ = best_b;
  year_key_ = pack(((time_of(seg[head_[best_b]].key) >> shift_) + 1) << shift_,
                   static_cast<EventKind>(0));
  return take_front();
}

}  // namespace bsld::sim
