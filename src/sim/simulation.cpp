#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "sim/instruments.hpp"
#include "util/error.hpp"

namespace bsld::sim {

Simulation::Simulation(const wl::Workload& workload,
                       core::SchedulingPolicy& policy,
                       const power::PowerModel& power_model,
                       const power::BetaTimeModel& time_model,
                       SimulationConfig config)
    : workload_(workload),
      policy_(policy),
      power_model_(power_model),
      time_model_(time_model),
      config_(config),
      pm_(config.power_manager),
      machine_(config.cpus > 0 ? config.cpus : workload.cpus) {
  BSLD_REQUIRE(!workload_.jobs.empty(), "Simulation: empty workload");
  BSLD_REQUIRE(power_model_.gears() == time_model_.gears(),
               "Simulation: power and time models must share one gear set");
  index_.reserve(workload_.jobs.size());
  for (const wl::Job& job : workload_.jobs) {
    BSLD_REQUIRE(job.size >= 1 && job.size <= machine_.cpu_count(),
                 "Simulation: job size outside [1, cpus] — clean or clamp "
                 "the workload first");
    BSLD_REQUIRE(job.run_time >= 0 && job.requested_time >= 1,
                 "Simulation: invalid job durations");
    BSLD_REQUIRE(!index_.contains(job.id), "Simulation: duplicate job id");
    index_.emplace(job.id, index_.size());
  }
  started_.assign(workload_.jobs.size(), 0);
}

void Simulation::add_observer(SimObserver& observer) {
  BSLD_REQUIRE(!ran_, "Simulation: add_observer() must precede run()");
  observers_.push_back(&observer);
}

const wl::Job& Simulation::job(JobId id) const {
  return workload_.jobs[trace_index(id)];
}

std::size_t Simulation::trace_index(JobId id) const {
  const auto it = index_.find(id);
  BSLD_REQUIRE(it != index_.end(), "Simulation: unknown job id");
  return it->second;
}

Simulation::Running& Simulation::running(JobId id) {
  const auto it = running_.find(id);
  BSLD_REQUIRE(it != running_.end(), "Simulation: job is not running");
  return it->second;
}

void Simulation::start_job(JobId id, const std::vector<CpuId>& cpus,
                           GearIndex gear) {
  const std::size_t index = trace_index(id);
  const wl::Job& trace = workload_.jobs[index];
  BSLD_REQUIRE(!started_[index], "Simulation: job started twice");
  BSLD_REQUIRE(static_cast<std::int32_t>(cpus.size()) == trace.size,
               "Simulation: allocation size mismatch");
  BSLD_REQUIRE(engine_.now() >= trace.submit,
               "Simulation: job started before submission");
  started_[index] = 1;

  // The power manager rules on every start: it may lower the gear under a
  // cap, gate the admission entirely, or charge a wake delay for sleeping
  // CPUs. Without a manager the decision is exactly the scheduler's ask.
  pm::StartDecision decision{false, gear, 0};
  if (pm_ != nullptr) {
    decision = pm_->on_job_start(*this, id, cpus, gear);
    BSLD_REQUIRE(decision.gear >= 0 &&
                     decision.gear <= time_model_.gears().top_index(),
                 "Simulation: power manager chose a gear out of range");
    BSLD_REQUIRE(decision.wake_delay >= 0,
                 "Simulation: negative wake delay");
    BSLD_REQUIRE(!decision.gate || decision.wake_delay == 0,
                 "Simulation: a gated admission cannot carry a wake delay");
  }
  const GearIndex start_gear = decision.gear;

  const Time scaled_runtime = time_model_.scale_duration_with_beta(
      trace.run_time, start_gear, trace.beta);

  Running state;
  state.cpus = cpus;
  state.gear = start_gear;
  state.remaining_run_top = static_cast<double>(trace.run_time);
  state.remaining_req_top = static_cast<double>(trace.requested_time);
  state.start = engine_.now();
  state.start_gear = start_gear;
  state.gated = decision.gate;
  state.scaled_requested =
      decision.wake_delay +
      std::max(time_model_.scale_duration_with_beta(trace.requested_time,
                                                    start_gear, trace.beta),
               scaled_runtime);
  if (decision.gate) {
    // Gated: the allocation is held but no work happens and no completion
    // is scheduled; release_job() starts the clock later. The machine's
    // expected end is a planning estimate the release will correct.
    state.segment_start = kNoTime;
    state.pending_end = kNoTime;
  } else {
    state.segment_start = engine_.now() + decision.wake_delay;
    state.pending_end = engine_.now() + decision.wake_delay + scaled_runtime;
  }

  machine_.assign(id, cpus, engine_.now() + state.scaled_requested);
  if (!decision.gate) {
    engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0, id});
  }

  const StartEvent event{trace,          index,
                         engine_.now(),  start_gear,
                         scaled_runtime, state.scaled_requested};
  running_.emplace(id, std::move(state));
  notify([&](SimObserver& observer) { observer.on_start(event); });
}

std::vector<JobId> Simulation::running_jobs() const {
  std::vector<JobId> out;
  out.reserve(running_.size());
  for (const auto& [id, _] : running_) out.push_back(id);
  // Map order is unspecified; sort for deterministic policy behaviour.
  std::sort(out.begin(), out.end());
  return out;
}

GearIndex Simulation::running_gear(JobId id) const {
  const auto it = running_.find(id);
  BSLD_REQUIRE(it != running_.end(), "Simulation: job is not running");
  return it->second.gear;
}

void Simulation::boost_job(JobId id, GearIndex gear) {
  Running& state = running(id);
  BSLD_REQUIRE(gear >= state.gear,
               "Simulation: boost_job() cannot lower the gear");
  const GearIndex before = state.gear;
  retime_job(id, gear, /*mark_boosted=*/true);
  if (pm_ != nullptr && gear != before) {
    // The manager may take the raise straight back under a cap.
    pm_->on_job_raised(*this, id, gear);
  }
}

void Simulation::retime_job(JobId id, GearIndex gear, bool mark_boosted) {
  Running& state = running(id);
  BSLD_REQUIRE(gear >= 0 && gear <= time_model_.gears().top_index(),
               "Simulation: gear out of range");
  if (gear == state.gear) return;

  if (state.gated) {
    // No clock is running; only the gear planned for release changes.
    state.gear = gear;
    state.start_gear = gear;
    return;
  }

  const Time now = engine_.now();
  // During a wake delay the busy segment begins in the future: no work is
  // done yet (elapsed clamps to 0) and the new segment re-bases on the
  // pending wake, not on `now`.
  const Time base = std::max(now, state.segment_start);
  const Time elapsed = std::max<Time>(0, now - state.segment_start);
  const wl::Job& trace = job(id);
  const double old_coefficient =
      time_model_.coefficient_with_beta(state.gear, trace.beta);
  const double progress_top = static_cast<double>(elapsed) / old_coefficient;

  // Close the old gear segment: observers (the energy probe in particular)
  // account it before the new gear takes over.
  const GearChangeEvent event{id,    trace_index(id), trace.size, now,
                              state.gear, gear,       elapsed};
  notify([&](SimObserver& observer) { observer.on_gear_change(event); });
  state.remaining_run_top =
      std::max(0.0, state.remaining_run_top - progress_top);
  state.remaining_req_top =
      std::max(0.0, state.remaining_req_top - progress_top);
  state.gear = gear;
  state.segment_start = base;
  if (mark_boosted) state.boosted = true;

  // Re-time completion and the machine's expected end at the new gear.
  const double new_coefficient =
      time_model_.coefficient_with_beta(gear, trace.beta);
  const Time run_left = static_cast<Time>(
      std::llround(state.remaining_run_top * new_coefficient));
  const Time req_left = std::max(
      run_left, static_cast<Time>(
                    std::llround(state.remaining_req_top * new_coefficient)));
  state.pending_end = base + run_left;
  machine_.update_expected_end(id, state.cpus, base + req_left);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0, id});
}

void Simulation::set_job_gear(JobId id, GearIndex gear) {
  retime_job(id, gear, /*mark_boosted=*/false);
}

void Simulation::release_job(JobId id, GearIndex gear) {
  Running& state = running(id);
  BSLD_REQUIRE(state.gated,
               "Simulation: release_job() on a job that is not gated");
  BSLD_REQUIRE(gear >= 0 && gear <= time_model_.gears().top_index(),
               "Simulation: gear out of range");
  const Time now = engine_.now();
  const wl::Job& trace = job(id);
  state.gated = false;
  state.gear = gear;
  state.start_gear = gear;  // The gear execution actually begins at.
  state.segment_start = now;
  const double coefficient =
      time_model_.coefficient_with_beta(gear, trace.beta);
  const Time run_left = static_cast<Time>(
      std::llround(state.remaining_run_top * coefficient));
  const Time req_left = std::max(
      run_left, static_cast<Time>(
                    std::llround(state.remaining_req_top * coefficient)));
  state.pending_end = now + run_left;
  state.scaled_requested = (now - state.start) + req_left;
  machine_.update_expected_end(id, state.cpus, now + req_left);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0, id});
}

void Simulation::schedule_timer(Time at) {
  engine_.schedule(Event{at, EventKind::kPmTimer, 0, kNoJob});
}

void Simulation::emit(const pm::PmEvent& event) {
  notify([&](SimObserver& observer) { observer.on_pm(event); });
}

void Simulation::finish_job(JobId id) {
  Running& state = running(id);
  const std::size_t index = trace_index(id);
  const wl::Job& trace = workload_.jobs[index];

  JobOutcome outcome;
  outcome.id = id;
  outcome.submit = trace.submit;
  outcome.size = trace.size;
  outcome.run_time_top = trace.run_time;
  outcome.start = state.start;
  outcome.end = engine_.now();
  outcome.gear = state.start_gear;
  outcome.final_gear = state.gear;
  outcome.boosted = state.boosted;
  outcome.scaled_runtime = outcome.end - outcome.start;
  outcome.scaled_requested = state.scaled_requested;
  outcome.bsld = core::penalized_bsld(outcome.wait(), outcome.scaled_runtime,
                                      outcome.run_time_top,
                                      config_.bsld_floor);

  const FinishEvent event{outcome, index, engine_.now() - state.segment_start};
  notify([&](SimObserver& observer) { observer.on_finish(event); });

  const std::vector<CpuId> cpus = state.cpus;  // Outlives the erase below.
  machine_.release(id, cpus);
  running_.erase(id);
  ++finished_;
  last_end_ = std::max(last_end_, outcome.end);
  if (pm_ != nullptr) pm_->on_job_finish(*this, id, cpus);
}

SimulationResult Simulation::run() {
  BSLD_REQUIRE(!ran_, "Simulation: run() is single-shot");
  ran_ = true;

  // Default observer set: everything SimulationResult reports. The
  // recorder joins only when per-job retention is on.
  JobRecorder recorder;
  AggregateAccumulator aggregates;
  EnergyProbe energy(power_model_);
  chain_.clear();
  if (config_.retain_jobs) chain_.push_back(&recorder);
  chain_.push_back(&aggregates);
  chain_.push_back(&energy);
  chain_.insert(chain_.end(), observers_.begin(), observers_.end());

  const RunBeginEvent begin{workload_, machine_.cpu_count(),
                            power_model_.gears().size(), config_.bsld_floor};
  notify([&](SimObserver& observer) { observer.on_run_begin(begin); });
  if (pm_ != nullptr) pm_->on_run_begin(*this);

  for (const wl::Job& trace : workload_.jobs) {
    engine_.schedule(Event{trace.submit, EventKind::kJobSubmit, 0, trace.id});
  }

  while (auto event = engine_.pop()) {
    switch (event->kind) {
      case EventKind::kJobSubmit: {
        const std::size_t index = trace_index(event->job);
        const SubmitEvent submitted{workload_.jobs[index], index,
                                    event->time};
        notify([&](SimObserver& observer) { observer.on_submit(submitted); });
        if (pm_ != nullptr) pm_->on_job_submit(*this, event->job);
        policy_.on_submit(*this, event->job);
        break;
      }
      case EventKind::kJobEnd: {
        // A boost re-schedules the completion; the superseded event stays
        // in the heap and is skipped here by timestamp mismatch.
        const auto it = running_.find(event->job);
        if (it == running_.end() || it->second.pending_end != event->time) {
          break;
        }
        finish_job(event->job);
        policy_.on_job_end(*this, event->job);
        break;
      }
      case EventKind::kPmTimer: {
        if (pm_ != nullptr) pm_->on_timer(*this);
        break;
      }
    }
  }

  BSLD_REQUIRE(policy_.queue_size() == 0,
               "Simulation: drained event queue but jobs are still waiting");
  BSLD_REQUIRE(running_.empty(),
               "Simulation: drained event queue but jobs are still running");
  BSLD_REQUIRE(finished_ == workload_.jobs.size(),
               "Simulation: job never ran");

  // Final power-manager accounting (e.g. trailing sleep intervals) must
  // reach the instruments before they close out in on_run_end.
  if (pm_ != nullptr) pm_->on_run_end(*this);

  const Time first_submit = workload_.jobs.front().submit;
  const Time horizon = std::max<Time>(last_end_ - first_submit, 1);
  const RunEndEvent end{first_submit,          last_end_,
                        horizon,               machine_.cpu_count(),
                        workload_.jobs.size(), engine_.processed()};
  notify([&](SimObserver& observer) { observer.on_run_end(end); });

  SimulationResult result;
  result.workload = workload_.name;
  result.policy = policy_.name();
  result.cpus = machine_.cpu_count();
  result.job_count = aggregates.count();
  result.avg_bsld = aggregates.avg_bsld();
  result.avg_wait = aggregates.avg_wait();
  result.reduced_jobs = aggregates.reduced_jobs();
  result.boosted_jobs = aggregates.boosted_jobs();
  result.jobs_per_gear = aggregates.jobs_per_gear();
  result.makespan = aggregates.makespan();
  result.energy = energy.report();
  result.utilization = energy.utilization();
  result.events_processed = engine_.processed();
  if (config_.retain_jobs) result.jobs = recorder.take();
  chain_.clear();
  return result;
}

SimulationResult run_simulation(const wl::Workload& workload,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config) {
  Simulation simulation(workload, policy, power_model, time_model, config);
  return simulation.run();
}

}  // namespace bsld::sim
