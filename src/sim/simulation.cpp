#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bsld::sim {

Simulation::Simulation(const wl::Workload& workload,
                       core::SchedulingPolicy& policy,
                       const power::PowerModel& power_model,
                       const power::BetaTimeModel& time_model,
                       SimulationConfig config)
    : workload_(workload),
      policy_(policy),
      power_model_(power_model),
      time_model_(time_model),
      config_(config),
      machine_(config.cpus > 0 ? config.cpus : workload.cpus),
      meter_(power_model) {
  BSLD_REQUIRE(!workload_.jobs.empty(), "Simulation: empty workload");
  BSLD_REQUIRE(power_model_.gears() == time_model_.gears(),
               "Simulation: power and time models must share one gear set");
  outcomes_.reserve(workload_.jobs.size());
  index_.reserve(workload_.jobs.size());
  for (const wl::Job& job : workload_.jobs) {
    BSLD_REQUIRE(job.size >= 1 && job.size <= machine_.cpu_count(),
                 "Simulation: job size outside [1, cpus] — clean or clamp "
                 "the workload first");
    BSLD_REQUIRE(job.run_time >= 0 && job.requested_time >= 1,
                 "Simulation: invalid job durations");
    BSLD_REQUIRE(!index_.contains(job.id), "Simulation: duplicate job id");
    JobOutcome outcome;
    outcome.id = job.id;
    outcome.submit = job.submit;
    outcome.size = job.size;
    outcome.run_time_top = job.run_time;
    index_.emplace(job.id, outcomes_.size());
    outcomes_.push_back(outcome);
  }
}

const wl::Job& Simulation::job(JobId id) const {
  const auto it = index_.find(id);
  BSLD_REQUIRE(it != index_.end(), "Simulation: unknown job id");
  return workload_.jobs[it->second];
}

JobOutcome& Simulation::outcome(JobId id) {
  const auto it = index_.find(id);
  BSLD_REQUIRE(it != index_.end(), "Simulation: unknown job id");
  return outcomes_[it->second];
}

const JobOutcome& Simulation::outcome(JobId id) const {
  const auto it = index_.find(id);
  BSLD_REQUIRE(it != index_.end(), "Simulation: unknown job id");
  return outcomes_[it->second];
}

Simulation::Running& Simulation::running(JobId id) {
  const auto it = running_.find(id);
  BSLD_REQUIRE(it != running_.end(), "Simulation: job is not running");
  return it->second;
}

void Simulation::start_job(JobId id, const std::vector<CpuId>& cpus,
                           GearIndex gear) {
  const wl::Job& trace = job(id);
  JobOutcome& record = outcome(id);
  BSLD_REQUIRE(record.start == kNoTime, "Simulation: job started twice");
  BSLD_REQUIRE(static_cast<std::int32_t>(cpus.size()) == trace.size,
               "Simulation: allocation size mismatch");
  BSLD_REQUIRE(engine_.now() >= trace.submit,
               "Simulation: job started before submission");

  record.start = engine_.now();
  record.gear = gear;
  record.final_gear = gear;
  const Time scaled_runtime =
      time_model_.scale_duration_with_beta(trace.run_time, gear, trace.beta);
  record.scaled_requested = std::max(
      time_model_.scale_duration_with_beta(trace.requested_time, gear,
                                           trace.beta),
      scaled_runtime);

  Running state;
  state.cpus = cpus;
  state.gear = gear;
  state.segment_start = engine_.now();
  state.remaining_run_top = static_cast<double>(trace.run_time);
  state.remaining_req_top = static_cast<double>(trace.requested_time);
  state.pending_end = engine_.now() + scaled_runtime;

  machine_.assign(id, cpus, engine_.now() + record.scaled_requested);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0, id});
  running_.emplace(id, std::move(state));
}

std::vector<JobId> Simulation::running_jobs() const {
  std::vector<JobId> out;
  out.reserve(running_.size());
  for (const auto& [id, _] : running_) out.push_back(id);
  // Map order is unspecified; sort for deterministic policy behaviour.
  std::sort(out.begin(), out.end());
  return out;
}

GearIndex Simulation::running_gear(JobId id) const {
  const auto it = running_.find(id);
  BSLD_REQUIRE(it != running_.end(), "Simulation: job is not running");
  return it->second.gear;
}

void Simulation::boost_job(JobId id, GearIndex gear) {
  Running& state = running(id);
  BSLD_REQUIRE(gear >= state.gear,
               "Simulation: boost_job() cannot lower the gear");
  BSLD_REQUIRE(gear <= time_model_.gears().top_index(),
               "Simulation: gear out of range");
  if (gear == state.gear) return;

  const Time now = engine_.now();
  const Time elapsed = now - state.segment_start;
  const double old_coefficient =
      time_model_.coefficient_with_beta(state.gear, job(id).beta);
  const double progress_top = static_cast<double>(elapsed) / old_coefficient;

  // Close the old gear segment in the energy ledger.
  JobOutcome& record = outcome(id);
  meter_.add_execution(record.size, state.gear, elapsed);
  state.remaining_run_top =
      std::max(0.0, state.remaining_run_top - progress_top);
  state.remaining_req_top =
      std::max(0.0, state.remaining_req_top - progress_top);
  state.gear = gear;
  state.segment_start = now;
  record.final_gear = gear;
  record.boosted = true;

  // Re-time completion and the machine's expected end at the new gear.
  const double new_coefficient =
      time_model_.coefficient_with_beta(gear, job(id).beta);
  const Time run_left = static_cast<Time>(
      std::llround(state.remaining_run_top * new_coefficient));
  const Time req_left = std::max(
      run_left, static_cast<Time>(
                    std::llround(state.remaining_req_top * new_coefficient)));
  state.pending_end = now + run_left;
  machine_.update_expected_end(id, state.cpus, now + req_left);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0, id});
}

void Simulation::finish_job(JobId id) {
  Running& state = running(id);
  JobOutcome& record = outcome(id);
  record.end = engine_.now();
  record.scaled_runtime = record.end - record.start;
  meter_.add_execution(record.size, state.gear,
                       engine_.now() - state.segment_start);
  machine_.release(id, state.cpus);
  running_.erase(id);
}

SimulationResult Simulation::run() {
  BSLD_REQUIRE(!ran_, "Simulation: run() is single-shot");
  ran_ = true;

  for (const wl::Job& trace : workload_.jobs) {
    engine_.schedule(Event{trace.submit, EventKind::kJobSubmit, 0, trace.id});
  }

  while (auto event = engine_.pop()) {
    switch (event->kind) {
      case EventKind::kJobSubmit:
        policy_.on_submit(*this, event->job);
        break;
      case EventKind::kJobEnd: {
        // A boost re-schedules the completion; the superseded event stays
        // in the heap and is skipped here by timestamp mismatch.
        const auto it = running_.find(event->job);
        if (it == running_.end() || it->second.pending_end != event->time) {
          break;
        }
        finish_job(event->job);
        policy_.on_job_end(*this, event->job);
        break;
      }
    }
  }

  BSLD_REQUIRE(policy_.queue_size() == 0,
               "Simulation: drained event queue but jobs are still waiting");
  BSLD_REQUIRE(running_.empty(),
               "Simulation: drained event queue but jobs are still running");

  SimulationResult result;
  result.workload = workload_.name;
  result.policy = policy_.name();
  result.cpus = machine_.cpu_count();
  result.jobs_per_gear.assign(power_model_.gears().size(), 0);
  const GearIndex top = power_model_.gears().top_index();

  Time first_submit = workload_.jobs.front().submit;
  Time last_end = 0;
  double bsld_sum = 0.0;
  double wait_sum = 0.0;
  for (JobOutcome& record : outcomes_) {
    BSLD_REQUIRE(record.start != kNoTime && record.end != kNoTime,
                 "Simulation: job never ran");
    record.bsld = core::penalized_bsld(record.wait(), record.scaled_runtime,
                                       record.run_time_top, config_.bsld_floor);
    bsld_sum += record.bsld;
    wait_sum += static_cast<double>(record.wait());
    ++result.jobs_per_gear[static_cast<std::size_t>(record.gear)];
    if (record.gear != top) ++result.reduced_jobs;
    if (record.boosted) ++result.boosted_jobs;
    last_end = std::max(last_end, record.end);
  }
  const auto n = static_cast<double>(outcomes_.size());
  result.avg_bsld = bsld_sum / n;
  result.avg_wait = wait_sum / n;
  result.makespan = last_end;

  const Time horizon = std::max<Time>(last_end - first_submit, 1);
  result.energy = meter_.report(machine_.cpu_count(), horizon);
  result.utilization =
      result.energy.busy_core_seconds /
      (static_cast<double>(machine_.cpu_count()) * static_cast<double>(horizon));
  result.events_processed = engine_.processed();
  result.jobs = std::move(outcomes_);
  return result;
}

SimulationResult run_simulation(const wl::Workload& workload,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config) {
  Simulation simulation(workload, policy, power_model, time_model, config);
  return simulation.run();
}

}  // namespace bsld::sim
