#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "sim/arena.hpp"
#include "sim/instruments.hpp"
#include "util/error.hpp"

namespace bsld::sim {

// Engine events carry the global trace index, not the JobId: the event
// loop and completion checks index straight into the job window without
// hashing. The JobId resurfaces from the window slot where policies and
// managers need it. kPmTimer events carry kNoJob.
//
// Pop-order equivalence of the lookahead pump (why a bounded window is
// byte-identical to scheduling every submit up front): submits are
// scheduled in stream order, and the engine breaks (time, kind) ties by
// schedule sequence — so same-time submits pop in stream order no matter
// when each was scheduled. Cross-kind ties are decided by kind alone
// (kJobEnd pops before a same-time kJobSubmit in both schemes). And since
// the stream is sorted, a job admitted while the clock sits at a popped
// submit's time T has submit >= T — never scheduled in the past.

Simulation::Simulation(const wl::Workload& workload,
                       core::SchedulingPolicy& policy,
                       const power::PowerModel& power_model,
                       const power::BetaTimeModel& time_model,
                       SimulationConfig config)
    : policy_(policy),
      power_model_(power_model),
      time_model_(time_model),
      config_(config),
      pm_(config.power_manager),
      view_(std::in_place, workload),
      stream_(&*view_),
      // Unlimited lookahead: the whole trace is admitted before the first
      // event pops, exactly like the classic eager simulator — which also
      // makes unsorted hand-built traces legal through this constructor.
      lookahead_(std::numeric_limits<std::int64_t>::max()),
      machine_(config.cpus > 0 ? config.cpus : workload.cpus),
      engine_(RunArena::local().acquire_engine()),
      window_(RunArena::local().acquire_job_window()),
      cpu_slab_(RunArena::local().acquire_cpu_slab()) {
  BSLD_REQUIRE(!workload.jobs.empty(), "Simulation: empty workload");
  BSLD_REQUIRE(power_model_.gears() == time_model_.gears(),
               "Simulation: power and time models must share one gear set");
  // Eager whole-trace validation, so construction throws exactly where the
  // pre-streaming simulator did. The pump re-checks per job; that repeat
  // is cheap and keeps the streaming path self-sufficient.
  std::unordered_set<JobId> seen;
  seen.reserve(workload.jobs.size());
  for (const wl::Job& job : workload.jobs) {
    BSLD_REQUIRE(job.size >= 1 && job.size <= machine_.cpu_count(),
                 "Simulation: job size outside [1, cpus] — clean or clamp "
                 "the workload first");
    BSLD_REQUIRE(job.run_time >= 0 && job.requested_time >= 1,
                 "Simulation: invalid job durations");
    BSLD_REQUIRE(seen.insert(job.id).second,
                 "Simulation: duplicate job id");
  }
  index_.reserve(workload.jobs.size());
  batch_.reserve(kBatchCapacity);
}

Simulation::Simulation(wl::JobStream& stream, core::SchedulingPolicy& policy,
                       const power::PowerModel& power_model,
                       const power::BetaTimeModel& time_model,
                       SimulationConfig config)
    : policy_(policy),
      power_model_(power_model),
      time_model_(time_model),
      config_(config),
      pm_(config.power_manager),
      stream_(&stream),
      lookahead_(std::max<std::int64_t>(1, config.submit_lookahead)),
      machine_(config.cpus > 0 ? config.cpus : stream.cpus()),
      engine_(RunArena::local().acquire_engine()),
      window_(RunArena::local().acquire_job_window()),
      cpu_slab_(RunArena::local().acquire_cpu_slab()) {
  BSLD_REQUIRE(power_model_.gears() == time_model_.gears(),
               "Simulation: power and time models must share one gear set");
  batch_.reserve(kBatchCapacity);
}

Simulation::~Simulation() {
  RunArena& arena = RunArena::local();
  Engine::Storage storage;
  engine_.release_storage(storage);
  arena.recycle_engine(std::move(storage));
  arena.recycle_cpu_slab(std::move(cpu_slab_));
  arena.recycle_job_window(window_.release());
}

void Simulation::add_observer(SimObserver& observer) {
  BSLD_REQUIRE(!ran_, "Simulation: add_observer() must precede run()");
  observers_.push_back(&observer);
}

const wl::Job& Simulation::job(JobId id) const {
  return window_.at(trace_index(id)).job;
}

const wl::Job& Simulation::job_at(std::uint64_t trace_index) const {
  return window_.at(trace_index).job;
}

std::uint64_t Simulation::trace_index(JobId id) const {
  const auto it = index_.find(id);
  BSLD_REQUIRE(it != index_.end(), "Simulation: unknown job id");
  return it->second;
}

RunningRec& Simulation::running(JobId id) {
  RunningRec& rec = window_.at(trace_index(id)).state;
  BSLD_REQUIRE(rec.running, "Simulation: job is not running");
  return rec;
}

const RunningRec& Simulation::running(JobId id) const {
  const RunningRec& rec = window_.at(trace_index(id)).state;
  BSLD_REQUIRE(rec.running, "Simulation: job is not running");
  return rec;
}

void Simulation::flush_events() {
  if (!batch_.empty()) {
    for (SimObserver* observer : chain_) {
      observer->on_events(*this, batch_.data(), batch_.size());
    }
    batch_.clear();
  }
  // Retire finished front jobs whose records have now all been delivered:
  // a finish record is pushed before `running` drops (finish_job), so any
  // flush that can observe running == false has already delivered it.
  // Unstarted (queued) and gated jobs block eviction behind them — that
  // residency is part of peak_live().
  while (window_.live() > 0) {
    const JobWindow::Slot& front = window_.front();
    if (!front.started || front.state.running) break;
    index_.erase(front.job.id);
    window_.pop_front();
  }
}

void Simulation::pump_submits() {
  while (!stream_done_ && submits_outstanding_ < lookahead_) {
    std::optional<wl::Job> job = stream_->next();
    if (!job.has_value()) {
      stream_done_ = true;
      break;
    }
    BSLD_REQUIRE(job->size >= 1 && job->size <= machine_.cpu_count(),
                 "Simulation: job size outside [1, cpus] — clean or clamp "
                 "the workload first");
    BSLD_REQUIRE(job->run_time >= 0 && job->requested_time >= 1,
                 "Simulation: invalid job durations");
    const std::uint64_t global = window_.admitted();
    BSLD_REQUIRE(index_.emplace(job->id, global).second,
                 "Simulation: duplicate job id");
    if (!have_first_submit_) {
      first_submit_ = job->submit;
      have_first_submit_ = true;
    }
    const Time submit = job->submit;
    window_.admit(global, std::move(*job));
    engine_.schedule(Event{submit, EventKind::kJobSubmit, 0,
                           static_cast<JobId>(global)});
    ++submits_outstanding_;
  }
}

void Simulation::start_job(JobId id, const std::vector<CpuId>& cpus,
                           GearIndex gear) {
  const std::uint64_t global = trace_index(id);
  JobWindow::Slot& slot = window_.at(global);
  const wl::Job& trace = slot.job;
  BSLD_REQUIRE(!slot.started, "Simulation: job started twice");
  BSLD_REQUIRE(static_cast<std::int32_t>(cpus.size()) == trace.size,
               "Simulation: allocation size mismatch");
  BSLD_REQUIRE(engine_.now() >= trace.submit,
               "Simulation: job started before submission");
  slot.started = true;

  // The power manager rules on every start: it may lower the gear under a
  // cap, gate the admission entirely, or charge a wake delay for sleeping
  // CPUs. Without a manager the decision is exactly the scheduler's ask.
  pm::StartDecision decision{false, gear, 0};
  if (pm_ != nullptr) {
    decision = pm_->on_job_start(*this, id, cpus, gear);
    BSLD_REQUIRE(decision.gear >= 0 &&
                     decision.gear <= time_model_.gears().top_index(),
                 "Simulation: power manager chose a gear out of range");
    BSLD_REQUIRE(decision.wake_delay >= 0,
                 "Simulation: negative wake delay");
    BSLD_REQUIRE(!decision.gate || decision.wake_delay == 0,
                 "Simulation: a gated admission cannot carry a wake delay");
  }
  const GearIndex start_gear = decision.gear;

  const Time scaled_runtime = time_model_.scale_duration_with_beta(
      trace.run_time, start_gear, trace.beta);

  RunningRec& state = slot.state;
  // Reuse an exact-size free run of the CPU slab when one exists (a job of
  // this size finished earlier); otherwise bump-append. Offsets are never
  // observable, so reuse cannot perturb results.
  const auto len = static_cast<std::uint32_t>(cpus.size());
  const auto free_it = free_cpu_runs_.find(len);
  if (free_it != free_cpu_runs_.end() && !free_it->second.empty()) {
    state.cpu_offset = free_it->second.back();
    free_it->second.pop_back();
    std::copy(cpus.begin(), cpus.end(), cpu_slab_.begin() + state.cpu_offset);
  } else {
    state.cpu_offset = static_cast<std::uint32_t>(cpu_slab_.size());
    cpu_slab_.insert(cpu_slab_.end(), cpus.begin(), cpus.end());
  }
  state.cpu_len = len;
  state.gear = start_gear;
  state.remaining_run_top = static_cast<double>(trace.run_time);
  state.remaining_req_top = static_cast<double>(trace.requested_time);
  state.start = engine_.now();
  state.start_gear = start_gear;
  state.boosted = false;
  state.gated = decision.gate;
  state.running = true;
  state.scaled_requested =
      decision.wake_delay +
      std::max(time_model_.scale_duration_with_beta(trace.requested_time,
                                                    start_gear, trace.beta),
               scaled_runtime);
  if (decision.gate) {
    // Gated: the allocation is held but no work happens and no completion
    // is scheduled; release_job() starts the clock later. The machine's
    // expected end is a planning estimate the release will correct.
    state.segment_start = kNoTime;
    state.pending_end = kNoTime;
  } else {
    state.segment_start = engine_.now() + decision.wake_delay;
    state.pending_end = engine_.now() + decision.wake_delay + scaled_runtime;
  }

  running_ids_.insert(
      std::lower_bound(running_ids_.begin(), running_ids_.end(), id), id);
  machine_.assign(id, cpus, engine_.now() + state.scaled_requested);
  if (!decision.gate) {
    engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0,
                           static_cast<JobId>(global)});
  }

  push_event(StartRecord{global, engine_.now(), start_gear, scaled_runtime,
                         state.scaled_requested});
}

std::vector<JobId> Simulation::running_jobs() const {
  // Kept sorted incrementally (insert on start, erase on finish), so the
  // deterministic policy-facing order is a straight copy.
  return running_ids_;
}

GearIndex Simulation::running_gear(JobId id) const { return running(id).gear; }

void Simulation::boost_job(JobId id, GearIndex gear) {
  RunningRec& state = running(id);
  BSLD_REQUIRE(gear >= state.gear,
               "Simulation: boost_job() cannot lower the gear");
  const GearIndex before = state.gear;
  retime_job(id, gear, /*mark_boosted=*/true);
  if (pm_ != nullptr && gear != before) {
    // The manager may take the raise straight back under a cap.
    pm_->on_job_raised(*this, id, gear);
  }
}

void Simulation::retime_job(JobId id, GearIndex gear, bool mark_boosted) {
  RunningRec& state = running(id);
  BSLD_REQUIRE(gear >= 0 && gear <= time_model_.gears().top_index(),
               "Simulation: gear out of range");
  if (gear == state.gear) return;

  if (state.gated) {
    // No clock is running; only the gear planned for release changes.
    state.gear = gear;
    state.start_gear = gear;
    return;
  }

  const std::uint64_t global = trace_index(id);
  const Time now = engine_.now();
  // During a wake delay the busy segment begins in the future: no work is
  // done yet (elapsed clamps to 0) and the new segment re-bases on the
  // pending wake, not on `now`.
  const Time base = std::max(now, state.segment_start);
  const Time elapsed = std::max<Time>(0, now - state.segment_start);
  const wl::Job& trace = window_.at(global).job;
  const double old_coefficient =
      time_model_.coefficient_with_beta(state.gear, trace.beta);
  const double progress_top = static_cast<double>(elapsed) / old_coefficient;

  // Close the old gear segment: observers (the energy probe in particular)
  // account it before the new gear takes over.
  push_event(GearChangeEvent{id, global, trace.size, now, state.gear, gear,
                             elapsed});
  state.remaining_run_top =
      std::max(0.0, state.remaining_run_top - progress_top);
  state.remaining_req_top =
      std::max(0.0, state.remaining_req_top - progress_top);
  state.gear = gear;
  state.segment_start = base;
  if (mark_boosted) state.boosted = true;

  // Re-time completion and the machine's expected end at the new gear.
  const double new_coefficient =
      time_model_.coefficient_with_beta(gear, trace.beta);
  const Time run_left = static_cast<Time>(
      std::llround(state.remaining_run_top * new_coefficient));
  const Time req_left = std::max(
      run_left, static_cast<Time>(
                    std::llround(state.remaining_req_top * new_coefficient)));
  state.pending_end = base + run_left;
  cpu_scratch_.assign(cpu_slab_.begin() + state.cpu_offset,
                      cpu_slab_.begin() + state.cpu_offset + state.cpu_len);
  machine_.update_expected_end(id, cpu_scratch_, base + req_left);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0,
                         static_cast<JobId>(global)});
}

void Simulation::set_job_gear(JobId id, GearIndex gear) {
  retime_job(id, gear, /*mark_boosted=*/false);
}

void Simulation::release_job(JobId id, GearIndex gear) {
  RunningRec& state = running(id);
  BSLD_REQUIRE(state.gated,
               "Simulation: release_job() on a job that is not gated");
  BSLD_REQUIRE(gear >= 0 && gear <= time_model_.gears().top_index(),
               "Simulation: gear out of range");
  const std::uint64_t global = trace_index(id);
  const Time now = engine_.now();
  const wl::Job& trace = window_.at(global).job;
  state.gated = false;
  state.gear = gear;
  state.start_gear = gear;  // The gear execution actually begins at.
  state.segment_start = now;
  const double coefficient =
      time_model_.coefficient_with_beta(gear, trace.beta);
  const Time run_left = static_cast<Time>(
      std::llround(state.remaining_run_top * coefficient));
  const Time req_left = std::max(
      run_left, static_cast<Time>(
                    std::llround(state.remaining_req_top * coefficient)));
  state.pending_end = now + run_left;
  state.scaled_requested = (now - state.start) + req_left;
  cpu_scratch_.assign(cpu_slab_.begin() + state.cpu_offset,
                      cpu_slab_.begin() + state.cpu_offset + state.cpu_len);
  machine_.update_expected_end(id, cpu_scratch_, now + req_left);
  engine_.schedule(Event{state.pending_end, EventKind::kJobEnd, 0,
                         static_cast<JobId>(global)});
}

void Simulation::schedule_timer(Time at) {
  engine_.schedule(Event{at, EventKind::kPmTimer, 0, kNoJob});
}

void Simulation::emit(const pm::PmEvent& event) { push_event(event); }

void Simulation::finish_job(std::uint64_t global) {
  JobWindow::Slot& slot = window_.at(global);
  RunningRec& state = slot.state;
  const wl::Job& trace = slot.job;
  const JobId id = trace.id;

  JobOutcome outcome;
  outcome.id = id;
  outcome.submit = trace.submit;
  outcome.size = trace.size;
  outcome.run_time_top = trace.run_time;
  outcome.start = state.start;
  outcome.end = engine_.now();
  outcome.gear = state.start_gear;
  outcome.final_gear = state.gear;
  outcome.boosted = state.boosted;
  outcome.scaled_runtime = outcome.end - outcome.start;
  outcome.scaled_requested = state.scaled_requested;
  outcome.bsld = core::penalized_bsld(outcome.wait(), outcome.scaled_runtime,
                                      outcome.run_time_top,
                                      config_.bsld_floor);

  const Time final_segment = engine_.now() - state.segment_start;
  // Pushed while `running` is still set: if this push flushes the batch,
  // the eviction sweep cannot retire this job yet, so the record is always
  // delivered before the slot becomes evictable.
  push_event(FinishRecord{outcome, global, final_segment});

  finish_scratch_.assign(cpu_slab_.begin() + state.cpu_offset,
                         cpu_slab_.begin() + state.cpu_offset + state.cpu_len);
  machine_.release(id, finish_scratch_);
  free_cpu_runs_[state.cpu_len].push_back(state.cpu_offset);
  state.running = false;
  running_ids_.erase(
      std::lower_bound(running_ids_.begin(), running_ids_.end(), id));
  ++finished_;
  last_end_ = std::max(last_end_, outcome.end);
  if (pm_ != nullptr) pm_->on_job_finish(*this, id, finish_scratch_);
}

SimulationResult Simulation::run() {
  BSLD_REQUIRE(!ran_, "Simulation: run() is single-shot");
  ran_ = true;

  // Default observer set: everything SimulationResult reports. The
  // recorder joins only when per-job retention is on.
  JobRecorder recorder;
  AggregateAccumulator aggregates;
  EnergyProbe energy(power_model_);
  chain_.clear();
  if (config_.retain_jobs) chain_.push_back(&recorder);
  chain_.push_back(&aggregates);
  chain_.push_back(&energy);
  chain_.insert(chain_.end(), observers_.begin(), observers_.end());

  const RunBeginEvent begin{stream_->name(), stream_->size_hint(),
                            machine_.cpu_count(), power_model_.gears().size(),
                            config_.bsld_floor};
  notify([&](SimObserver& observer) { observer.on_run_begin(begin); });
  if (pm_ != nullptr) pm_->on_run_begin(*this);

  // Fill the lookahead window (the whole trace in the materialized form).
  pump_submits();
  BSLD_REQUIRE(window_.admitted() > 0, "Simulation: empty workload");

  while (auto event = engine_.pop()) {
    switch (event->kind) {
      case EventKind::kJobSubmit: {
        const auto global = static_cast<std::uint64_t>(event->job);
        const JobId id = window_.at(global).job.id;
        push_event(SubmitRecord{global, event->time});
        if (pm_ != nullptr) pm_->on_job_submit(*this, id);
        policy_.on_submit(*this, id);
        --submits_outstanding_;
        // Refill the window at the popped submit's time; the sorted-stream
        // contract guarantees refills are never in the past.
        pump_submits();
        break;
      }
      case EventKind::kJobEnd: {
        const auto global = static_cast<std::uint64_t>(event->job);
        // A boost re-schedules the completion; the superseded event stays
        // in the queue and is skipped here — by the eviction range check
        // when the job has already retired, by timestamp mismatch when it
        // is still resident.
        if (global < window_.evicted()) break;
        const JobWindow::Slot& slot = window_.at(global);
        if (!slot.state.running || slot.state.pending_end != event->time) {
          break;
        }
        const JobId id = slot.job.id;
        finish_job(global);
        policy_.on_job_end(*this, id);
        break;
      }
      case EventKind::kPmTimer: {
        if (pm_ != nullptr) pm_->on_timer(*this);
        break;
      }
    }
  }

  BSLD_REQUIRE(policy_.queue_size() == 0,
               "Simulation: drained event queue but jobs are still waiting");
  BSLD_REQUIRE(running_ids_.empty(),
               "Simulation: drained event queue but jobs are still running");
  BSLD_REQUIRE(finished_ == static_cast<std::int64_t>(window_.admitted()),
               "Simulation: job never ran");

  // Final power-manager accounting (e.g. trailing sleep intervals) must
  // reach the instruments before they close out in on_run_end; flush the
  // batch afterwards so every buffered record lands first.
  if (pm_ != nullptr) pm_->on_run_end(*this);
  flush_events();

  const Time horizon = std::max<Time>(last_end_ - first_submit_, 1);
  const RunEndEvent end{first_submit_, last_end_,
                        horizon,       machine_.cpu_count(),
                        finished_,     engine_.processed()};
  notify([&](SimObserver& observer) { observer.on_run_end(end); });

  SimulationResult result;
  result.workload = std::string(stream_->name());
  result.policy = policy_.name();
  result.cpus = machine_.cpu_count();
  result.job_count = aggregates.count();
  result.avg_bsld = aggregates.avg_bsld();
  result.avg_wait = aggregates.avg_wait();
  result.reduced_jobs = aggregates.reduced_jobs();
  result.boosted_jobs = aggregates.boosted_jobs();
  result.jobs_per_gear = aggregates.jobs_per_gear();
  result.makespan = aggregates.makespan();
  result.energy = energy.report();
  result.utilization = energy.utilization();
  result.events_processed = engine_.processed();
  result.peak_live_jobs = static_cast<std::int64_t>(window_.peak_live());
  if (config_.retain_jobs) result.jobs = recorder.take();
  chain_.clear();
  return result;
}

SimulationResult run_simulation(const wl::Workload& workload,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config) {
  Simulation simulation(workload, policy, power_model, time_model, config);
  return simulation.run();
}

SimulationResult run_simulation(wl::JobStream& stream,
                                core::SchedulingPolicy& policy,
                                const power::PowerModel& power_model,
                                const power::BetaTimeModel& time_model,
                                SimulationConfig config) {
  Simulation simulation(stream, policy, power_model, time_model, config);
  return simulation.run();
}

}  // namespace bsld::sim
