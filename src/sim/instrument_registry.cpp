#include "sim/instrument_registry.hpp"

#include "util/error.hpp"

namespace bsld::sim {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

void register_builtins(InstrumentRegistry& registry) {
  registry.add("jobs", "per-job outcomes in trace order (id, gears, wait, "
               "BSLD)",
               [](const InstrumentContext&) {
                 return std::make_unique<JobRecorder>();
               });
  registry.add("aggregates", "run aggregates: avg BSLD/wait, "
               "reduced/boosted counts, jobs per gear, makespan",
               [](const InstrumentContext&) {
                 return std::make_unique<AggregateAccumulator>();
               });
  registry.add("energy", "energy meter over the run horizon "
               "(computational/idle/total joules, utilization)",
               [](const InstrumentContext& context) {
                 return std::make_unique<EnergyProbe>(context.power_model);
               });
  registry.add("wait-trace", "per-job waits plus wait-queue depth over "
               "time (paper Fig. 6)",
               [](const InstrumentContext& context) {
                 return std::make_unique<WaitQueueTrace>(context.sample);
               });
  registry.add("utilization", "busy cores, utilization and active power "
               "over time",
               [](const InstrumentContext& context) {
                 return std::make_unique<UtilizationTrace>(context.power_model,
                                                           context.sample);
               });
  registry.add("pm-trace", "every power-management event: cap moves, "
               "throttles, gates, sleep intervals",
               [](const InstrumentContext&) {
                 return std::make_unique<PmTrace>();
               });
}

}  // namespace

InstrumentRegistry& InstrumentRegistry::global() {
  static InstrumentRegistry* registry = [] {
    // bsld-lint: allow(new-delete): leaked singleton, outlives static dtors
    auto* r = new InstrumentRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void InstrumentRegistry::add(const std::string& name, Factory factory) {
  add(name, "", std::move(factory));
}

void InstrumentRegistry::add(const std::string& name, std::string description,
                             Factory factory) {
  BSLD_REQUIRE(!name.empty(), "InstrumentRegistry: empty instrument name");
  BSLD_REQUIRE(factory != nullptr, "InstrumentRegistry: null factory");
  const util::WriterLock lock(mutex_);
  const auto [it, inserted] = factories_.emplace(
      name, Entry{std::move(description), std::move(factory)});
  (void)it;
  BSLD_REQUIRE(inserted,
               "InstrumentRegistry: instrument `" + name +
                   "` is already registered");
}

bool InstrumentRegistry::has(const std::string& name) const {
  const util::ReaderLock lock(mutex_);
  return factories_.contains(name);
}

void InstrumentRegistry::require(const std::string& name) const {
  BSLD_REQUIRE(has(name),
               "InstrumentRegistry: unknown instrument `" + name +
                   "` (registered: " + join(names()) + ")");
}

std::vector<std::string> InstrumentRegistry::names() const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::string>> InstrumentRegistry::entries()
    const {
  const util::ReaderLock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

std::unique_ptr<Instrument> InstrumentRegistry::make(
    const std::string& name, const InstrumentContext& context) const {
  Factory factory;
  {
    const util::ReaderLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second.factory;
  }
  if (factory == nullptr) require(name);  // throws, listing the registry
  auto instrument = factory(context);
  BSLD_REQUIRE(instrument != nullptr,
               "InstrumentRegistry: factory for `" + name +
                   "` returned null");
  return instrument;
}

}  // namespace bsld::sim
