/// \file arena.hpp
/// \brief Thread-local recycling of per-run simulation storage.
///
/// A parameter sweep runs thousands of simulations per worker thread, and
/// each run used to re-grow the same large buffers from nothing: the
/// engine's calendar-queue slab and the flat CPU-allocation slab. RunArena
/// keeps one drained copy of each per thread; Simulation acquires them in
/// its constructor and recycles them in its destructor, so every run after
/// the first starts warm and performs no large allocations on the hot
/// path. The arena is thread-local (RunArena::local()) because simulations
/// are thread-confined (see observer.hpp) — there is no sharing and no
/// locking.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/job_window.hpp"
#include "util/types.hpp"

namespace bsld::sim {

/// Per-thread pool of recycled run storage. Acquire/recycle pairs are
/// cheap moves; acquiring from an empty arena simply returns empty
/// storage that the run grows once.
class RunArena {
 public:
  /// The calling thread's arena.
  static RunArena& local();

  /// Takes the pooled engine storage (empty on a cold arena).
  [[nodiscard]] Engine::Storage acquire_engine();
  /// Returns drained engine storage to the pool for the next run.
  void recycle_engine(Engine::Storage&& storage);

  /// Takes the pooled CPU-allocation slab (cleared, capacity retained).
  [[nodiscard]] std::vector<CpuId> acquire_cpu_slab();
  /// Returns a run's CPU slab to the pool.
  void recycle_cpu_slab(std::vector<CpuId>&& slab);

  /// Takes the pooled job-window ring storage (capacity retained; the
  /// JobWindow constructor discards contents).
  [[nodiscard]] JobWindow::Storage acquire_job_window();
  /// Returns a run's job-window storage to the pool.
  void recycle_job_window(JobWindow::Storage&& storage);

  /// True when the pooled engine storage carries warmed-up capacity —
  /// i.e. at least one engine completed a round trip through this arena.
  [[nodiscard]] bool engine_warm() const { return engine_.slab_nodes > 0; }
  /// Round trips completed (recycle_engine calls), for tests.
  [[nodiscard]] std::uint64_t engine_recycles() const {
    return engine_recycles_;
  }

 private:
  Engine::Storage engine_;
  std::vector<CpuId> cpu_slab_;
  JobWindow::Storage job_window_;
  std::uint64_t engine_recycles_ = 0;
};

}  // namespace bsld::sim
