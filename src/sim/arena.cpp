#include "sim/arena.hpp"

#include <utility>

namespace bsld::sim {

RunArena& RunArena::local() {
  thread_local RunArena arena;
  return arena;
}

Engine::Storage RunArena::acquire_engine() {
  Engine::Storage out = std::move(engine_);
  engine_ = Engine::Storage{};
  return out;
}

void RunArena::recycle_engine(Engine::Storage&& storage) {
  engine_ = std::move(storage);
  ++engine_recycles_;
}

std::vector<CpuId> RunArena::acquire_cpu_slab() {
  std::vector<CpuId> out = std::move(cpu_slab_);
  cpu_slab_ = {};
  out.clear();
  return out;
}

void RunArena::recycle_cpu_slab(std::vector<CpuId>&& slab) {
  cpu_slab_ = std::move(slab);
}

JobWindow::Storage RunArena::acquire_job_window() {
  JobWindow::Storage out = std::move(job_window_);
  job_window_ = JobWindow::Storage{};
  return out;
}

void RunArena::recycle_job_window(JobWindow::Storage&& storage) {
  job_window_ = std::move(storage);
}

}  // namespace bsld::sim
