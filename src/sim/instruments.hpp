/// \file instruments.hpp
/// \brief Composable measurement instruments built on sim::SimObserver.
///
/// Every number the pre-observer Simulation assembled inline is produced
/// here instead, as independent observers over the event stream:
///
///  * JobRecorder           — the per-job JobOutcome vector, in trace order;
///  * AggregateAccumulator  — avg BSLD/wait, reduced/boosted counts,
///    jobs-per-gear, makespan — incrementally, with no per-job storage;
///  * EnergyProbe           — the power::EnergyMeter fed per gear segment;
///  * WaitQueueTrace        — Fig. 6's per-job wait series plus the wait
///    queue depth over time;
///  * UtilizationTrace      — busy cores / utilization / active power over
///    time (piecewise-constant between events).
///
/// An Instrument is an observer with a name and a CSV rendering, so the
/// sim::InstrumentRegistry can construct them by string key and sinks can
/// stream their output without knowing concrete types; typed accessors
/// remain available via instrument_as<T>().
///
/// The time-series instruments (WaitQueueTrace, UtilizationTrace) accept a
/// util::SamplePlan so streaming million-job runs retain O(cap) points
/// instead of O(jobs). The default plan (cap == 0) takes the exact legacy
/// code path — output is byte-identical to the pre-sampling instruments —
/// and a non-zero cap is exact whenever the series fits under it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "power/energy_meter.hpp"
#include "power/power_model.hpp"
#include "sim/observer.hpp"
#include "util/sampler.hpp"

namespace bsld::sim {

/// A named observer whose captured measurement renders to CSV. The
/// string-keyed counterpart of core::SchedulingPolicy: the unit the
/// InstrumentRegistry constructs and report::RunSpec::instruments selects.
class Instrument : public SimObserver {
 public:
  /// Registry key / display name ("jobs", "wait-trace", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Serializes the captured measurement as CSV (header row + data rows).
  virtual void write_csv(std::ostream& out) const = 0;

  /// Data rows the instrument captured (the CSV body size), for cheap
  /// summaries without rendering. Override when the count is known;
  /// defaults to 0 ("unreported").
  [[nodiscard]] virtual std::size_t rows() const { return 0; }
};

/// Retains the full JobOutcome vector in trace (submit) order — the
/// pre-observer SimulationResult::jobs, now opt-out via retain_jobs=false.
class JobRecorder final : public Instrument {
 public:
  [[nodiscard]] std::string name() const override { return "jobs"; }
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return jobs_.size(); }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_finish(const FinishEvent& event) override;

  [[nodiscard]] const std::vector<JobOutcome>& jobs() const { return jobs_; }
  /// Moves the recorded vector out (for SimulationResult assembly).
  [[nodiscard]] std::vector<JobOutcome> take() { return std::move(jobs_); }

 private:
  std::vector<JobOutcome> jobs_;  ///< Indexed by trace position.
};

/// Incremental aggregates with O(1) per-job work and no per-job storage.
///
/// Bit-identity contract: avg_bsld() reproduces the trace-order naive
/// double summation of the retained-jobs path exactly, even though jobs
/// finish out of trace order — finished BSLDs pass through a small reorder
/// buffer and are added in trace order (the buffer holds one double per
/// job finished while an earlier-submitted job still runs; typically a
/// handful). Wait times are integral seconds and are summed exactly in an
/// int64, which equals the double summation for any realistic horizon.
class AggregateAccumulator final : public Instrument {
 public:
  [[nodiscard]] std::string name() const override { return "aggregates"; }
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return 1; }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_finish(const FinishEvent& event) override;
  void on_pm(const pm::PmEvent& event) override;

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double avg_bsld() const;
  [[nodiscard]] double avg_wait() const;
  [[nodiscard]] std::int64_t reduced_jobs() const { return reduced_; }
  [[nodiscard]] std::int64_t boosted_jobs() const { return boosted_; }
  [[nodiscard]] const std::vector<std::int64_t>& jobs_per_gear() const {
    return jobs_per_gear_;
  }
  [[nodiscard]] Time makespan() const { return makespan_; }

  // Power-management accounting (all zero when no manager ran; the CSV
  // shape is unchanged so pm=none output stays byte-identical).
  /// Events of `kind` observed this run.
  [[nodiscard]] std::int64_t pm_events(pm::PmEventKind kind) const;
  /// Seconds jobs spent power-gated (sum of kRelease durations).
  [[nodiscard]] double gated_seconds() const { return gated_seconds_; }
  /// Core-seconds spent in sleep C-states (sum over kSleepInterval).
  [[nodiscard]] double sleep_core_seconds() const {
    return sleep_core_seconds_;
  }
  /// Seconds of wake latency charged to allocations (sum over kWake).
  [[nodiscard]] double wake_delay_seconds() const {
    return wake_delay_seconds_;
  }

 private:
  std::int64_t count_ = 0;
  double bsld_sum_ = 0.0;
  std::int64_t wait_sum_ = 0;
  std::int64_t reduced_ = 0;
  std::int64_t boosted_ = 0;
  std::vector<std::int64_t> jobs_per_gear_;
  GearIndex top_gear_ = 0;
  Time makespan_ = 0;
  /// Trace-order reorder buffer for the BSLD sum.
  std::uint64_t next_index_ = 0;
  std::map<std::uint64_t, double> pending_bsld_;
  std::map<pm::PmEventKind, std::int64_t> pm_events_;
  double gated_seconds_ = 0.0;
  double sleep_core_seconds_ = 0.0;
  double wake_delay_seconds_ = 0.0;
};

/// Drives a power::EnergyMeter from gear segments (start..boost..finish)
/// and takes the EnergyReport over the run's horizon at on_run_end.
class EnergyProbe final : public Instrument {
 public:
  /// `model` must outlive the probe.
  explicit EnergyProbe(const power::PowerModel& model);

  [[nodiscard]] std::string name() const override { return "energy"; }
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return 1; }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_gear_change(const GearChangeEvent& event) override;
  void on_finish(const FinishEvent& event) override;
  /// Sleep intervals (kSleepInterval) reprice idle time below idle power;
  /// other pm events carry no energy.
  void on_pm(const pm::PmEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  /// Valid after on_run_end.
  [[nodiscard]] const power::EnergyReport& report() const { return report_; }
  /// Busy share of cpus * horizon; valid after on_run_end.
  [[nodiscard]] double utilization() const { return utilization_; }
  [[nodiscard]] const power::EnergyMeter& meter() const { return *meter_; }

 private:
  const power::PowerModel& model_;
  std::optional<power::EnergyMeter> meter_;  ///< Recreated per run.
  power::EnergyReport report_;
  double utilization_ = 0.0;
};

/// Fig. 6's instrument: the per-job wait series in trace order, plus the
/// wait-queue depth over time (one sample per submit/start timestamp;
/// same-time changes coalesce into the final depth at that instant).
///
/// With a non-default SamplePlan both series are capped: waits are sampled
/// over start order and re-sorted to trace order at on_run_end (row labels
/// keep the true trace index), depth samples are committed through an
/// "open sample" that coalesces same-time changes exactly like the dense
/// path before entering the sampler. Below the cap both series are
/// bit-identical to the unsampled instrument.
class WaitQueueTrace final : public Instrument {
 public:
  struct JobWait {
    Time submit = 0;
    Time start = 0;
    Time wait = 0;
    std::int64_t depth_after_submit = 0;  ///< Queue depth incl. this job.
  };
  struct DepthSample {
    Time time = 0;
    std::int64_t depth = 0;
  };

  explicit WaitQueueTrace(util::SamplePlan plan = {});

  [[nodiscard]] std::string name() const override { return "wait-trace"; }
  /// One row per retained job in trace order: job_index, submit_s, start_s,
  /// wait_s, queue_depth_after_submit. The finer-grained depth() series
  /// (sampled at starts too) stays a typed accessor.
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return waits_.size(); }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_submit(const SubmitEvent& event) override;
  void on_start(const StartEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  /// Retained per-job waits in trace order (complete after the run). With
  /// the default plan this is dense — indexed by trace position; under a
  /// cap, job_indices() labels each row.
  [[nodiscard]] const std::vector<JobWait>& waits() const { return waits_; }
  /// Trace index of each waits() row under a sampling cap; empty in exact
  /// mode, where the row position is the trace index.
  [[nodiscard]] const std::vector<std::uint64_t>& job_indices() const {
    return wait_rows_;
  }
  /// Queue depth over time, one sample per distinct event timestamp
  /// (complete after the run).
  [[nodiscard]] const std::vector<DepthSample>& depth() const {
    return depth_;
  }

 private:
  void sample(Time time);

  util::SamplePlan plan_;
  std::vector<JobWait> waits_;
  std::vector<std::uint64_t> wait_rows_;
  std::vector<DepthSample> depth_;
  std::int64_t queued_ = 0;
  // Sampled-path state (untouched when plan_.cap == 0).
  std::map<std::uint64_t, JobWait> pending_;  ///< Submitted, not started.
  util::SeriesSampler<std::pair<std::uint64_t, JobWait>> wait_sampler_;
  util::SeriesSampler<DepthSample> depth_sampler_;
  DepthSample open_{};
  bool has_open_ = false;
};

/// Utilization / active power over time: piecewise-constant between
/// events, one sample per distinct start/boost/finish timestamp. Under a
/// SamplePlan cap the series is thinned through the same open-sample
/// commit scheme as WaitQueueTrace::depth() — same-time coalescing happens
/// before the sampler sees a point, so retention below the cap is exact.
class UtilizationTrace final : public Instrument {
 public:
  struct Sample {
    Time time = 0;
    std::int64_t busy_cores = 0;
    double utilization = 0.0;    ///< busy_cores / machine size.
    double power_watts = 0.0;    ///< Active power of the busy cores.
  };

  /// `model` must outlive the trace.
  explicit UtilizationTrace(const power::PowerModel& model,
                            util::SamplePlan plan = {});

  [[nodiscard]] std::string name() const override { return "utilization"; }
  /// One row per sample: time_s, busy_cores, utilization, power_watts.
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return samples_.size(); }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_start(const StartEvent& event) override;
  void on_gear_change(const GearChangeEvent& event) override;
  void on_finish(const FinishEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  /// Retained samples in time order (complete after the run).
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

 private:
  void sample(Time time);

  const power::PowerModel& model_;
  util::SamplePlan plan_;
  std::vector<Sample> samples_;
  std::int64_t busy_ = 0;
  double power_ = 0.0;
  std::int32_t cpus_ = 0;
  // Sampled-path state (untouched when plan_.cap == 0).
  util::SeriesSampler<Sample> sampler_;
  Sample open_{};
  bool has_open_ = false;
};

/// Records every power-management event of the run verbatim — cap moves,
/// throttles, gated admissions, sleep intervals (pm/event.hpp). Empty
/// under pm=none; the registry key is "pm-trace".
class PmTrace final : public Instrument {
 public:
  [[nodiscard]] std::string name() const override { return "pm-trace"; }
  /// One row per event: time_s, kind, job, cpu_count, gear_from, gear_to,
  /// watts, aux_watts, seconds, sleep_state.
  void write_csv(std::ostream& out) const override;
  [[nodiscard]] std::size_t rows() const override { return events_.size(); }

  void on_run_begin(const RunBeginEvent& event) override;
  void on_pm(const pm::PmEvent& event) override;

  [[nodiscard]] const std::vector<pm::PmEvent>& events() const {
    return events_;
  }

 private:
  std::vector<pm::PmEvent> events_;
};

}  // namespace bsld::sim
