#include "sim/observer.hpp"

namespace bsld::sim {

void SimObserver::on_events(const JobResolver& jobs,
                            const BatchedEvent* events, std::size_t count) {
  // Replay in emission order through the per-event virtuals, rebuilding
  // the reference-carrying view payloads from the value records.
  for (std::size_t i = 0; i < count; ++i) {
    const BatchedEvent& record = events[i];
    switch (record.index()) {
      case 0: {
        const auto& r = std::get<SubmitRecord>(record);
        on_submit(SubmitEvent{jobs.job_at(r.trace_index), r.trace_index,
                              r.time});
        break;
      }
      case 1: {
        const auto& r = std::get<StartRecord>(record);
        on_start(StartEvent{jobs.job_at(r.trace_index), r.trace_index,
                            r.time, r.gear, r.scaled_runtime,
                            r.scaled_requested});
        break;
      }
      case 2:
        on_gear_change(std::get<GearChangeEvent>(record));
        break;
      case 3: {
        const auto& r = std::get<FinishRecord>(record);
        on_finish(
            FinishEvent{r.outcome, r.trace_index, r.final_segment_seconds});
        break;
      }
      case 4:
        on_pm(std::get<pm::PmEvent>(record));
        break;
    }
  }
}

}  // namespace bsld::sim
