/// \file engine.hpp
/// \brief Event-driven simulation engine (the Alvio-equivalent substrate).
///
/// A thin, fully deterministic priority-queue loop: events are processed in
/// the total order defined by event.hpp; scheduling an event in the past is
/// a hard error (it would silently corrupt causality).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "sim/event.hpp"
#include "util/types.hpp"

namespace bsld::sim {

/// Priority-queue event engine with a monotonic clock.
class Engine {
 public:
  /// Current simulation time (0 before the first event).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `event` (its `sequence` is assigned here). Throws
  /// bsld::Error when the event lies in the past.
  void schedule(Event event);

  /// Pops the next event and advances the clock; nullopt when drained.
  std::optional<Event> pop();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Total events processed so far (microbenchmark metric).
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  Time now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bsld::sim
