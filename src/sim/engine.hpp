/// \file engine.hpp
/// \brief Event-driven simulation engine (the Alvio-equivalent substrate).
///
/// A fully deterministic calendar queue (Brown 1988): pending events live
/// in power-of-two time buckets of power-of-two width, so scheduling and
/// popping are O(1) amortized instead of the O(log n) of the previous
/// binary-heap engine. Bucket storage is one flat slab of fixed-capacity
/// segments holding 24-byte packed nodes — scheduling is a single indexed
/// store, and segments are sorted lazily the first time the drain cursor
/// reaches them. The slab and its metadata arrays are pooled and
/// recyclable across runs through Engine::Storage (see sim/arena.hpp), so
/// a warm simulation performs no per-event heap allocation.
///
/// Determinism contract: pop order is exactly the (time, kind, sequence)
/// total order of event.hpp, independent of bucket count, bucket width,
/// or resize history. Scheduling an event in the past is a hard error (it
/// would silently corrupt causality). docs/simulation-internals.md
/// documents the bucket policy in prose.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsld::sim {

/// Calendar-queue event engine with a monotonic clock.
///
/// Not reentrant and not thread-safe: one engine belongs to one
/// simulation on one thread (the confinement rule of observer.hpp).
class Engine {
 private:
  /// Packed pending event: `key` is (time << 2) | kind, so one integer
  /// compare orders by (time, kind); `seq` breaks the remaining ties.
  /// Deliberately without default initializers: slabs are allocated
  /// uninitialized (make_unique_for_overwrite) and only written slots are
  /// ever read.
  struct Node {
    std::uint64_t key;
    std::uint64_t seq;
    JobId job;
  };

  static constexpr std::uint64_t pack(Time time, EventKind kind) {
    return (static_cast<std::uint64_t>(time) << 2) |
           static_cast<std::uint64_t>(kind);
  }
  static constexpr Time time_of(std::uint64_t key) {
    return static_cast<Time>(key >> 2);
  }

 public:
  /// Recycled backing capacity (no live events): move a drained engine's
  /// storage out and hand it to the next engine to skip warm-up
  /// allocations. Default-constructible, movable.
  struct Storage {
    std::unique_ptr<Node[]> slab;     ///< Segment slab.
    std::unique_ptr<Node[]> slab_alt; ///< Rebuild double buffer.
    std::size_t slab_nodes = 0;       ///< Capacity of `slab` in nodes.
    std::size_t slab_alt_nodes = 0;   ///< Capacity of `slab_alt` in nodes.
    std::vector<std::uint8_t> count;  ///< Per-bucket occupancy.
    std::vector<std::uint8_t> head;   ///< Per-bucket consumed prefix.
    std::vector<std::uint8_t> sorted; ///< Per-bucket sorted prefix.
    std::vector<Node> overflow;       ///< Same-time spill vector.
  };

  Engine();
  /// Constructs an engine that adopts `recycle`'s capacity (contents are
  /// cleared; `recycle` is left empty). Pass the same struct to
  /// release_storage() when done to complete the round trip.
  explicit Engine(Storage&& recycle);

  /// Current simulation time (0 before the first event). Units: simulated
  /// seconds, monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `event` (its `sequence` is assigned here, making engine
  /// order total). Throws bsld::Error when the event lies in the past
  /// (event.time < now()). Amortized O(1); may trigger a bucket-table
  /// rebuild when occupancy grows past the table's target load.
  void schedule(Event event) {
    BSLD_REQUIRE(event.time >= now_, "Engine: scheduling an event in the past");
    if (event.time > max_time_) max_time_ = event.time;
    const Node node{pack(event.time, event.kind), next_sequence_++, event.job};
    const std::size_t b = bucket_of(event.time);
    const std::uint8_t c = count_[b];
    if (c < kSlot) {
      slab_[(b << kSlotShift) + c] = node;
      count_[b] = c + 1;
    } else {
      spill(node);
    }
    ++size_;
    if (size_ > (mask_ + 1) * kTargetLoad && mask_ + 1 < kMaxBuckets) grow();
  }

  /// Pops the next event in (time, kind, sequence) order and advances the
  /// clock to its time; nullopt when drained. Amortized O(log load)
  /// comparisons from the lazy per-segment sort.
  std::optional<Event> pop() {
    if (size_ == 0) return std::nullopt;
    for (std::size_t scanned = 0; scanned <= mask_; ++scanned) {
      const std::uint8_t h = head_[cursor_];
      const std::uint8_t c = count_[cursor_];
      if (h < c) {
        Node* seg = &slab_[cursor_ << kSlotShift];
        if (sorted_[cursor_] != c) sort_segment(seg, cursor_);
        if (seg[h].key < year_key_) {
          if (overflow_head_ < overflow_.size()) return take_min_vs_overflow();
          return take_front();
        }
      }
      cursor_ = (cursor_ + 1) & mask_;
      year_key_ += std::uint64_t{1} << (shift_ + 2);
    }
    return pop_slow();
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const { return size_; }
  /// Total events processed so far (microbenchmark metric).
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Current bucket-table size (test/introspection hook; the table grows
  /// and shrinks with occupancy, see docs/simulation-internals.md).
  [[nodiscard]] std::size_t bucket_count() const { return mask_ + 1; }

  /// Moves the engine's backing capacity into `out` for reuse by a later
  /// engine. Only meaningful once drained; pending events are discarded.
  void release_storage(Storage& out);

 private:
  [[nodiscard]] std::size_t bucket_of(Time t) const {
    return (static_cast<std::uint64_t>(t) >> shift_) & mask_;
  }
  /// Sorts the pending tail of `seg` (bucket `b`) in place.
  void sort_segment(Node* seg, std::size_t b);
  /// Pops the front pending node of bucket `cursor_` (must be in-window).
  std::optional<Event> take_front() {
    Node* seg = &slab_[cursor_ << kSlotShift];
    std::uint8_t h = head_[cursor_];
    const Node node = seg[h++];
    if (h == count_[cursor_]) {
      head_[cursor_] = 0;
      count_[cursor_] = 0;
      sorted_[cursor_] = 0;
    } else {
      head_[cursor_] = h;
    }
    --size_;
    const Time time = time_of(node.key);
    BSLD_REQUIRE(time >= now_, "Engine: time went backwards");
    now_ = time;
    ++processed_;
    if (mask_ + 1 > kMinBuckets && size_ * 2 < mask_ + 1) shrink();
    return Event{time, static_cast<EventKind>(node.key & 3), node.seq,
                 node.job};
  }
  /// Handles a full segment: compacts its consumed prefix, grows the
  /// table when finer buckets could separate the keys, and only then
  /// spills to overflow_ (same-time events growth cannot split).
  void spill(const Node& node);
  /// Grows the bucket table by 4x (called from schedule at load limit).
  void grow();
  /// Shrinks the bucket table by 4x (called from take_front when sparse).
  void shrink();
  /// Pop tiebreak while overflow_ is non-empty: returns the earlier of
  /// the year-scan candidate (bucket cursor_) and the overflow front.
  std::optional<Event> take_min_vs_overflow();
  /// Pops the overflow front and resyncs the cursor to the new now().
  std::optional<Event> take_overflow_front();
  /// Year-scan miss: re-tune the bucket width for the pending span, or —
  /// for tiny queues — jump straight to the earliest pending event.
  std::optional<Event> pop_slow();
  /// Re-tables all pending events into `nbuckets` buckets with a width
  /// derived from the pending time span; buckets become unsorted again.
  void rebuild(std::size_t nbuckets);
  void resync_cursor(Time at);

  static constexpr std::size_t kMinBuckets = 16;
  /// Table-size ceiling: 2^14 buckets = a 12.6 MiB slab, the largest that
  /// stays TLB-friendly on the drain scan. Beyond kMaxBuckets * kSlot
  /// pending events, segments saturate and spill to overflow_ (correct
  /// but slower); see docs/simulation-internals.md for the scaling note.
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 14;
  /// Segment capacity (slots per bucket) and its log2.
  static constexpr std::size_t kSlot = 32;
  static constexpr unsigned kSlotShift = 5;
  /// Target events per bucket; bounds the lazy sort's working set. kSlot
  /// is 8x this, so Poisson occupancy tails essentially never spill.
  static constexpr std::size_t kTargetLoad = 4;

  std::unique_ptr<Node[]> slab_;     ///< Pooled segment slab.
  std::unique_ptr<Node[]> slab_alt_; ///< Rebuild double buffer.
  std::size_t slab_nodes_ = 0;       ///< Capacity of slab_ in nodes.
  std::size_t slab_alt_nodes_ = 0;   ///< Capacity of slab_alt_ in nodes.
  std::vector<std::uint8_t> count_;  ///< Per-bucket occupancy.
  std::vector<std::uint8_t> head_;   ///< Per-bucket consumed prefix.
  std::vector<std::uint8_t> sorted_; ///< Per-bucket sorted prefix end.
  std::vector<Node> overflow_;       ///< Same-time spills (rare).
  std::uint32_t overflow_head_ = 0;  ///< Consumed prefix of overflow_.
  bool overflow_sorted_ = false;
  std::size_t mask_ = kMinBuckets - 1; ///< bucket count - 1 (power of two).
  unsigned shift_ = 0;                ///< log2 of bucket width.
  std::size_t size_ = 0;              ///< Pending events.
  std::size_t cursor_ = 0;            ///< Bucket currently being drained.
  std::uint64_t year_key_ = pack(1, static_cast<EventKind>(0));
  ///< Packed exclusive end of cursor_'s time window.
  Time now_ = 0;
  Time max_time_ = 0;                 ///< Largest time ever scheduled.
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace bsld::sim
