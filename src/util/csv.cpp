#include "util/csv.hpp"

#include <ostream>

#include "util/error.hpp"

namespace bsld::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(row);
    row.clear();
    row_has_content = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else {
      switch (c) {
        case '"':
          in_quotes = true;
          row_has_content = true;
          break;
        case ',':
          end_cell();
          row_has_content = true;
          break;
        case '\r':
          break;  // tolerate CRLF
        case '\n':
          end_row();
          break;
        default:
          cell += c;
          row_has_content = true;
          break;
      }
    }
    ++i;
  }
  BSLD_REQUIRE(!in_quotes, "parse_csv(): unterminated quoted cell");
  if (row_has_content || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace bsld::util
