#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace bsld::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  // FNV-1a 64-bit, finalized through one SplitMix64 round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::string_view label) const {
  // Mix the current state with the label hash; do not advance this stream.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ hash_label(label);
  return Rng(splitmix64(s));
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  BSLD_REQUIRE(lo <= hi, "uniform(lo, hi): lo must not exceed hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BSLD_REQUIRE(lo <= hi, "uniform_int(lo, hi): lo must not exceed hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  BSLD_REQUIRE(mean > 0.0, "exponential(): mean must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::weibull(double shape, double scale) {
  BSLD_REQUIRE(shape > 0.0 && scale > 0.0,
               "weibull(): shape and scale must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    BSLD_REQUIRE(w >= 0.0, "discrete(): weights must be non-negative");
    total += w;
  }
  BSLD_REQUIRE(total > 0.0, "discrete(): at least one weight must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

}  // namespace bsld::util
