/// \file log.hpp
/// \brief Leveled diagnostic logging to stderr. Off (kWarn) by default so
/// bench output stays clean; tests and debugging can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace bsld::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits `message` at `level` if enabled. Thread-safe (single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Builds a message with streaming syntax then emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace bsld::util

#define BSLD_LOG_DEBUG() ::bsld::util::detail::LogLine(::bsld::util::LogLevel::kDebug)
#define BSLD_LOG_INFO() ::bsld::util::detail::LogLine(::bsld::util::LogLevel::kInfo)
#define BSLD_LOG_WARN() ::bsld::util::detail::LogLine(::bsld::util::LogLevel::kWarn)
#define BSLD_LOG_ERROR() ::bsld::util::detail::LogLine(::bsld::util::LogLevel::kError)
