/// \file function_ref.hpp
/// \brief Non-owning callable reference (a lightweight std::function).
///
/// std::function type-erases by *owning* a copy of the callable, which
/// heap-allocates whenever the callable outgrows the small-buffer
/// optimization — a real cost on hot paths that construct one per call
/// (the backfill feasibility probe builds millions per sweep). When the
/// callee only invokes the callable during the call — never stores it —
/// a borrowed {object pointer, invoke thunk} pair is enough. That is
/// FunctionRef: two words, trivially copyable, no allocation ever.
///
/// Lifetime contract: a FunctionRef borrows; the referenced callable must
/// outlive every invocation. Binding a temporary lambda in a call
/// expression is fine (the temporary lives to the end of the full
/// expression); storing a FunctionRef beyond the statement that made it
/// is not.
#pragma once

#include <type_traits>
#include <utility>

namespace bsld::util {

template <typename Signature>
class FunctionRef;  // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Borrows `callable`. Participates only for invocable non-FunctionRef
  /// types so it never hijacks the copy constructor.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, const std::remove_cvref_t<F>&, Args...>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(const F& callable)
      : object_(&callable), invoke_([](const void* object, Args... args) -> R {
          return (*static_cast<const std::remove_cvref_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  const void* object_;
  R (*invoke_)(const void*, Args...);
};

}  // namespace bsld::util
