/// \file socket.hpp
/// \brief Unix-domain socket primitives for the bsldsim daemon: a blocking
/// listener with an async-signal-safe wakeup, and buffered line/byte IO
/// over a connected stream.
///
/// The server (server/server.hpp) speaks a line-delimited text protocol
/// with byte-counted payload frames over a local socket — no network
/// exposure, kernel-enforced same-host access, and no extra dependencies.
/// These wrappers keep all the fd plumbing (EINTR retries, SIGPIPE
/// suppression via MSG_NOSIGNAL, bounded line reads against garbage
/// input) out of the protocol code.
///
/// Thread compatibility: these classes hold no locks on purpose — they
/// are externally synchronized, which is why nothing here carries
/// thread_annotations.hpp attributes. Each SocketStream is owned by
/// exactly one connection-handler thread for its whole life, and
/// UnixListener::accept() is only ever called from the accept loop.
/// The single cross-thread entry point is UnixListener::interrupt(),
/// which is async-signal-safe (one shutdown(2) on an fd that is never
/// closed concurrently) and may be called from any thread or from a
/// signal handler.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace bsld::util {

/// Blocking Unix-domain listening socket bound to a filesystem path.
class UnixListener {
 public:
  /// Binds and listens. An existing socket file at `path` is unlinked
  /// first (stale leftover of a crashed daemon — the caller owns the
  /// path). Throws bsld::Error when the path is too long for sockaddr_un
  /// or any syscall fails.
  explicit UnixListener(const std::string& path);

  /// Closes the socket and removes the path.
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks for the next connection; returns the connected fd, or
  /// std::nullopt once interrupt() was called (the accept loop's stop
  /// signal). Retries EINTR; throws bsld::Error on other failures.
  [[nodiscard]] std::optional<int> accept();

  /// Async-signal-safe: wakes a blocked accept() and makes every further
  /// accept() return std::nullopt. Callable from a signal handler.
  void interrupt();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Buffered IO over one connected socket (or pipe-like) fd. Owns the fd.
class SocketStream {
 public:
  /// Takes ownership of a connected fd (e.g. from UnixListener::accept).
  explicit SocketStream(int fd);

  /// Connects to a Unix-domain socket. Throws bsld::Error on failure
  /// (including "no daemon listening at `path`").
  [[nodiscard]] static SocketStream connect_unix(const std::string& path);

  ~SocketStream();
  SocketStream(SocketStream&& other) noexcept;
  SocketStream& operator=(SocketStream&&) = delete;
  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  /// Next '\n'-terminated line, without the terminator (a trailing '\r'
  /// is stripped too). std::nullopt on clean EOF before any byte. Throws
  /// bsld::Error on read errors, EOF mid-line, or a line exceeding
  /// kMaxLineBytes (protocol garbage, not a legitimate request).
  [[nodiscard]] std::optional<std::string> read_line();

  /// Exactly `count` raw payload bytes. Throws bsld::Error on EOF/error.
  [[nodiscard]] std::string read_bytes(std::size_t count);

  /// Writes all of `bytes` (MSG_NOSIGNAL — a vanished peer raises
  /// bsld::Error instead of SIGPIPE). Throws on error, including a send
  /// timeout set via set_send_timeout().
  void write_all(std::string_view bytes);

  /// Bounds every subsequent send() to `seconds`. A peer that stops
  /// reading then fails the write with a timeout error instead of
  /// blocking the writer forever — what lets a draining daemon join its
  /// connection handlers no matter how clients behave.
  void set_send_timeout(int seconds);

  /// Longest line read_line() accepts: 1 MiB.
  static constexpr std::size_t kMaxLineBytes = 1 << 20;

 private:
  /// Refills buffer_ from the fd; false on EOF. Throws on errors.
  bool fill();

  int fd_ = -1;
  std::string buffer_;     ///< bytes received but not yet consumed.
  std::size_t start_ = 0;  ///< consumed prefix of buffer_.
};

}  // namespace bsld::util
