/// \file cli.hpp
/// \brief Tiny command-line flag parser shared by examples and benches.
///
/// Accepts `--key=value`, `--key value` and boolean `--key` forms. Unknown
/// flags raise an error listing the registered flags, so every binary is
/// self-documenting via `--help`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bsld::util {

/// Declarative flag registry + parser.
class Cli {
 public:
  /// `program` and `summary` feed the --help text.
  Cli(std::string program, std::string summary);

  /// Registers a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false when --help was requested (help text is
  /// written to stdout). Throws bsld::Error on unknown flags or missing
  /// values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;

  /// True when the flag was explicitly passed on the command line (as
  /// opposed to falling back to its default). Lets callers layer CLI
  /// overrides on top of a config-file baseline. Throws on unknown flags.
  [[nodiscard]] bool given(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help_text() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  std::string program_;
  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bsld::util
