/// \file stats.hpp
/// \brief Streaming and batch statistics used by metrics and tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bsld::util {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the observed values; 0 when empty.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const;
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample; q in [0, 100].
/// Throws bsld::Error on an empty sample or out-of-range q.
double percentile(std::vector<double> values, double q);

/// Mean of a sample; throws bsld::Error when empty.
double mean_of(const std::vector<double>& values);

/// Time-weighted average of a right-continuous step function given as
/// breakpoints (time, value). The function holds `value[i]` on
/// [time[i], time[i+1]); the last value extends to `horizon_end`.
/// Throws bsld::Error when the series is empty, unsorted, or when
/// horizon_end precedes the first breakpoint.
double time_weighted_average(const std::vector<std::pair<double, double>>& steps,
                             double horizon_end);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used by workload characterization and tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Fraction of observations in `bin`; 0 when the histogram is empty.
  [[nodiscard]] double fraction(std::size_t bin) const;
  /// Compact single-line rendering, e.g. "[12 40 7 1]".
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bsld::util
