/// \file types.hpp
/// \brief Fundamental vocabulary types shared by every bsldsched layer.
///
/// Simulation time is an integral number of seconds, matching the Standard
/// Workload Format (SWF) convention used by the Parallel Workload Archive.
/// Keeping time integral makes event ordering exactly reproducible across
/// platforms; durations derived from the beta time model are rounded to whole
/// seconds at the model boundary (see power/time_model.hpp).
#pragma once

#include <cstdint>
#include <limits>

namespace bsld {

/// Simulation time in whole seconds since the start of the trace.
using Time = std::int64_t;

/// Identifier of a job within a trace (1-based, as in SWF logs).
using JobId = std::int64_t;

/// Index of a processor within the simulated machine (0-based).
using CpuId = std::int32_t;

/// Index into the machine's DVFS gear set (0 = lowest frequency).
using GearIndex = std::int32_t;

/// Sentinel for "no time"/"unknown time" fields.
inline constexpr Time kNoTime = -1;

/// Sentinel for "no job".
inline constexpr JobId kNoJob = -1;

/// Largest representable time; used as +infinity in availability profiles.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

}  // namespace bsld
