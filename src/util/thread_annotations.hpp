/// \file thread_annotations.hpp
/// \brief Clang Thread Safety Analysis vocabulary for the whole tree:
/// annotation macros plus CAPABILITY-annotated mutex wrappers.
///
/// The daemon made the codebase genuinely concurrent (accept loop,
/// per-connection handlers, the persistent SweepRunner::submit() pool,
/// FileLock-guarded cache maintenance). Locking contracts that live only
/// in comments rot; these macros turn them into compiler-checked facts.
/// Under clang, `-Wthread-safety` (CI job `thread-safety`) proves at
/// compile time that every BSLD_GUARDED_BY member is only touched with
/// its mutex held and that every BSLD_REQUIRES function is only entered
/// under the declared lock. Under GCC the macros expand to nothing — the
/// tier-1 build is unaffected.
///
/// Conventions (enforced across src/report, src/server, src/util):
///  * shared mutable members are declared with BSLD_GUARDED_BY(mutex);
///  * functions that must be entered with a lock held take the
///    `_locked` name suffix and a BSLD_REQUIRES(mutex) annotation;
///  * locks are util::Mutex / util::SharedMutex (never raw std::mutex in
///    annotated classes — the std types carry no capability attributes
///    under libstdc++, so the analysis cannot see them), held via
///    ScopedLock / ReaderLock / WriterLock, and waited on via
///    util::CondVar.
///
/// Macro spellings follow the official clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a BSLD_
/// prefix.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && !defined(SWIG)
#define BSLD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BSLD_THREAD_ANNOTATION(x)  // not clang: annotations vanish.
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define BSLD_CAPABILITY(x) BSLD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires in its constructor and releases in
/// its destructor.
#define BSLD_SCOPED_CAPABILITY BSLD_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed while `x` is held.
#define BSLD_GUARDED_BY(x) BSLD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee may only be accessed while `x` is held.
#define BSLD_PT_GUARDED_BY(x) BSLD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called with the listed capabilities held
/// exclusively (callers lock; the function does not).
#define BSLD_REQUIRES(...) \
  BSLD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-access variant of BSLD_REQUIRES.
#define BSLD_REQUIRES_SHARED(...) \
  BSLD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and holds them on return.
#define BSLD_ACQUIRE(...) \
  BSLD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared-access variant of BSLD_ACQUIRE.
#define BSLD_ACQUIRE_SHARED(...) \
  BSLD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (which must be held).
#define BSLD_RELEASE(...) \
  BSLD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Shared-access variant of BSLD_RELEASE.
#define BSLD_RELEASE_SHARED(...) \
  BSLD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (it acquires them itself — documents non-reentrancy, catches
/// self-deadlock at compile time).
#define BSLD_EXCLUDES(...) BSLD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define BSLD_ASSERT_CAPABILITY(x) \
  BSLD_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define BSLD_RETURN_CAPABILITY(x) BSLD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow. Every use must carry
/// a comment explaining why (checked by scripts/lint_bsld.py).
#define BSLD_NO_THREAD_SAFETY_ANALYSIS \
  BSLD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bsld::util {

class CondVar;

/// std::mutex with the capability attribute the analysis needs. Drop-in
/// for the annotated classes in this tree; lock with ScopedLock.
class BSLD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BSLD_ACQUIRE() { mutex_.lock(); }
  void unlock() BSLD_RELEASE() { mutex_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// std::shared_mutex with capability attributes: exclusive for writers
/// (registration), shared for readers (lookup). Lock with WriterLock /
/// ReaderLock.
class BSLD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BSLD_ACQUIRE() { mutex_.lock(); }
  void unlock() BSLD_RELEASE() { mutex_.unlock(); }
  void lock_shared() BSLD_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() BSLD_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over util::Mutex — the annotated equivalent of
/// std::lock_guard.
class BSLD_SCOPED_CAPABILITY [[nodiscard]] ScopedLock {
 public:
  explicit ScopedLock(Mutex& mutex) BSLD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~ScopedLock() BSLD_RELEASE() { mutex_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII exclusive (writer) lock over util::SharedMutex.
class BSLD_SCOPED_CAPABILITY [[nodiscard]] WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) BSLD_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() BSLD_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock over util::SharedMutex.
class BSLD_SCOPED_CAPABILITY [[nodiscard]] ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) BSLD_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() BSLD_RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable paired with util::Mutex. No predicate overload on
/// purpose: the analysis cannot see into a predicate lambda, so callers
/// spell the standard loop —
///
///   ScopedLock lock(mutex_);
///   while (!condition) cv_.wait(mutex_);
///
/// — and every read in `condition` is checked against the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, reacquires.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mutex) BSLD_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's ScopedLock keeps ownership.
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bsld::util
