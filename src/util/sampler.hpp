/// \file sampler.hpp
/// \brief Bounded-memory retention of unbounded series: util::SeriesSampler.
///
/// Streaming million-job runs emit time series (queue depth, utilization)
/// whose exact form is O(jobs). A SeriesSampler caps that at a configured
/// number of retained points while staying *exact below the cap*: a series
/// that never exceeds `cap` elements is retained in full, bit-identical to
/// the unsampled path, so every existing golden holds whenever the cap is
/// generous enough. Above the cap one of two thinning strategies applies:
///
///  * kDecimate  — deterministic stride doubling: when the buffer would
///    exceed the cap, every other retained point is dropped and the keep
///    stride doubles, so retention converges to an even 1-in-2^k systematic
///    sample of the whole series. No randomness; same input, same output.
///  * kReservoir — Vitter's algorithm R over the series, seeded from the
///    plan, yielding a uniform random sample of exactly `cap` points.
///
/// Retained points keep their position (`seq`) in the original series, so
/// consumers can re-sort and label output rows exactly as the unsampled
/// instrument would.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bsld::util {

/// Declarative sampling policy for time-series instruments; serialized as
/// the `sample.*` RunSpec keys.
struct SamplePlan {
  enum class Mode { kDecimate, kReservoir };

  Mode mode = Mode::kDecimate;
  /// Maximum retained points; 0 (the default) disables sampling — the
  /// series is retained in full, exactly as before sampling existed.
  std::uint64_t cap = 0;
  /// Reservoir seed (ignored by kDecimate, which is deterministic).
  std::uint64_t seed = 0;

  friend bool operator==(const SamplePlan&, const SamplePlan&) = default;
};

/// Accumulates one series under a SamplePlan. Memory is O(min(n, cap + 1));
/// with cap == 0 it degenerates to a plain append-only vector.
template <typename T>
class SeriesSampler {
 public:
  /// One retained point: its 0-based position in the full series plus the
  /// value itself.
  struct Item {
    std::uint64_t seq = 0;
    T value{};
  };

  SeriesSampler() : SeriesSampler(SamplePlan{}) {}
  explicit SeriesSampler(const SamplePlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  /// Offers the next element of the series.
  void push(const T& value) {
    const std::uint64_t seq = seen_++;
    if (plan_.cap == 0) {
      items_.push_back(Item{seq, value});
      return;
    }
    if (plan_.mode == SamplePlan::Mode::kDecimate) {
      if (seq % stride_ != 0) return;
      items_.push_back(Item{seq, value});
      if (items_.size() > plan_.cap) {
        stride_ *= 2;
        std::erase_if(items_, [this](const Item& item) {
          return item.seq % stride_ != 0;
        });
      }
      return;
    }
    // Algorithm R: element `seq` replaces a uniformly chosen slot with
    // probability cap / (seq + 1).
    if (items_.size() < plan_.cap) {
      items_.push_back(Item{seq, value});
      return;
    }
    const auto j = static_cast<std::uint64_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(seq)));
    if (j < plan_.cap) items_[static_cast<std::size_t>(j)] = Item{seq, value};
  }

  /// Discards everything and restarts the series (the instrument-reuse
  /// contract of on_run_begin).
  void reset() {
    items_.clear();
    seen_ = 0;
    stride_ = 1;
    rng_ = Rng(plan_.seed);
  }

  /// Elements offered so far (the full series length).
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  /// Elements currently retained.
  [[nodiscard]] std::size_t retained() const { return items_.size(); }
  [[nodiscard]] const SamplePlan& plan() const { return plan_; }

  /// Retained points in series order (reservoir retention is unordered
  /// internally; this sorts by seq once). Exact below the cap: when
  /// seen() <= cap every point of the series is present.
  [[nodiscard]] const std::vector<Item>& sorted() {
    if (plan_.cap != 0 && plan_.mode == SamplePlan::Mode::kReservoir) {
      std::sort(items_.begin(), items_.end(),
                [](const Item& a, const Item& b) { return a.seq < b.seq; });
    }
    return items_;
  }

 private:
  SamplePlan plan_;
  Rng rng_;
  std::vector<Item> items_;
  std::uint64_t seen_ = 0;
  std::uint64_t stride_ = 1;  ///< kDecimate keep stride (power of two).
};

}  // namespace bsld::util
