/// \file config.hpp
/// \brief Key/value configuration store mirroring Alvio-style platform
/// configuration files ("All the parameters are platform dependent and
/// adjustable in configuration files", paper §4).
///
/// File format: one `key = value` per line; `#` starts a comment; blank
/// lines ignored. Keys are dot-separated identifiers (e.g. `power.beta`).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bsld::util {

/// Typed access over a string key/value map with defaults and validation.
class Config {
 public:
  Config() = default;

  /// Parses configuration text. Throws bsld::Error on malformed lines or
  /// duplicate keys.
  static Config parse(const std::string& text);

  /// Reads and parses a configuration file. Throws bsld::Error when the
  /// file cannot be opened.
  static Config load_file(const std::string& path);

  /// Sets or replaces a value.
  void set(const std::string& key, std::string value);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Typed getters returning `fallback` when the key is absent and throwing
  /// bsld::Error when present but unparseable.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Parses a comma-separated list of doubles, e.g. "0.8, 1.1, 1.4".
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key, const std::vector<double>& fallback) const;

  /// Parses a comma-separated list of strings, e.g. "wait-trace, energy";
  /// items are trimmed, empties dropped, order preserved.
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key, const std::vector<std::string>& fallback) const;

  /// All keys in sorted order (for diagnostics and round-trip tests).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serializes to the same `key = value` format parse() accepts.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

/// Shortest decimal form of `value` that parses back to the identical
/// double (std::to_chars): the canonical value format for serialized
/// configs, where byte-identical round-trips matter.
std::string config_double(double value);

/// Comma-separated config_double list ("0.8, 1.1, 1.4").
std::string config_double_list(const std::vector<double>& values);

/// Comma-separated string list ("wait-trace, energy") — the serialized form
/// get_string_list parses back, item for item.
std::string config_string_list(const std::vector<std::string>& values);

}  // namespace bsld::util
