#include "util/parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <system_error>

#include "util/error.hpp"

namespace bsld::util {

namespace {

std::string_view strip(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

/// std::from_chars rejects an explicit '+' sign; users type it. Strip it
/// only when a sign-less token follows, so "+-5" and "++5" stay rejected.
std::string_view strip_plus(std::string_view text) {
  if (text.size() > 1 && text.front() == '+' && text[1] != '+' &&
      text[1] != '-') {
    text.remove_prefix(1);
  }
  return text;
}

template <typename Int>
std::optional<Int> parse_integral(std::string_view text) {
  text = strip_plus(strip(text));
  if (text.empty()) return std::nullopt;
  Int value{};
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

[[noreturn]] void reject(std::string_view text, const std::string& what,
                         const char* expected) {
  throw Error(what + " expects " + expected + ", got `" + std::string(text) +
              "`");
}

}  // namespace

std::optional<double> parse_double(std::string_view text) {
  text = strip_plus(strip(text));
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] =
      std::from_chars(text.data(), last, value, std::chars_format::general);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // nan/inf spellings.
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  return parse_integral<std::int64_t>(text);
}

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  return parse_integral<std::uint64_t>(text);
}

double require_double(std::string_view text, const std::string& what) {
  const std::optional<double> value = parse_double(text);
  if (!value) reject(text, what, "a finite number");
  return *value;
}

std::int64_t require_int(std::string_view text, const std::string& what) {
  const std::optional<std::int64_t> value = parse_int(text);
  if (!value) reject(text, what, "an integer");
  return *value;
}

std::uint64_t require_uint(std::string_view text, const std::string& what) {
  const std::optional<std::uint64_t> value = parse_uint(text);
  if (!value) reject(text, what, "an unsigned integer");
  return *value;
}

}  // namespace bsld::util
