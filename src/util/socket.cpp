#include "util/socket.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "util/error.hpp"

namespace bsld::util {

namespace {

/// Fills a sockaddr_un; throws when `path` does not fit (sun_path is
/// ~108 bytes — callers should keep socket paths short).
sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  BSLD_REQUIRE(path.size() < sizeof(address.sun_path),
               "socket path too long for AF_UNIX (" + path + ")");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

namespace {

/// True when a daemon is currently accepting on the socket at `path` —
/// the guard that keeps a second `bsldsim serve` from silently stealing
/// a live daemon's socket file.
bool unix_socket_alive(const sockaddr_un& address) {
  const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe < 0) return false;
  const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&address),
                           sizeof(address));
  ::close(probe);
  return rc == 0;
}

}  // namespace

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un address = unix_address(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  BSLD_REQUIRE(fd_ >= 0, std::string("UnixListener: socket(): ") +
                             std::strerror(errno));
  // A leftover socket file from a *crashed* daemon blocks bind(), so
  // reclaim it — but only a dead socket: a connectable one belongs to a
  // running daemon, and anything that is not a socket is not ours to
  // delete at all.
  struct stat st{};
  if (::lstat(path_.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      ::close(fd_);
      fd_ = -1;
      BSLD_REQUIRE(false, "UnixListener: `" + path_ +
                              "` exists and is not a socket — refusing to "
                              "replace it");
    }
    if (unix_socket_alive(address)) {
      ::close(fd_);
      fd_ = -1;
      BSLD_REQUIRE(false, "UnixListener: a daemon is already serving on `" +
                              path_ + "`");
    }
    ::unlink(path_.c_str());
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    BSLD_REQUIRE(false, "UnixListener: bind(" + path_ + "): " +
                            std::strerror(saved));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    BSLD_REQUIRE(false, "UnixListener: listen(" + path_ + "): " +
                            std::strerror(saved));
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::optional<int> UnixListener::accept() {
  while (true) {
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) return client;
    if (errno == EINTR) continue;
    // interrupt() shut the listening socket down; accept() then fails
    // with EINVAL (Linux) or ECONNABORTED — the clean-stop signal.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EBADF) {
      return std::nullopt;
    }
    // Transient resource exhaustion (too many clients hold fds) must not
    // kill an always-on daemon: back off and retry — connections drain
    // and free descriptors. interrupt() still breaks the loop above.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      timespec delay{0, 100 * 1000 * 1000};  // 100ms
      ::nanosleep(&delay, nullptr);
      continue;
    }
    BSLD_REQUIRE(false, std::string("UnixListener: accept(): ") +
                            std::strerror(errno));
  }
}

void UnixListener::interrupt() {
  // shutdown() is async-signal-safe and wakes the blocked accept();
  // the fd itself stays open until the destructor (closing here would
  // race a concurrent accept() reusing the fd number).
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

SocketStream::SocketStream(int fd) : fd_(fd) {
  BSLD_REQUIRE(fd_ >= 0, "SocketStream: invalid fd");
}

SocketStream SocketStream::connect_unix(const std::string& path) {
  const sockaddr_un address = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  BSLD_REQUIRE(fd >= 0, std::string("SocketStream: socket(): ") +
                            std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    BSLD_REQUIRE(false, "SocketStream: cannot connect to `" + path + "`: " +
                            std::strerror(saved) +
                            " (is the daemon running?)");
  }
  return SocketStream(fd);
}

SocketStream::~SocketStream() {
  if (fd_ >= 0) ::close(fd_);
}

SocketStream::SocketStream(SocketStream&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      start_(other.start_) {
  other.fd_ = -1;
}

bool SocketStream::fill() {
  if (start_ > 0) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      return true;
    }
    if (got == 0) return false;  // EOF
    if (errno == EINTR) continue;
    BSLD_REQUIRE(false, std::string("SocketStream: recv(): ") +
                            std::strerror(errno));
  }
}

std::optional<std::string> SocketStream::read_line() {
  while (true) {
    const std::size_t nl = buffer_.find('\n', start_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(start_, nl - start_);
      start_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    BSLD_REQUIRE(buffer_.size() - start_ <= kMaxLineBytes,
                 "SocketStream: protocol line exceeds " +
                     std::to_string(kMaxLineBytes) + " bytes");
    if (!fill()) {
      if (buffer_.size() == start_) return std::nullopt;  // clean EOF.
      BSLD_REQUIRE(false, "SocketStream: connection closed mid-line");
    }
  }
}

std::string SocketStream::read_bytes(std::size_t count) {
  while (buffer_.size() - start_ < count) {
    BSLD_REQUIRE(fill(), "SocketStream: connection closed mid-payload");
  }
  std::string bytes = buffer_.substr(start_, count);
  start_ += count;
  return bytes;
}

void SocketStream::set_send_timeout(int seconds) {
  timeval timeout{};
  timeout.tv_sec = seconds;
  const int rc = ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                              sizeof(timeout));
  BSLD_REQUIRE(rc == 0, std::string("SocketStream: SO_SNDTIMEO: ") +
                            std::strerror(errno));
}

void SocketStream::write_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote >= 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      BSLD_REQUIRE(false, "SocketStream: send() timed out (peer not "
                          "reading)");
    }
    BSLD_REQUIRE(false, std::string("SocketStream: send(): ") +
                            std::strerror(errno));
  }
}

}  // namespace bsld::util
