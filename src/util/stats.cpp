#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace bsld::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double percentile(std::vector<double> values, double q) {
  BSLD_REQUIRE(!values.empty(), "percentile(): empty sample");
  BSLD_REQUIRE(q >= 0.0 && q <= 100.0, "percentile(): q outside [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double mean_of(const std::vector<double>& values) {
  BSLD_REQUIRE(!values.empty(), "mean_of(): empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double time_weighted_average(
    const std::vector<std::pair<double, double>>& steps, double horizon_end) {
  BSLD_REQUIRE(!steps.empty(), "time_weighted_average(): empty series");
  BSLD_REQUIRE(horizon_end >= steps.front().first,
               "time_weighted_average(): horizon precedes first breakpoint");
  double weighted = 0.0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const double start = steps[i].first;
    const double end = (i + 1 < steps.size()) ? steps[i + 1].first : horizon_end;
    BSLD_REQUIRE(end >= start, "time_weighted_average(): unsorted series");
    weighted += steps[i].second * (std::min(end, horizon_end) - start);
  }
  const double span = horizon_end - steps.front().first;
  return span > 0.0 ? weighted / span : steps.back().second;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BSLD_REQUIRE(bins > 0, "Histogram: need at least one bin");
  BSLD_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  BSLD_REQUIRE(bin < counts_.size(), "Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) os << ' ';
    os << counts_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace bsld::util
