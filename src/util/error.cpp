#include "util/error.hpp"

#include <sstream>

namespace bsld::detail {

void throw_error(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " [requirement `" << expr << "` failed at " << file << ":"
     << line << "]";
  throw Error(os.str());
}

}  // namespace bsld::detail
