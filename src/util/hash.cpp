#include "util/hash.hpp"

namespace bsld::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace bsld::util
