/// \file csv.hpp
/// \brief Minimal CSV writing/reading (RFC-4180 quoting) for experiment
/// artifacts such as the Fig. 6 wait-time series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsld::util {

/// Streams rows of cells as CSV with quoting of commas/quotes/newlines.
class CsvWriter {
 public:
  /// Writes into `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; cells are quoted only when needed.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
};

/// Parses CSV text into rows of cells. Handles quoted cells with embedded
/// commas, escaped quotes ("") and newlines. Throws bsld::Error on an
/// unterminated quoted cell.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Quotes a single cell if it contains characters requiring quoting.
std::string csv_escape(const std::string& cell);

}  // namespace bsld::util
