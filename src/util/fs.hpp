/// \file fs.hpp
/// \brief Filesystem primitives for crash-safe persistence: whole-file
/// read/write, atomic replace (tmp + rename), and an advisory inter-process
/// file lock.
///
/// The report::ResultCache stores every completed run on disk and is read
/// and written by concurrent sweep workers — possibly in several processes
/// (sharded sweeps). These helpers give it the two properties that makes
/// that safe: readers never observe a half-written entry (atomic_write_file
/// publishes via rename, which POSIX guarantees atomic within a
/// filesystem), and writers of the same entry serialize through FileLock
/// (flock-based, released on process death by the kernel).
#pragma once

#include <filesystem>
#include <optional>
#include <string>

namespace bsld::util {

/// Reads the whole file as bytes; std::nullopt when it does not exist or
/// cannot be opened (never throws — callers treat both as "absent").
[[nodiscard]] std::optional<std::string> read_file_bytes(
    const std::filesystem::path& path);

/// Atomically replaces `path` with `bytes`: writes to a sibling temporary
/// file (unique per process) and renames it over `path`, creating parent
/// directories as needed. Concurrent readers see either the old complete
/// content or the new complete content, never a prefix. Throws bsld::Error
/// when the write or rename fails (the temporary is cleaned up).
void atomic_write_file(const std::filesystem::path& path,
                       const std::string& bytes);

/// Advisory exclusive lock on a dedicated lock file, held for the object's
/// lifetime. Blocks until acquired; recursive use within one process is
/// undefined (one FileLock per critical section). The lock file itself is
/// created on demand and intentionally never deleted (deleting it would
/// race a concurrent locker). Throws bsld::Error when the lock file cannot
/// be created.
class [[nodiscard]] FileLock {
 public:
  explicit FileLock(const std::filesystem::path& path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace bsld::util
