/// \file error.hpp
/// \brief Error reporting helpers: a project exception type and checked
/// preconditions that remain active in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace bsld {

/// Exception thrown for invalid configuration, malformed input files, and
/// violated API preconditions. Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

/// Precondition/invariant check that stays enabled in release builds.
/// Violations throw bsld::Error with the failing expression and location.
#define BSLD_REQUIRE(expr, message)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::bsld::detail::throw_error(#expr, __FILE__, __LINE__, (message));  \
    }                                                                     \
  } while (false)

}  // namespace bsld
