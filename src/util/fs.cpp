#include "util/fs.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/error.hpp"

namespace bsld::util {

std::optional<std::string> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

void atomic_write_file(const std::filesystem::path& path,
                       const std::string& bytes) {
  const std::filesystem::path dir = path.parent_path();
  std::error_code ec;
  if (!dir.empty()) std::filesystem::create_directories(dir, ec);
  BSLD_REQUIRE(!ec, "atomic_write_file: cannot create " + dir.string() +
                        ": " + ec.message());

  // Unique per process so concurrent writers never share a temporary; the
  // final rename decides who wins, atomically.
  std::filesystem::path tmp = path;
  tmp += ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (out) out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      BSLD_REQUIRE(false, "atomic_write_file: cannot write " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    BSLD_REQUIRE(false, "atomic_write_file: cannot rename " + tmp.string() +
                            " -> " + path.string() + ": " + ec.message());
  }
}

FileLock::FileLock(const std::filesystem::path& path) {
  const std::filesystem::path dir = path.parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  BSLD_REQUIRE(fd_ >= 0, "FileLock: cannot open " + path.string() + ": " +
                             std::strerror(errno));
  // Retry on signal interruption; the kernel releases the lock if the
  // holder dies, so blocking here cannot deadlock on crashed peers.
  int rc;
  do {
    rc = ::flock(fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    BSLD_REQUIRE(false, "FileLock: flock(" + path.string() + ") failed: " +
                            std::strerror(saved));
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace bsld::util
