#include "util/cli.hpp"

// bsld-lint: allow(iostream): CLI surface — usage/--help text belongs on the user's stdout, not the log stream
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::util {

Cli::Cli(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  BSLD_REQUIRE(!flags_.contains(name), "Cli: duplicate flag --" + name);
  flags_.emplace(name, Flag{default_value, help, std::nullopt});
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.erase(eq);
    }
    auto it = flags_.find(name);
    BSLD_REQUIRE(it != flags_.end(),
                 "Cli: unknown flag --" + name + "\n" + help_text());
    if (!value) {
      // `--key value` when the next token is not a flag; bare `--key`
      // otherwise (boolean form).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  BSLD_REQUIRE(it != flags_.end(), "Cli: flag --" + name + " not registered");
  return it->second.value.value_or(it->second.default_value);
}

bool Cli::given(const std::string& name) const {
  const auto it = flags_.find(name);
  BSLD_REQUIRE(it != flags_.end(), "Cli: flag --" + name + " not registered");
  return it->second.value.has_value();
}

double Cli::get_double(const std::string& name) const {
  // Checked full-token parse: trailing garbage ("1.5x"), nan/inf and
  // out-of-range values all fail with the flag named, instead of being
  // silently truncated or aborting the process.
  return require_double(get(name), "Cli: flag --" + name);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return require_int(get(name), "Cli: flag --" + name);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string value = get(name);
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw Error("Cli: --" + name + " expects a boolean, got `" + value + "`");
}

std::string Cli::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << '\n';
  }
  return os.str();
}

}  // namespace bsld::util
