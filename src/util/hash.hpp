/// \file hash.hpp
/// \brief Stable, platform-independent content hashing.
///
/// std::hash is free to differ between standard libraries and even between
/// runs, so anything persisted to disk or used to partition work across
/// machines (report::ResultCache entry names, sweep sharding) hashes with
/// FNV-1a 64 instead: the same bytes map to the same value everywhere,
/// forever.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bsld::util {

/// FNV-1a 64-bit hash of `bytes`. Stable across platforms and releases —
/// safe to persist and to shard on.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// `value` as 16 lowercase hex digits (zero-padded) — the canonical
/// rendering of a content hash in file names.
[[nodiscard]] std::string hex64(std::uint64_t value);

}  // namespace bsld::util
