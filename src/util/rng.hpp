/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// Every stochastic component of the library (workload synthesis, property
/// tests) draws from an Rng seeded explicitly by the caller. Rng wraps
/// xoshiro256** seeded through SplitMix64, which gives high-quality streams,
/// a tiny state, and — unlike std::mt19937_64 + std::*_distribution — fully
/// reproducible values across standard library implementations because all
/// variate transforms are implemented here.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bsld::util {

/// SplitMix64 step; used for seeding and for hashing stream labels.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a label, for deriving named sub-streams.
std::uint64_t hash_label(std::string_view label);

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator, so it can also feed standard
/// distributions when exact cross-platform reproducibility is not needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from a single 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Derives an independent child stream identified by `label`. Children of
  /// the same parent with distinct labels are statistically independent;
  /// the derivation is deterministic and does not advance this stream.
  [[nodiscard]] Rng split(std::string_view label) const;

  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);
  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);
  /// Standard normal variate (Box-Muller, cached pair).
  double normal();
  /// Normal variate with mean/stddev.
  double normal(double mean, double stddev);
  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Two-parameter Weibull variate (shape k > 0, scale lambda > 0).
  double weibull(double shape, double scale);
  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t discrete(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bsld::util
