/// \file table.hpp
/// \brief ASCII table rendering for benchmark output.
///
/// Every bench binary reproduces one of the paper's tables or figures; the
/// Table class renders those as aligned monospace tables so the harness
/// output is directly comparable with the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsld::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Incremental builder for an aligned ASCII table.
class Table {
 public:
  /// Creates a table with the given column headers (left-aligned by default).
  explicit Table(std::vector<std::string> headers);

  /// Sets the alignment of one column. Throws on out-of-range index.
  void set_align(std::size_t column, Align align);

  /// Appends a row; throws bsld::Error when the cell count mismatches.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   name   | value
  ///   -------+------
  ///   CTC    |  4.66
  [[nodiscard]] std::string to_string() const;

  /// Streams `to_string()`.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 2 decimal places).
std::string fmt_double(double value, int precision = 2);

/// Formats a fraction (0.173 -> "17.3%").
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace bsld::util
