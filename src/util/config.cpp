#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::util {

namespace {

std::string trim(const std::string& s) {
  auto begin = s.begin();
  auto end = s.end();
  while (begin != end && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  while (end != begin && std::isspace(static_cast<unsigned char>(*(end - 1)))) {
    --end;
  }
  return std::string(begin, end);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    BSLD_REQUIRE(eq != std::string::npos,
                 "Config: line " + std::to_string(line_no) +
                     " is not `key = value`: " + trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    BSLD_REQUIRE(!key.empty(),
                 "Config: empty key on line " + std::to_string(line_no));
    BSLD_REQUIRE(!config.values_.contains(key),
                 "Config: duplicate key `" + key + "` on line " +
                     std::to_string(line_no));
    config.values_.emplace(key, value);
  }
  return config;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  BSLD_REQUIRE(in.good(), "Config: cannot open file `" + path + "`");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return raw(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  return require_double(*value, "Config: key `" + key + "`");
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  return require_int(*value, "Config: key `" + key + "`");
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const std::string v = lower(trim(*value));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("Config: key `" + key + "` is not a boolean: " + *value);
}

std::vector<double> Config::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::vector<double> out;
  std::istringstream in(*value);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string trimmed = trim(item);
    if (trimmed.empty()) continue;
    const std::optional<double> parsed = parse_double(trimmed);
    if (!parsed) {
      throw Error("Config: key `" + key + "` has a non-numeric item: " + item);
    }
    out.push_back(*parsed);
  }
  return out;
}

std::vector<std::string> Config::get_string_list(
    const std::string& key, const std::vector<std::string>& fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  std::vector<std::string> out;
  std::istringstream in(*value);
  std::string item;
  while (std::getline(in, item, ',')) {
    const std::string trimmed = trim(item);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, _] : values_) out.push_back(key);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : values_) {
    os << key << " = " << value << '\n';
  }
  return os.str();
}

std::string config_double(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  BSLD_REQUIRE(ec == std::errc{}, "config_double(): value not representable");
  return std::string(buffer, end);
}

std::string config_double_list(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += config_double(values[i]);
  }
  return out;
}

std::string config_string_list(const std::vector<std::string>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += values[i];
  }
  return out;
}

}  // namespace bsld::util
