#include "util/log.hpp"

#include <atomic>
// bsld-lint: allow(iostream): util::log is the sanctioned sink — the one place owning std::cerr for everyone else
#include <iostream>

#include "util/thread_annotations.hpp"

namespace bsld::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole log lines onto std::cerr (the guarded resource is the
// process-global stream, so there is no member to BSLD_GUARDED_BY; the
// capability-annotated Mutex still gets ScopedLock/EXCLUDES checking).
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const ScopedLock lock(g_mutex);
  std::cerr << "[bsld " << level_name(level) << "] " << message << '\n';
}

}  // namespace bsld::util
