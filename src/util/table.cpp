#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace bsld::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  BSLD_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::set_align(std::size_t column, Align align) {
  BSLD_REQUIRE(column < aligns_.size(), "Table: column out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  BSLD_REQUIRE(cells.size() == headers_.size(),
               "Table: row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                       std::size_t c) {
    const auto pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << " | ";
    emit_cell(os, headers_[c], c);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << " | ";
      emit_cell(os, row[c], c);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace bsld::util
