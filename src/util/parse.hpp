/// \file parse.hpp
/// \brief Checked numeric parsing for every user-facing input path.
///
/// CLI flags, config/spec files, SWF fields and server protocol requests
/// all funnel free-form text into numbers. std::stod-style parsing is the
/// wrong tool there: it accepts trailing garbage ("1.5abc" parses as 1.5),
/// locale-dependent spellings, and non-finite values ("nan" poisons
/// RunSpec::key), and it throws std::invalid_argument/std::out_of_range —
/// types nothing upstream catches deliberately. These helpers parse the
/// whole token or fail: the optional-returning forms never throw, and the
/// require_* wrappers throw bsld::Error with a diagnostic that names the
/// offending flag/key, so a typo surfaces as a nonzero exit (or an `err`
/// protocol reply), never a crash or a silently truncated value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bsld::util {

/// Parses the whole of `text` (surrounding ASCII whitespace ignored, one
/// optional leading '+' or '-') as a finite double. Rejects empty input,
/// trailing garbage, hex floats, and non-finite spellings (nan/inf).
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Parses the whole of `text` as a signed 64-bit integer (whitespace and
/// a leading '+' tolerated). Rejects trailing garbage and out-of-range
/// values.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text);

/// Unsigned variant spanning the full uint64 range (workload seeds).
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view text);

/// Throwing wrappers: `what` names the input's origin — "flag --bsld",
/// "key `scale`", "request line 3" — and appears verbatim in the
/// bsld::Error message together with the rejected text.
[[nodiscard]] double require_double(std::string_view text,
                                    const std::string& what);
[[nodiscard]] std::int64_t require_int(std::string_view text,
                                       const std::string& what);
[[nodiscard]] std::uint64_t require_uint(std::string_view text,
                                         const std::string& what);

}  // namespace bsld::util
