/// \file profile.hpp
/// \brief Availability profile: free-CPU capacity as a piecewise-constant
/// function of time.
///
/// EASY backfilling only ever holds one reservation, so the Machine's
/// "k-th smallest availability time" query suffices. Policies that reserve
/// for *every* queued job — conservative backfilling (core/conservative.hpp)
/// — need the full profile: capacity is no longer monotone in time once
/// future reservations carve holes into it.
#pragma once

#include <map>
#include <vector>

#include "util/types.hpp"

namespace bsld::cluster {

/// Piecewise-constant free-capacity timeline over [origin, +inf).
class AvailabilityProfile {
 public:
  /// A profile with `capacity` CPUs free from `origin` onwards.
  AvailabilityProfile(std::int32_t capacity, Time origin);

  /// Removes `size` CPUs from [start, end). Throws bsld::Error when the
  /// interval is invalid, lies before the origin, or would drive capacity
  /// negative anywhere.
  void reserve(Time start, Time end, std::int32_t size);

  /// Free capacity at time t (>= origin).
  [[nodiscard]] std::int32_t free_at(Time t) const;

  /// Earliest start s >= after such that free capacity stays >= size
  /// throughout [s, s + duration). Always exists because the profile
  /// returns to full capacity after the last reservation. Throws
  /// bsld::Error when size exceeds the total capacity.
  [[nodiscard]] Time earliest_slot(std::int32_t size, Time duration,
                                   Time after) const;

  [[nodiscard]] std::int32_t capacity() const { return capacity_; }
  [[nodiscard]] Time origin() const { return origin_; }

  /// Breakpoints (time, free capacity from that time on), for tests.
  [[nodiscard]] std::vector<std::pair<Time, std::int32_t>> steps() const;

 private:
  std::int32_t capacity_;
  Time origin_;
  /// Capacity deltas at each breakpoint; prefix sums give free capacity.
  std::map<Time, std::int32_t> deltas_;
};

}  // namespace bsld::cluster
