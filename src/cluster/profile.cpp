#include "cluster/profile.hpp"

#include "util/error.hpp"

namespace bsld::cluster {

AvailabilityProfile::AvailabilityProfile(std::int32_t capacity, Time origin)
    : capacity_(capacity), origin_(origin) {
  BSLD_REQUIRE(capacity > 0, "AvailabilityProfile: capacity must be positive");
}

void AvailabilityProfile::reserve(Time start, Time end, std::int32_t size) {
  BSLD_REQUIRE(size > 0, "AvailabilityProfile: size must be positive");
  BSLD_REQUIRE(start >= origin_, "AvailabilityProfile: start before origin");
  BSLD_REQUIRE(end > start, "AvailabilityProfile: empty or inverted interval");
  // Verify capacity across [start, end) before mutating.
  BSLD_REQUIRE(free_at(start) >= size,
               "AvailabilityProfile: overcommitted at interval start");
  for (auto it = deltas_.upper_bound(start); it != deltas_.end() && it->first < end;
       ++it) {
    BSLD_REQUIRE(free_at(it->first) >= size,
                 "AvailabilityProfile: overcommitted inside interval");
  }
  deltas_[start] -= size;
  deltas_[end] += size;
}

std::int32_t AvailabilityProfile::free_at(Time t) const {
  BSLD_REQUIRE(t >= origin_, "AvailabilityProfile: query before origin");
  std::int32_t free = capacity_;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    free += delta;
  }
  return free;
}

Time AvailabilityProfile::earliest_slot(std::int32_t size, Time duration,
                                        Time after) const {
  BSLD_REQUIRE(size > 0 && size <= capacity_,
               "AvailabilityProfile: slot size outside [1, capacity]");
  BSLD_REQUIRE(duration >= 1, "AvailabilityProfile: duration must be >= 1");
  after = std::max(after, origin_);

  // Candidate starts: `after` and every breakpoint at which capacity rises.
  std::vector<Time> candidates = {after};
  for (const auto& [time, delta] : deltas_) {
    if (time > after && delta > 0) candidates.push_back(time);
  }
  for (const Time candidate : candidates) {
    if (free_at(candidate) < size) continue;
    // Check the window [candidate, candidate + duration).
    bool fits = true;
    for (auto it = deltas_.upper_bound(candidate);
         it != deltas_.end() && it->first < candidate + duration; ++it) {
      if (free_at(it->first) < size) {
        fits = false;
        break;
      }
    }
    if (fits) return candidate;
  }
  // Unreachable: after the last breakpoint the profile is back to full
  // capacity, so the last rising breakpoint (or `after`) always fits.
  throw Error("AvailabilityProfile: no slot found (invariant violation)");
}

std::vector<std::pair<Time, std::int32_t>> AvailabilityProfile::steps() const {
  std::vector<std::pair<Time, std::int32_t>> out;
  out.emplace_back(origin_, free_at(origin_));
  std::int32_t free = capacity_;
  for (const auto& [time, delta] : deltas_) {
    free += delta;
    if (time >= origin_) out.emplace_back(time, free);
  }
  return out;
}

}  // namespace bsld::cluster
