/// \file gears.hpp
/// \brief DVFS gear set: the frequency/voltage pairs a processor supports.
///
/// The paper's gear set (Table 2):
///   f (GHz): 0.8  1.1  1.4  1.7  2.0  2.3
///   V (V):   1.0  1.1  1.2  1.3  1.4  1.5
/// Gears are indexed ascending by frequency; index 0 is the lowest gear and
/// `top()` the highest — the frequency-assignment loops of the paper's
/// Fig. 1/2 iterate from index 0 upwards.
#pragma once

#include <string>
#include <vector>

#include "util/config.hpp"
#include "util/types.hpp"

namespace bsld::cluster {

/// One DVFS operating point.
struct Gear {
  double frequency_ghz = 0.0;
  double voltage_v = 0.0;

  friend bool operator==(const Gear&, const Gear&) = default;
};

/// Validated, ascending-ordered set of DVFS gears.
class GearSet {
 public:
  /// Throws bsld::Error unless gears are non-empty, strictly increasing in
  /// frequency, non-decreasing in voltage, and all positive.
  explicit GearSet(std::vector<Gear> gears);

  [[nodiscard]] std::size_t size() const { return gears_.size(); }
  [[nodiscard]] const Gear& operator[](GearIndex index) const;
  [[nodiscard]] GearIndex top_index() const {
    return static_cast<GearIndex>(gears_.size()) - 1;
  }
  [[nodiscard]] const Gear& top() const { return gears_.back(); }
  [[nodiscard]] const Gear& lowest() const { return gears_.front(); }
  [[nodiscard]] const std::vector<Gear>& all() const { return gears_; }

  /// Frequency ratio f_top / f_gear (>= 1), used by the beta time model.
  [[nodiscard]] double frequency_ratio(GearIndex index) const;

  /// "0.8GHz@1.0V, ..., 2.3GHz@1.5V"
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const GearSet&, const GearSet&) = default;

 private:
  std::vector<Gear> gears_;
};

/// The gear set of the paper's Table 2.
GearSet paper_gear_set();

/// Reads `gears.frequencies_ghz` / `gears.voltages_v` lists from a Config,
/// falling back to the paper's set. Throws bsld::Error on mismatched list
/// lengths or invalid values.
GearSet gear_set_from_config(const util::Config& config);

}  // namespace bsld::cluster
