#include "cluster/gears.hpp"

#include <sstream>

#include "util/error.hpp"

namespace bsld::cluster {

GearSet::GearSet(std::vector<Gear> gears) : gears_(std::move(gears)) {
  BSLD_REQUIRE(!gears_.empty(), "GearSet: needs at least one gear");
  for (std::size_t i = 0; i < gears_.size(); ++i) {
    BSLD_REQUIRE(gears_[i].frequency_ghz > 0.0 && gears_[i].voltage_v > 0.0,
                 "GearSet: frequencies and voltages must be positive");
    if (i > 0) {
      BSLD_REQUIRE(gears_[i].frequency_ghz > gears_[i - 1].frequency_ghz,
                   "GearSet: frequencies must be strictly increasing");
      BSLD_REQUIRE(gears_[i].voltage_v >= gears_[i - 1].voltage_v,
                   "GearSet: voltages must be non-decreasing");
    }
  }
}

const Gear& GearSet::operator[](GearIndex index) const {
  BSLD_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < gears_.size(),
               "GearSet: gear index out of range");
  return gears_[static_cast<std::size_t>(index)];
}

double GearSet::frequency_ratio(GearIndex index) const {
  return top().frequency_ghz / (*this)[index].frequency_ghz;
}

std::string GearSet::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < gears_.size(); ++i) {
    if (i != 0) os << ", ";
    os << gears_[i].frequency_ghz << "GHz@" << gears_[i].voltage_v << "V";
  }
  return os.str();
}

GearSet paper_gear_set() {
  return GearSet({{0.8, 1.0},
                  {1.1, 1.1},
                  {1.4, 1.2},
                  {1.7, 1.3},
                  {2.0, 1.4},
                  {2.3, 1.5}});
}

GearSet gear_set_from_config(const util::Config& config) {
  const GearSet fallback = paper_gear_set();
  std::vector<double> default_f;
  std::vector<double> default_v;
  for (const Gear& gear : fallback.all()) {
    default_f.push_back(gear.frequency_ghz);
    default_v.push_back(gear.voltage_v);
  }
  const auto freqs = config.get_double_list("gears.frequencies_ghz", default_f);
  const auto volts = config.get_double_list("gears.voltages_v", default_v);
  BSLD_REQUIRE(freqs.size() == volts.size(),
               "gear_set_from_config(): frequency/voltage lists differ in length");
  std::vector<Gear> gears;
  gears.reserve(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    gears.push_back({freqs[i], volts[i]});
  }
  return GearSet(std::move(gears));
}

}  // namespace bsld::cluster
