#include "cluster/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::cluster {

Machine::Machine(std::int32_t cpu_count)
    : jobs_(static_cast<std::size_t>(cpu_count), kNoJob),
      expected_end_(static_cast<std::size_t>(cpu_count), 0),
      free_now_(cpu_count) {
  BSLD_REQUIRE(cpu_count > 0, "Machine: cpu_count must be positive");
}

void Machine::check_cpu(CpuId cpu) const {
  BSLD_REQUIRE(cpu >= 0 && cpu < cpu_count(), "Machine: cpu out of range");
}

JobId Machine::running_job(CpuId cpu) const {
  check_cpu(cpu);
  return jobs_[static_cast<std::size_t>(cpu)];
}

bool Machine::is_free(CpuId cpu) const { return running_job(cpu) == kNoJob; }

Time Machine::avail_time(CpuId cpu, Time now) const {
  check_cpu(cpu);
  const auto index = static_cast<std::size_t>(cpu);
  if (jobs_[index] == kNoJob) return now;
  return std::max(expected_end_[index], now + 1);
}

Time Machine::earliest_start(std::int32_t size, Time now) const {
  BSLD_REQUIRE(size > 0 && size <= cpu_count(),
               "Machine: allocation size must be within [1, cpu_count]");
  if (free_now_ >= size) return now;
  std::vector<Time> avail;
  avail.reserve(jobs_.size());
  for (CpuId cpu = 0; cpu < cpu_count(); ++cpu) {
    avail.push_back(avail_time(cpu, now));
  }
  auto kth = avail.begin() + (size - 1);
  std::nth_element(avail.begin(), kth, avail.end());
  return *kth;
}

std::int32_t Machine::available_by(Time t, Time now) const {
  std::int32_t count = 0;
  for (CpuId cpu = 0; cpu < cpu_count(); ++cpu) {
    if (avail_time(cpu, now) <= t) ++count;
  }
  return count;
}

void Machine::assign(JobId job, const std::vector<CpuId>& cpus,
                     Time expected_end) {
  BSLD_REQUIRE(job != kNoJob, "Machine: cannot assign the null job");
  BSLD_REQUIRE(!cpus.empty(), "Machine: empty allocation");
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == kNoJob,
                 "Machine: CPU already busy (oversubscription)");
  }
  for (CpuId cpu : cpus) {
    const auto index = static_cast<std::size_t>(cpu);
    jobs_[index] = job;
    expected_end_[index] = expected_end;
  }
  free_now_ -= static_cast<std::int32_t>(cpus.size());
}

void Machine::update_expected_end(JobId job, const std::vector<CpuId>& cpus,
                                  Time expected_end) {
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == job,
                 "Machine: CPU is not running the re-timed job");
  }
  for (CpuId cpu : cpus) {
    expected_end_[static_cast<std::size_t>(cpu)] = expected_end;
  }
}

void Machine::release(JobId job, const std::vector<CpuId>& cpus) {
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == job,
                 "Machine: CPU is not running the released job");
  }
  for (CpuId cpu : cpus) {
    jobs_[static_cast<std::size_t>(cpu)] = kNoJob;
  }
  free_now_ += static_cast<std::int32_t>(cpus.size());
}

}  // namespace bsld::cluster
