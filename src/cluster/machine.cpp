#include "cluster/machine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsld::cluster {

Machine::Machine(std::int32_t cpu_count)
    : jobs_(static_cast<std::size_t>(cpu_count), kNoJob),
      expected_end_(static_cast<std::size_t>(cpu_count), 0),
      free_now_(cpu_count) {
  BSLD_REQUIRE(cpu_count > 0, "Machine: cpu_count must be positive");
}

Time Machine::earliest_start(std::int32_t size, Time now) const {
  BSLD_REQUIRE(size > 0 && size <= cpu_count(),
               "Machine: allocation size must be within [1, cpu_count]");
  if (free_now_ >= size) return now;
  // Every free CPU is available at `now`, strictly before any busy CPU
  // (whose availability clamps to >= now + 1). The k-th smallest
  // availability overall is therefore the (size - free_now_)-th smallest
  // among the busy CPUs only — select over the busy subset, in a reused
  // scratch buffer, instead of building and partitioning the full vector.
  scratch_.clear();
  const std::size_t n = jobs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs_[i] != kNoJob) {
      scratch_.push_back(std::max(expected_end_[i], now + 1));
    }
  }
  auto kth = scratch_.begin() + (size - free_now_ - 1);
  std::nth_element(scratch_.begin(), kth, scratch_.end());
  return *kth;
}

std::int32_t Machine::available_by(Time t, Time now) const {
  std::int32_t count = 0;
  const std::size_t n = jobs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Time avail =
        jobs_[i] == kNoJob ? now : std::max(expected_end_[i], now + 1);
    if (avail <= t) ++count;
  }
  return count;
}

void Machine::assign(JobId job, const std::vector<CpuId>& cpus,
                     Time expected_end) {
  BSLD_REQUIRE(job != kNoJob, "Machine: cannot assign the null job");
  BSLD_REQUIRE(!cpus.empty(), "Machine: empty allocation");
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == kNoJob,
                 "Machine: CPU already busy (oversubscription)");
  }
  for (CpuId cpu : cpus) {
    const auto index = static_cast<std::size_t>(cpu);
    jobs_[index] = job;
    expected_end_[index] = expected_end;
  }
  free_now_ -= static_cast<std::int32_t>(cpus.size());
}

void Machine::update_expected_end(JobId job, const std::vector<CpuId>& cpus,
                                  Time expected_end) {
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == job,
                 "Machine: CPU is not running the re-timed job");
  }
  for (CpuId cpu : cpus) {
    expected_end_[static_cast<std::size_t>(cpu)] = expected_end;
  }
}

void Machine::release(JobId job, const std::vector<CpuId>& cpus) {
  for (CpuId cpu : cpus) {
    check_cpu(cpu);
    BSLD_REQUIRE(jobs_[static_cast<std::size_t>(cpu)] == job,
                 "Machine: CPU is not running the released job");
  }
  for (CpuId cpu : cpus) {
    jobs_[static_cast<std::size_t>(cpu)] = kNoJob;
  }
  free_now_ += static_cast<std::int32_t>(cpus.size());
}

}  // namespace bsld::cluster
