/// \file machine.hpp
/// \brief The simulated DVFS-enabled cluster: per-CPU occupancy and the
/// availability profile that backfilling's findAllocation queries.
///
/// Each CPU runs at most one process (rigid jobs, one process per CPU). A
/// busy CPU advertises the time its job is *expected* to end — start +
/// requested time scaled by the job's gear — because that is all EASY
/// backfilling may assume; actual completions trigger rescheduling. Since
/// only running jobs hold CPUs (EASY keeps a single reservation, handled by
/// the scheduler), free capacity is non-decreasing in time, which makes
/// `earliest_start` a selection (k-th smallest availability time) rather
/// than a search.
#pragma once

#include <algorithm>
#include <vector>

#include "cluster/gears.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsld::cluster {

/// Mutable cluster state.
class Machine {
 public:
  /// A machine with `cpu_count` identical DVFS-enabled processors.
  explicit Machine(std::int32_t cpu_count);

  [[nodiscard]] std::int32_t cpu_count() const {
    return static_cast<std::int32_t>(jobs_.size());
  }

  /// Job currently on `cpu`, or kNoJob. Defined inline: the backfill
  /// selectors probe every CPU per candidate, so these must not cost a
  /// cross-TU call.
  [[nodiscard]] JobId running_job(CpuId cpu) const {
    check_cpu(cpu);
    return jobs_[static_cast<std::size_t>(cpu)];
  }
  [[nodiscard]] bool is_free(CpuId cpu) const {
    return running_job(cpu) == kNoJob;
  }

  /// Number of CPUs free right now (O(1)).
  [[nodiscard]] std::int32_t free_now() const { return free_now_; }

  /// Time at which `cpu` is expected to be available, from the viewpoint of
  /// `now`: `now` when free, otherwise max(expected end, now + 1) — the
  /// clamp keeps overrunning jobs (actual > requested time) from appearing
  /// free before their real completion event.
  [[nodiscard]] Time avail_time(CpuId cpu, Time now) const {
    check_cpu(cpu);
    const auto index = static_cast<std::size_t>(cpu);
    if (jobs_[index] == kNoJob) return now;
    return std::max(expected_end_[index], now + 1);
  }

  /// Earliest time at which `size` CPUs are simultaneously available
  /// (>= now). Throws bsld::Error when size exceeds the machine. O(P).
  [[nodiscard]] Time earliest_start(std::int32_t size, Time now) const;

  /// Number of CPUs available by time `t` (avail_time <= t). O(P).
  [[nodiscard]] std::int32_t available_by(Time t, Time now) const;

  /// Marks `cpus` busy with `job` until `expected_end`. Throws bsld::Error
  /// when any CPU is already busy.
  void assign(JobId job, const std::vector<CpuId>& cpus, Time expected_end);

  /// Frees the given CPUs. Throws bsld::Error when a CPU is not running
  /// `job`.
  void release(JobId job, const std::vector<CpuId>& cpus);

  /// Re-times a running job's expected end on the given CPUs (used when a
  /// job's frequency is raised mid-flight). Throws bsld::Error when a CPU
  /// is not running `job`.
  void update_expected_end(JobId job, const std::vector<CpuId>& cpus,
                           Time expected_end);

  /// Busy CPU count right now.
  [[nodiscard]] std::int32_t busy_now() const {
    return cpu_count() - free_now_;
  }

 private:
  void check_cpu(CpuId cpu) const {
    BSLD_REQUIRE(cpu >= 0 && cpu < cpu_count(), "Machine: cpu out of range");
  }

  std::vector<JobId> jobs_;          ///< kNoJob when free.
  std::vector<Time> expected_end_;   ///< Valid only for busy CPUs.
  /// earliest_start() selection scratch, reused across calls so the hot
  /// query never allocates. Confined to const members on one thread (the
  /// machine belongs to one simulation); not a logical state change.
  mutable std::vector<Time> scratch_;
  std::int32_t free_now_ = 0;
};

}  // namespace bsld::cluster
