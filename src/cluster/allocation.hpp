/// \file allocation.hpp
/// \brief Allocation and reservation value types shared by schedulers and
/// resource selectors.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace bsld::cluster {

/// A concrete placement decision: which CPUs, starting when, at which gear.
struct Allocation {
  Time start = kNoTime;
  std::vector<CpuId> cpus;
  GearIndex gear = 0;

  [[nodiscard]] bool valid() const { return start != kNoTime && !cpus.empty(); }
};

/// EASY backfilling reserves CPUs for the head of the wait queue: backfilled
/// jobs must not delay `start` on the reserved `cpus`.
struct Reservation {
  JobId job = kNoJob;
  Time start = kNoTime;
  std::vector<CpuId> cpus;
  /// O(1) membership mask, sized to the machine.
  std::vector<char> mask;

  [[nodiscard]] bool active() const { return job != kNoJob; }
  [[nodiscard]] bool contains(CpuId cpu) const {
    return static_cast<std::size_t>(cpu) < mask.size() &&
           mask[static_cast<std::size_t>(cpu)] != 0;
  }
};

}  // namespace bsld::cluster
