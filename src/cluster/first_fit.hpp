/// \file first_fit.hpp
/// \brief Resource selection policies. The paper's simulations use First
/// Fit (§3.1): processes are mapped to the lowest-indexed processors that
/// satisfy the allocation constraints. The interface keeps selection
/// pluggable, mirroring Alvio's scheduling-policy / resource-selection
/// split.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/allocation.hpp"
#include "cluster/machine.hpp"

namespace bsld::cluster {

/// Strategy mapping job processes to processors.
class ResourceSelector {
 public:
  virtual ~ResourceSelector() = default;

  /// Selects `size` CPUs all available by `start` (per Machine::avail_time
  /// at `now`). Called by findAllocation once the start time is known.
  /// Throws bsld::Error when fewer than `size` CPUs qualify.
  [[nodiscard]] virtual std::vector<CpuId> select_at(
      const Machine& machine, std::int32_t size, Time start, Time now) const = 0;

  /// Backfill selection: `size` CPUs that are free *now* and whose use
  /// until `expected_end` cannot delay `reservation` (a CPU inside the
  /// reservation may only be used when expected_end <= reservation->start).
  /// Returns nullopt when impossible. `reservation` may be null.
  [[nodiscard]] virtual std::optional<std::vector<CpuId>> select_backfill(
      const Machine& machine, std::int32_t size, Time now, Time expected_end,
      const Reservation* reservation) const = 0;

  /// Human-readable policy name.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// First Fit: lowest-indexed qualifying CPUs.
class FirstFit final : public ResourceSelector {
 public:
  [[nodiscard]] std::vector<CpuId> select_at(const Machine& machine,
                                             std::int32_t size, Time start,
                                             Time now) const override;
  [[nodiscard]] std::optional<std::vector<CpuId>> select_backfill(
      const Machine& machine, std::int32_t size, Time now, Time expected_end,
      const Reservation* reservation) const override;
  [[nodiscard]] std::string name() const override { return "FirstFit"; }
};

/// Last Fit: highest-indexed qualifying CPUs. Functionally equivalent under
/// count-based feasibility; exists to demonstrate the selector seam and as
/// a control in tests (schedule metrics must not depend on the selector for
/// identical feasibility decisions).
class LastFit final : public ResourceSelector {
 public:
  [[nodiscard]] std::vector<CpuId> select_at(const Machine& machine,
                                             std::int32_t size, Time start,
                                             Time now) const override;
  [[nodiscard]] std::optional<std::vector<CpuId>> select_backfill(
      const Machine& machine, std::int32_t size, Time now, Time expected_end,
      const Reservation* reservation) const override;
  [[nodiscard]] std::string name() const override { return "LastFit"; }
};

/// Builds a selector by name ("FirstFit", "LastFit"); throws on unknown.
std::unique_ptr<ResourceSelector> make_selector(const std::string& name);

}  // namespace bsld::cluster
