#include "cluster/first_fit.hpp"

#include "util/error.hpp"

namespace bsld::cluster {

namespace {

/// Shared scan in a caller-chosen CPU order.
template <typename CpuRange>
std::vector<CpuId> scan_select_at(const Machine& machine, std::int32_t size,
                                  Time start, Time now, CpuRange cpu_order) {
  std::vector<CpuId> out;
  out.reserve(static_cast<std::size_t>(size));
  for (CpuId cpu : cpu_order) {
    if (machine.avail_time(cpu, now) <= start) {
      out.push_back(cpu);
      if (static_cast<std::int32_t>(out.size()) == size) return out;
    }
  }
  throw Error("ResourceSelector: not enough CPUs available at start time");
}

template <typename CpuRange>
std::optional<std::vector<CpuId>> scan_select_backfill(
    const Machine& machine, std::int32_t size, Time now, Time expected_end,
    const Reservation* reservation, CpuRange cpu_order) {
  const bool respects_shadow =
      reservation == nullptr || !reservation->active() ||
      expected_end <= reservation->start;
  std::vector<CpuId> out;
  out.reserve(static_cast<std::size_t>(size));
  for (CpuId cpu : cpu_order) {
    if (!machine.is_free(cpu)) continue;
    if (!respects_shadow && reservation->contains(cpu)) continue;
    out.push_back(cpu);
    if (static_cast<std::int32_t>(out.size()) == size) return out;
  }
  (void)now;
  return std::nullopt;
}

struct Ascending {
  std::int32_t count;
  struct iterator {
    CpuId value;
    CpuId operator*() const { return value; }
    iterator& operator++() { ++value; return *this; }
    bool operator!=(const iterator& other) const { return value != other.value; }
  };
  [[nodiscard]] iterator begin() const { return {0}; }
  [[nodiscard]] iterator end() const { return {count}; }
};

struct Descending {
  std::int32_t count;
  struct iterator {
    CpuId value;
    CpuId operator*() const { return value; }
    iterator& operator++() { --value; return *this; }
    bool operator!=(const iterator& other) const { return value != other.value; }
  };
  [[nodiscard]] iterator begin() const { return {count - 1}; }
  [[nodiscard]] iterator end() const { return {-1}; }
};

}  // namespace

std::vector<CpuId> FirstFit::select_at(const Machine& machine,
                                       std::int32_t size, Time start,
                                       Time now) const {
  return scan_select_at(machine, size, start, now,
                        Ascending{machine.cpu_count()});
}

std::optional<std::vector<CpuId>> FirstFit::select_backfill(
    const Machine& machine, std::int32_t size, Time now, Time expected_end,
    const Reservation* reservation) const {
  return scan_select_backfill(machine, size, now, expected_end, reservation,
                              Ascending{machine.cpu_count()});
}

std::vector<CpuId> LastFit::select_at(const Machine& machine,
                                      std::int32_t size, Time start,
                                      Time now) const {
  return scan_select_at(machine, size, start, now,
                        Descending{machine.cpu_count()});
}

std::optional<std::vector<CpuId>> LastFit::select_backfill(
    const Machine& machine, std::int32_t size, Time now, Time expected_end,
    const Reservation* reservation) const {
  return scan_select_backfill(machine, size, now, expected_end, reservation,
                              Descending{machine.cpu_count()});
}

std::unique_ptr<ResourceSelector> make_selector(const std::string& name) {
  if (name == "FirstFit") return std::make_unique<FirstFit>();
  if (name == "LastFit") return std::make_unique<LastFit>();
  throw Error("make_selector(): unknown selector `" + name + "`");
}

}  // namespace bsld::cluster
