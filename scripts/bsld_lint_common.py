"""Machinery shared by the project's static-analysis tools.

Two fixture-tested tools lint this tree:

  scripts/lint_bsld.py   line-level convention rules (raw-parse,
                         determinism, new-delete, ...)
  scripts/arch_check.py  architecture rules (include-graph layering,
                         cycles, orphan headers, API-contract audit)

Both share one suppression syntax, so a reader never has to know which
tool produced a finding to silence it:

    do_thing();  // bsld-lint: allow(<rule>): <why this one is fine>

or, alone on the line directly above the finding:

    // bsld-lint: allow(<rule>): <why this one is fine>
    do_thing();

The reason is mandatory; a malformed marker (unknown rule, missing
reason) is itself reported as `bad-suppression` and suppresses nothing.
Because the marker syntax is shared, this module owns the union of every
rule name both tools can emit — a suppression naming the *other* tool's
rule must not be flagged as malformed by the one currently running.
"""

import re

# C++ source the tools scan. Keys are directories relative to the repo
# root; lint_bsld.py and arch_check.py slice this set differently (e.g.
# arch layer rules only constrain src/).
SCAN_DIRS = ("src", "tests", "examples", "bench")
SUFFIXES = {".cpp", ".hpp"}
FIXTURES = "tests/lint_fixtures"

# Rule-name universe for suppression validation. Each tool applies only
# its own rules but must accept markers naming the other tool's.
LINT_RULES = frozenset({
    "raw-parse", "determinism", "new-delete", "catch-all", "pragma-once",
    "include-hygiene", "tsa-escape", "iostream", "eager-ingest",
})
ARCH_RULES = frozenset({
    "layer-violation", "skip-interface", "include-cycle", "orphan-header",
    "missing-nodiscard", "noexcept-throws",
})
ALL_RULES = LINT_RULES | ARCH_RULES

SUPPRESS_RE = re.compile(
    r"//\s*bsld-lint:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)$")
SUPPRESS_HINT_RE = re.compile(r"bsld-lint\s*:")


class Finding:
    """One reported violation, printable as path:line: [rule] message."""

    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = (
            path, line, rule, message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literals space-filled.

    Line structure is preserved so line numbers in findings stay valid;
    the rules then only ever see code, never commented-out examples.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif ch == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
            close = text.find("(", i + 2)
            if close == -1:  # not actually a raw string
                out.append(ch)
                i += 1
                continue
            delim = ")" + text[i + 2 : close] + '"'
            end = text.find(delim, close + 1)
            end = n if end == -1 else end + len(delim)
            for j in range(i, end):
                out.append("\n" if text[j] == "\n" else " ")
            i = end
        elif ch in "\"'":
            quote = ch
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def suppressions_for(raw_lines):
    """Maps covered line number -> set of rule names, plus malformed markers.

    Returns (covered, bad) where `bad` is a list of (line, message) for
    markers that name no known rule (from either tool) or lack a reason.
    A marker alone on its line covers the next line; a trailing marker
    covers its own line.
    """
    covered = {}
    bad = []
    for i, line in enumerate(raw_lines, 1):
        if not SUPPRESS_HINT_RE.search(line):
            continue
        match = SUPPRESS_RE.search(line)
        if not match or match.group(1) not in ALL_RULES:
            bad.append((i, "malformed bsld-lint comment — expected "
                          "`// bsld-lint: allow(<rule>): <reason>` with a "
                          "known rule and a non-empty reason"))
            continue
        rule = match.group(1)
        target = i + 1 if line.lstrip().startswith("//") else i
        covered.setdefault(target, set()).add(rule)
    return covered, bad


def expect_re(marker):
    """Fixture-marker regex: `// <marker>: rule[, rule]` (self-tests)."""
    return re.compile(
        r"//\s*" + re.escape(marker) + r":\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def collect_expected(root, files, marker):
    """Reads `// <marker>: rule` annotations: set of (path, line, rule)."""
    pattern = expect_re(marker)
    expected = set()
    for rel in files:
        text = (root / rel).read_text(encoding="utf-8")
        for i, line in enumerate(text.split("\n"), 1):
            match = pattern.search(line)
            if match:
                for rule in re.split(r"\s*,\s*", match.group(1)):
                    expected.add((rel, i, rule))
    return expected
