#!/usr/bin/env python3
"""Validate and compare google-benchmark JSON outputs.

Two modes, both stdlib-only:

  bench_compare.py --check FRESH.json
      Structural validation: the file must parse as JSON and carry a
      non-empty `benchmarks` array. Exit 1 otherwise. Used by
      scripts/run_bench.sh so a crashed or truncated benchmark run can
      never masquerade as a benchmark artifact.

  bench_compare.py --stamp-build-type Release FRESH.json
      Record the CMake build type the binary was compiled with into the
      artifact's `context` object (key `bsld_build_type`). run_bench.sh
      calls this right after the run, reading the type out of the build
      directory's CMakeCache.txt, so every artifact knows its own
      optimization level.

  bench_compare.py FRESH.json BASELINE.json --max-regression-pct 25 \
      --guard bench/bench_guard.list
      The CI bench-regression gate: for every benchmark named in the guard
      list, compare throughput (items_per_second when reported, else
      1/real_time) between the fresh run and the checked-in baseline, and
      exit 1 when any guarded benchmark regressed by more than the
      threshold. Guarded names missing from the fresh run fail (a deleted
      benchmark must be removed from the guard list deliberately); names
      missing from the baseline are skipped with a note (new benchmarks
      enter the gate when the baseline is refreshed).

      Both files must carry matching `bsld_build_type` stamps: a Debug
      run regressing 70% against a Release baseline says nothing about
      the code, so mismatched (or missing) stamps abort the compare
      before any numbers are looked at.

      Under GitHub Actions (when $GITHUB_STEP_SUMMARY is set) the compare
      also appends a markdown baseline/current/ratio table to the job
      summary, so the gate's numbers are readable without opening logs.

The baseline lives in bench/BENCH_baseline.json and is refreshed with
`scripts/run_bench.sh --update-baseline` on quiet hardware. To land a PR
with a known, accepted regression, apply the `bench-regression-override`
label (see .github/workflows/ci.yml) — the gate job is skipped.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        sys.exit(f"bench_compare: {path} has no `benchmarks` array "
                 "(truncated or not a google-benchmark JSON file)")
    return data


def throughput(entry):
    """Higher is better: items/s when reported, else inverse wall time."""
    items = entry.get("items_per_second")
    if isinstance(items, (int, float)) and items > 0:
        return float(items)
    real = entry.get("real_time")
    if isinstance(real, (int, float)) and real > 0:
        return 1.0 / float(real)
    return None


def build_type(data, path):
    """The `bsld_build_type` stamp, or None with a hint when absent."""
    context = data.get("context")
    stamp = context.get("bsld_build_type") if isinstance(context, dict) else None
    if not isinstance(stamp, str) or not stamp:
        print(f"bench_compare: {path} carries no bsld_build_type stamp "
              "(produced by hand, or by a run_bench.sh predating the stamp?)",
              file=sys.stderr)
        return None
    return stamp


def by_name(data):
    table = {}
    for entry in data["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev) — compare raw runs.
        if entry.get("run_type") == "aggregate":
            continue
        rate = throughput(entry)
        if entry.get("name") and rate is not None:
            table[entry["name"]] = rate
    return table


def write_step_summary(rows, max_regression_pct, failed):
    """Append a markdown baseline/current ratio table to the file named by
    $GITHUB_STEP_SUMMARY (the CI job-summary panel). A no-op outside
    GitHub Actions; summary I/O never fails the gate itself."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    verdict = "regression over limit" if failed else "within limits"
    lines = [
        "### Bench gate — guarded throughput vs checked-in baseline",
        "",
        f"Gate: fail under {1.0 - max_regression_pct / 100.0:.2f}x "
        f"(-{max_regression_pct:g}%). Result: **{verdict}**.",
        "",
        "| benchmark | baseline | current | ratio |",
        "|---|---:|---:|---:|",
    ]
    for name, base, now, ratio in rows:
        base_text = f"{base:.4g}/s" if base is not None else "(new)"
        now_text = f"{now:.4g}/s" if now is not None else "(missing)"
        ratio_text = f"{ratio:.2f}x" if ratio is not None else "n/a"
        lines.append(f"| `{name}` | {base_text} | {now_text} | {ratio_text} |")
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as error:
        print(f"bench_compare: cannot write step summary: {error}",
              file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_micro.json")
    parser.add_argument("baseline", nargs="?",
                        help="checked-in baseline to gate against")
    parser.add_argument("--check", action="store_true",
                        help="only validate `fresh` structurally")
    parser.add_argument("--stamp-build-type", metavar="TYPE",
                        help="record TYPE as context.bsld_build_type in "
                             "`fresh` and exit")
    parser.add_argument("--max-regression-pct", type=float, default=25.0,
                        help="fail when a guarded benchmark's throughput "
                             "drops by more than this percentage")
    parser.add_argument("--guard",
                        help="file listing guarded benchmark names, one per "
                             "line (# comments); default: every benchmark "
                             "present in both runs")
    args = parser.parse_args()

    fresh = load(args.fresh)
    if args.stamp_build_type:
        fresh.setdefault("context", {})["bsld_build_type"] = \
            args.stamp_build_type
        try:
            with open(args.fresh, "w", encoding="utf-8") as handle:
                json.dump(fresh, handle, indent=2)
                handle.write("\n")
        except OSError as error:
            sys.exit(f"bench_compare: cannot rewrite {args.fresh}: {error}")
        print(f"bench_compare: stamped {args.fresh} as "
              f"{args.stamp_build_type}")
        return
    if args.check:
        print(f"bench_compare: {args.fresh} OK "
              f"({len(fresh['benchmarks'])} benchmarks)")
        return
    if not args.baseline:
        sys.exit("bench_compare: baseline file required unless --check")

    baseline = load(args.baseline)
    fresh_type = build_type(fresh, args.fresh)
    baseline_type = build_type(baseline, args.baseline)
    if fresh_type is None or baseline_type is None:
        sys.exit("bench_compare: refusing to compare unstamped artifacts — "
                 "re-produce them with scripts/run_bench.sh (it stamps the "
                 "build type from the build directory's CMakeCache.txt), or "
                 "stamp by hand with --stamp-build-type")
    if fresh_type != baseline_type:
        sys.exit(f"bench_compare: build-type mismatch — {args.fresh} is a "
                 f"{fresh_type} run but {args.baseline} was recorded under "
                 f"{baseline_type}; throughput deltas across optimization "
                 "levels are meaningless. Rebuild with "
                 f"-DCMAKE_BUILD_TYPE={baseline_type} and re-run, or refresh "
                 "the baseline (`scripts/run_bench.sh --update-baseline`) "
                 "from the configuration you intend to gate on")
    fresh_rates = by_name(fresh)
    baseline_rates = by_name(baseline)

    if args.guard:
        try:
            with open(args.guard, "r", encoding="utf-8") as handle:
                guarded = [line.strip() for line in handle
                           if line.strip() and not line.startswith("#")]
        except OSError as error:
            sys.exit(f"bench_compare: cannot read guard list: {error}")
    else:
        guarded = sorted(set(fresh_rates) & set(baseline_rates))

    failures = []
    rows = []  # (name, baseline, fresh, ratio) for the step summary.
    print(f"{'benchmark':40s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}")
    for name in guarded:
        if name not in fresh_rates:
            failures.append(f"{name}: missing from {args.fresh} (remove it "
                            "from the guard list if it was deleted)")
            rows.append((name, baseline_rates.get(name), None, None))
            continue
        if name not in baseline_rates:
            print(f"{name:40s} {'(new)':>12s} {fresh_rates[name]:12.3g} "
                  f"{'n/a':>8s}  # enters the gate on the next baseline "
                  "refresh")
            rows.append((name, None, fresh_rates[name], None))
            continue
        base = baseline_rates[name]
        now = fresh_rates[name]
        delta_pct = (now - base) / base * 100.0
        print(f"{name:40s} {base:12.3g} {now:12.3g} {delta_pct:+7.1f}%")
        rows.append((name, base, now, now / base))
        if delta_pct < -args.max_regression_pct:
            failures.append(
                f"{name}: throughput {base:.3g} -> {now:.3g} "
                f"({delta_pct:+.1f}%, limit -{args.max_regression_pct:g}%)")

    write_step_summary(rows, args.max_regression_pct, bool(failures))
    if failures:
        print("\nbench_compare: FAIL — throughput regression over "
              f"{args.max_regression_pct:g}%:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("  (accepted regression? apply the bench-regression-override "
              "PR label, or refresh the baseline with "
              "`scripts/run_bench.sh --update-baseline`)", file=sys.stderr)
        sys.exit(1)
    print("bench_compare: OK")


if __name__ == "__main__":
    main()
