#!/usr/bin/env bash
# Daemon-mode smoke: proves on every PR (and in ctest, as
# examples.serve_smoke) that
#   1. a cold `bsldsim query` of a spec returns byte-identical output to
#      the direct `bsldsim --spec --format csv` run;
#   2. the warm repeat is a 100% cache hit (reply says executed=0,
#      cache_hits=1) and byte-identical — the simulator never ran;
#   3. a power-managed run (--pm setpoint) flows through the daemon with
#      the same cold/warm byte-parity and warm cache-hit guarantees;
#   4. malformed numeric input — CLI flag or protocol request — yields a
#      named diagnostic and a nonzero exit, and the daemon survives it;
#   5. SIGTERM drains the daemon cleanly (exit code 0).
#
# Usage: scripts/serve_smoke.sh <bsldsim-binary> <spec.conf>
set -euo pipefail

bsldsim="$1"
spec="$2"
workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then kill "$server_pid" 2>/dev/null || true; fi
  rm -rf "$workdir"
}
trap cleanup EXIT

socket="$workdir/bsld.sock"
"$bsldsim" serve --socket "$socket" --cache-dir "$workdir/cache" \
  2> "$workdir/serve.log" &
server_pid=$!

for _ in $(seq 1 100); do
  [ -S "$socket" ] && break
  kill -0 "$server_pid" 2>/dev/null \
    || { echo "serve_smoke: daemon died at startup:" >&2; cat "$workdir/serve.log" >&2; exit 1; }
  sleep 0.1
done
[ -S "$socket" ] \
  || { echo "serve_smoke: daemon never bound $socket" >&2; exit 1; }

# Reference bytes: the direct, uncached run of the same spec.
"$bsldsim" --spec "$spec" --format csv > "$workdir/direct.csv" 2>/dev/null

"$bsldsim" query --socket "$socket" --spec "$spec" --format csv \
  > "$workdir/cold.csv" 2> "$workdir/cold.log"
diff "$workdir/direct.csv" "$workdir/cold.csv" \
  || { echo "serve_smoke: cold query differs from the direct run" >&2; exit 1; }
echo "serve_smoke: cold query parity OK"

"$bsldsim" query --socket "$socket" --spec "$spec" --format csv \
  > "$workdir/warm.csv" 2> "$workdir/warm.log"
diff "$workdir/direct.csv" "$workdir/warm.csv" \
  || { echo "serve_smoke: warm query differs from the direct run" >&2; exit 1; }
grep -q " executed=0 " "$workdir/warm.log" \
  || { echo "serve_smoke: warm query still simulated:" >&2; cat "$workdir/warm.log" >&2; exit 1; }
grep -q " cache_hits=1 " "$workdir/warm.log" \
  || { echo "serve_smoke: warm query reply is not a cache hit:" >&2; cat "$workdir/warm.log" >&2; exit 1; }
echo "serve_smoke: warm query is a 100% cache hit, byte-identical"

# Power-managed run through the daemon: the setpoint controller is a
# different simulation code path (pm timers, cap changes), so prove the
# same parity + warm-hit guarantees hold for it. The query layers the pm
# flags over the spec file exactly as direct mode does.
"$bsldsim" --spec "$spec" --pm setpoint --pm-setpoint 200000 --format csv \
  > "$workdir/pm_direct.csv" 2>/dev/null
"$bsldsim" query --socket "$socket" --spec "$spec" \
    --pm setpoint --pm-setpoint 200000 --format csv \
  > "$workdir/pm_cold.csv" 2> "$workdir/pm_cold.log"
diff "$workdir/pm_direct.csv" "$workdir/pm_cold.csv" \
  || { echo "serve_smoke: --pm setpoint cold query differs from the direct run" >&2; exit 1; }
"$bsldsim" query --socket "$socket" --spec "$spec" \
    --pm setpoint --pm-setpoint 200000 --format csv \
  > "$workdir/pm_warm.csv" 2> "$workdir/pm_warm.log"
diff "$workdir/pm_direct.csv" "$workdir/pm_warm.csv" \
  || { echo "serve_smoke: --pm setpoint warm query differs from the direct run" >&2; exit 1; }
grep -q " executed=0 " "$workdir/pm_warm.log" \
  || { echo "serve_smoke: --pm setpoint warm query still simulated:" >&2; cat "$workdir/pm_warm.log" >&2; exit 1; }
echo "serve_smoke: --pm setpoint query parity + warm cache hit OK"

# Malformed numeric input, CLI path: named diagnostic, nonzero exit.
if "$bsldsim" --bsld 2x5 > /dev/null 2> "$workdir/cli.log"; then
  echo "serve_smoke: bsldsim accepted --bsld 2x5" >&2; exit 1
fi
grep -q -- "--bsld" "$workdir/cli.log" \
  || { echo "serve_smoke: CLI diagnostic does not name the flag:" >&2; cat "$workdir/cli.log" >&2; exit 1; }

# Malformed numeric input, protocol path: the server answers `err`
# naming the key, the client exits nonzero, the daemon stays up.
printf 'workload.source = archive\nworkload.archive = CTC\nworkload.jobs = 50\npolicy.dvfs = true\npolicy.bsld_threshold = 2x5\n' \
  > "$workdir/bad.conf"
if "$bsldsim" query --socket "$socket" --spec "$workdir/bad.conf" \
    > /dev/null 2> "$workdir/bad.log"; then
  echo "serve_smoke: daemon accepted a malformed threshold" >&2; exit 1
fi
grep -q "policy.bsld_threshold" "$workdir/bad.log" \
  || { echo "serve_smoke: protocol diagnostic does not name the key:" >&2; cat "$workdir/bad.log" >&2; exit 1; }
"$bsldsim" query --socket "$socket" --ping > /dev/null 2>&1 \
  || { echo "serve_smoke: daemon died after a malformed request" >&2; exit 1; }
echo "serve_smoke: malformed-input diagnostics OK (daemon survived)"

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$server_pid"
code=0
wait "$server_pid" || code=$?
server_pid=""
[ "$code" -eq 0 ] \
  || { echo "serve_smoke: SIGTERM drain exited $code:" >&2; cat "$workdir/serve.log" >&2; exit 1; }
echo "serve_smoke: SIGTERM drain OK (exit 0)"
