#!/usr/bin/env bash
# Runs the microbenchmark suite and emits BENCH_micro.json (google-benchmark
# JSON format) to seed the performance trajectory. Fails loudly (non-zero
# exit) when bench_micro is missing, fails to run, or emits invalid JSON —
# an empty artifact must never be mistaken for a benchmark run.
#
# Usage:
#   scripts/run_bench.sh [options] [build-dir] [output.json] [bench args...]
#
# The default build dir is build-bench, configured on demand through the
# `bench-release` CMake preset (-O3 + LTO) — the configuration the
# committed baseline is recorded under. Pass an explicit build dir to
# benchmark another tree (CI smokes reuse the tier-1 `build`).
#
# Options (must come first):
#   --compare BASELINE.json   After running, diff the fresh JSON against the
#                             baseline with scripts/bench_compare.py and exit
#                             non-zero on >BENCH_MAX_REGRESSION_PCT (default
#                             25) percent throughput regression in the
#                             benchmarks named in bench/bench_guard.list.
#   --update-baseline         After running, copy the fresh JSON over
#                             bench/BENCH_baseline.json (run on quiet
#                             hardware; commit the result). Refused unless
#                             the build dir is a Release build: a Debug
#                             baseline would poison every later --compare
#                             (mirror of bench_compare.py's stamp check).
#   --if-improved             Only meaningful with --update-baseline: refuse
#                             the refresh when any guarded benchmark is
#                             slower than the baseline being replaced (0%
#                             regression tolerance). Use for routine
#                             refreshes so a noisy run can never quietly
#                             lower the bar; omit it only when accepting a
#                             known regression deliberately.
#   --self-test               Prove the --update-baseline guard against a
#                             sandboxed fake build dir (Debug refused,
#                             Release accepted) and exit. Touches nothing
#                             outside a temp directory.
#
# Environment:
#   BSLD_BENCH_BASELINE       Baseline path --update-baseline writes to
#                             (default bench/BENCH_baseline.json; the
#                             self-test uses this to stay sandboxed).
#
# Extra arguments are forwarded to bench_micro (e.g.
# --benchmark_min_time=0.01s for CI smokes).
set -euo pipefail

self_test() {
  local script_path tmp
  script_path="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT

  # A fake build dir: a stub bench_micro that emits one valid
  # google-benchmark JSON record, plus a CMakeCache carrying the build type
  # under test. Everything the guard consults, nothing else.
  mkdir -p "$tmp/build/bench"
  cat > "$tmp/build/bench/bench_micro" <<'STUB'
#!/usr/bin/env bash
out=""
for arg in "$@"; do
  case "$arg" in --benchmark_out=*) out="${arg#--benchmark_out=}" ;; esac
done
printf '{"context": {}, "benchmarks": [{"name": "BM_Stub", "real_time": 1.0}]}\n' > "$out"
STUB
  chmod +x "$tmp/build/bench/bench_micro"

  echo "CMAKE_BUILD_TYPE:STRING=Debug" > "$tmp/build/CMakeCache.txt"
  if BSLD_BENCH_BASELINE="$tmp/baseline.json" \
      "$script_path" --update-baseline "$tmp/build" "$tmp/out.json" \
      > "$tmp/debug.log" 2>&1; then
    echo "run_bench.sh --self-test: FAIL — a Debug build updated the baseline" >&2
    cat "$tmp/debug.log" >&2
    exit 1
  fi
  if [[ -e "$tmp/baseline.json" ]]; then
    echo "run_bench.sh --self-test: FAIL — refusal still wrote the baseline" >&2
    exit 1
  fi
  if ! grep -q "refusing --update-baseline" "$tmp/debug.log"; then
    echo "run_bench.sh --self-test: FAIL — Debug refusal lacks the guard message" >&2
    cat "$tmp/debug.log" >&2
    exit 1
  fi

  echo "CMAKE_BUILD_TYPE:STRING=Release" > "$tmp/build/CMakeCache.txt"
  if ! BSLD_BENCH_BASELINE="$tmp/baseline.json" \
      "$script_path" --update-baseline "$tmp/build" "$tmp/out.json" \
      > "$tmp/release.log" 2>&1; then
    echo "run_bench.sh --self-test: FAIL — a Release build was refused" >&2
    cat "$tmp/release.log" >&2
    exit 1
  fi
  if [[ ! -s "$tmp/baseline.json" ]]; then
    echo "run_bench.sh --self-test: FAIL — Release run left no baseline" >&2
    exit 1
  fi

  echo "run_bench.sh --self-test: OK (Debug refused, Release accepted)"
  exit 0
}

compare_baseline=""
update_baseline=0
if_improved=0
while [[ $# -ge 1 ]]; do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "run_bench.sh: --compare needs a baseline file" >&2; exit 2; }
      compare_baseline="$2"
      shift 2
      ;;
    --update-baseline)
      update_baseline=1
      shift
      ;;
    --if-improved)
      if_improved=1
      shift
      ;;
    --self-test)
      self_test
      ;;
    *)
      break
      ;;
  esac
done

build_dir="${1:-build-bench}"
out="${2:-BENCH_micro.json}"
# Drop the two fixed arguments; ${1+"$@"} below forwards the rest safely
# even under `set -u` on old bash (empty "${@:3}" trips bash <= 4.3).
if [[ $# -ge 2 ]]; then shift 2; elif [[ $# -eq 1 ]]; then shift 1; fi
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cd "$repo_root"

if [[ $if_improved -eq 1 && $update_baseline -eq 0 ]]; then
  echo "run_bench.sh: --if-improved only applies with --update-baseline" >&2
  exit 2
fi

if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  # The default tree comes from the bench-release preset so every
  # measurement (and every committed baseline) is -O3 + LTO; explicitly
  # named trees are configured plainly, preserving whatever they are.
  if [[ "$build_dir" == "build-bench" ]]; then
    cmake --preset bench-release
  else
    cmake -B "$build_dir" -S .
  fi
  cmake --build "$build_dir" --target bench_micro -j
fi
if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  echo "run_bench.sh: $build_dir/bench/bench_micro is missing after the build" >&2
  exit 1
fi

# Read the build type up front: the stamp below wants it anyway, and
# --update-baseline must refuse a non-Release build *before* spending
# minutes benchmarking a binary whose numbers could never be committed.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" | head -n 1)"
if [[ -z "$build_type" ]]; then
  echo "run_bench.sh: cannot read CMAKE_BUILD_TYPE from $build_dir/CMakeCache.txt" >&2
  exit 1
fi
baseline_path="${BSLD_BENCH_BASELINE:-bench/BENCH_baseline.json}"
if [[ $update_baseline -eq 1 && "$build_type" != "Release" ]]; then
  echo "run_bench.sh: refusing --update-baseline from a $build_type build —" \
       "the committed baseline must come from Release (same rule" \
       "bench_compare.py enforces via the bsld_build_type stamp)" >&2
  exit 1
fi

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  ${1+"$@"}

if [[ ! -s "$out" ]]; then
  echo "run_bench.sh: bench_micro wrote no output to $out" >&2
  exit 1
fi
# A valid run always carries a non-empty `benchmarks` array; anything else
# (truncated file, crash mid-write, HTML error page from a wrapper) fails.
python3 scripts/bench_compare.py --check "$out"

# Stamp the build type the binary was compiled with into the artifact, so
# bench_compare can refuse Debug-vs-Release comparisons later. The cache
# always carries CMAKE_BUILD_TYPE here: the top-level CMakeLists.txt forces
# Release into it when unset, so an empty read means a broken build dir
# (caught above, before the run).
python3 scripts/bench_compare.py --stamp-build-type "$build_type" "$out"

echo "Wrote $out"

# Compare before any baseline refresh: `--compare X --update-baseline`
# must gate against the *old* baseline, not the file just overwritten.
if [[ -n "$compare_baseline" ]]; then
  python3 scripts/bench_compare.py "$out" "$compare_baseline" \
    --max-regression-pct "${BENCH_MAX_REGRESSION_PCT:-25}" \
    --guard bench/bench_guard.list
fi

if [[ $update_baseline -eq 1 ]]; then
  if [[ $if_improved -eq 1 && -s "$baseline_path" ]]; then
    # Zero tolerance against the baseline being replaced: a refresh must
    # never lower the bar. Failing the compare (including a build-type
    # stamp mismatch) refuses the update.
    if ! python3 scripts/bench_compare.py "$out" "$baseline_path" \
        --max-regression-pct 0 --guard bench/bench_guard.list; then
      echo "run_bench.sh: refusing --update-baseline: a guarded benchmark" \
           "is slower than the current baseline (drop --if-improved to" \
           "accept a regression deliberately)" >&2
      exit 1
    fi
  fi
  cp "$out" "$baseline_path"
  echo "Updated $baseline_path"
fi
