#!/usr/bin/env bash
# Runs the microbenchmark suite and emits BENCH_micro.json (google-benchmark
# JSON format) to seed the performance trajectory. Extra arguments are
# forwarded to bench_micro (e.g. --benchmark_min_time=0.01s for CI smokes).
#
# Usage: scripts/run_bench.sh [build-dir] [output.json] [bench args...]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_micro.json}"
# Drop the two fixed arguments; ${1+"$@"} below forwards the rest safely
# even under `set -u` on old bash (empty "${@:3}" trips bash <= 4.3).
if [[ $# -ge 2 ]]; then shift 2; elif [[ $# -eq 1 ]]; then shift 1; fi
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cd "$repo_root"

if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" --target bench_micro -j
fi

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  ${1+"$@"}

echo "Wrote $out"
