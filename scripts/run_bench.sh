#!/usr/bin/env bash
# Runs the microbenchmark suite and emits BENCH_micro.json (google-benchmark
# JSON format) to seed the performance trajectory.
#
# Usage: scripts/run_bench.sh [build-dir] [output.json]
set -euo pipefail

build_dir="${1:-build}"
out="${2:-BENCH_micro.json}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cd "$repo_root"

if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" --target bench_micro -j
fi

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out" \
  --benchmark_out_format=json

echo "Wrote $out"
