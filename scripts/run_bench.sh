#!/usr/bin/env bash
# Runs the microbenchmark suite and emits BENCH_micro.json (google-benchmark
# JSON format) to seed the performance trajectory. Fails loudly (non-zero
# exit) when bench_micro is missing, fails to run, or emits invalid JSON —
# an empty artifact must never be mistaken for a benchmark run.
#
# Usage:
#   scripts/run_bench.sh [options] [build-dir] [output.json] [bench args...]
#
# Options (must come first):
#   --compare BASELINE.json   After running, diff the fresh JSON against the
#                             baseline with scripts/bench_compare.py and exit
#                             non-zero on >BENCH_MAX_REGRESSION_PCT (default
#                             25) percent throughput regression in the
#                             benchmarks named in bench/bench_guard.list.
#   --update-baseline         After running, copy the fresh JSON over
#                             bench/BENCH_baseline.json (run on quiet
#                             hardware; commit the result).
#
# Extra arguments are forwarded to bench_micro (e.g.
# --benchmark_min_time=0.01s for CI smokes).
set -euo pipefail

compare_baseline=""
update_baseline=0
while [[ $# -ge 1 ]]; do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "run_bench.sh: --compare needs a baseline file" >&2; exit 2; }
      compare_baseline="$2"
      shift 2
      ;;
    --update-baseline)
      update_baseline=1
      shift
      ;;
    *)
      break
      ;;
  esac
done

build_dir="${1:-build}"
out="${2:-BENCH_micro.json}"
# Drop the two fixed arguments; ${1+"$@"} below forwards the rest safely
# even under `set -u` on old bash (empty "${@:3}" trips bash <= 4.3).
if [[ $# -ge 2 ]]; then shift 2; elif [[ $# -eq 1 ]]; then shift 1; fi
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cd "$repo_root"

if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" --target bench_micro -j
fi
if [[ ! -x "$build_dir/bench/bench_micro" ]]; then
  echo "run_bench.sh: $build_dir/bench/bench_micro is missing after the build" >&2
  exit 1
fi

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  ${1+"$@"}

if [[ ! -s "$out" ]]; then
  echo "run_bench.sh: bench_micro wrote no output to $out" >&2
  exit 1
fi
# A valid run always carries a non-empty `benchmarks` array; anything else
# (truncated file, crash mid-write, HTML error page from a wrapper) fails.
python3 scripts/bench_compare.py --check "$out"

# Stamp the build type the binary was compiled with into the artifact, so
# bench_compare can refuse Debug-vs-Release comparisons later. The cache
# always carries CMAKE_BUILD_TYPE here: the top-level CMakeLists.txt forces
# Release into it when unset, so an empty read means a broken build dir.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" | head -n 1)"
if [[ -z "$build_type" ]]; then
  echo "run_bench.sh: cannot read CMAKE_BUILD_TYPE from $build_dir/CMakeCache.txt" >&2
  exit 1
fi
python3 scripts/bench_compare.py --stamp-build-type "$build_type" "$out"

echo "Wrote $out"

# Compare before any baseline refresh: `--compare X --update-baseline`
# must gate against the *old* baseline, not the file just overwritten.
if [[ -n "$compare_baseline" ]]; then
  python3 scripts/bench_compare.py "$out" "$compare_baseline" \
    --max-regression-pct "${BENCH_MAX_REGRESSION_PCT:-25}" \
    --guard bench/bench_guard.list
fi

if [[ $update_baseline -eq 1 ]]; then
  cp "$out" bench/BENCH_baseline.json
  echo "Updated bench/BENCH_baseline.json"
fi
