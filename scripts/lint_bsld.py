#!/usr/bin/env python3
"""Project lint for the bsld tree (CI job `lint`, ctest `tools.lint`).

Checks the project conventions that neither the compiler nor clang-tidy
can express, over src/, tests/, examples/ and bench/:

  raw-parse        Raw numeric conversions (std::stod/stoi/atof/strtol
                   and friends) accept trailing garbage and throw types
                   nothing upstream catches. Every user-facing input path
                   must go through util::parse (src/util/parse.cpp is the
                   one place allowed to touch the raw primitives).
  determinism      src/sim, src/core and src/pm must stay bit-reproducible: no
                   rand()/srand(), no std::random_device, no wall-clock
                   reads (std::chrono::system_clock, time(), clock(),
                   gettimeofday). Randomness comes from util::rng with an
                   explicit seed; "time" means simulation time.
  new-delete       No naked `new`/`delete` expressions — ownership lives
                   in unique_ptr/shared_ptr/containers. (`= delete` and
                   std::default_delete are not naked delete.)
  catch-all        A `catch (...)` block must rethrow (`throw;`), capture
                   std::current_exception() for a later rethrow, or end
                   the process; silently swallowing every exception hides
                   real failures.
  pragma-once      Every header uses `#pragma once` (the include-guard
                   convention of this tree).
  include-hygiene  No `"../"` relative includes (all paths are rooted at
                   src/); a .cpp with a sibling header of the same stem
                   includes it first, so headers stay self-contained.
  tsa-escape       BSLD_NO_THREAD_SAFETY_ANALYSIS disables the clang
                   thread-safety proof for a function; every use must
                   carry a comment (same or preceding line) saying why.
  iostream         Library code under src/ must not include <iostream>:
                   diagnostics go through util::log, payload output goes
                   through the sinks/CSV writers. The CLI/daemon entry
                   points that legitimately own stdout/stderr carry a
                   suppression naming that fact.
  eager-ingest     src/sim must not call wl::load_source(): the core
                   pulls jobs through wl::open_stream()/JobStream under a
                   bounded lookahead window, so a materialized trace
                   (O(jobs) memory) can never sneak back into the
                   simulation loop.

The architecture-level rules (include-graph layering, cycles, orphan
headers, [[nodiscard]]/noexcept API contracts) live in the sibling tool
scripts/arch_check.py; both share the suppression machinery in
scripts/bsld_lint_common.py.

Suppression — one finding at a time, never blanket, reason mandatory:

    do_thing();  // bsld-lint: allow(<rule>): <why this one is fine>

or, when the line is too long, alone on the line directly above:

    // bsld-lint: allow(<rule>): <why this one is fine>
    do_thing();

A `bsld-lint:` comment that is malformed (unknown rule, missing reason)
is itself reported (`bad-suppression`) and suppresses nothing.

Usage:
    scripts/lint_bsld.py              lint the tree; exit 1 on findings
    scripts/lint_bsld.py --self-test  run over tests/lint_fixtures and
                                      compare against lint-expect markers
    scripts/lint_bsld.py --list-rules describe every rule
"""

import argparse
import re
import sys
from pathlib import Path

from bsld_lint_common import (
    FIXTURES,
    LINT_RULES,
    SCAN_DIRS,
    SUFFIXES,
    SUPPRESS_HINT_RE,
    Finding,
    collect_expected,
    expect_re,
    strip_comments_and_strings,
    suppressions_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
# arch_check.py owns its own fixture subtree (planted *architecture*
# violations, annotated with arch-expect markers); this tool's self-test
# must not interpret those files.
ARCH_FIXTURES = "arch/"

# ---------------------------------------------------------------------------
# Rules. A rule is a function (path, raw_lines, code_lines, code_text)
# -> [(line, message)]; `path` is relative to the scan root with forward
# slashes.
# ---------------------------------------------------------------------------

RAW_PARSE_RE = re.compile(
    r"(?:\bstd::|(?<![\w:.]))"
    r"(sto[dfil]|stoll|stold|stoul|stoull|atof|atoi|atol|atoll"
    r"|strto(?:d|f|ld|l|ll|ul|ull|imax|umax))\s*\("
)

DETERMINISM_RE = re.compile(
    r"\bstd::random_device\b|\bstd::chrono::system_clock\b"
    r"|(?<![\w:.>])(rand|srand|gettimeofday|clock|time)\s*\("
)

NEW_RE = re.compile(r"(?<![\w:])new\b")
DELETE_RE = re.compile(r"(?<![\w:])delete\b(\s*\[\s*\])?")
CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]')
IOSTREAM_RE = re.compile(r'^\s*#\s*include\s*[<"]iostream[>"]')
TSA_ESCAPE = "BSLD_NO_THREAD_SAFETY_ANALYSIS"
EAGER_INGEST_RE = re.compile(r"(?<![\w:])(?:wl::|workload::)?load_source\s*\(")


def rule_raw_parse(path, raw, code, text):
    if path == "src/util/parse.cpp":  # the one sanctioned implementation site
        return []
    findings = []
    for i, line in enumerate(code, 1):
        match = RAW_PARSE_RE.search(line)
        if match:
            findings.append(
                (i, f"raw numeric conversion `{match.group(1)}` — "
                    "use util::parse_*/require_* (util/parse.hpp)"))
    return findings


def rule_determinism(path, raw, code, text):
    if not (path.startswith("src/sim/") or path.startswith("src/core/")
            or path.startswith("src/pm/")):
        return []
    findings = []
    for i, line in enumerate(code, 1):
        match = DETERMINISM_RE.search(line)
        if match:
            what = match.group(1) or match.group(0)
            findings.append(
                (i, f"nondeterminism source `{what}` in simulation code — "
                    "seed util::rng explicitly; use simulation time"))
    return findings


def rule_new_delete(path, raw, code, text):
    findings = []
    for i, line in enumerate(code, 1):
        if NEW_RE.search(line):
            findings.append(
                (i, "naked `new` — own it with make_unique/make_shared"))
        for match in DELETE_RE.finditer(line):
            before = line[: match.start()].rstrip()
            if before.endswith("="):  # deleted special member, not a delete-expr
                continue
            findings.append(
                (i, "naked `delete` — let a smart pointer own the object"))
    return findings


def rule_catch_all(path, raw, code, text):
    findings = []
    for match in CATCH_ALL_RE.finditer(text):
        open_brace = text.find("{", match.end())
        if open_brace == -1:
            continue
        depth, j = 1, open_brace + 1
        while j < len(text) and depth > 0:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        body = text[open_brace:j]
        line = text.count("\n", 0, match.start()) + 1
        if not re.search(r"\bthrow\b|\bcurrent_exception\b|\b_exit\b"
                         r"|\babort\b|\bexit\b|\bterminate\b", body):
            findings.append(
                (line, "catch (...) swallows every exception — rethrow, "
                       "capture std::current_exception(), or die loudly"))
    return findings


def rule_pragma_once(path, raw, code, text):
    if not path.endswith(".hpp"):
        return []
    if any(line.lstrip().startswith("#pragma once") for line in code):
        return []
    return [(1, "header without `#pragma once`")]


def rule_include_hygiene(path, raw, code, text):
    findings = []
    for i, line in enumerate(raw, 1):
        match = INCLUDE_RE.match(line)
        if match and "../" in match.group(1):
            findings.append(
                (i, f'relative include "{match.group(1)}" — include '
                    "paths are rooted at src/"))
    return findings


def rule_iostream(path, raw, code, text):
    # Library code only: tests, benches and examples own their stdout.
    if not path.startswith("src/"):
        return []
    findings = []
    for i, line in enumerate(code, 1):
        if IOSTREAM_RE.match(line):
            findings.append(
                (i, "#include <iostream> in library code — diagnostics go "
                    "through util::log; only CLI/daemon entry points may "
                    "own std::cout/cerr (suppress with the reason)"))
    return findings


def rule_own_header_first(scan_root, path, raw, findings_out):
    # Part of include-hygiene, needs filesystem context: a .cpp whose
    # sibling <stem>.hpp exists must include it before anything else, so
    # every header is proven self-contained by its own translation unit.
    file_path = scan_root / path
    if file_path.suffix != ".cpp":
        return
    sibling = file_path.with_suffix(".hpp")
    if not sibling.exists():
        return
    for i, line in enumerate(raw, 1):
        match = INCLUDE_RE.match(line)
        if match:
            if Path(match.group(1)).name != sibling.name:
                findings_out.append(Finding(
                    path, i, "include-hygiene",
                    f"first include must be the file's own header "
                    f'"{sibling.name}" (keeps headers self-contained)'))
            return


def rule_eager_ingest(path, raw, code, text):
    # The simulation core pulls jobs through wl::JobStream under a bounded
    # lookahead window; materializing a whole trace inside src/sim would
    # silently reintroduce O(jobs) memory on the million-job path.
    if not path.startswith("src/sim/"):
        return []
    findings = []
    for i, line in enumerate(code, 1):
        if EAGER_INGEST_RE.search(line):
            findings.append(
                (i, "load_source() inside src/sim materializes the whole "
                    "trace — pull jobs through wl::open_stream()/JobStream "
                    "(callers that need a vector materialize outside sim)"))
    return findings


def rule_tsa_escape(path, raw, code, text):
    if path == "src/util/thread_annotations.hpp":  # the definition site
        return []
    findings = []
    lint_expect = expect_re("lint-expect")

    def justifies(comment):
        # A lint directive/marker is not an explanation.
        return not (lint_expect.search(comment)
                    or SUPPRESS_HINT_RE.search(comment))

    for i, line in enumerate(code, 1):
        if TSA_ESCAPE not in line:
            continue
        trailing = raw[i - 1].split(TSA_ESCAPE, 1)[1]
        same = "//" in trailing and justifies(trailing)
        prev_line = raw[i - 2].lstrip() if i >= 2 else ""
        prev = prev_line.startswith("//") and justifies(prev_line)
        if not (same or prev):
            findings.append(
                (i, f"{TSA_ESCAPE} without a justifying comment on the "
                    "same or preceding line"))
    return findings


RULES = {
    "raw-parse": (rule_raw_parse,
                  "raw std::stod/stoi/atof/strtol-family calls outside "
                  "src/util/parse.cpp"),
    "determinism": (rule_determinism,
                    "rand()/std::random_device/wall-clock reads in src/sim, "
                    "src/core and src/pm"),
    "new-delete": (rule_new_delete,
                   "naked new/delete expressions anywhere in the tree"),
    "catch-all": (rule_catch_all,
                  "catch (...) blocks that swallow instead of rethrowing, "
                  "capturing, or dying"),
    "pragma-once": (rule_pragma_once,
                    "headers missing #pragma once"),
    "include-hygiene": (rule_include_hygiene,
                        '"../" relative includes; own header not included '
                        "first"),
    "tsa-escape": (rule_tsa_escape,
                   "BSLD_NO_THREAD_SAFETY_ANALYSIS uses without a comment "
                   "explaining why"),
    "iostream": (rule_iostream,
                 "#include <iostream> in library code under src/ (use "
                 "util::log; entry points suppress with a reason)"),
    "eager-ingest": (rule_eager_ingest,
                     "wl::load_source() call sites in src/sim — the core "
                     "ingests jobs through the streaming JobStream window"),
}

assert set(RULES) == set(LINT_RULES), (
    "rule list out of sync with bsld_lint_common.LINT_RULES")


def lint_file(scan_root, path):
    raw_text = (scan_root / path).read_text(encoding="utf-8")
    raw_lines = raw_text.split("\n")
    code_text = strip_comments_and_strings(raw_text)
    code_lines = code_text.split("\n")

    covered, bad = suppressions_for(raw_lines)
    findings = [Finding(path, line, "bad-suppression", msg)
                for line, msg in bad]
    for rule_name, (rule_fn, _) in RULES.items():
        for line, message in rule_fn(path, raw_lines, code_lines, code_text):
            if rule_name in covered.get(line, ()):
                continue
            findings.append(Finding(path, line, rule_name, message))
    rule_own_header_first(scan_root, path, raw_lines, findings)
    findings = [f for f in findings
                if not (f.rule in covered.get(f.line, ())
                        and f.rule != "bad-suppression")]
    return findings


def collect_files(scan_root, include_fixtures):
    files = []
    for sub in SCAN_DIRS if scan_root == REPO_ROOT else ("",):
        base = scan_root / sub if sub else scan_root
        if not base.is_dir():
            continue
        for file_path in sorted(base.rglob("*")):
            if file_path.suffix not in SUFFIXES:
                continue
            rel = file_path.relative_to(scan_root).as_posix()
            if not include_fixtures and rel.startswith(FIXTURES):
                continue
            if include_fixtures and rel.startswith(ARCH_FIXTURES):
                continue  # arch_check.py's fixtures, not ours
            files.append(rel)
    return files


def run_lint(scan_root, include_fixtures=False):
    findings = []
    for rel in collect_files(scan_root, include_fixtures):
        findings.extend(lint_file(scan_root, rel))
    return findings


def self_test():
    """Lints tests/lint_fixtures and diffs against lint-expect markers."""
    root = REPO_ROOT / FIXTURES
    if not root.is_dir():
        print(f"lint_bsld: fixtures directory {root} missing", file=sys.stderr)
        return 1
    files = collect_files(root, include_fixtures=True)
    expected = collect_expected(root, files, "lint-expect")
    actual = {(f.path, f.line, f.rule) for f in run_lint(
        root, include_fixtures=True)}
    missing = expected - actual
    surprise = actual - expected
    for rel, line, rule in sorted(missing):
        print(f"self-test: expected [{rule}] at {rel}:{line}, not reported")
    for rel, line, rule in sorted(surprise):
        print(f"self-test: unexpected [{rule}] at {rel}:{line}")
    if missing or surprise:
        print(f"lint_bsld --self-test: FAIL "
              f"({len(missing)} missing, {len(surprise)} unexpected)")
        return 1
    print(f"lint_bsld --self-test: OK ({len(expected)} planted findings "
          f"all reported, suppressed lines all quiet)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="bsld project lint (see module docstring)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint tests/lint_fixtures against its "
                             "lint-expect markers")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to lint (default: the repo)")
    args = parser.parse_args()

    if args.list_rules:
        width = max(len(name) for name in RULES) + 2
        for name, (_, description) in RULES.items():
            print(f"{name:<{width}}{description}")
        print(f"{'bad-suppression':<{width}}malformed bsld-lint comments "
              "(reported, never suppressing)")
        print("\nsuppression: // bsld-lint: allow(<rule>): <reason>   "
              "(same line, or alone on the line above)")
        return 0

    if args.self_test:
        return self_test()

    findings = run_lint(args.root.resolve())
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_bsld: {len(findings)} finding(s)")
        return 1
    print("lint_bsld: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
