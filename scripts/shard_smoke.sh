#!/usr/bin/env bash
# Shard/merge and cache parity smoke: proves on every PR (and in ctest, as
# examples.shard_merge_parity) that
#   1. running a sweep as 2 shards + `bsldsim --merge-shards` is
#      byte-identical to the serial run, for both CSV and JSONL output;
#   2. re-running the sweep against a populated cache is a 100% hit run
#      with byte-identical output.
#
# Usage: scripts/shard_smoke.sh <bsldsim-binary> <sweep-grid.conf>
set -euo pipefail

bsldsim="$1"
grid="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for format in csv jsonl; do
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    > "$workdir/serial.$format" 2>/dev/null
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    --shard-count 2 --shard-index 0 > "$workdir/s0.$format" 2>/dev/null
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    --shard-count 2 --shard-index 1 > "$workdir/s1.$format" 2>/dev/null
  "$bsldsim" --merge-shards "$workdir/s0.$format,$workdir/s1.$format" \
    > "$workdir/merged.$format"
  diff "$workdir/serial.$format" "$workdir/merged.$format" \
    || { echo "shard_smoke: $format merge differs from the serial run" >&2; exit 1; }
  echo "shard_smoke: $format shard/merge parity OK"
done

cache="$workdir/cache"
"$bsldsim" --sweep "$grid" --format csv --threads 2 --cache-dir "$cache" \
  > "$workdir/cold.csv" 2>"$workdir/cold.log"
"$bsldsim" --sweep "$grid" --format csv --threads 2 --cache-dir "$cache" \
  > "$workdir/warm.csv" 2>"$workdir/warm.log"
diff "$workdir/cold.csv" "$workdir/warm.csv" \
  || { echo "shard_smoke: warm cache output differs from cold run" >&2; exit 1; }
grep -q ", 0 executed," "$workdir/warm.log" \
  || { echo "shard_smoke: warm run still executed simulations:" >&2; cat "$workdir/warm.log" >&2; exit 1; }
echo "shard_smoke: cache warm-run parity OK (100% hits)"
