#!/usr/bin/env bash
# Shard/merge and cache parity smoke: proves on every PR (and in ctest, as
# examples.shard_merge_parity) that
#   1. running a sweep as 2 shards + `bsldsim --merge-shards` is
#      byte-identical to the serial run, for both CSV and JSONL output;
#   2. re-running the sweep against a populated cache is a 100% hit run
#      with byte-identical output.
#
#   3. --merge-shards survives its edge cases: an empty shard (header-only
#      CSV or zero-byte JSONL) contributes nothing, and a missing shard
#      file fails loudly instead of emitting a truncated "serial" result.
#
# Usage: scripts/shard_smoke.sh <bsldsim-binary> <sweep-grid.conf>
set -euo pipefail

bsldsim="$1"
grid="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for format in csv jsonl; do
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    > "$workdir/serial.$format" 2>/dev/null
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    --shard-count 2 --shard-index 0 > "$workdir/s0.$format" 2>/dev/null
  "$bsldsim" --sweep "$grid" --format "$format" --threads 2 \
    --shard-count 2 --shard-index 1 > "$workdir/s1.$format" 2>/dev/null
  "$bsldsim" --merge-shards "$workdir/s0.$format,$workdir/s1.$format" \
    > "$workdir/merged.$format"
  diff "$workdir/serial.$format" "$workdir/merged.$format" \
    || { echo "shard_smoke: $format merge differs from the serial run" >&2; exit 1; }
  echo "shard_smoke: $format shard/merge parity OK"
done

cache="$workdir/cache"
"$bsldsim" --sweep "$grid" --format csv --threads 2 --cache-dir "$cache" \
  > "$workdir/cold.csv" 2>"$workdir/cold.log"
"$bsldsim" --sweep "$grid" --format csv --threads 2 --cache-dir "$cache" \
  > "$workdir/warm.csv" 2>"$workdir/warm.log"
diff "$workdir/cold.csv" "$workdir/warm.csv" \
  || { echo "shard_smoke: warm cache output differs from cold run" >&2; exit 1; }
grep -q ", 0 executed," "$workdir/warm.log" \
  || { echo "shard_smoke: warm run still executed simulations:" >&2; cat "$workdir/warm.log" >&2; exit 1; }
echo "shard_smoke: cache warm-run parity OK (100% hits)"

# An empty shard: a partition can legitimately hold zero specs (more
# shards than distinct specs), whose output is a bare CSV header or a
# zero-byte JSONL file. Merging it must be a no-op.
head -1 "$workdir/serial.csv" > "$workdir/empty.csv"
"$bsldsim" --merge-shards "$workdir/s0.csv,$workdir/s1.csv,$workdir/empty.csv" \
  > "$workdir/merged_empty.csv"
diff "$workdir/serial.csv" "$workdir/merged_empty.csv" \
  || { echo "shard_smoke: empty CSV shard changed the merge" >&2; exit 1; }
: > "$workdir/empty.jsonl"
"$bsldsim" --merge-shards "$workdir/serial.jsonl,$workdir/empty.jsonl" \
  > "$workdir/merged_empty.jsonl"
diff "$workdir/serial.jsonl" "$workdir/merged_empty.jsonl" \
  || { echo "shard_smoke: empty JSONL shard changed the merge" >&2; exit 1; }
echo "shard_smoke: empty-shard merge OK"

# A missing shard file must be a loud, named error — not a silently
# truncated result set.
if "$bsldsim" --merge-shards "$workdir/s0.csv,$workdir/no_such_shard.csv" \
    > /dev/null 2> "$workdir/missing.log"; then
  echo "shard_smoke: merge with a missing shard file did not fail" >&2
  exit 1
fi
grep -q "cannot read shard file" "$workdir/missing.log" \
  || { echo "shard_smoke: missing-shard diagnostic not found:" >&2; cat "$workdir/missing.log" >&2; exit 1; }
echo "shard_smoke: missing-shard diagnostics OK"
