#!/usr/bin/env python3
"""Architecture lint for the bsld tree (CI job `lint`, ctest `tools.arch`).

Where scripts/lint_bsld.py checks line-level conventions, this tool checks
the *structure* of the tree: it parses the full `#include` graph of src/,
tests/, bench/ and examples/, validates it against the layer DAG declared
in scripts/layers.conf, and audits the API contracts of the outward-facing
modules. The layer contract (util -> cluster/power/workload/core -> sim ->
report -> server) is what keeps the simulation core a dependency island —
a sim/ file that quietly includes report/ would make every planned rewrite
of the hot path riskier, so the boundary is enforced by a tool, not a
comment.

Rules:

  layer-violation   A src/ file includes a module that is not in its
                    module's allowed-dependency list in layers.conf
                    (upward includes, undeclared sideways edges).
  skip-interface    An include that jumps more than one layer down must
                    go through the target module's declared `interface`
                    headers — its intended surface, not its internals.
  include-cycle     Strongly connected components in the file-level
                    include graph (the cycle path is printed). Cycles
                    compile today via #pragma once but make headers
                    order-dependent and unsplittable.
  orphan-header     A header included by nobody (its own .cpp aside) is
                    dead API surface: nothing can call it, and it silently
                    rots. Delete it or include it from a consumer.
  missing-nodiscard Public functions in report/, server/ and util/
                    headers returning status-like values (bool,
                    std::optional, *Status/*ErrorCode types) must be
                    [[nodiscard]] — a dropped status is a swallowed error.
  noexcept-throws   A bare `noexcept` on a function whose body contains
                    throwing constructs (throw, BSLD_REQUIRE,
                    util::require_*, .at()) turns the first error into
                    std::terminate. Either the claim or the body is wrong.

Suppression uses the same syntax as lint_bsld.py (shared machinery in
scripts/bsld_lint_common.py), one finding at a time, reason mandatory:

    void f() noexcept {  // bsld-lint: allow(noexcept-throws): <why>

Malformed markers are reported as `bad-suppression` and suppress nothing.

The module-collapsed include graph is also emitted as Graphviz
(build/arch_graph.dot by default; `dot -Tsvg` renders it) and uploaded as
a CI artifact, so "what depends on what" has a current, generated answer.

Usage:
    scripts/arch_check.py              check the tree; exit 1 on findings
    scripts/arch_check.py --self-test  run over tests/lint_fixtures/arch
                                       and compare against arch-expect
                                       markers
    scripts/arch_check.py --list-rules describe every rule
    scripts/arch_check.py --dot PATH   where to write the module graph
                                       (default build/arch_graph.dot;
                                       --no-dot disables)
"""

import argparse
import re
import sys
from pathlib import Path

from bsld_lint_common import (
    ARCH_RULES,
    FIXTURES,
    SCAN_DIRS,
    SUFFIXES,
    Finding,
    collect_expected,
    strip_comments_and_strings,
    suppressions_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
ARCH_FIXTURES = f"{FIXTURES}/arch"

# Modules whose public headers get the [[nodiscard]] audit: the outward-
# facing API (server protocol, report results, util vocabulary) where a
# dropped status value is a swallowed error at a process boundary.
NODISCARD_MODULES = ("report", "server", "util")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


# ---------------------------------------------------------------------------
# layers.conf
# ---------------------------------------------------------------------------


class LayerConf:
    """Parsed scripts/layers.conf: the declared architecture."""

    def __init__(self):
        self.allowed = {}    # module -> set of allowed dep modules
        self.layer = {}      # module -> layer rank (int)
        self.interface = {}  # module -> set of interface header paths

    @staticmethod
    def parse(path):
        conf = LayerConf()

        def die(lineno, message):
            sys.exit(f"arch_check: {path}:{lineno}: {message}")

        try:
            lines = path.read_text(encoding="utf-8").split("\n")
        except OSError as error:
            sys.exit(f"arch_check: cannot read {path}: {error}")

        for i, raw in enumerate(lines, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            head, sep, tail = line.partition(":")
            if not sep:
                die(i, f"expected `name: ...`, got `{line}`")
            head, fields = head.strip().split(), tail.split()
            if head[0] == "layer":
                if len(head) != 2 or not head[1].isdigit():
                    die(i, "expected `layer <rank>: <modules...>`")
                rank = int(head[1])
                for module in fields:
                    if module in conf.layer:
                        die(i, f"module `{module}` assigned to two layers")
                    conf.layer[module] = rank
            elif head[0] == "interface":
                if len(head) != 2:
                    die(i, "expected `interface <module>: <headers...>`")
                module = head[1]
                if module in conf.interface:
                    die(i, f"duplicate interface line for `{module}`")
                if not fields:
                    die(i, f"empty interface list for `{module}`")
                for header in fields:
                    if not header.startswith(module + "/"):
                        die(i, f"interface header `{header}` does not live "
                               f"in module `{module}`")
                conf.interface[module] = set(fields)
            elif len(head) == 1:
                module = head[0]
                if module in conf.allowed:
                    die(i, f"duplicate dependency line for `{module}`")
                conf.allowed[module] = set(fields)
                if module in conf.allowed[module]:
                    die(i, f"module `{module}` lists itself as a dependency")
            else:
                die(i, f"unrecognized directive `{line}`")

        # Cross-validation: the conf must describe one coherent DAG.
        for module in conf.allowed:
            if module not in conf.layer:
                sys.exit(f"arch_check: {path}: module `{module}` has a "
                         "dependency line but no layer")
        for module in conf.layer:
            if module not in conf.allowed:
                sys.exit(f"arch_check: {path}: module `{module}` is in a "
                         "layer but has no dependency line (add "
                         f"`{module}:` even if it depends on nothing)")
        for module, deps in conf.allowed.items():
            for dep in deps:
                if dep not in conf.allowed:
                    sys.exit(f"arch_check: {path}: `{module}` lists unknown "
                             f"dependency `{dep}`")
                if conf.layer[dep] > conf.layer[module]:
                    sys.exit(f"arch_check: {path}: `{module}` (layer "
                             f"{conf.layer[module]}) may not depend on "
                             f"`{dep}` (layer {conf.layer[dep]}) — upward "
                             "edge in the declared DAG itself")
        for module in conf.interface:
            if module not in conf.allowed:
                sys.exit(f"arch_check: {path}: interface line for unknown "
                         f"module `{module}`")
        # Same-layer edges could still form a cycle; refuse that too.
        state = {}  # 0 visiting, 1 done

        def visit(module, trail):
            if state.get(module) == 1:
                return
            if state.get(module) == 0:
                cycle = trail[trail.index(module):] + [module]
                sys.exit(f"arch_check: {path}: dependency cycle in the "
                         "declared DAG: " + " -> ".join(cycle))
            state[module] = 0
            for dep in sorted(conf.allowed[module]):
                visit(dep, trail + [module])
            state[module] = 1

        for module in sorted(conf.allowed):
            visit(module, [])
        return conf


# ---------------------------------------------------------------------------
# Include graph
# ---------------------------------------------------------------------------


class SourceFile:
    def __init__(self, rel, raw_text):
        self.rel = rel                      # posix path relative to root
        self.raw_lines = raw_text.split("\n")
        self.code_text = strip_comments_and_strings(raw_text)
        self.code_lines = self.code_text.split("\n")
        self.includes = []                  # (line, include_text)
        # Include paths are string literals — read them from the raw
        # lines (the stripper blanks them), but only where the stripped
        # line still starts a preprocessor directive, so commented-out
        # includes don't count.
        for i, (raw_line, code_line) in enumerate(
                zip(self.raw_lines, self.code_lines), 1):
            if not code_line.lstrip().startswith("#"):
                continue
            match = INCLUDE_RE.match(raw_line)
            if match:
                self.includes.append((i, match.group(1)))
        self.covered, self.bad_suppressions = suppressions_for(self.raw_lines)

    def module(self):
        """src/<mod>/... -> <mod>; consumers (tests/bench/examples) -> None."""
        parts = self.rel.split("/")
        if parts[0] == "src" and len(parts) > 2:
            return parts[1]
        return None


class IncludeGraph:
    def __init__(self, root):
        self.root = root
        self.files = {}   # rel -> SourceFile
        self.edges = {}   # rel -> [(line, include_text, resolved_rel|None)]

        rels = []
        scan_dirs = [d for d in SCAN_DIRS if (root / d).is_dir()]
        for sub in scan_dirs:
            for path in sorted((root / sub).rglob("*")):
                if path.suffix not in SUFFIXES:
                    continue
                rel = path.relative_to(root).as_posix()
                if root == REPO_ROOT and rel.startswith(FIXTURES):
                    continue
                rels.append(rel)
        for rel in rels:
            self.files[rel] = SourceFile(
                rel, (root / rel).read_text(encoding="utf-8"))

        # Quoted includes resolve the way the build's -I flags do: against
        # src/, against the includer's scan root (tests/, bench/,
        # examples/ add their own dir), then against the includer's own
        # directory.
        for rel, source in self.files.items():
            base = rel.split("/", 1)[0]
            resolved_edges = []
            for line, inc in source.includes:
                candidates = [f"src/{inc}", f"{base}/{inc}",
                              (Path(rel).parent / inc).as_posix()]
                resolved = next(
                    (c for c in candidates if c in self.files), None)
                resolved_edges.append((line, inc, resolved))
            self.edges[rel] = resolved_edges

    def module_edges(self):
        """Collapses to module level: (from, to) -> include count."""
        counts = {}
        for rel, edges in self.edges.items():
            src_mod = self.files[rel].module() or rel.split("/", 1)[0]
            for _, _, resolved in edges:
                if resolved is None:
                    continue
                dst_mod = (self.files[resolved].module()
                           or resolved.split("/", 1)[0])
                if src_mod != dst_mod:
                    counts[(src_mod, dst_mod)] = (
                        counts.get((src_mod, dst_mod), 0) + 1)
        return counts


# ---------------------------------------------------------------------------
# Graph rules
# ---------------------------------------------------------------------------


def check_modules_declared(graph, conf):
    """Every src/ module on disk must be declared, and vice versa."""
    on_disk = {f.module() for f in graph.files.values()} - {None}
    for module in sorted(on_disk - set(conf.allowed)):
        sys.exit(f"arch_check: module `src/{module}/` exists on disk but is "
                 "not declared in layers.conf — declare its layer and "
                 "dependencies")
    for module in sorted(set(conf.allowed) - on_disk):
        sys.exit(f"arch_check: layers.conf declares module `{module}` but "
                 "src/ has no such directory (stale entry?)")


def rule_layers(graph, conf):
    findings = []
    for rel, edges in sorted(graph.edges.items()):
        src_mod = graph.files[rel].module()
        if src_mod is None:
            continue  # tests/bench/examples sit above every layer
        for line, inc, resolved in edges:
            if resolved is None:
                continue
            dst_mod = graph.files[resolved].module()
            if dst_mod is None or dst_mod == src_mod:
                continue
            if dst_mod not in conf.allowed[src_mod]:
                allowed = ", ".join(sorted(conf.allowed[src_mod])) or "none"
                findings.append(Finding(
                    rel, line, "layer-violation",
                    f"`{src_mod}` may not include `{dst_mod}` "
                    f"(allowed dependencies: {allowed})"))
                continue
            skip = conf.layer[src_mod] - conf.layer[dst_mod]
            interface = conf.interface.get(dst_mod)
            if skip >= 2 and interface and inc not in interface:
                surface = ", ".join(sorted(interface))
                findings.append(Finding(
                    rel, line, "skip-interface",
                    f"layer-skipping include of `{dst_mod}` internals "
                    f"(\"{inc}\") — go through its interface headers: "
                    f"{surface}"))
    return findings


def tarjan_sccs(nodes, succ):
    """Iterative Tarjan; returns SCCs as lists (reverse topological)."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for start in nodes:
        if start in index:
            continue
        work = [(start, iter(succ(start)))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(succ(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def rule_cycles(graph):
    succ_map = {
        rel: sorted({r for _, _, r in edges if r is not None})
        for rel, edges in graph.edges.items()}
    findings = []
    for scc in tarjan_sccs(sorted(graph.files), lambda n: succ_map[n]):
        members = set(scc)
        is_cycle = len(scc) > 1 or scc[0] in succ_map[scc[0]]
        if not is_cycle:
            continue
        anchor = min(scc)
        # Shortest path anchor -> ... -> anchor inside the SCC (BFS).
        path = None
        queue = [[anchor]]
        seen = set()
        while queue and path is None:
            trail = queue.pop(0)
            for nxt in succ_map[trail[-1]]:
                if nxt == anchor and len(trail) >= 1:
                    path = trail + [anchor]
                    break
                if nxt in members and nxt not in seen:
                    seen.add(nxt)
                    queue.append(trail + [nxt])
        line = next((ln for ln, _, resolved in graph.edges[anchor]
                     if resolved in members), 1)
        cycle = " -> ".join(path or scc + [anchor])
        findings.append(Finding(
            anchor, line, "include-cycle",
            f"include cycle: {cycle} — break it with a forward declaration "
            "or by splitting the header"))
    return findings


def rule_orphans(graph):
    included_by = {}  # rel -> set of includers
    for rel, edges in graph.edges.items():
        for _, _, resolved in edges:
            if resolved is not None:
                included_by.setdefault(resolved, set()).add(rel)
    findings = []
    for rel in sorted(graph.files):
        if not rel.endswith(".hpp"):
            continue
        sibling = rel[:-len(".hpp")] + ".cpp"
        includers = included_by.get(rel, set()) - {sibling}
        if not includers:
            findings.append(Finding(
                rel, 1, "orphan-header",
                "header is included by nobody (its own .cpp aside) — "
                "dead API surface; delete it or wire in its consumer"))
    return findings


# ---------------------------------------------------------------------------
# API-contract audit
# ---------------------------------------------------------------------------

# Status-like return types. The lookbehind rejects template-argument
# positions (vector<optional<...>> is a value, not a status) and the gap
# class rejects reference/pointer returns (a reference to state is a
# getter, not a status).
STATUS_RETURN_RE = re.compile(
    r"(?<![<,\w])"
    r"(?P<ret>(?:\bbool\b|\b(?:std::)?optional\s*<[^;{}()]*>"
    r"|\b\w+(?:Status|ErrorCode)\b)[^\w;{}()&*]*)"
    r"(?P<name>\w+)\s*\(")
NODISCARD = "[[nodiscard]]"
HEAD_KEYWORD_RE = re.compile(r"\b(enum|class|struct|namespace|union)\b")
ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")
BARE_NOEXCEPT_RE = re.compile(r"\bnoexcept\b(?!\s*\()")
THROWING_RE = re.compile(
    r"\bthrow\b|\bBSLD_REQUIRE\b|\brequire_(?:double|int|uint)\b"
    r"|\.at\s*\(")


def scope_spans(text):
    """Classifies every brace scope of stripped source text.

    Returns a list of (start, end, audited) character spans, outermost
    first, where `audited` says whether a declaration directly inside the
    span is public API: namespace scopes and the public sections of
    classes/structs are; function bodies, enums and private sections are
    not. Top level (no braces) is audited.
    """
    spans = []  # (start, kind) on the stack; emitted on close
    stack = []
    result = []
    boundary = 0  # start of the current statement head
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in ";}":
            boundary = i + 1
        if ch == "{":
            head = text[boundary:i]
            keywords = HEAD_KEYWORD_RE.findall(head)
            if "enum" in keywords:
                kind = "other"
            elif "class" in keywords or "struct" in keywords \
                    or "union" in keywords:
                kind = "struct" if "struct" in keywords else "class"
                if "union" in keywords:
                    kind = "other"
            elif "namespace" in keywords:
                kind = "namespace"
            else:
                kind = "other"
            stack.append([i, kind])
            boundary = i + 1
        elif ch == "}":
            if stack:
                start, kind = stack.pop()
                result.append((start, i, kind))
        i += 1
    for start, kind in stack:  # unbalanced (truncated file): close at EOF
        result.append((start, n, kind))
    return result


def audit_context(text):
    """Returns fn(pos) -> True when a decl at `pos` is public API."""
    spans = scope_spans(text)
    access_marks = [(m.start(), m.group(1)) for m in ACCESS_RE.finditer(text)]

    def audited(pos):
        # Innermost enclosing scope decides.
        enclosing = [s for s in spans if s[0] < pos <= s[1]]
        if not enclosing:
            return True  # top level
        start, end, kind = max(enclosing, key=lambda s: s[0])
        if kind == "namespace":
            return True
        if kind == "other":
            return False
        # class/struct: the latest access specifier in this scope wins —
        # only count marks directly in this scope, not in nested ones.
        nested = [s for s in spans if start < s[0] and s[1] < end]
        access = "public" if kind == "struct" else "private"
        for mark_pos, mark in access_marks:
            if not start < mark_pos < pos:
                continue
            if any(s[0] < mark_pos <= s[1] for s in nested):
                continue
            access = mark
        return access == "public"

    return audited


def rule_nodiscard(graph):
    findings = []
    for rel in sorted(graph.files):
        parts = rel.split("/")
        if not (rel.endswith(".hpp") and parts[0] == "src"
                and parts[1] in NODISCARD_MODULES):
            continue
        text = graph.files[rel].code_text
        audited = audit_context(text)
        for match in STATUS_RETURN_RE.finditer(text):
            pos = match.start()
            if not audited(pos):
                continue
            # The attribute belongs to this declaration statement: look
            # back to the previous statement boundary.
            stmt_start = max(text.rfind(";", 0, pos),
                             text.rfind("{", 0, pos),
                             text.rfind("}", 0, pos)) + 1
            stmt = text[stmt_start:pos]
            if NODISCARD in stmt:
                continue
            if re.search(r"\breturn\b|\bnew\b|=", stmt):
                continue  # expression, not a declaration
            line = text.count("\n", 0, pos) + 1
            ret = " ".join(match.group("ret").split())
            findings.append(Finding(
                rel, line, "missing-nodiscard",
                f"public `{ret.strip()} {match.group('name')}(...)` returns "
                "a status-like value without [[nodiscard]] — a dropped "
                "result is a swallowed error"))
    return findings


def rule_noexcept(graph):
    findings = []
    for rel in sorted(graph.files):
        if not rel.startswith("src/"):
            continue
        text = graph.files[rel].code_text
        for match in BARE_NOEXCEPT_RE.finditer(text):
            semi = text.find(";", match.end())
            brace = text.find("{", match.end())
            if brace == -1 or (semi != -1 and semi < brace):
                continue  # declaration only; the definition gets audited
            depth, j = 1, brace + 1
            while j < len(text) and depth > 0:
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                j += 1
            body = text[brace:j]
            hit = THROWING_RE.search(body)
            if hit:
                line = text.count("\n", 0, match.start()) + 1
                findings.append(Finding(
                    rel, line, "noexcept-throws",
                    f"`noexcept` function body contains throwing construct "
                    f"`{hit.group(0).strip()}` — the first failure becomes "
                    "std::terminate; drop the claim or prove the body"))
    return findings


# ---------------------------------------------------------------------------
# DOT emission
# ---------------------------------------------------------------------------


def write_dot(graph, conf, path):
    counts = graph.module_edges()
    consumers = sorted({src for src, _ in counts}
                       - set(conf.allowed))
    lines = [
        "// Generated by scripts/arch_check.py — module-collapsed include",
        "// graph. Render: dot -Tsvg build/arch_graph.dot -o arch.svg",
        "digraph bsld_arch {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", style=filled,'
        ' fillcolor="#eef3fa"];',
    ]
    by_layer = {}
    for module, layer in conf.layer.items():
        by_layer.setdefault(layer, []).append(module)
    for layer in sorted(by_layer):
        members = " ".join(f'"{m}";' for m in sorted(by_layer[layer]))
        lines.append(f"  {{ rank=same; {members} }}  // layer {layer}")
    for consumer in consumers:
        lines.append(f'  "{consumer}" [shape=ellipse, fillcolor="#f5f0e6"];')
    for (src, dst), count in sorted(counts.items()):
        style = ", style=dashed" if src not in conf.allowed else ""
        lines.append(
            f'  "{src}" -> "{dst}" [label="{count}"{style}];')
    lines.append("}")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

RULE_DESCRIPTIONS = {
    "layer-violation": "includes of modules outside the allowed-dependency "
                       "list in layers.conf",
    "skip-interface": "layer-skipping includes that bypass the target "
                      "module's declared interface headers",
    "include-cycle": "strongly connected components in the file-level "
                     "include graph (cycle path printed)",
    "orphan-header": "headers included by nobody (their own .cpp aside)",
    "missing-nodiscard": "status-returning public functions in report/, "
                         "server/, util/ headers without [[nodiscard]]",
    "noexcept-throws": "bare noexcept on functions whose body contains "
                       "throwing constructs",
}

assert set(RULE_DESCRIPTIONS) == set(ARCH_RULES), (
    "rule list out of sync with bsld_lint_common.ARCH_RULES")


def run_check(root, conf_path, dot_path):
    conf = LayerConf.parse(conf_path)
    graph = IncludeGraph(root)
    check_modules_declared(graph, conf)

    findings = []
    for source in graph.files.values():
        findings.extend(Finding(source.rel, line, "bad-suppression", msg)
                        for line, msg in source.bad_suppressions)
    findings.extend(rule_layers(graph, conf))
    findings.extend(rule_cycles(graph))
    findings.extend(rule_orphans(graph))
    findings.extend(rule_nodiscard(graph))
    findings.extend(rule_noexcept(graph))

    kept = []
    for finding in findings:
        covered = graph.files[finding.path].covered
        if (finding.rule != "bad-suppression"
                and finding.rule in covered.get(finding.line, ())):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    if dot_path is not None:
        write_dot(graph, conf, dot_path)
    return kept


def self_test():
    root = REPO_ROOT / ARCH_FIXTURES
    if not root.is_dir():
        print(f"arch_check: fixtures directory {root} missing",
              file=sys.stderr)
        return 1
    actual = {(f.path, f.line, f.rule)
              for f in run_check(root, root / "layers.conf", None)}
    files = [p.relative_to(root).as_posix()
             for p in sorted(root.rglob("*")) if p.suffix in SUFFIXES]
    expected = collect_expected(root, files, "arch-expect")
    missing = expected - actual
    surprise = actual - expected
    for rel, line, rule in sorted(missing):
        print(f"self-test: expected [{rule}] at {rel}:{line}, not reported")
    for rel, line, rule in sorted(surprise):
        print(f"self-test: unexpected [{rule}] at {rel}:{line}")
    if missing or surprise:
        print(f"arch_check --self-test: FAIL "
              f"({len(missing)} missing, {len(surprise)} unexpected)")
        return 1
    print(f"arch_check --self-test: OK ({len(expected)} planted findings "
          f"all reported, suppressed lines all quiet)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="bsld architecture lint (see module docstring)")
    parser.add_argument("--self-test", action="store_true",
                        help="check tests/lint_fixtures/arch against its "
                             "arch-expect markers")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to check (default: the repo)")
    parser.add_argument("--conf", type=Path, default=None,
                        help="layers.conf to enforce (default: "
                             "scripts/layers.conf under --root)")
    parser.add_argument("--dot", type=Path, default=None,
                        help="module graph output "
                             "(default: <root>/build/arch_graph.dot)")
    parser.add_argument("--no-dot", action="store_true",
                        help="skip writing the module graph")
    args = parser.parse_args()

    if args.list_rules:
        width = max(len(name) for name in RULE_DESCRIPTIONS) + 2
        for name, description in sorted(RULE_DESCRIPTIONS.items()):
            print(f"{name:<{width}}{description}")
        print(f"{'bad-suppression':<{width}}malformed bsld-lint comments "
              "(reported, never suppressing)")
        print("\nsuppression: // bsld-lint: allow(<rule>): <reason>   "
              "(same line, or alone on the line above)")
        return 0

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    conf_path = args.conf or root / "scripts" / "layers.conf"
    dot_path = None if args.no_dot else (
        args.dot or root / "build" / "arch_graph.dot")
    findings = run_check(root, conf_path, dot_path)
    for finding in findings:
        print(finding)
    if findings:
        print(f"arch_check: {len(findings)} finding(s)")
        return 1
    modules = len(LayerConf.parse(conf_path).allowed)
    print(f"arch_check: clean ({modules} modules"
          + (f"; graph at {dot_path}" if dot_path else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
