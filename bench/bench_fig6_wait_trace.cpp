/// \file bench_fig6_wait_trace.cpp
/// \brief Reproduces Figure 6: a zoom of SDSC-Blue per-job wait times, with
/// and without frequency scaling (BSLDthreshold = 2, WQthreshold = 16).
///
/// The paper plots wait time (seconds) over a window of the trace and shows
/// the DVFS line sitting well above the original. The wait series is
/// captured where it happens — by the sim::WaitQueueTrace instrument
/// attached through RunSpec::instruments — so the runs stream in
/// retain_jobs=false mode and never retain per-job outcome vectors. This
/// bench prints summary statistics of both series, a bucketed view of the
/// zoom window, and writes the full two-column series to
/// fig6_wait_trace.csv for plotting.
#include <fstream>
#include <iostream>

#include "report/sweep.hpp"
#include "sim/instruments.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace bsld;

int main() {
  report::RunSpec orig;
  orig.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSCBlue);
  orig.instruments = {"wait-trace"};
  orig.retain_jobs = false;  // the instrument is the only per-job view

  report::RunSpec dvfs = orig;
  core::DvfsConfig config;
  config.bsld_threshold = 2.0;
  config.wq_threshold = 16;
  dvfs.policy.dvfs = config;

  const std::vector<report::RunResult> results = report::run_all({orig, dvfs});
  const auto* orig_trace =
      report::instrument_as<sim::WaitQueueTrace>(results[0], "wait-trace");
  const auto* dvfs_trace =
      report::instrument_as<sim::WaitQueueTrace>(results[1], "wait-trace");
  BSLD_REQUIRE(orig_trace != nullptr && dvfs_trace != nullptr,
               "fig6: wait-trace instrument missing from results");
  const auto& orig_waits = orig_trace->waits();
  const auto& dvfs_waits = dvfs_trace->waits();

  std::cout << "Figure 6 — SDSCBlue wait-time behaviour: Orig vs DVFS(2,16)\n\n";

  util::RunningStats orig_stats;
  util::RunningStats dvfs_stats;
  for (const auto& job : orig_waits) orig_stats.add(static_cast<double>(job.wait));
  for (const auto& job : dvfs_waits) dvfs_stats.add(static_cast<double>(job.wait));

  util::Table summary({"Series", "Mean wait (s)", "Max wait (s)", "Stddev"});
  for (std::size_t c = 1; c < 4; ++c) summary.set_align(c, util::Align::kRight);
  summary.add_row({"Orig", util::fmt_double(orig_stats.mean(), 0),
                   util::fmt_double(orig_stats.max(), 0),
                   util::fmt_double(orig_stats.stddev(), 0)});
  summary.add_row({"DVFS_2_16", util::fmt_double(dvfs_stats.mean(), 0),
                   util::fmt_double(dvfs_stats.max(), 0),
                   util::fmt_double(dvfs_stats.stddev(), 0)});
  std::cout << summary << '\n';

  // Zoom: the middle of the trace, bucketed for terminal display (the
  // paper's figure zooms a comparable slice).
  const std::size_t lo = orig_waits.size() * 2 / 5;
  const std::size_t hi = orig_waits.size() * 3 / 5;
  constexpr std::size_t kBuckets = 20;
  util::Table zoom({"Jobs", "Orig mean wait (s)", "DVFS_2_16 mean wait (s)"});
  zoom.set_align(1, util::Align::kRight);
  zoom.set_align(2, util::Align::kRight);
  const std::size_t per_bucket = (hi - lo) / kBuckets;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::size_t start = lo + b * per_bucket;
    const std::size_t end = start + per_bucket;
    util::RunningStats orig_bucket;
    util::RunningStats dvfs_bucket;
    for (std::size_t i = start; i < end; ++i) {
      orig_bucket.add(static_cast<double>(orig_waits[i].wait));
      dvfs_bucket.add(static_cast<double>(dvfs_waits[i].wait));
    }
    zoom.add_row({std::to_string(start) + "-" + std::to_string(end - 1),
                  util::fmt_double(orig_bucket.mean(), 0),
                  util::fmt_double(dvfs_bucket.mean(), 0)});
  }
  std::cout << "Zoom window (job index buckets, middle fifth of the trace):\n"
            << zoom << '\n';

  std::ofstream csv_file("fig6_wait_trace.csv");
  util::CsvWriter csv(csv_file);
  csv.write_row({"job_index", "submit_s", "wait_orig_s", "wait_dvfs_2_16_s"});
  for (std::size_t i = 0; i < orig_waits.size(); ++i) {
    csv.write_row({std::to_string(i), std::to_string(orig_waits[i].submit),
                   std::to_string(orig_waits[i].wait),
                   std::to_string(dvfs_waits[i].wait)});
  }
  std::cout << "Full series written to fig6_wait_trace.csv\n"
            << "Shape check: the DVFS series sits above the original.\n";
  return 0;
}
