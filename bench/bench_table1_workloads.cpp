/// \file bench_table1_workloads.cpp
/// \brief Reproduces Table 1: workload characteristics and the average BSLD
/// of each trace under plain EASY backfilling (no DVFS).
///
/// Paper reference values (Etinski et al., IPDPS 2010, Table 1):
///   CTC-430: 4.66   SDSC-128: 24.91   SDSCBlue-1152: 5.15
///   LLNLThunder-4008: 1.00   LLNLAtlas-9216: 1.08
#include <iostream>

#include "report/figures.hpp"
#include "util/table.hpp"
#include "workload/workload_stats.hpp"

using namespace bsld;

int main() {
  std::cout << "Table 1 — Workloads (synthetic stand-ins for the Parallel "
               "Workload Archive logs)\n"
            << "Baseline scheduler: EASY backfilling, First Fit, no DVFS.\n\n";

  util::Table table({"Workload", "#CPUs", "Jobs", "Avg BSLD (paper)",
                     "Avg BSLD (measured)", "Avg wait (s)", "Utilization",
                     "Seq jobs", "<600s jobs", "Mean size"});
  for (std::size_t c = 1; c < 10; ++c) table.set_align(c, util::Align::kRight);

  std::vector<report::RunSpec> specs;
  for (const wl::Archive archive : wl::all_archives()) {
    report::RunSpec spec;
    spec.workload = wl::WorkloadSource::from_archive(archive);
    specs.push_back(spec);
  }
  const std::vector<report::RunResult> results = report::run_all(specs);

  for (const report::RunResult& result : results) {
    const wl::Archive archive = result.spec.workload.archive;
    const wl::Workload workload = wl::make_archive_workload(archive);
    const wl::WorkloadStats stats = wl::compute_stats(workload);
    table.add_row({wl::archive_name(archive),
                   std::to_string(wl::paper_cpus(archive)),
                   std::to_string(stats.jobs),
                   util::fmt_double(wl::paper_avg_bsld(archive)),
                   util::fmt_double(result.sim().avg_bsld),
                   util::fmt_double(result.sim().avg_wait, 0),
                   util::fmt_double(result.sim().utilization, 3),
                   util::fmt_percent(stats.sequential_fraction),
                   util::fmt_percent(stats.short_fraction),
                   util::fmt_double(stats.mean_size, 1)});
  }
  std::cout << table << '\n'
            << "Shape check: SDSC is the saturated outlier (BSLD ~ 25), "
               "Thunder/Atlas are near 1, CTC/Blue sit in between.\n";
  return 0;
}
