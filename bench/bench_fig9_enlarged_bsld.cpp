/// \file bench_fig9_enlarged_bsld.cpp
/// \brief Reproduces Figure 9: average BSLD of the power-aware scheduler on
/// enlarged systems, for WQ = NO LIMIT and WQ = 0 (BSLDthreshold = 2).
///
/// Paper shape: with the power-aware scheduler, every additional increase in
/// system size improves performance; CTC/SDSC/SDSCBlue eventually beat their
/// original no-DVFS performance, while Thunder/Atlas (already at BSLD ~ 1)
/// can only approach it.
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_enlarged_figure(
      "Figure 9 (left) — Avg BSLD on enlarged systems, WQ = NO, BSLDthr = 2",
      std::nullopt,
      [](const report::RunResult& run, const report::RunResult&) {
        return util::fmt_double(run.sim().avg_bsld, 2);
      });
  std::cout << '\n';
  benchtool::print_enlarged_figure(
      "Figure 9 (right) — Avg BSLD on enlarged systems, WQ = 0, BSLDthr = 2",
      std::int64_t{0},
      [](const report::RunResult& run, const report::RunResult&) {
        return util::fmt_double(run.sim().avg_bsld, 2);
      });
  std::cout << "\nBaselines (original size, no DVFS): ";
  for (const wl::Archive archive : wl::all_archives()) {
    report::RunSpec spec;
    spec.workload = wl::WorkloadSource::from_archive(archive);
    std::cout << wl::archive_name(archive) << "="
              << util::fmt_double(report::run_one(spec).sim().avg_bsld, 2) << ' ';
  }
  std::cout << "\nShape check: every row decreases monotonically to the "
               "right (more processors, better performance).\n";
  return 0;
}
