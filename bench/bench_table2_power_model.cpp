/// \file bench_table2_power_model.cpp
/// \brief Reproduces Table 2 (the DVFS gear set) and validates the power
/// model calibration of paper §4:
///   * static power = 25% of total active power at the top gear;
///   * an idle CPU (lowest gear, idle activity) consumes ~21% of the power
///     of a CPU executing a job at the top gear.
#include <iostream>

#include "cluster/gears.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "util/table.hpp"

using namespace bsld;

int main() {
  const cluster::GearSet gears = cluster::paper_gear_set();
  const power::PowerModel model(gears);
  const power::BetaTimeModel beta(gears, 0.5);

  std::cout << "Table 2 — DVFS gear set and derived per-gear power/time "
               "model values\n\n";

  util::Table table({"Gear", "Frequency (GHz)", "Voltage (V)",
                     "P_dynamic (W)", "P_static (W)", "P_active (W)",
                     "vs Ftop", "Coef(f), beta=0.5"});
  for (std::size_t c = 1; c < 8; ++c) table.set_align(c, util::Align::kRight);
  for (GearIndex g = 0; g <= gears.top_index(); ++g) {
    table.add_row({std::to_string(g),
                   util::fmt_double(gears[g].frequency_ghz, 1),
                   util::fmt_double(gears[g].voltage_v, 1),
                   util::fmt_double(model.dynamic_power(g), 1),
                   util::fmt_double(model.static_power(g), 1),
                   util::fmt_double(model.active_power(g), 1),
                   util::fmt_percent(model.active_power(g) /
                                     model.active_power(gears.top_index())),
                   util::fmt_double(beta.coefficient(g), 3)});
  }
  std::cout << table << '\n';

  const double static_share =
      model.static_power(gears.top_index()) /
      model.active_power(gears.top_index());
  std::cout << "Calibration checks (paper section 4):\n"
            << "  static share at Ftop : " << util::fmt_percent(static_share)
            << "  (paper: 25%)\n"
            << "  idle / active(Ftop)  : "
            << util::fmt_percent(model.idle_fraction_of_top())
            << "  (paper: 21%)\n"
            << "  idle power           : "
            << util::fmt_double(model.idle_power(), 1) << " W\n";
  return 0;
}
