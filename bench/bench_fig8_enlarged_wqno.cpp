/// \file bench_fig8_enlarged_wqno.cpp
/// \brief Reproduces Figure 8: normalized energies of enlarged systems with
/// no wait-queue limit (BSLDthreshold = 2, WQ = NO LIMIT), both normalized
/// to the original-size no-DVFS baseline.
///
/// Paper headline: a 20% larger system with the power-aware scheduler needs
/// almost 30% less CPU energy for the same load.
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_enlarged_figure(
      "Figure 8a — Enlarged systems, WQ = NO: E(idle=0), normalized to "
      "original size without DVFS",
      std::nullopt,
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).computational, 3);
      });
  std::cout << '\n';
  benchtool::print_enlarged_figure(
      "Figure 8b — Enlarged systems, WQ = NO: E(idle=low), normalized to "
      "original size without DVFS",
      std::nullopt,
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).total, 3);
      });
  std::cout << "\nShape check: the +20% column of panel (a) sits near 0.7-0.75 "
               "for the non-saturated workloads (the paper's 'almost 30%').\n";
  return 0;
}
