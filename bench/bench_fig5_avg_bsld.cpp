/// \file bench_fig5_avg_bsld.cpp
/// \brief Reproduces Figure 5: average BSLD (Eq. 6, penalized runtime in
/// the numerator) for every (workload, BSLDthreshold, WQthreshold) cell.
///
/// Paper shape: the most aggressive setting (BSLDthr=3, WQ=NO) penalizes
/// the average BSLD the most but yields the highest savings; penalty is not
/// proportional to savings (e.g. LLNLAtlas (1.5, 0) beats (2, 0) on both).
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_original_size_figure(
      "Figure 5 — Average BSLD, original system size (baseline in Table 1)",
      "BSLD",
      [](const report::RunResult& run, const report::RunResult&) {
        return util::fmt_double(run.sim().avg_bsld, 2);
      });
  std::cout << "\nShape check: penalties grow toward WQ=NO; SDSC dominates "
               "the scale as in the paper's figure.\n";
  return 0;
}
