/// \file bench_fig3_energy.cpp
/// \brief Reproduces Figure 3: CPU energy of the power-aware scheduler on
/// the original-size systems, normalized to the no-DVFS baseline of the
/// same workload. Two panels, as in the paper:
///   (a) computational energy — idle CPUs dissipate no power (Eidle = 0);
///   (b) total energy — idle CPUs draw the low-gear idle power (Eidle = low).
///
/// Paper shape: all workloads except SDSC save ~10% or more for permissive
/// settings (up to ~22% computational at BSLDthr=3/WQ=NO); SDSC (saturated,
/// avg BSLD ~ 25) cannot save energy; for a fixed BSLD threshold, relaxing
/// the WQ limit increases savings.
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_original_size_figure(
      "Figure 3a — Normalized energy, original system size (Eidle = 0)",
      "E",
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).computational, 3);
      });
  std::cout << '\n';
  benchtool::print_original_size_figure(
      "Figure 3b — Normalized energy, original system size (Eidle = low)",
      "E",
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).total, 3);
      });
  std::cout << "\nShape check: values < 1 are savings; SDSC stays ~1.0; "
               "WQ=NO columns give the largest savings.\n";
  return 0;
}
