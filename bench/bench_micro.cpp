/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the simulation substrate:
/// event-engine throughput, allocation search, trace generation, and
/// end-to-end simulation rate per archive.
#include <benchmark/benchmark.h>

#include "cluster/first_fit.hpp"
#include "core/policy_factory.hpp"
#include "power/power_model.hpp"
#include "report/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "workload/archives.hpp"

using namespace bsld;

namespace {

void BM_EngineScheduleDrain(benchmark::State& state) {
  const auto events = static_cast<std::int64_t>(state.range(0));
  util::Rng rng(42);
  for (auto _ : state) {
    sim::Engine engine;
    for (std::int64_t i = 0; i < events; ++i) {
      engine.schedule(sim::Event{rng.uniform_int(0, 1'000'000),
                                 sim::EventKind::kJobSubmit, 0, i});
    }
    while (auto event = engine.pop()) benchmark::DoNotOptimize(*event);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EarliestStart(benchmark::State& state) {
  const auto cpus = static_cast<std::int32_t>(state.range(0));
  cluster::Machine machine(cpus);
  util::Rng rng(7);
  // Fill ~2/3 of the machine with fake jobs of staggered expected ends.
  std::vector<CpuId> cpu_list;
  for (CpuId c = 0; c < cpus * 2 / 3; ++c) cpu_list.push_back(c);
  for (CpuId c : cpu_list) {
    machine.assign(c + 1, {c}, rng.uniform_int(100, 100000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.earliest_start(cpus / 2, 50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EarliestStart)->Arg(430)->Arg(1152)->Arg(9216);

void BM_GenerateTrace(benchmark::State& state) {
  const auto archive = static_cast<wl::Archive>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::make_archive_workload(archive));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_GenerateTrace)
    ->Arg(static_cast<int>(wl::Archive::kCTC))
    ->Arg(static_cast<int>(wl::Archive::kLLNLAtlas));

void BM_SimulateArchive(benchmark::State& state) {
  const auto archive = static_cast<wl::Archive>(state.range(0));
  const wl::Workload workload = wl::make_archive_workload(archive);
  const cluster::GearSet gears = cluster::paper_gear_set();
  const power::PowerModel power_model(gears);
  const power::BetaTimeModel time_model(gears, 0.5);
  for (auto _ : state) {
    core::DvfsConfig config;
    config.bsld_threshold = 2.0;
    config.wq_threshold = 16;
    const auto policy =
        core::make_policy(core::BasePolicy::kEasy, config, "FirstFit");
    benchmark::DoNotOptimize(
        sim::run_simulation(workload, *policy, power_model, time_model));
  }
  state.SetItemsProcessed(state.iterations() * 5000);  // jobs per run
}
BENCHMARK(BM_SimulateArchive)
    ->Arg(static_cast<int>(wl::Archive::kCTC))
    ->Arg(static_cast<int>(wl::Archive::kSDSC))
    ->Arg(static_cast<int>(wl::Archive::kSDSCBlue))
    ->Arg(static_cast<int>(wl::Archive::kLLNLThunder))
    ->Arg(static_cast<int>(wl::Archive::kLLNLAtlas))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
