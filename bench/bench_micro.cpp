/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the simulation substrate:
/// event-engine throughput, allocation search, trace generation,
/// end-to-end simulation rate per archive, sweep-grid throughput
/// through report::SweepRunner (dedup off vs on), and the streaming
/// pipeline (pull-path ingest rate and the million-job windowed run).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <unistd.h>

#include "cluster/first_fit.hpp"
#include "report/result_cache.hpp"
#include "report/sweep.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/source.hpp"
#include "workload/stream.hpp"
#include "workload/synthetic.hpp"

using namespace bsld;

namespace {

void BM_EngineScheduleDrain(benchmark::State& state) {
  const auto events = static_cast<std::int64_t>(state.range(0));
  util::Rng rng(42);
  for (auto _ : state) {
    sim::Engine engine;
    for (std::int64_t i = 0; i < events; ++i) {
      engine.schedule(sim::Event{rng.uniform_int(0, 1'000'000),
                                 sim::EventKind::kJobSubmit, 0, i});
    }
    while (auto event = engine.pop()) benchmark::DoNotOptimize(*event);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EarliestStart(benchmark::State& state) {
  const auto cpus = static_cast<std::int32_t>(state.range(0));
  cluster::Machine machine(cpus);
  util::Rng rng(7);
  // Fill ~2/3 of the machine with fake jobs of staggered expected ends.
  std::vector<CpuId> cpu_list;
  for (CpuId c = 0; c < cpus * 2 / 3; ++c) cpu_list.push_back(c);
  for (CpuId c : cpu_list) {
    machine.assign(c + 1, {c}, rng.uniform_int(100, 100000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.earliest_start(cpus / 2, 50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EarliestStart)->Arg(430)->Arg(1152)->Arg(9216);

void BM_GenerateTrace(benchmark::State& state) {
  const auto archive = static_cast<wl::Archive>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wl::load_source(wl::WorkloadSource::from_archive(archive)));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_GenerateTrace)
    ->Arg(static_cast<int>(wl::Archive::kCTC))
    ->Arg(static_cast<int>(wl::Archive::kLLNLAtlas));

void BM_SimulateArchive(benchmark::State& state) {
  const auto archive = static_cast<wl::Archive>(state.range(0));
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive);
  core::DvfsConfig config;
  config.bsld_threshold = 2.0;
  config.wq_threshold = 16;
  spec.policy.dvfs = config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(report::run_one(spec));
  }
  state.SetItemsProcessed(state.iterations() * 5000);  // jobs per run
}
BENCHMARK(BM_SimulateArchive)
    ->Arg(static_cast<int>(wl::Archive::kCTC))
    ->Arg(static_cast<int>(wl::Archive::kSDSC))
    ->Arg(static_cast<int>(wl::Archive::kSDSCBlue))
    ->Arg(static_cast<int>(wl::Archive::kLLNLThunder))
    ->Arg(static_cast<int>(wl::Archive::kLLNLAtlas))
    ->Unit(benchmark::kMillisecond);

/// Power-management cost on the headline simulation: Arg(0) runs the CTC
/// DVFS case with the default pm=none spec — guarded so the pm hook in
/// the simulation loop stays free when no manager is installed — and
/// Arg(1) runs the same case under a binding 4 kW cap-uniform budget,
/// bounding the cost of throttle/gate bookkeeping when one is.
void BM_PowerCapSweep(benchmark::State& state) {
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC);
  core::DvfsConfig config;
  config.bsld_threshold = 2.0;
  config.wq_threshold = 16;
  spec.policy.dvfs = config;
  if (state.range(0) == 1) {
    spec.pm.name = "cap-uniform";
    spec.pm.cap_watts = 4000.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(report::run_one(spec));
  }
  state.SetItemsProcessed(state.iterations() * 5000);  // jobs per run
}
BENCHMARK(BM_PowerCapSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Grid throughput through SweepRunner: 24 specs of which only 6 are
/// distinct (each repeated 4x, the shape of a figure grid with shared
/// baselines). Arg(1) enables spec-keyed dedup — the headline win — while
/// Arg(0) measures the raw pool.
void BM_SweepThroughput(benchmark::State& state) {
  const bool dedup = state.range(0) != 0;
  std::vector<report::RunSpec> specs;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const double threshold : {1.5, 2.0, 3.0}) {
      for (const bool wq_limited : {true, false}) {
        report::RunSpec spec;
        spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC, 400);
        core::DvfsConfig dvfs;
        dvfs.bsld_threshold = threshold;
        if (wq_limited) dvfs.wq_threshold = 4;
        else dvfs.wq_threshold = std::nullopt;
        spec.policy.dvfs = dvfs;
        specs.push_back(spec);
      }
    }
  }
  report::SweepRunner::Options options;
  options.threads = 2;
  options.dedup = dedup;
  for (auto _ : state) {
    report::SweepRunner runner(options);
    benchmark::DoNotOptimize(runner.run(specs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_SweepThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Streaming vs retained measurement on a large synthetic workload:
/// Arg(1) keeps the full JobOutcome vector (the default), Arg(0) runs the
/// aggregate-only observer set. The `retained_kb` counter reports the
/// per-run memory the streaming mode avoids; SimulationResult aggregates
/// are bit-identical either way (covered by the integration suite).
void BM_RetainJobsMode(benchmark::State& state) {
  const bool retain = state.range(0) != 0;
  constexpr std::int32_t kJobs = 60'000;
  report::RunSpec spec;
  spec.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kLLNLThunder, kJobs);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 16;
  spec.policy.dvfs = dvfs;
  spec.retain_jobs = retain;
  double retained_kb = 0.0;
  for (auto _ : state) {
    const report::RunResult result = report::run_one(spec);
    benchmark::DoNotOptimize(result.sim().avg_bsld);
    retained_kb = static_cast<double>(result.sim().jobs.capacity() *
                                      sizeof(sim::JobOutcome)) /
                  1024.0;
  }
  state.counters["retained_kb"] = retained_kb;
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_RetainJobsMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Warm-sweep throughput through the persistent result cache: the grid of
/// BM_SweepThroughput pre-stored once, then every iteration served entirely
/// from disk (progress.executed == 0). This is the "repeated sweeps are
/// free" headline — compare against BM_SweepThroughput/1 (the same grid,
/// simulated).
void BM_CacheHitSweep(benchmark::State& state) {
  std::vector<report::RunSpec> specs;
  for (const double threshold : {1.5, 2.0, 3.0}) {
    for (const bool wq_limited : {true, false}) {
      report::RunSpec spec;
      spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC, 400);
      core::DvfsConfig dvfs;
      dvfs.bsld_threshold = threshold;
      if (wq_limited) dvfs.wq_threshold = 4;
      else dvfs.wq_threshold = std::nullopt;
      spec.policy.dvfs = dvfs;
      specs.push_back(spec);
    }
  }

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("bsld-bench-cache-" + std::to_string(static_cast<long>(::getpid())));
  report::ResultCache cache(root);
  {
    report::SweepRunner::Options options;
    options.threads = 2;
    options.cache = &cache;
    report::SweepRunner warmup(options);
    (void)warmup.run(specs);  // populate the store once.
  }

  std::size_t executed = 0;
  for (auto _ : state) {
    report::SweepRunner::Options options;
    options.threads = 2;
    options.cache = &cache;
    report::SweepRunner runner(options);
    benchmark::DoNotOptimize(runner.run(specs));
    executed += runner.progress().executed;
  }
  state.counters["simulated"] = static_cast<double>(executed);  // expect 0.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()));
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_CacheHitSweep)->Unit(benchmark::kMillisecond);

/// An undersaturated generator profile: the wait queue stays shallow, so
/// the streaming benchmarks measure pipeline throughput, not the
/// scheduler's backlog scans (archive profiles run near saturation and
/// their per-event cost grows with trace length).
wl::WorkloadSpec low_load_spec(std::int64_t jobs) {
  wl::WorkloadSpec spec;
  spec.name = "lowload";
  spec.cpus = 256;
  spec.num_jobs = jobs;
  spec.arrival.load_target = 0.35;
  spec.runtime.classes = {{1.0, 4.0, 1.0}};
  return spec;
}

/// Pull-path ingest rate: open_stream() drained job by job, no simulation.
/// This is the floor every streaming run pays per job — generator draws,
/// (submit, id) ordering, and the virtual next() dispatch.
void BM_StreamIngest(benchmark::State& state) {
  const auto jobs = static_cast<std::int64_t>(state.range(0));
  const wl::WorkloadSource source =
      wl::WorkloadSource::from_spec(low_load_spec(jobs), 11);
  for (auto _ : state) {
    const std::unique_ptr<wl::JobStream> stream = wl::open_stream(source);
    while (std::optional<wl::Job> job = stream->next()) {
      benchmark::DoNotOptimize(*job);
    }
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_StreamIngest)->Arg(100'000)->Unit(benchmark::kMillisecond);

/// The headline scale case: one million jobs pulled through the streaming
/// pipeline end to end — bounded lookahead window, aggregate-only
/// observers, sampled traces — with the window high-water mark reported as
/// a counter (the O(1)-memory claim, asserted exactly by the integration
/// suite).
void BM_MillionJobSim(benchmark::State& state) {
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_spec(low_load_spec(1'000'000), 11);
  spec.stream = true;
  spec.retain_jobs = false;
  spec.instruments = {"wait-trace", "utilization"};
  spec.sample.cap = 512;
  double peak_live = 0.0;
  for (auto _ : state) {
    const report::RunResult result = report::run_one(spec);
    benchmark::DoNotOptimize(result.sim().avg_bsld);
    peak_live = static_cast<double>(result.sim().peak_live_jobs);
  }
  state.counters["peak_live_jobs"] = peak_live;
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_MillionJobSim)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
