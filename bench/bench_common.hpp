/// \file bench_common.hpp
/// \brief Shared plumbing for the figure-reproduction bench binaries.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "report/figures.hpp"
#include "util/table.hpp"

namespace bsld::benchtool {

/// Runs the §5.1 grid (Figs. 3-5) and renders one value per (workload,
/// BSLDthreshold, WQthreshold) cell via `cell`. Layout mirrors the paper's
/// bar groups: one row per (workload, BSLDthreshold), one column per WQ
/// threshold.
inline void print_original_size_figure(
    const std::string& title, const std::string& value_name,
    const std::function<std::string(const report::RunResult& run,
                                    const report::RunResult& baseline)>& cell) {
  std::cout << title << "\n\n";
  const report::OriginalSizeGrid grid = report::original_size_grid();
  const report::GridResults results =
      report::run_grid(grid.dvfs_specs, grid.baseline_specs);

  util::Table table({"Workload", "BSLDthr", value_name + " WQ=0",
                     value_name + " WQ=4", value_name + " WQ=16",
                     value_name + " WQ=NO"});
  for (std::size_t c = 1; c < 6; ++c) table.set_align(c, util::Align::kRight);

  std::size_t index = 0;
  for (const wl::Archive archive : wl::all_archives()) {
    const report::RunResult& baseline = report::baseline_for(results, archive);
    for (const double bsld_threshold : report::paper_bsld_thresholds()) {
      std::vector<std::string> row = {wl::archive_name(archive),
                                      util::fmt_double(bsld_threshold, 1)};
      for (std::size_t w = 0; w < report::paper_wq_thresholds().size(); ++w) {
        row.push_back(cell(results.dvfs[index], baseline));
        ++index;
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << table;
}

/// Runs one §5.2 enlarged-system grid (Figs. 7-9) for the given WQ setting
/// and renders one value per (workload, size scale) cell.
inline void print_enlarged_figure(
    const std::string& title, const std::optional<std::int64_t>& wq,
    const std::function<std::string(const report::RunResult& run,
                                    const report::RunResult& baseline)>& cell) {
  std::cout << title << "\n\n";
  const report::EnlargedGrid grid = report::enlarged_grid(wq);
  const report::GridResults results =
      report::run_grid(grid.dvfs_specs, grid.baseline_specs);

  std::vector<std::string> headers = {"Workload"};
  for (const double scale : report::paper_size_scales()) {
    std::string label = "+";
    label += util::fmt_double((scale - 1.0) * 100.0, 0);
    label += '%';
    headers.push_back(std::move(label));
  }
  util::Table table(std::move(headers));
  for (std::size_t c = 1; c <= report::paper_size_scales().size(); ++c) {
    table.set_align(c, util::Align::kRight);
  }

  std::size_t index = 0;
  for (const wl::Archive archive : wl::all_archives()) {
    const report::RunResult& baseline = report::baseline_for(results, archive);
    std::vector<std::string> row = {wl::archive_name(archive)};
    for (std::size_t s = 0; s < report::paper_size_scales().size(); ++s) {
      row.push_back(cell(results.dvfs[index], baseline));
      ++index;
    }
    table.add_row(std::move(row));
  }
  std::cout << table;
}

}  // namespace bsld::benchtool
