/// \file bench_fig4_reduced_jobs.cpp
/// \brief Reproduces Figure 4: the number of jobs run at reduced frequency
/// for every (workload, BSLDthreshold, WQthreshold) combination.
///
/// Paper reference points: LLNLThunder runs 1219 reduced jobs at
/// (BSLDthr=1.5, WQ=4) but only 854 at (2, 4) — a *higher* BSLD threshold
/// can reduce *fewer* jobs because the extra slowdown lengthens queues and
/// the WQ gate then blocks later jobs. SDSCBlue runs 2778 reduced jobs at
/// (2, NO) and 2654 at (3, NO).
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_original_size_figure(
      "Figure 4 — Number of jobs run at reduced frequency",
      "reduced",
      [](const report::RunResult& run, const report::RunResult&) {
        return std::to_string(run.sim().reduced_jobs);
      });
  std::cout << "\nShape check: counts grow as the WQ limit relaxes; on the "
               "lightly-loaded LLNL traces the BSLDthr=1.5 rows can exceed "
               "the 2.0 rows (the paper's Thunder inversion); the saturated "
               "SDSC reduces almost nothing until WQ=NO.\n";
  return 0;
}
