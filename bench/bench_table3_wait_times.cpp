/// \file bench_table3_wait_times.cpp
/// \brief Reproduces Table 3: average wait time (seconds) under five
/// scheduler/system configurations (BSLDthreshold = 2 wherever DVFS is on):
///   1. original size, no DVFS
///   2. original size, power-aware, WQ = 0
///   3. original size, power-aware, WQ = NO LIMIT
///   4. 50% enlarged, power-aware, WQ = 0
///   5. 50% enlarged, power-aware, WQ = NO LIMIT
///
/// Paper reference (seconds): CTC 7107/12361/16060/2980/4183; SDSC
/// 36001/35946/45845/9202/11713; SDSCBlue 4798/6587/8766/2351/3153;
/// LLNLThunder 0/1927/6876/379/1877; LLNLAtlas 69/1841/6691/708/2807.
#include <iostream>

#include "report/figures.hpp"
#include "util/table.hpp"

using namespace bsld;

namespace {

report::RunSpec make_spec(wl::Archive archive, double scale, bool dvfs,
                          std::optional<std::int64_t> wq) {
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive);
  spec.size_scale = scale;
  if (dvfs) {
    core::DvfsConfig config;
    config.bsld_threshold = 2.0;
    config.wq_threshold = wq;
    spec.policy.dvfs = config;
  }
  return spec;
}

}  // namespace

int main() {
  std::cout << "Table 3 — Average wait time (s), BSLDthreshold = 2\n\n";

  std::vector<report::RunSpec> specs;
  for (const wl::Archive archive : wl::all_archives()) {
    specs.push_back(make_spec(archive, 1.0, false, std::nullopt));  // no DVFS
    specs.push_back(make_spec(archive, 1.0, true, std::int64_t{0}));
    specs.push_back(make_spec(archive, 1.0, true, std::nullopt));   // WQ NO
    specs.push_back(make_spec(archive, 1.5, true, std::int64_t{0}));
    specs.push_back(make_spec(archive, 1.5, true, std::nullopt));   // +50% WQ NO
  }
  const std::vector<report::RunResult> results = report::run_all(specs);

  util::Table table({"Workload", "OrigSizeNoDVFS", "OrigSizeWQ0",
                     "OrigSizeWQNo", "50%IncreasedWQ0", "50%IncreasedWQNo"});
  for (std::size_t c = 1; c < 6; ++c) table.set_align(c, util::Align::kRight);
  std::size_t index = 0;
  for (const wl::Archive archive : wl::all_archives()) {
    std::vector<std::string> row = {wl::archive_name(archive)};
    for (int k = 0; k < 5; ++k) {
      row.push_back(util::fmt_double(results[index++].sim().avg_wait, 0));
    }
    table.add_row(std::move(row));
  }
  std::cout << table
            << "\nShape check (per paper): DVFS on the original size "
               "increases waits (WQ=NO more than WQ=0); the 50% larger "
               "system drives waits well below the original baseline even "
               "with DVFS on.\n";
  return 0;
}
