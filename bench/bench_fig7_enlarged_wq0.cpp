/// \file bench_fig7_enlarged_wq0.cpp
/// \brief Reproduces Figure 7: normalized energies of enlarged systems with
/// the conservative WQthreshold = 0 (BSLDthreshold = 2). Both energies are
/// normalized to the *original-size system without DVFS*.
///
/// Paper shape: computational energy decreases monotonically with system
/// size (larger systems shorten waits, so more jobs pass the BSLD test at
/// low gears); with idle power accounted, savings are smaller and a minimum
/// exists after which more processors cost more energy.
#include "bench_common.hpp"

using namespace bsld;

int main() {
  benchtool::print_enlarged_figure(
      "Figure 7a — Enlarged systems, WQ = 0: E(idle=0), normalized to "
      "original size without DVFS",
      std::int64_t{0},
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).computational, 3);
      });
  std::cout << '\n';
  benchtool::print_enlarged_figure(
      "Figure 7b — Enlarged systems, WQ = 0: E(idle=low), normalized to "
      "original size without DVFS",
      std::int64_t{0},
      [](const report::RunResult& run, const report::RunResult& baseline) {
        return util::fmt_double(
            report::normalized_energy(run.sim(), baseline.sim()).total, 3);
      });
  std::cout << "\nShape check: panel (a) decreases monotonically with size; "
               "panel (b) reaches a minimum and then rises (idle power of "
               "the extra processors).\n";
  return 0;
}
