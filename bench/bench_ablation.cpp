/// \file bench_ablation.cpp
/// \brief Ablations of the design decisions DESIGN.md §4 calls out, plus
/// the paper's stated future work (per-job beta sensitivity) and its
/// portability claim (the frequency assigner under a different base
/// policy).
///
/// A. beta sensitivity (paper §7: "we plan to perform an analysis of the
///    beta parameter"): sweep beta for SDSCBlue at (BSLDthr=2, WQ=NO).
/// B. Fig. 2 else-branch BSLD check at Ftop: on (literal pseudocode) vs off.
/// C. WQsize counting: exclude (default) vs include the job being scheduled.
/// D. Base policy: EASY vs FCFS with the identical frequency assigner
///    ("the frequency scaling algorithm can be applied with any parallel
///    job scheduling policy").
/// E. Resource selector: First Fit vs Last Fit (schedule metrics must not
///    change — feasibility is count-based on a flat machine).
#include <iostream>

#include "report/figures.hpp"
#include "util/table.hpp"

using namespace bsld;

namespace {

report::RunSpec base_spec(wl::Archive archive, double bsld_threshold,
                          std::optional<std::int64_t> wq) {
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive);
  core::DvfsConfig config;
  config.bsld_threshold = bsld_threshold;
  config.wq_threshold = wq;
  spec.policy.dvfs = config;
  return spec;
}

void print_rows(const std::string& title,
                const std::vector<std::pair<std::string, report::RunSpec>>& rows) {
  std::cout << title << "\n\n";
  std::vector<report::RunSpec> specs;
  specs.reserve(rows.size() + 1);
  for (const auto& [_, spec] : rows) specs.push_back(spec);
  // Shared no-DVFS baseline of the first row's archive for normalization.
  report::RunSpec baseline;
  baseline.workload = rows.front().second.workload;
  specs.push_back(baseline);

  const std::vector<report::RunResult> results = report::run_all(specs);
  const report::RunResult& base = results.back();

  util::Table table({"Variant", "E(idle=0)", "E(idle=low)", "Reduced",
                     "Avg BSLD", "Avg wait (s)"});
  for (std::size_t c = 1; c < 6; ++c) table.set_align(c, util::Align::kRight);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto norm = report::normalized_energy(results[i].sim(), base.sim());
    table.add_row({rows[i].first, util::fmt_double(norm.computational, 3),
                   util::fmt_double(norm.total, 3),
                   std::to_string(results[i].sim().reduced_jobs),
                   util::fmt_double(results[i].sim().avg_bsld, 2),
                   util::fmt_double(results[i].sim().avg_wait, 0)});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "Ablation bench — design decisions and extensions\n\n";

  // A. beta sensitivity.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    for (const double beta : {0.0, 0.3, 0.5, 0.7, 1.0}) {
      report::RunSpec spec =
          base_spec(wl::Archive::kSDSCBlue, 2.0, std::nullopt);
      spec.beta = beta;
      rows.emplace_back("beta=" + util::fmt_double(beta, 1), spec);
    }
    print_rows("A. beta sensitivity — SDSCBlue, (BSLDthr=2, WQ=NO). beta=0: "
               "frequency-insensitive jobs (max savings, no dilation); "
               "beta=1: CPU-bound jobs (dilation eats the savings).",
               rows);
  }

  // B. Backfill BSLD check at Ftop when the queue is over threshold.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    for (const bool strict : {true, false}) {
      report::RunSpec spec = base_spec(wl::Archive::kSDSC, 2.0, 0);
      spec.policy.dvfs->backfill_requires_bsld_at_top = strict;
      rows.emplace_back(strict ? "Fig.2-literal (check at Ftop)"
                               : "no BSLD check at Ftop",
                        spec);
    }
    print_rows("B. Fig. 2 else-branch BSLD check — SDSC, (BSLDthr=2, WQ=0). "
               "The literal check suppresses backfilling of long-waiting "
               "jobs on the saturated trace.",
               rows);
  }

  // C. WQsize self-counting.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    for (const bool self : {false, true}) {
      report::RunSpec spec = base_spec(wl::Archive::kLLNLThunder, 2.0, 0);
      spec.policy.dvfs->wq_counts_self = self;
      rows.emplace_back(self ? "WQsize includes self (DVFS never fires at WQ=0)"
                             : "WQsize excludes self (default)",
                        spec);
    }
    print_rows("C. WQsize counting — LLNLThunder, (BSLDthr=2, WQ=0). "
               "Counting the job itself makes WQthreshold=0 a no-DVFS "
               "policy, contradicting the paper's Fig. 3 savings — the "
               "reason DESIGN.md resolves the ambiguity to 'exclude'.",
               rows);
  }

  // D. Base policy portability: EASY vs FCFS vs conservative backfilling,
  // all with the identical assigner.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    for (const auto& [name, base_name] :
         std::vector<std::pair<std::string, std::string>>{
             {"EASY + BSLD-DVFS", "easy"},
             {"Conservative + BSLD-DVFS", "conservative"},
             {"FCFS + BSLD-DVFS", "fcfs"}}) {
      report::RunSpec spec = base_spec(wl::Archive::kCTC, 2.0, std::nullopt);
      spec.policy.name = base_name;
      rows.emplace_back(name, spec);
    }
    print_rows("D. Base-policy portability — CTC, (BSLDthr=2, WQ=NO). The "
               "assigner drops into FCFS and conservative backfilling "
               "unchanged ('can be applied with any parallel job scheduling "
               "policy').",
               rows);
  }

  // E. Resource selector.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    for (const std::string selector : {"FirstFit", "LastFit"}) {
      report::RunSpec spec = base_spec(wl::Archive::kSDSCBlue, 2.0, 16);
      spec.policy.selector = selector;
      rows.emplace_back(selector, spec);
    }
    print_rows("E. Resource selector — SDSCBlue, (BSLDthr=2, WQ=16). First "
               "Fit and Last Fit must produce identical schedule metrics on "
               "a flat machine (count-based feasibility).",
               rows);
  }

  // F. Dynamic frequency raising (the paper's §7 future work): raise
  // running reduced jobs when the queue exceeds a limit.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    rows.emplace_back("no raising (paper policy)",
                      base_spec(wl::Archive::kLLNLThunder, 2.0, std::nullopt));
    for (const std::int64_t limit : {16, 4, 0}) {
      report::RunSpec spec =
          base_spec(wl::Archive::kLLNLThunder, 2.0, std::nullopt);
      core::DynamicRaiseConfig raise;
      raise.queue_limit = limit;
      spec.policy.raise = raise;
      rows.emplace_back("raise to Ftop when WQ > " + std::to_string(limit),
                        spec);
    }
    print_rows("F. Dynamic frequency raising — LLNLThunder, (BSLDthr=2, "
               "WQ=NO). Lower raise limits give back energy savings in "
               "exchange for the BSLD penalty, interpolating between the "
               "paper's policy and no DVFS.",
               rows);
  }

  // G. Per-job beta (the paper's other stated future work): jobs differ in
  // frequency sensitivity instead of the uniform beta = 0.5.
  {
    std::vector<std::pair<std::string, report::RunSpec>> rows;
    report::RunSpec uniform =
        base_spec(wl::Archive::kLLNLAtlas, 2.0, std::nullopt);
    rows.emplace_back("uniform beta = 0.5 (paper)", uniform);
    report::RunSpec narrow = uniform;
    narrow.per_job_beta = {{0.4, 0.6}};
    rows.emplace_back("per-job beta ~ U[0.4, 0.6]", narrow);
    report::RunSpec wide = uniform;
    wide.per_job_beta = {{0.0, 1.0}};
    rows.emplace_back("per-job beta ~ U[0.0, 1.0]", wide);
    print_rows("G. Per-job beta — LLNLAtlas, (BSLDthr=2, WQ=NO). The "
               "assigner sees each job's own dilation, so "
               "frequency-insensitive jobs are reduced aggressively and "
               "CPU-bound ones conservatively.",
               rows);
  }

  return 0;
}
