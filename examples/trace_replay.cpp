/// \file trace_replay.cpp
/// \brief Replays a Standard Workload Format (SWF) trace through the
/// power-aware scheduler — the path a user with real Parallel Workload
/// Archive logs would take. Without an input file it writes a synthetic
/// trace to disk first and replays that, demonstrating the full round trip
/// (generate -> save SWF -> load SWF -> clean -> simulate).
///
/// The SWF pipeline (load, clean, slice) lives in wl::load_source; the two
/// runs — no-DVFS baseline vs the paper's policy — are RunSpecs differing
/// only in their policy config, executed through report::run_all.
///
/// Run: ./trace_replay [--input trace.swf] [--cpus 0] [--bsld 2.0] [--wq NO]
#include <iostream>

#include "report/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/swf.hpp"
#include "workload/workload_stats.hpp"

using namespace bsld;

int main(int argc, char** argv) {
  util::Cli cli("trace_replay",
                "replay an SWF trace through the power-aware scheduler");
  cli.add_flag("input", "", "SWF file to replay (empty: self-generate one)");
  cli.add_flag("cpus", "0", "machine size (0: use the trace's MaxProcs)");
  cli.add_flag("bsld", "2.0", "BSLDthreshold");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO");
  if (!cli.parse(argc, argv)) return 0;

  std::string path = cli.get("input");
  if (path.empty()) {
    // Self-demo: write a 2000-job SDSCBlue-like trace as SWF.
    path = "trace_replay_demo.swf";
    const wl::Workload demo = wl::load_source(
        wl::WorkloadSource::from_archive(wl::Archive::kSDSCBlue, 2000));
    wl::save_swf_file(path, demo);
    std::cout << "No --input given; wrote demo trace to " << path << "\n";
  }

  const wl::WorkloadSource source = wl::WorkloadSource::from_swf(
      path, /*jobs=*/0, static_cast<std::int32_t>(cli.get_int("cpus")));

  wl::CleanReport clean_report;
  const wl::Workload workload = wl::load_source(source, &clean_report);
  std::cout << "Loaded " << path << ": kept " << clean_report.kept
            << " jobs, dropped " << clean_report.dropped_invalid
            << " invalid, clamped " << clean_report.clamped_size
            << " oversized (machine: " << workload.cpus << " CPUs)\n"
            << "Trace stats: " << wl::to_string(wl::compute_stats(workload))
            << "\n\n";

  report::RunSpec baseline;
  baseline.workload = source;

  report::RunSpec power_aware = baseline;
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = cli.get_double("bsld");
  if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
  else dvfs.wq_threshold = cli.get_int("wq");
  power_aware.policy.dvfs = dvfs;

  const std::vector<report::RunResult> results =
      report::run_all({baseline, power_aware});
  const sim::SimulationResult& base_run = results[0].sim();
  const sim::SimulationResult& dvfs_run = results[1].sim();

  util::Table table({"Run", "Avg BSLD", "Avg wait (s)", "Reduced jobs",
                     "E(idle=0) MJ", "E(idle=low) MJ"});
  for (std::size_t c = 1; c < 6; ++c) table.set_align(c, util::Align::kRight);
  for (const auto* run : {&base_run, &dvfs_run}) {
    table.add_row({run->policy, util::fmt_double(run->avg_bsld, 2),
                   util::fmt_double(run->avg_wait, 0),
                   std::to_string(run->reduced_jobs),
                   util::fmt_double(run->energy.computational_joules / 1e6, 2),
                   util::fmt_double(run->energy.total_joules / 1e6, 2)});
  }
  std::cout << table << '\n'
            << "Energy saved (idle=0): "
            << util::fmt_percent(1.0 - dvfs_run.energy.computational_joules /
                                           base_run.energy.computational_joules)
            << ", (idle=low): "
            << util::fmt_percent(1.0 - dvfs_run.energy.total_joules /
                                           base_run.energy.total_joules)
            << '\n';
  return 0;
}
