/// \file make_trace.cpp
/// \brief Exports the calibrated synthetic archive models as Standard
/// Workload Format files, so they can be inspected, plotted, or fed to
/// other scheduling simulators.
///
/// Run: ./make_trace --archive CTC --jobs 5000 --out ctc.swf [--seed 0]
#include <cstdint>
#include <iostream>

#include "util/cli.hpp"
#include "workload/source.hpp"
#include "workload/swf.hpp"
#include "workload/workload_stats.hpp"

using namespace bsld;

int main(int argc, char** argv) try {
  util::Cli cli("make_trace", "export a synthetic archive model as SWF");
  cli.add_flag("archive", "CTC",
               "workload model: CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas");
  cli.add_flag("jobs", "5000", "trace length in jobs");
  cli.add_flag("out", "", "output path (default: <archive>.swf)");
  cli.add_flag("seed", "0",
               "generator seed (0 = the archive's canonical seed)");
  if (!cli.parse(argc, argv)) return 0;

  const wl::Archive archive = wl::archive_from_name(cli.get("archive"));
  const std::int64_t jobs = cli.get_int("jobs");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const wl::Workload workload =
      wl::load_source(wl::WorkloadSource::from_archive(archive, jobs, seed));

  std::string path = cli.get("out");
  if (path.empty()) path = wl::archive_name(archive) + ".swf";
  wl::save_swf_file(path, workload);

  std::cout << "Wrote " << workload.jobs.size() << " jobs to " << path << '\n'
            << "Stats: " << wl::to_string(wl::compute_stats(workload)) << '\n';
  return 0;
} catch (const std::exception& error) {
  std::cerr << "make_trace: " << error.what() << '\n';
  return 1;
}
