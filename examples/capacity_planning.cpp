/// \file capacity_planning.cpp
/// \brief The paper's §5.2 dimensioning question as an application: "should
/// we buy 20% more DVFS-capable processors for the same workload?" Sweeps
/// system size for one archive and reports energy + performance against the
/// original-size no-DVFS operation.
///
/// Run: ./capacity_planning [--archive CTC] [--wq 0|4|16|NO] [--bsld 2.0]
#include <iostream>

#include "report/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace bsld;

int main(int argc, char** argv) {
  util::Cli cli("capacity_planning",
                "sweep DVFS-enabled system size for one workload (paper §5.2)");
  cli.add_flag("archive", "CTC",
               "workload model: CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas");
  cli.add_flag("wq", "NO", "WQthreshold: 0, 4, 16 or NO (no limit)");
  cli.add_flag("bsld", "2.0", "BSLDthreshold");
  if (!cli.parse(argc, argv)) return 0;

  const wl::Archive archive = wl::archive_from_name(cli.get("archive"));
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = cli.get_double("bsld");
  if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
  else dvfs.wq_threshold = cli.get_int("wq");

  std::vector<report::RunSpec> specs;
  report::RunSpec baseline;
  baseline.workload = wl::WorkloadSource::from_archive(archive);
  specs.push_back(baseline);  // original size, no DVFS
  for (const double scale : report::paper_size_scales()) {
    report::RunSpec spec = baseline;
    spec.size_scale = scale;
    spec.policy.dvfs = dvfs;
    specs.push_back(spec);
  }

  const std::vector<report::RunResult> results = report::run_all(specs);
  const report::RunResult& base = results.front();

  std::cout << "Capacity planning for " << wl::archive_name(archive)
            << " — power-aware EASY, BSLDthr="
            << util::fmt_double(dvfs.bsld_threshold, 1)
            << ", WQ=" << report::wq_label(dvfs.wq_threshold) << "\n"
            << "All values relative to the original "
            << wl::paper_cpus(archive) << "-CPU system without DVFS (avg BSLD "
            << util::fmt_double(base.sim().avg_bsld, 2) << ")\n\n";

  util::Table table({"System size", "CPUs", "E(idle=0)", "E(idle=low)",
                     "Avg BSLD", "Avg wait (s)", "Utilization"});
  for (std::size_t c = 1; c < 7; ++c) table.set_align(c, util::Align::kRight);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto norm = report::normalized_energy(results[i].sim(), base.sim());
    const double scale = results[i].spec.size_scale;
    std::string size_label = "+";
    size_label += util::fmt_double((scale - 1.0) * 100.0, 0);
    size_label += '%';
    table.add_row({std::move(size_label),
                   std::to_string(results[i].sim().cpus),
                   util::fmt_double(norm.computational, 3),
                   util::fmt_double(norm.total, 3),
                   util::fmt_double(results[i].sim().avg_bsld, 2),
                   util::fmt_double(results[i].sim().avg_wait, 0),
                   util::fmt_double(results[i].sim().utilization, 3)});
  }
  std::cout << table
            << "\nReading: E(idle=0) keeps falling with size; E(idle=low) "
               "has a sweet spot; BSLD improves monotonically. The paper's "
               "headline: +20% size => almost 30% less CPU energy at equal "
               "or better performance.\n";
  return 0;
}
