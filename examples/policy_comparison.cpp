/// \file policy_comparison.cpp
/// \brief Side-by-side comparison of every base scheduling policy in the
/// library — FCFS, EASY backfilling, conservative backfilling, and EASY
/// with dynamic frequency raising — each with and without the paper's
/// BSLD-threshold DVFS, on one workload.
///
/// Run: ./policy_comparison [--archive SDSCBlue] [--jobs 3000]
///                          [--bsld 2.0] [--wq NO]
#include <iostream>

#include "core/policy_factory.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/archives.hpp"

using namespace bsld;

int main(int argc, char** argv) {
  util::Cli cli("policy_comparison",
                "compare FCFS / EASY / conservative / dynamic-raise, with "
                "and without BSLD-threshold DVFS");
  cli.add_flag("archive", "SDSCBlue",
               "workload model: CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas");
  cli.add_flag("jobs", "3000", "trace length in jobs");
  cli.add_flag("bsld", "2.0", "BSLDthreshold for the DVFS variants");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO");
  if (!cli.parse(argc, argv)) return 0;

  const wl::Workload workload = wl::make_archive_workload(
      wl::archive_from_name(cli.get("archive")),
      static_cast<std::int32_t>(cli.get_int("jobs")));

  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = cli.get_double("bsld");
  if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
  else dvfs.wq_threshold = cli.get_int("wq");

  const cluster::GearSet gears = cluster::paper_gear_set();
  const power::PowerModel power_model(gears);
  const power::BetaTimeModel time_model(gears, 0.5);

  struct Candidate {
    std::string label;
    std::unique_ptr<core::SchedulingPolicy> policy;
  };
  std::vector<Candidate> candidates;
  for (const auto& [label, base] :
       std::vector<std::pair<std::string, core::BasePolicy>>{
           {"FCFS", core::BasePolicy::kFcfs},
           {"EASY", core::BasePolicy::kEasy},
           {"Conservative", core::BasePolicy::kConservative}}) {
    candidates.push_back({label + " / Ftop",
                          core::make_policy(base, std::nullopt)});
    candidates.push_back({label + " / BSLD-DVFS",
                          core::make_policy(base, dvfs)});
  }
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 16;
  candidates.push_back({"EASY+raise>16 / BSLD-DVFS",
                        core::make_dynamic_raise_policy(dvfs, raise)});

  std::cout << "Policy comparison on " << workload.name << " ("
            << workload.jobs.size() << " jobs, " << workload.cpus
            << " CPUs); DVFS = BSLD<=" << cli.get("bsld") << ", WQ<="
            << cli.get("wq") << "\n\n";

  util::Table table({"Policy", "Avg BSLD", "Avg wait (s)", "Reduced",
                     "Boosted", "E(idle=0) GJ", "E(idle=low) GJ",
                     "Utilization"});
  for (std::size_t c = 1; c < 8; ++c) table.set_align(c, util::Align::kRight);
  for (auto& candidate : candidates) {
    const sim::SimulationResult result = sim::run_simulation(
        workload, *candidate.policy, power_model, time_model);
    table.add_row({candidate.label, util::fmt_double(result.avg_bsld, 2),
                   util::fmt_double(result.avg_wait, 0),
                   std::to_string(result.reduced_jobs),
                   std::to_string(result.boosted_jobs),
                   util::fmt_double(result.energy.computational_joules / 1e9, 3),
                   util::fmt_double(result.energy.total_joules / 1e9, 3),
                   util::fmt_double(result.utilization, 3)});
  }
  std::cout << table
            << "\nReading: backfilling (EASY/Conservative) beats FCFS on "
               "both metrics; DVFS trades BSLD for energy under every base "
               "policy; dynamic raising claws back most of the penalty for "
               "part of the savings.\n";
  return 0;
}
