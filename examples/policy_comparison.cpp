/// \file policy_comparison.cpp
/// \brief Side-by-side comparison of every registered base scheduling
/// policy — FCFS, EASY backfilling, conservative backfilling, and EASY
/// with dynamic frequency raising — each with and without the paper's
/// BSLD-threshold DVFS, on one workload.
///
/// The candidates are RunSpecs differing only in their PolicySpec (names
/// straight from core::PolicyRegistry), executed in one parallel batch by
/// report::SweepRunner — which also deduplicates the shared workload specs
/// and streams per-run progress.
///
/// Run: ./policy_comparison [--archive SDSCBlue] [--jobs 3000]
///                          [--bsld 2.0] [--wq NO]
#include <iostream>

#include "report/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace bsld;

int main(int argc, char** argv) {
  util::Cli cli("policy_comparison",
                "compare FCFS / EASY / conservative / dynamic-raise, with "
                "and without BSLD-threshold DVFS");
  cli.add_flag("archive", "SDSCBlue",
               "workload model: CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas");
  cli.add_flag("jobs", "3000", "trace length in jobs");
  cli.add_flag("bsld", "2.0", "BSLDthreshold for the DVFS variants");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO");
  if (!cli.parse(argc, argv)) return 0;

  const wl::WorkloadSource workload = wl::WorkloadSource::from_archive(
      wl::archive_from_name(cli.get("archive")),
      cli.get_int("jobs"));

  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = cli.get_double("bsld");
  if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
  else dvfs.wq_threshold = cli.get_int("wq");

  std::vector<report::RunSpec> specs;
  for (const char* policy : {"fcfs", "easy", "conservative"}) {
    report::RunSpec spec;
    spec.workload = workload;
    spec.policy.name = policy;
    specs.push_back(spec);          // Ftop baseline
    spec.policy.dvfs = dvfs;
    specs.push_back(spec);          // BSLD-DVFS variant
  }
  {
    report::RunSpec spec;
    spec.workload = workload;
    core::DynamicRaiseConfig raise;
    raise.queue_limit = 16;
    spec.policy.raise = raise;      // resolves to "easy+raise"
    spec.policy.dvfs = dvfs;
    specs.push_back(spec);
  }

  std::cout << "Policy comparison on " << wl::source_label(workload) << " ("
            << cli.get("jobs") << " jobs); DVFS = BSLD<=" << cli.get("bsld")
            << ", WQ<=" << cli.get("wq") << "\n\n";

  report::SweepRunner runner;
  runner.on_progress([](const report::SweepRunner::Progress& progress,
                        const report::RunSpec& finished) {
    std::cerr << "[" << progress.completed << "/" << progress.total << "] "
              << finished.label() << '\n';
  });
  const std::vector<report::RunResult> results = runner.run(specs);

  util::Table table({"Policy", "Avg BSLD", "Avg wait (s)", "Reduced",
                     "Boosted", "E(idle=0) GJ", "E(idle=low) GJ",
                     "Utilization"});
  for (std::size_t c = 1; c < 8; ++c) table.set_align(c, util::Align::kRight);
  for (const report::RunResult& run : results) {
    const sim::SimulationResult& result = run.sim();
    table.add_row({core::policy_label(run.spec.policy),
                   util::fmt_double(result.avg_bsld, 2),
                   util::fmt_double(result.avg_wait, 0),
                   std::to_string(result.reduced_jobs),
                   std::to_string(result.boosted_jobs),
                   util::fmt_double(result.energy.computational_joules / 1e9, 3),
                   util::fmt_double(result.energy.total_joules / 1e9, 3),
                   util::fmt_double(result.utilization, 3)});
  }
  std::cout << table
            << "\nReading: backfilling (EASY/Conservative) beats FCFS on "
               "both metrics; DVFS trades BSLD for energy under every base "
               "policy; dynamic raising claws back most of the penalty for "
               "part of the savings.\n";
  return 0;
}
