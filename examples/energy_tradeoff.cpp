/// \file energy_tradeoff.cpp
/// \brief The paper's §5.1 workflow as an application: sweep the two policy
/// parameters (BSLDthreshold x WQthreshold) on one workload and print the
/// energy/performance frontier an operator would choose from.
///
/// Run: ./energy_tradeoff [--archive SDSCBlue] [--jobs 5000]
#include <cstdint>
#include <iostream>

#include "report/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace bsld;

int main(int argc, char** argv) {
  util::Cli cli("energy_tradeoff",
                "sweep BSLD/WQ thresholds on one workload and print the "
                "energy-performance trade-off");
  cli.add_flag("archive", "SDSCBlue",
               "workload model: CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas");
  cli.add_flag("jobs", "5000", "trace length in jobs");
  if (!cli.parse(argc, argv)) return 0;

  const wl::Archive archive = wl::archive_from_name(cli.get("archive"));
  const std::int64_t jobs = cli.get_int("jobs");

  std::vector<report::RunSpec> specs;
  report::RunSpec baseline;
  baseline.workload = wl::WorkloadSource::from_archive(archive, jobs);
  specs.push_back(baseline);
  for (const double threshold : report::paper_bsld_thresholds()) {
    for (const auto& wq : report::paper_wq_thresholds()) {
      report::RunSpec spec = baseline;
      core::DvfsConfig dvfs;
      dvfs.bsld_threshold = threshold;
      dvfs.wq_threshold = wq;
      spec.policy.dvfs = dvfs;
      specs.push_back(spec);
    }
  }

  const std::vector<report::RunResult> results = report::run_all(specs);
  const report::RunResult& base = results.front();

  std::cout << "Energy-performance trade-off for " << wl::archive_name(archive)
            << " (" << jobs << " jobs, baseline avg BSLD "
            << util::fmt_double(base.sim().avg_bsld, 2) << ")\n\n";

  util::Table table({"BSLDthr", "WQthr", "Energy saved (idle=0)",
                     "Energy saved (idle=low)", "Avg BSLD", "Reduced jobs"});
  for (std::size_t c = 2; c < 6; ++c) table.set_align(c, util::Align::kRight);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto norm = report::normalized_energy(results[i].sim(), base.sim());
    table.add_row(
        {util::fmt_double(results[i].spec.policy.dvfs->bsld_threshold, 1),
         report::wq_label(results[i].spec.policy.dvfs->wq_threshold),
         util::fmt_percent(1.0 - norm.computational),
         util::fmt_percent(1.0 - norm.total),
         util::fmt_double(results[i].sim().avg_bsld, 2),
         std::to_string(results[i].sim().reduced_jobs)});
  }
  std::cout << table
            << "\nPick the row with the largest savings whose BSLD penalty "
               "your users tolerate.\n";
  return 0;
}
