/// \file quickstart.cpp
/// \brief Smallest complete use of the library: build a tiny DVFS cluster,
/// submit a handful of jobs, schedule them with the power-aware EASY
/// backfilling policy, and inspect the schedule and the energy bill.
///
/// The run is described by a report::RunSpec (policy by registry name,
/// paper platform defaults) and executed with report::run_workload — the
/// entry point for hand-written job lists, sharing all machinery with the
/// archive/SWF-driven experiments.
///
/// Run: ./quickstart
#include <iostream>

#include "report/experiment.hpp"
#include "util/table.hpp"

using namespace bsld;

int main() {
  // Five jobs, SWF-style: {id, submit, runtime@Ftop, requested, size, user}.
  wl::Workload workload;
  workload.name = "quickstart";
  workload.cpus = 8;
  workload.jobs = {
      {1, 0, 3000, 3600, 4, 0},     // starts immediately, half the machine
      {2, 10, 7000, 7200, 6, 0},    // must wait for job 1 -> head reservation
      {3, 20, 500, 600, 2, 1},      // backfills next to job 1
      {4, 30, 1000, 1800, 2, 1},    // backfills after job 3
      {5, 40, 2000, 2400, 8, 2},    // whole machine, runs last
  };

  // The paper's power-aware scheduler: EASY backfilling + BSLD-threshold
  // frequency assignment (BSLDthreshold = 2, WQthreshold = NO LIMIT), on
  // the paper's gear set / power model / beta = 0.5 (the spec defaults).
  report::RunSpec spec;
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  spec.policy.dvfs = dvfs;

  const sim::SimulationResult result =
      report::run_workload(workload, spec).sim();

  std::cout << "Policy: " << result.policy << "\n\n";
  util::Table table({"Job", "Size", "Submit", "Start", "End", "Gear (GHz)",
                     "Runtime@Ftop", "Actual runtime", "BSLD"});
  for (std::size_t c = 1; c < 9; ++c) table.set_align(c, util::Align::kRight);
  for (const sim::JobOutcome& job : result.jobs) {
    table.add_row({std::to_string(job.id), std::to_string(job.size),
                   std::to_string(job.submit), std::to_string(job.start),
                   std::to_string(job.end),
                   util::fmt_double(spec.gears[job.gear].frequency_ghz, 1),
                   std::to_string(job.run_time_top),
                   std::to_string(job.scaled_runtime),
                   util::fmt_double(job.bsld, 2)});
  }
  std::cout << table << '\n';

  std::cout << "Jobs run below the top frequency: " << result.reduced_jobs
            << " of " << result.jobs.size() << '\n'
            << "Average BSLD: " << util::fmt_double(result.avg_bsld, 2) << '\n'
            << "CPU energy (computational, idle=0): "
            << util::fmt_double(result.energy.computational_joules / 1e6, 3)
            << " MJ\n"
            << "CPU energy (total, idle=low):       "
            << util::fmt_double(result.energy.total_joules / 1e6, 3)
            << " MJ\n";
  return 0;
}
