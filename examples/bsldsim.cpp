/// \file bsldsim.cpp
/// \brief The downstream user's entry point: a config-driven simulator run.
/// Combines every seam of the library — workload source (archive model or
/// SWF file), platform file (gears + power model + beta, Alvio-style
/// "adjustable in configuration files"), base policy, DVFS thresholds, the
/// dynamic-raise extension, and machine scaling — into one invocation and
/// prints the full report.
///
/// Run: ./bsldsim --workload SDSCBlue --bsld 2 --wq 16
///      ./bsldsim --workload trace.swf --policy conservative --platform p.conf
///
/// Platform file keys (all optional):
///   gears.frequencies_ghz = 0.8, 1.1, 1.4, 1.7, 2.0, 2.3
///   gears.voltages_v      = 1.0, 1.1, 1.2, 1.3, 1.4, 1.5
///   power.activity_ratio = 2.5
///   power.static_fraction_at_top = 0.25
///   power.top_active_power_watts = 95
///   time.beta = 0.5
#include <iostream>

#include "core/policy_factory.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/archives.hpp"
#include "workload/cleaner.hpp"
#include "workload/swf.hpp"

#include <cmath>
#include <fstream>

using namespace bsld;

namespace {

wl::Workload load_workload(const std::string& source, std::int32_t jobs) {
  // Archive names resolve to the calibrated synthetic models; anything
  // else is treated as an SWF file path.
  for (const wl::Archive archive : wl::all_archives()) {
    if (wl::archive_name(archive) == source) {
      return wl::make_archive_workload(archive, jobs);
    }
  }
  const wl::SwfTrace trace = wl::load_swf_file(source);
  wl::Workload workload;
  workload.name = source;
  workload.cpus = trace.max_procs(1024);
  workload.jobs = trace.jobs;
  wl::CleanOptions options;
  options.machine_cpus = workload.cpus;
  wl::clean(workload, options);
  if (jobs > 0 && static_cast<std::size_t>(jobs) < workload.jobs.size()) {
    workload = wl::slice(workload, 0, static_cast<std::size_t>(jobs));
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli("bsldsim", "config-driven power-aware scheduling simulation");
  cli.add_flag("workload", "SDSCBlue",
               "archive model (CTC/SDSC/SDSCBlue/LLNLThunder/LLNLAtlas) or "
               "an SWF file path");
  cli.add_flag("jobs", "5000", "trace length (0 = whole SWF file)");
  cli.add_flag("platform", "", "platform config file (see header comment)");
  cli.add_flag("policy", "easy", "base policy: easy, fcfs, conservative");
  cli.add_flag("selector", "FirstFit", "resource selector: FirstFit, LastFit");
  cli.add_flag("dvfs", "true", "apply the BSLD-threshold DVFS algorithm");
  cli.add_flag("bsld", "2.0", "BSLDthreshold");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO (no limit)");
  cli.add_flag("raise", "-1",
               "dynamic-raise queue limit (-1 = off; extension, easy only)");
  cli.add_flag("scale", "1.0", "machine size multiplier (1.2 = +20%)");
  cli.add_flag("out", "", "write per-job outcomes to this CSV file");
  if (!cli.parse(argc, argv)) return 0;

  const util::Config platform =
      cli.get("platform").empty() ? util::Config{}
                                  : util::Config::load_file(cli.get("platform"));
  const cluster::GearSet gears = cluster::gear_set_from_config(platform);
  const power::PowerModel power_model(gears, power::power_config_from(platform));
  const power::BetaTimeModel time_model(
      gears, platform.get_double("time.beta", 0.5));

  const wl::Workload workload = load_workload(
      cli.get("workload"), static_cast<std::int32_t>(cli.get_int("jobs")));

  std::optional<core::DvfsConfig> dvfs;
  if (cli.get_bool("dvfs")) {
    core::DvfsConfig config;
    config.bsld_threshold = cli.get_double("bsld");
    if (cli.get("wq") == "NO") config.wq_threshold = std::nullopt;
    else config.wq_threshold = cli.get_int("wq");
    dvfs = config;
  }

  std::unique_ptr<core::SchedulingPolicy> policy;
  if (cli.get_int("raise") >= 0) {
    core::DynamicRaiseConfig raise;
    raise.queue_limit = cli.get_int("raise");
    policy = core::make_dynamic_raise_policy(dvfs, raise, cli.get("selector"));
  } else {
    policy = core::make_policy(core::base_policy_from_name(cli.get("policy")),
                               dvfs, cli.get("selector"));
  }

  sim::SimulationConfig sim_config;
  sim_config.cpus = static_cast<std::int32_t>(
      std::llround(workload.cpus * cli.get_double("scale")));
  const sim::SimulationResult result = sim::run_simulation(
      workload, *policy, power_model, time_model, sim_config);

  std::cout << "bsldsim — " << workload.name << " (" << workload.jobs.size()
            << " jobs) on " << result.cpus << " CPUs, policy "
            << result.policy << "\n\n";
  util::Table table({"Metric", "Value"});
  table.set_align(1, util::Align::kRight);
  table.add_row({"Average BSLD", util::fmt_double(result.avg_bsld, 2)});
  table.add_row({"Average wait (s)", util::fmt_double(result.avg_wait, 0)});
  table.add_row({"Makespan (s)", std::to_string(result.makespan)});
  table.add_row({"Utilization", util::fmt_double(result.utilization, 3)});
  table.add_row({"Jobs at reduced frequency", std::to_string(result.reduced_jobs)});
  table.add_row({"Jobs boosted mid-flight", std::to_string(result.boosted_jobs)});
  table.add_row({"Energy, idle=0 (GJ)",
                 util::fmt_double(result.energy.computational_joules / 1e9, 3)});
  table.add_row({"Energy, idle=low (GJ)",
                 util::fmt_double(result.energy.total_joules / 1e9, 3)});
  table.add_row({"Events processed", std::to_string(result.events_processed)});
  std::cout << table;

  std::cout << "\nJobs per gear:";
  for (std::size_t g = 0; g < result.jobs_per_gear.size(); ++g) {
    std::cout << "  " << gears[static_cast<GearIndex>(g)].frequency_ghz
              << "GHz:" << result.jobs_per_gear[g];
  }
  std::cout << '\n';

  if (!cli.get("out").empty()) {
    std::ofstream file(cli.get("out"));
    util::CsvWriter csv(file);
    csv.write_row({"id", "submit", "start", "end", "size", "gear_ghz",
                   "final_gear_ghz", "wait_s", "bsld"});
    for (const sim::JobOutcome& job : result.jobs) {
      csv.write_row({std::to_string(job.id), std::to_string(job.submit),
                     std::to_string(job.start), std::to_string(job.end),
                     std::to_string(job.size),
                     util::fmt_double(gears[job.gear].frequency_ghz, 1),
                     util::fmt_double(gears[job.final_gear].frequency_ghz, 1),
                     std::to_string(job.wait()),
                     util::fmt_double(job.bsld, 3)});
    }
    std::cout << "Per-job outcomes written to " << cli.get("out") << '\n';
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "bsldsim: " << error.what() << '\n';
  return 1;
}
