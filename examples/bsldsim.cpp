/// \file bsldsim.cpp
/// \brief The downstream user's entry point: a config-driven simulator run.
/// A thin CLI over report::RunSpec — every seam of the library (workload
/// source, platform file, policy registry, DVFS thresholds, the
/// dynamic-raise extension, machine scaling) is a field of the spec, and
/// the run itself is one report::run_one() call.
///
/// Run: ./bsldsim --workload SDSCBlue --bsld 2 --wq 16
///      ./bsldsim --workload trace.swf --policy conservative --platform p.conf
///      ./bsldsim --spec run.conf                # replay a saved spec
///      ./bsldsim --workload CTC --save-spec run.conf   # save for later
///      ./bsldsim --instruments wait-trace,utilization --instruments-out .
///      ./bsldsim --format jsonl                 # one JSON object, machine-readable
///      ./bsldsim --list-policies                # registry contents
///      ./bsldsim --list-instruments
///
/// With --spec, the file provides the baseline and explicitly-passed flags
/// override it; --save-spec writes the effective spec in its canonical
/// round-trippable form (see RunSpec::to_config).
///
/// Platform file keys (all optional):
///   gears.frequencies_ghz = 0.8, 1.1, 1.4, 1.7, 2.0, 2.3
///   gears.voltages_v      = 1.0, 1.1, 1.2, 1.3, 1.4, 1.5
///   power.activity_ratio = 2.5
///   power.static_fraction_at_top = 0.25
///   power.top_active_power_watts = 95
///   time.beta = 0.5
#include <iostream>

#include "report/experiment.hpp"
#include "report/sinks.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

#include <fstream>

using namespace bsld;

int main(int argc, char** argv) try {
  util::Cli cli("bsldsim", "config-driven power-aware scheduling simulation");
  cli.add_flag("spec", "", "run-spec file; other flags override its values");
  cli.add_flag("save-spec", "",
               "write the effective spec to this file and continue");
  cli.add_flag("workload", "SDSCBlue",
               "archive model (CTC/SDSC/SDSCBlue/LLNLThunder/LLNLAtlas) or "
               "an SWF file path");
  cli.add_flag("jobs", "5000", "trace length (0 = whole SWF file)");
  cli.add_flag("seed", "0",
               "generator seed for synthetic workloads (0 = the archive's "
               "canonical seed)");
  cli.add_flag("platform", "", "platform config file (see header comment)");
  cli.add_flag("policy", "easy",
               "scheduling policy name (see core::PolicyRegistry): easy, "
               "fcfs, conservative, easy+raise");
  cli.add_flag("selector", "FirstFit", "resource selector: FirstFit, LastFit");
  cli.add_flag("dvfs", "true", "apply the BSLD-threshold DVFS algorithm");
  cli.add_flag("bsld", "2.0", "BSLDthreshold");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO (no limit)");
  cli.add_flag("raise", "-1",
               "dynamic-raise queue limit (-1 = off; extension, easy only)");
  cli.add_flag("scale", "1.0", "machine size multiplier (1.2 = +20%)");
  cli.add_flag("out", "", "write per-job outcomes to this CSV file");
  cli.add_flag("instruments", "",
               "comma-separated extra instruments (see --list-instruments), "
               "e.g. wait-trace,utilization");
  cli.add_flag("instruments-out", "",
               "write each instrument's CSV to <dir>/<name>.csv instead of "
               "printing a summary");
  cli.add_flag("retain-jobs", "true",
               "keep per-job outcomes in memory; false = streaming "
               "aggregate-only run (O(1) memory, disables --out)");
  cli.add_flag("format", "table",
               "result output format: table, csv, or jsonl");
  cli.add_flag("list-policies", "false",
               "print the policy/assigner registry contents and exit");
  cli.add_flag("list-instruments", "false",
               "print the instrument registry contents and exit");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_bool("list-policies")) {
    const core::PolicyRegistry& registry = core::PolicyRegistry::global();
    std::cout << "policies:";
    for (const std::string& name : registry.policy_names())
      std::cout << ' ' << name;
    std::cout << "\nassigners:";
    for (const std::string& name : registry.assigner_names())
      std::cout << ' ' << name;
    std::cout << '\n';
    return 0;
  }
  if (cli.get_bool("list-instruments")) {
    std::cout << "instruments:";
    for (const std::string& name : sim::InstrumentRegistry::global().names())
      std::cout << ' ' << name;
    std::cout << '\n';
    return 0;
  }

  // Baseline spec: the --spec file when given, defaults otherwise.
  const bool from_file = !cli.get("spec").empty();
  report::RunSpec spec =
      from_file
          ? report::RunSpec::parse(util::Config::load_file(cli.get("spec")))
          : report::RunSpec{};
  // A flag applies when explicitly passed, or always in the no-file mode
  // (where the registered defaults are the baseline).
  const auto overrides = [&](const char* flag) {
    return !from_file || cli.given(flag);
  };

  if (overrides("workload")) {
    spec.workload = wl::resolve_source(
        cli.get("workload"),
        overrides("jobs") ? static_cast<std::int32_t>(cli.get_int("jobs"))
                          : spec.workload.jobs,
        overrides("seed") ? static_cast<std::uint64_t>(cli.get_int("seed"))
                          : spec.workload.seed);
  } else {
    if (overrides("jobs")) {
      spec.workload.jobs = static_cast<std::int32_t>(cli.get_int("jobs"));
    }
    if (overrides("seed")) {
      spec.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    }
  }
  if (overrides("platform") && !cli.get("platform").empty()) {
    const util::Config platform = util::Config::load_file(cli.get("platform"));
    spec.gears = cluster::gear_set_from_config(platform);
    spec.power = power::power_config_from(platform);
    spec.beta = platform.get_double("time.beta", spec.beta);
  }
  if (overrides("policy")) spec.policy.name = cli.get("policy");
  if (overrides("selector")) spec.policy.selector = cli.get("selector");
  if (overrides("dvfs") || overrides("bsld") || overrides("wq")) {
    // --bsld/--wq refine an existing DVFS config; only --dvfs switches the
    // algorithm on or off relative to the spec baseline.
    const bool dvfs_on = overrides("dvfs") ? cli.get_bool("dvfs")
                                           : spec.policy.dvfs.has_value();
    if (dvfs_on) {
      core::DvfsConfig dvfs = spec.policy.dvfs.value_or(core::DvfsConfig{});
      if (overrides("bsld")) dvfs.bsld_threshold = cli.get_double("bsld");
      if (overrides("wq")) {
        if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
        else dvfs.wq_threshold = cli.get_int("wq");
      }
      spec.policy.dvfs = dvfs;
    } else {
      spec.policy.dvfs = std::nullopt;
    }
  }
  if (overrides("raise")) {
    if (cli.get_int("raise") >= 0) {
      core::DynamicRaiseConfig raise;
      raise.queue_limit = cli.get_int("raise");
      spec.policy.raise = raise;
    } else {
      spec.policy.raise = std::nullopt;
    }
  }
  if (overrides("scale")) spec.size_scale = cli.get_double("scale");
  if (overrides("instruments")) {
    // Same trimming/splitting as the `instruments` spec-file key.
    util::Config list;
    list.set("instruments", cli.get("instruments"));
    spec.instruments = list.get_string_list("instruments", {});
  }
  // Validate before --save-spec so a typo cannot persist an unreplayable
  // spec file; the registry error lists what is registered.
  for (const std::string& name : spec.instruments) {
    sim::InstrumentRegistry::global().require(name);
  }
  if (overrides("retain-jobs")) spec.retain_jobs = cli.get_bool("retain-jobs");

  const std::string format = cli.get("format");
  BSLD_REQUIRE(format == "table" || format == "csv" || format == "jsonl",
               "bsldsim: --format must be table, csv, or jsonl");
  // Machine-readable formats keep stdout pure; notices go to stderr.
  std::ostream& notice = format == "table" ? std::cout : std::cerr;

  if (!cli.get("save-spec").empty()) {
    std::ofstream file(cli.get("save-spec"));
    file << spec.to_config().to_string();
    notice << "Spec written to " << cli.get("save-spec") << '\n';
  }

  const report::RunResult run = report::run_one(spec);
  const sim::SimulationResult& result = run.sim;

  if (format == "csv") {
    report::CsvResultSink sink(std::cout);
    sink.on_result(0, run);
  } else if (format == "jsonl") {
    report::JsonlResultSink sink(std::cout);
    sink.on_result(0, run);
  } else {
    std::cout << "bsldsim — " << spec.label() << " (" << result.job_count
              << " jobs) on " << result.cpus << " CPUs, policy "
              << result.policy << "\n\n";
    util::Table table({"Metric", "Value"});
    table.set_align(1, util::Align::kRight);
    table.add_row({"Average BSLD", util::fmt_double(result.avg_bsld, 2)});
    table.add_row({"Average wait (s)", util::fmt_double(result.avg_wait, 0)});
    table.add_row({"Makespan (s)", std::to_string(result.makespan)});
    table.add_row({"Utilization", util::fmt_double(result.utilization, 3)});
    table.add_row({"Jobs at reduced frequency", std::to_string(result.reduced_jobs)});
    table.add_row({"Jobs boosted mid-flight", std::to_string(result.boosted_jobs)});
    table.add_row({"Energy, idle=0 (GJ)",
                   util::fmt_double(result.energy.computational_joules / 1e9, 3)});
    table.add_row({"Energy, idle=low (GJ)",
                   util::fmt_double(result.energy.total_joules / 1e9, 3)});
    table.add_row({"Events processed", std::to_string(result.events_processed)});
    std::cout << table;

    std::cout << "\nJobs per gear:";
    for (std::size_t g = 0; g < result.jobs_per_gear.size(); ++g) {
      std::cout << "  " << spec.gears[static_cast<GearIndex>(g)].frequency_ghz
                << "GHz:" << result.jobs_per_gear[g];
    }
    std::cout << '\n';
  }

  for (const auto& instrument : run.instruments) {
    if (!cli.get("instruments-out").empty()) {
      const std::string path =
          cli.get("instruments-out") + "/" + instrument->name() + ".csv";
      std::ofstream file(path);
      BSLD_REQUIRE(file.good(), "bsldsim: cannot write " + path);
      instrument->write_csv(file);
      notice << "Instrument " << instrument->name() << " written to " << path
             << '\n';
    } else {
      notice << "Instrument " << instrument->name() << ": "
             << instrument->rows()
             << " rows captured (use --instruments-out DIR for the CSV)\n";
    }
  }

  if (!cli.get("out").empty()) {
    BSLD_REQUIRE(spec.retain_jobs,
                 "bsldsim: --out needs per-job outcomes; drop "
                 "--retain-jobs=false");
    std::ofstream file(cli.get("out"));
    util::CsvWriter csv(file);
    csv.write_row({"id", "submit", "start", "end", "size", "gear_ghz",
                   "final_gear_ghz", "wait_s", "bsld"});
    for (const sim::JobOutcome& job : result.jobs) {
      csv.write_row({std::to_string(job.id), std::to_string(job.submit),
                     std::to_string(job.start), std::to_string(job.end),
                     std::to_string(job.size),
                     util::fmt_double(spec.gears[job.gear].frequency_ghz, 1),
                     util::fmt_double(spec.gears[job.final_gear].frequency_ghz, 1),
                     std::to_string(job.wait()),
                     util::fmt_double(job.bsld, 3)});
    }
    notice << "Per-job outcomes written to " << cli.get("out") << '\n';
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "bsldsim: " << error.what() << '\n';
  return 1;
}
