/// \file bsldsim.cpp
/// \brief The downstream user's entry point: a config-driven simulator run.
/// A thin CLI over report::RunSpec — every seam of the library (workload
/// source, platform file, policy registry, DVFS thresholds, the
/// dynamic-raise extension, machine scaling) is a field of the spec, and
/// the run itself is one report::run_one() call. Grids go through
/// report::expand_grid + report::SweepRunner, with optional persistent
/// caching (report::ResultCache) and deterministic sharding across
/// processes.
///
/// Run: ./bsldsim --workload SDSCBlue --bsld 2 --wq 16
///      ./bsldsim --workload trace.swf --policy conservative --platform p.conf
///      ./bsldsim --spec run.conf                # replay a saved spec
///      ./bsldsim --workload CTC --save-spec run.conf   # save for later
///      ./bsldsim --instruments wait-trace,utilization --instruments-out .
///      ./bsldsim --format jsonl                 # one JSON object, machine-readable
///      ./bsldsim --pm cap-uniform --pm-cap 400000      # cluster power cap
///      ./bsldsim --pm setpoint --pm-setpoint 350000    # closed-loop control
///      ./bsldsim --list-policies                # registry contents
///      ./bsldsim --list-instruments
///      ./bsldsim --list-pms
///
/// Sweeps, caching, sharding:
///      ./bsldsim --sweep grid.conf --format csv > grid.csv
///      ./bsldsim --sweep grid.conf --cache      # warm re-runs are free
///      ./bsldsim --sweep grid.conf --shard-count 2 --shard-index 0 > s0.csv
///      ./bsldsim --merge-shards s0.csv,s1.csv > grid.csv
///      ./bsldsim --cache-stats                  # store contents
///      ./bsldsim --cache-clear                  # drop every entry
///
/// Daemon mode (see README "Daemon mode" and src/server/):
///      ./bsldsim serve --socket /tmp/bsld.sock --cache-dir cache &
///      ./bsldsim query --socket /tmp/bsld.sock --spec run.conf > run.csv
///      ./bsldsim query --socket /tmp/bsld.sock --sweep grid.conf > grid.csv
///      ./bsldsim query --socket /tmp/bsld.sock --workload CTC --bsld 2
///      ./bsldsim query --socket /tmp/bsld.sock --ping
///      ./bsldsim query --socket /tmp/bsld.sock --server-stats
///      ./bsldsim query --socket /tmp/bsld.sock --stop-server
///
/// A sweep grid file is a RunSpec config plus `sweep.*` axes
/// (see report/grid.hpp); sweep output is emitted in grid order, so a
/// merged set of shard outputs is byte-identical to the serial run.
/// --cache-stats/--cache-clear/--cache-trim-mb/--absorb-cache are
/// maintenance commands: they operate on the store and exit.
///
/// With --spec, the file provides the baseline and explicitly-passed flags
/// override it; --save-spec writes the effective spec in its canonical
/// round-trippable form (see RunSpec::to_config).
///
/// Platform file keys (all optional):
///   gears.frequencies_ghz = 0.8, 1.1, 1.4, 1.7, 2.0, 2.3
///   gears.voltages_v      = 1.0, 1.1, 1.2, 1.3, 1.4, 1.5
///   power.activity_ratio = 2.5
///   power.static_fraction_at_top = 0.25
///   power.top_active_power_watts = 95
///   time.beta = 0.5
#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "pm/registry.hpp"
#include "pm/spec.hpp"
#include "report/experiment.hpp"
#include "report/grid.hpp"
#include "report/result_cache.hpp"
#include "report/sinks.hpp"
#include "report/sweep.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/parse.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

using namespace bsld;

namespace {

/// --threads, validated: a negative value must not wrap to a ~2^32-thread
/// pool, and five-digit pools only exhaust the process.
unsigned thread_count(const util::Cli& cli) {
  const std::int64_t threads = cli.get_int("threads");
  BSLD_REQUIRE(threads >= 0 && threads <= 4096,
               "bsldsim: --threads must be between 0 (hardware concurrency) "
               "and 4096, got " + std::to_string(threads));
  return static_cast<unsigned>(threads);
}

/// The store selected by --cache-dir (explicit) or --cache (conventional
/// location); nullptr when caching is off.
std::unique_ptr<report::ResultCache> open_cache(const util::Cli& cli) {
  const std::string dir = cli.get("cache-dir");
  if (!dir.empty()) return std::make_unique<report::ResultCache>(dir);
  if (cli.get_bool("cache")) {
    return std::make_unique<report::ResultCache>(
        report::ResultCache::default_root());
  }
  return nullptr;
}

/// Comma-separated list -> trimmed items (the `instruments` flag splitting).
std::vector<std::string> split_list(const std::string& text) {
  util::Config list;
  list.set("items", text);
  return list.get_string_list("items", {});
}

/// --merge-shards: folds shard CSV/JSONL outputs into the serial result
/// set. Shard outputs are emitted in grid order with the grid index as the
/// leading column/field, and every grid slot lives in exactly one shard,
/// so re-sorting the union of verbatim rows by index reproduces the serial
/// run byte for byte.
int merge_shards(const std::string& list) {
  const std::vector<std::string> files = split_list(list);
  BSLD_REQUIRE(!files.empty(), "bsldsim: --merge-shards needs files");

  bool format_known = false;
  bool is_csv = false;
  std::string header;
  std::map<std::uint64_t, std::string> rows;  // grid index -> verbatim line.

  for (const std::string& file : files) {
    const std::optional<std::string> bytes = util::read_file_bytes(file);
    BSLD_REQUIRE(bytes.has_value(), "bsldsim: cannot read shard file " + file);
    std::vector<std::string> lines;
    std::istringstream in(*bytes);
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    if (lines.empty()) continue;  // an empty shard contributes nothing.

    std::size_t first_row = 0;
    const bool file_is_csv = lines[0].rfind("index,", 0) == 0;
    if (!format_known) {
      format_known = true;
      is_csv = file_is_csv;
      if (is_csv) header = lines[0];
    }
    if (is_csv) {
      BSLD_REQUIRE(file_is_csv && lines[0] == header,
                   "bsldsim: shard file " + file +
                       " has a different CSV header than the first shard");
      first_row = 1;
    } else {
      BSLD_REQUIRE(!file_is_csv, "bsldsim: shard file " + file +
                                     " is CSV but the first shard was JSONL");
    }

    for (std::size_t i = first_row; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      if (line.empty()) continue;
      std::uint64_t index = 0;
      std::size_t pos = 0;
      if (is_csv) {
        pos = 0;  // index is the first CSV column.
      } else {
        const std::string prefix = "{\"index\":";
        BSLD_REQUIRE(line.rfind(prefix, 0) == 0,
                     "bsldsim: shard file " + file +
                         " has a malformed JSONL row: " + line);
        pos = prefix.size();
      }
      std::size_t digits = 0;
      while (pos + digits < line.size() && line[pos + digits] >= '0' &&
             line[pos + digits] <= '9') {
        ++digits;
      }
      BSLD_REQUIRE(digits > 0, "bsldsim: shard file " + file +
                                   " has a row without a grid index: " + line);
      index = util::require_uint(line.substr(pos, digits),
                                 "bsldsim: shard file " + file +
                                     ", grid index of row `" + line + "`");
      const auto [it, inserted] = rows.emplace(index, line);
      BSLD_REQUIRE(inserted,
                   "bsldsim: grid index " + std::to_string(index) +
                       " appears in more than one shard file (overlapping "
                       "shards?)");
      (void)it;
    }
  }

  // Grid indices are dense 0..N-1 and every slot lives in exactly one
  // shard, so a gap means a shard file is missing or was cut short — a
  // silently truncated "serial-identical" result would be worse than an
  // error.
  if (!rows.empty()) {
    const std::uint64_t highest = rows.rbegin()->first;
    BSLD_REQUIRE(highest + 1 == rows.size(),
                 "bsldsim: merged shards cover " + std::to_string(rows.size()) +
                     " of " + std::to_string(highest + 1) +
                     " grid slots — missing or truncated shard file?");
  }

  if (is_csv && !header.empty()) std::cout << header << '\n';
  for (const auto& [index, line] : rows) std::cout << line << '\n';
  return 0;
}

/// Maintenance commands: --absorb-cache, --cache-clear, --cache-trim-mb,
/// --cache-stats — operate on the store and exit.
int run_cache_maintenance(const util::Cli& cli) {
  std::unique_ptr<report::ResultCache> cache = open_cache(cli);
  if (!cache) {
    cache = std::make_unique<report::ResultCache>(
        report::ResultCache::default_root());
  }

  if (!cli.get("absorb-cache").empty()) {
    for (const std::string& other : split_list(cli.get("absorb-cache"))) {
      const std::size_t copied = cache->absorb(other);
      std::cout << "absorbed " << copied << " entries from " << other << '\n';
    }
  }
  if (cli.get_bool("cache-clear")) {
    std::cout << "cleared " << cache->clear() << " entries from "
              << cache->root().string() << '\n';
  }
  if (cli.get_int("cache-trim-mb") >= 0) {
    const auto max_bytes =
        static_cast<std::uintmax_t>(cli.get_int("cache-trim-mb")) * 1024 *
        1024;
    const std::size_t evicted = cache->trim(max_bytes);
    std::cout << "evicted " << evicted << " entries (oldest first)\n";
  }
  if (cli.get_bool("cache-stats")) {
    const report::ResultCache::DiskStats stats = cache->disk_stats();
    std::cout << "cache " << cache->root().string() << " (epoch "
              << report::ResultCache::kSchemaEpoch << "): " << stats.entries
              << " entries, " << stats.bytes << " bytes";
    if (stats.stale_entries != 0) {
      std::cout << ", " << stats.stale_entries
                << " stale-epoch entries (reclaim with --cache-clear)";
    }
    std::cout << '\n';
  }
  return 0;
}

/// --sweep: expand the grid file and stream it through SweepRunner in grid
/// order. Single-run flags (--workload, --bsld, ...) do not apply — the
/// grid file is self-contained.
int run_sweep(const util::Cli& cli, const std::string& format) {
  const std::vector<report::RunSpec> specs =
      report::expand_grid(util::Config::load_file(cli.get("sweep")));

  std::unique_ptr<report::ResultCache> cache = open_cache(cli);
  report::SweepRunner::Options options;
  options.threads = thread_count(cli);
  options.cache = cache.get();
  options.shard_index = static_cast<unsigned>(cli.get_int("shard-index"));
  options.shard_count = static_cast<unsigned>(cli.get_int("shard-count"));
  report::SweepRunner runner(options);

  std::optional<report::CsvResultSink> csv;
  std::optional<report::JsonlResultSink> jsonl;
  std::optional<report::ReorderingSink> ordered;
  report::TableResultSink table;
  if (format == "csv") {
    csv.emplace(std::cout);
    ordered.emplace(*csv);
    runner.add_sink(*ordered);
  } else if (format == "jsonl") {
    jsonl.emplace(std::cout);
    ordered.emplace(*jsonl);
    runner.add_sink(*ordered);
  } else {
    runner.add_sink(table);
  }

  (void)runner.run(specs);
  if (format == "table") std::cout << table.table();

  const report::SweepRunner::Progress& progress = runner.progress();
  std::ostream& notice = format == "table" ? std::cout : std::cerr;
  notice << "sweep: " << progress.total << " specs, " << progress.executed
         << " executed, " << progress.deduplicated << " deduplicated, "
         << progress.cache_hits << " cache hits";
  if (options.shard_count > 1) {
    notice << ", " << progress.shard_skipped << " on other shards (shard "
           << options.shard_index << "/" << options.shard_count << ")";
  }
  notice << '\n';
  if (cache) {
    const report::ResultCache::Counters counters = cache->counters();
    notice << "cache " << cache->root().string() << ": " << counters.hits
           << " hits, " << counters.misses << " misses, " << counters.stores
           << " stores";
    if (counters.corrupt != 0) {
      notice << ", " << counters.corrupt << " corrupt entries dropped";
    }
    notice << '\n';
  }
  return 0;
}

/// One aligned `name  description` block of a registry listing
/// (--list-policies / --list-instruments / --list-pms).
void print_registry(
    const std::string& heading,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::size_t width = 0;
  for (const auto& [name, _] : entries) width = std::max(width, name.size());
  std::cout << heading << ":\n";
  for (const auto& [name, description] : entries) {
    std::cout << "  " << name;
    if (!description.empty()) {
      std::cout << std::string(width - name.size() + 2, ' ') << description;
    }
    std::cout << '\n';
  }
}

/// Every single-run flag spec_from_flags() consults. Query mode decides
/// with this same table whether explicit flags must be layered over a
/// --spec file — add any new spec-affecting flag HERE (and nowhere else)
/// or `bsldsim query --spec f.conf --newflag ...` will silently drop it.
constexpr const char* kSpecFlags[] = {
    "workload", "jobs",        "seed",        "platform",    "policy",
    "selector", "dvfs",        "bsld",        "wq",          "raise",
    "scale",    "instruments", "retain-jobs", "pm",          "pm-cap",
    "pm-setpoint",             "pm-interval", "pm-gain"};

/// The effective RunSpec of the single-run flags: the --spec file (when
/// given) as the baseline, explicitly-passed flags layered on top (every
/// flag consulted here is listed in kSpecFlags). Validates instrument
/// names before anyone persists or ships the spec.
report::RunSpec spec_from_flags(const util::Cli& cli) {
  const bool from_file = !cli.get("spec").empty();
  report::RunSpec spec =
      from_file
          ? report::RunSpec::parse(util::Config::load_file(cli.get("spec")))
          : report::RunSpec{};
  // A flag applies when explicitly passed, or always in the no-file mode
  // (where the registered defaults are the baseline).
  const auto overrides = [&](const char* flag) {
    return !from_file || cli.given(flag);
  };

  if (overrides("workload")) {
    spec.workload = wl::resolve_source(
        cli.get("workload"),
        overrides("jobs") ? cli.get_int("jobs") : spec.workload.jobs,
        overrides("seed") ? static_cast<std::uint64_t>(cli.get_int("seed"))
                          : spec.workload.seed);
  } else {
    if (overrides("jobs")) {
      spec.workload.jobs = cli.get_int("jobs");
    }
    if (overrides("seed")) {
      spec.workload.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    }
  }
  if (overrides("platform") && !cli.get("platform").empty()) {
    const util::Config platform = util::Config::load_file(cli.get("platform"));
    spec.gears = cluster::gear_set_from_config(platform);
    spec.power = power::power_config_from(platform);
    spec.beta = platform.get_double("time.beta", spec.beta);
  }
  if (overrides("policy")) spec.policy.name = cli.get("policy");
  if (overrides("selector")) spec.policy.selector = cli.get("selector");
  if (overrides("dvfs") || overrides("bsld") || overrides("wq")) {
    // --bsld/--wq refine an existing DVFS config; only --dvfs switches the
    // algorithm on or off relative to the spec baseline.
    const bool dvfs_on = overrides("dvfs") ? cli.get_bool("dvfs")
                                           : spec.policy.dvfs.has_value();
    if (dvfs_on) {
      core::DvfsConfig dvfs = spec.policy.dvfs.value_or(core::DvfsConfig{});
      if (overrides("bsld")) dvfs.bsld_threshold = cli.get_double("bsld");
      if (overrides("wq")) {
        if (cli.get("wq") == "NO") dvfs.wq_threshold = std::nullopt;
        else dvfs.wq_threshold = cli.get_int("wq");
      }
      spec.policy.dvfs = dvfs;
    } else {
      spec.policy.dvfs = std::nullopt;
    }
  }
  if (overrides("raise")) {
    if (cli.get_int("raise") >= 0) {
      core::DynamicRaiseConfig raise;
      raise.queue_limit = cli.get_int("raise");
      spec.policy.raise = raise;
    } else {
      spec.policy.raise = std::nullopt;
    }
  }
  if (overrides("scale")) spec.size_scale = cli.get_double("scale");
  if (overrides("pm")) spec.pm.name = cli.get("pm");
  // The pm tunables use -1 = unset, so the registered defaults reproduce
  // the default PmSpec (all optionals empty) in the no-file mode.
  if (overrides("pm-cap")) {
    const double watts = cli.get_double("pm-cap");
    spec.pm.cap_watts =
        watts >= 0.0 ? std::optional<double>(watts) : std::nullopt;
  }
  if (overrides("pm-setpoint")) {
    const double watts = cli.get_double("pm-setpoint");
    spec.pm.setpoint_watts =
        watts >= 0.0 ? std::optional<double>(watts) : std::nullopt;
  }
  if (overrides("pm-interval")) {
    const std::int64_t seconds = cli.get_int("pm-interval");
    spec.pm.interval_s =
        seconds >= 0 ? std::optional<Time>(seconds) : std::nullopt;
  }
  if (overrides("pm-gain")) {
    const double gain = cli.get_double("pm-gain");
    spec.pm.gain = gain >= 0.0 ? std::optional<double>(gain) : std::nullopt;
  }
  // Same rationale as the instrument check below: fail before --save-spec
  // can persist an unreplayable spec.
  pm::validate(spec.pm);
  if (overrides("instruments")) {
    // Same trimming/splitting as the `instruments` spec-file key.
    spec.instruments = split_list(cli.get("instruments"));
  }
  // Validate before --save-spec so a typo cannot persist an unreplayable
  // spec file; the registry error lists what is registered.
  for (const std::string& name : spec.instruments) {
    sim::InstrumentRegistry::global().require(name);
  }
  if (overrides("retain-jobs")) spec.retain_jobs = cli.get_bool("retain-jobs");
  return spec;
}

// --- Daemon mode -----------------------------------------------------------

/// The running daemon, for the async-signal-safe SIGTERM/SIGINT handler.
server::Server* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->stop();  // shutdown(2): signal-safe.
}

/// `bsldsim serve`: bind the socket, run the accept loop until SIGTERM /
/// SIGINT / a client `shutdown` request, then drain and exit 0.
int run_serve(const util::Cli& cli) {
  const std::string socket = cli.get("socket");
  BSLD_REQUIRE(!socket.empty(), "bsldsim: serve needs --socket PATH");

  // The daemon exists to batch queries over the persistent store, so a
  // cache is always on: --cache-dir picks the location, the conventional
  // root otherwise.
  std::unique_ptr<report::ResultCache> cache = open_cache(cli);
  if (!cache) {
    cache = std::make_unique<report::ResultCache>(
        report::ResultCache::default_root());
  }

  server::Server::Options options;
  options.socket_path = socket;
  options.threads = thread_count(cli);
  options.cache = cache.get();
  server::Server server(options);

  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us.

  std::cerr << "bsldsim: serving on " << server.socket_path() << " (cache "
            << cache->root().string() << ")\n";
  const int code = server.serve();
  g_server = nullptr;
  std::cerr << "bsldsim: drained, exiting\n";
  return code;
}

/// `bsldsim query`: one request against a running daemon. Payload bytes
/// go to stdout verbatim (byte-identical to the direct run); reply
/// attributes and diagnostics go to stderr.
int run_query(const util::Cli& cli) {
  const std::string socket = cli.get("socket");
  BSLD_REQUIRE(!socket.empty(), "bsldsim: query needs --socket PATH");
  util::SocketStream stream = util::SocketStream::connect_unix(socket);

  std::string request;
  if (cli.get_bool("ping")) {
    request = "ping\n";
  } else if (cli.get_bool("server-stats")) {
    request = "stats\n";
  } else if (cli.get_bool("stop-server")) {
    request = "shutdown\n";
  } else {
    // The server only speaks machine formats; default to csv unless the
    // user asked for one explicitly.
    const std::string format = cli.given("format") ? cli.get("format") : "csv";
    BSLD_REQUIRE(format == "csv" || format == "jsonl",
                 "bsldsim: query --format must be csv or jsonl");
    // Single-run override flags layer over a --spec file exactly as in
    // direct mode; only a flag-less --spec/--sweep ships the file bytes
    // verbatim (so the server's parse diagnostics are exercised end to
    // end). --sweep grids ignore single-run flags, as in direct mode.
    bool spec_flag_given = false;
    for (const char* flag : kSpecFlags) {
      if (cli.given(flag)) spec_flag_given = true;
    }
    std::string body;
    if (!cli.get("sweep").empty() ||
        (!cli.get("spec").empty() && !spec_flag_given)) {
      const std::string file =
          !cli.get("sweep").empty() ? cli.get("sweep") : cli.get("spec");
      const std::optional<std::string> bytes = util::read_file_bytes(file);
      BSLD_REQUIRE(bytes.has_value(), "bsldsim: cannot read " + file);
      body = *bytes;
    } else {
      body = spec_from_flags(cli).to_config().to_string();
    }
    if (!body.empty() && body.back() != '\n') body += '\n';
    request = "run " + format + "\n" + body + "end\n";
  }
  stream.write_all(request);

  const std::optional<std::string> header_line = stream.read_line();
  BSLD_REQUIRE(header_line.has_value(),
               "bsldsim: server closed the connection without replying");
  const server::ReplyHeader header =
      server::parse_reply_header(*header_line);
  if (!header.ok) {
    std::cerr << "bsldsim: server: " << header.error << '\n';
    return 1;
  }
  const std::string payload = stream.read_bytes(header.payload_bytes);
  const std::optional<std::string> frame_end = stream.read_line();
  BSLD_REQUIRE(frame_end.has_value() && *frame_end == "end",
               "bsldsim: truncated reply frame from server");

  std::cout << payload << std::flush;
  std::cerr << "bsldsim: server reply:";
  for (const auto& [key, value] : header.attrs) {
    std::cerr << ' ' << key << '=' << value;
  }
  std::cerr << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli("bsldsim", "config-driven power-aware scheduling simulation");
  cli.add_flag("spec", "", "run-spec file; other flags override its values");
  cli.add_flag("save-spec", "",
               "write the effective spec to this file and continue");
  cli.add_flag("workload", "SDSCBlue",
               "archive model (CTC/SDSC/SDSCBlue/LLNLThunder/LLNLAtlas) or "
               "an SWF file path");
  cli.add_flag("jobs", "5000", "trace length (0 = whole SWF file)");
  cli.add_flag("seed", "0",
               "generator seed for synthetic workloads (0 = the archive's "
               "canonical seed)");
  cli.add_flag("platform", "", "platform config file (see header comment)");
  cli.add_flag("policy", "easy",
               "scheduling policy name (see core::PolicyRegistry): easy, "
               "fcfs, conservative, easy+raise");
  cli.add_flag("selector", "FirstFit", "resource selector: FirstFit, LastFit");
  cli.add_flag("dvfs", "true", "apply the BSLD-threshold DVFS algorithm");
  cli.add_flag("bsld", "2.0", "BSLDthreshold");
  cli.add_flag("wq", "NO", "WQthreshold: integer or NO (no limit)");
  cli.add_flag("raise", "-1",
               "dynamic-raise queue limit (-1 = off; extension, easy only)");
  cli.add_flag("scale", "1.0", "machine size multiplier (1.2 = +20%)");
  cli.add_flag("pm", "none",
               "power manager name (see --list-pms): none, cap-uniform, "
               "cap-proportional, sleep, setpoint");
  cli.add_flag("pm-cap", "-1",
               "cluster power cap in watts (cap-* families; optional hard "
               "cap for setpoint; -1 = unset)");
  cli.add_flag("pm-setpoint", "-1",
               "target cluster power in watts for --pm setpoint (-1 = unset)");
  cli.add_flag("pm-interval", "-1",
               "setpoint control interval in seconds (-1 = default 300)");
  cli.add_flag("pm-gain", "-1",
               "setpoint integral gain (-1 = default 0.5)");
  cli.add_flag("out", "", "write per-job outcomes to this CSV file");
  cli.add_flag("instruments", "",
               "comma-separated extra instruments (see --list-instruments), "
               "e.g. wait-trace,utilization");
  cli.add_flag("instruments-out", "",
               "write each instrument's CSV to <dir>/<name>.csv instead of "
               "printing a summary");
  cli.add_flag("retain-jobs", "true",
               "keep per-job outcomes in memory; false = streaming "
               "aggregate-only run (O(1) memory, disables --out)");
  cli.add_flag("format", "table",
               "result output format: table, csv, or jsonl");
  cli.add_flag("list-policies", "false",
               "print the policy/assigner registry contents and exit");
  cli.add_flag("list-instruments", "false",
               "print the instrument registry contents and exit");
  cli.add_flag("list-pms", "false",
               "print the power-manager registry contents and exit");
  cli.add_flag("sweep", "",
               "sweep grid file (RunSpec config + sweep.* axes); runs the "
               "whole grid and emits results in grid order");
  cli.add_flag("threads", "0",
               "sweep worker threads (0 = hardware concurrency)");
  cli.add_flag("cache", "false",
               "persist/reuse results in the default cache directory "
               "($BSLD_CACHE_DIR, else ~/.cache/bsldsim)");
  cli.add_flag("cache-dir", "",
               "persist/reuse results in this cache directory (implies "
               "--cache)");
  cli.add_flag("cache-stats", "false",
               "print the result store's contents and exit");
  cli.add_flag("cache-clear", "false",
               "remove every cached result (all epochs) and exit");
  cli.add_flag("cache-trim-mb", "-1",
               "evict oldest cached results until the store is at most this "
               "many MiB, then exit");
  cli.add_flag("absorb-cache", "",
               "comma-separated cache directories to copy entries from "
               "(sharded-sweep merge), then exit");
  cli.add_flag("shard-index", "0",
               "with --sweep: this process's shard (0-based)");
  cli.add_flag("shard-count", "1",
               "with --sweep: total shards; specs are partitioned by the "
               "stable hash of their key");
  cli.add_flag("merge-shards", "",
               "comma-separated shard output files (CSV or JSONL, as "
               "written by --sweep); prints the merged serial result set "
               "and exits");
  cli.add_flag("socket", "",
               "Unix-domain socket path of the daemon (serve/query "
               "subcommands)");
  cli.add_flag("ping", "false", "with query: liveness probe");
  cli.add_flag("server-stats", "false",
               "with query: print the daemon's cache/store counters");
  cli.add_flag("stop-server", "false",
               "with query: ask the daemon to drain and exit");
  if (!cli.parse(argc, argv)) return 0;

  // Subcommands: `bsldsim serve ...` / `bsldsim query ...`.
  if (!cli.positional().empty()) {
    BSLD_REQUIRE(cli.positional().size() == 1,
                 "bsldsim: expected at most one subcommand, got " +
                     std::to_string(cli.positional().size()));
    const std::string& command = cli.positional()[0];
    if (command == "serve") return run_serve(cli);
    if (command == "query") return run_query(cli);
    BSLD_REQUIRE(false, "bsldsim: unknown subcommand `" + command +
                            "` (expected serve or query)");
  }

  if (cli.get_bool("list-policies")) {
    const core::PolicyRegistry& registry = core::PolicyRegistry::global();
    print_registry("policies", registry.policy_entries());
    print_registry("assigners", registry.assigner_entries());
    return 0;
  }
  if (cli.get_bool("list-instruments")) {
    print_registry("instruments", sim::InstrumentRegistry::global().entries());
    return 0;
  }
  if (cli.get_bool("list-pms")) {
    print_registry("power managers",
                   pm::PowerManagerRegistry::global().entries());
    return 0;
  }

  if (!cli.get("merge-shards").empty()) {
    return merge_shards(cli.get("merge-shards"));
  }
  if (cli.get_bool("cache-stats") || cli.get_bool("cache-clear") ||
      cli.get_int("cache-trim-mb") >= 0 || !cli.get("absorb-cache").empty()) {
    return run_cache_maintenance(cli);
  }

  const std::string format = cli.get("format");
  BSLD_REQUIRE(format == "table" || format == "csv" || format == "jsonl",
               "bsldsim: --format must be table, csv, or jsonl");

  if (!cli.get("sweep").empty()) return run_sweep(cli, format);

  const report::RunSpec spec = spec_from_flags(cli);

  // Machine-readable formats keep stdout pure; notices go to stderr.
  std::ostream& notice = format == "table" ? std::cout : std::cerr;

  if (!cli.get("save-spec").empty()) {
    std::ofstream file(cli.get("save-spec"));
    file << spec.to_config().to_string();
    notice << "Spec written to " << cli.get("save-spec") << '\n';
  }

  // Single runs go through the cache too when one is selected: a repeated
  // run replays instead of simulating.
  std::unique_ptr<report::ResultCache> cache = open_cache(cli);
  std::optional<report::RunResult> cached;
  if (cache) cached = cache->lookup(spec);
  const report::RunResult run = cached ? std::move(*cached)
                                       : report::run_one(spec);
  if (cache) {
    if (cached) {
      notice << "cache hit (" << cache->root().string() << ")\n";
    } else {
      cache->store(run);
      notice << "cache miss, stored (" << cache->root().string() << ")\n";
    }
  }
  const sim::SimulationResult& result = run.sim();

  if (format == "csv") {
    report::CsvResultSink sink(std::cout);
    sink.on_result(0, run);
  } else if (format == "jsonl") {
    report::JsonlResultSink sink(std::cout);
    sink.on_result(0, run);
  } else {
    std::cout << "bsldsim — " << spec.label() << " (" << result.job_count
              << " jobs) on " << result.cpus << " CPUs, policy "
              << result.policy << "\n\n";
    util::Table table({"Metric", "Value"});
    table.set_align(1, util::Align::kRight);
    table.add_row({"Average BSLD", util::fmt_double(result.avg_bsld, 2)});
    table.add_row({"Average wait (s)", util::fmt_double(result.avg_wait, 0)});
    table.add_row({"Makespan (s)", std::to_string(result.makespan)});
    table.add_row({"Utilization", util::fmt_double(result.utilization, 3)});
    table.add_row({"Jobs at reduced frequency", std::to_string(result.reduced_jobs)});
    table.add_row({"Jobs boosted mid-flight", std::to_string(result.boosted_jobs)});
    table.add_row({"Energy, idle=0 (GJ)",
                   util::fmt_double(result.energy.computational_joules / 1e9, 3)});
    table.add_row({"Energy, idle=low (GJ)",
                   util::fmt_double(result.energy.total_joules / 1e9, 3)});
    table.add_row({"Events processed", std::to_string(result.events_processed)});
    std::cout << table;

    std::cout << "\nJobs per gear:";
    for (std::size_t g = 0; g < result.jobs_per_gear.size(); ++g) {
      std::cout << "  " << spec.gears[static_cast<GearIndex>(g)].frequency_ghz
                << "GHz:" << result.jobs_per_gear[g];
    }
    std::cout << '\n';
  }

  for (const auto& instrument : run.instruments) {
    if (!cli.get("instruments-out").empty()) {
      const std::string path =
          cli.get("instruments-out") + "/" + instrument->name() + ".csv";
      std::ofstream file(path);
      BSLD_REQUIRE(file.good(), "bsldsim: cannot write " + path);
      instrument->write_csv(file);
      notice << "Instrument " << instrument->name() << " written to " << path
             << '\n';
    } else {
      notice << "Instrument " << instrument->name() << ": "
             << instrument->rows()
             << " rows captured (use --instruments-out DIR for the CSV)\n";
    }
  }

  if (!cli.get("out").empty()) {
    BSLD_REQUIRE(spec.retain_jobs,
                 "bsldsim: --out needs per-job outcomes; drop "
                 "--retain-jobs=false");
    std::ofstream file(cli.get("out"));
    util::CsvWriter csv(file);
    csv.write_row({"id", "submit", "start", "end", "size", "gear_ghz",
                   "final_gear_ghz", "wait_s", "bsld"});
    for (const sim::JobOutcome& job : result.jobs) {
      csv.write_row({std::to_string(job.id), std::to_string(job.submit),
                     std::to_string(job.start), std::to_string(job.end),
                     std::to_string(job.size),
                     util::fmt_double(spec.gears[job.gear].frequency_ghz, 1),
                     util::fmt_double(spec.gears[job.final_gear].frequency_ghz, 1),
                     std::to_string(job.wait()),
                     util::fmt_double(job.bsld, 3)});
    }
    notice << "Per-job outcomes written to " << cli.get("out") << '\n';
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "bsldsim: " << error.what() << '\n';
  return 1;
}
