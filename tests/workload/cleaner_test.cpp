#include "workload/cleaner.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::wl {
namespace {

Workload make_workload(std::vector<Job> jobs) {
  Workload workload;
  workload.name = "test";
  workload.cpus = 100;
  workload.jobs = std::move(jobs);
  return workload;
}

TEST(CleanerTest, DropsInvalidRecords) {
  Workload workload = make_workload({
      {1, 0, 100, 200, 4, 0},
      {2, 0, 100, 200, 0, 0},    // size 0
      {3, 0, -5, 200, 4, 0},     // negative runtime
      {4, -1, 100, 200, 4, 0},   // negative submit
  });
  const CleanReport report = clean(workload, {});
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.dropped_invalid, 3u);
  ASSERT_EQ(workload.jobs.size(), 1u);
  EXPECT_EQ(workload.jobs[0].id, 1);
}

TEST(CleanerTest, DropsZeroRuntimeByDefaultKeepsWhenDisabled) {
  Workload workload = make_workload({{1, 0, 0, 200, 4, 0}});
  CleanOptions options;
  const CleanReport dropped = clean(workload, options);
  EXPECT_EQ(dropped.kept, 0u);

  workload = make_workload({{1, 0, 0, 200, 4, 0}});
  options.drop_zero_runtime = false;
  const CleanReport kept = clean(workload, options);
  EXPECT_EQ(kept.kept, 1u);
}

TEST(CleanerTest, ClampsOversizedJobs) {
  Workload workload = make_workload({{1, 0, 100, 200, 500, 0}});
  CleanOptions options;
  options.machine_cpus = 100;
  const CleanReport report = clean(workload, options);
  EXPECT_EQ(report.clamped_size, 1u);
  EXPECT_EQ(workload.jobs[0].size, 100);
}

TEST(CleanerTest, NoClampWhenMachineUnknown) {
  Workload workload = make_workload({{1, 0, 100, 200, 500, 0}});
  CleanOptions options;
  options.machine_cpus = 0;
  clean(workload, options);
  EXPECT_EQ(workload.jobs[0].size, 500);
}

TEST(CleanerTest, RepairsEstimatesBelowRuntime) {
  Workload workload = make_workload({{1, 0, 300, 100, 4, 0}});
  const CleanReport report = clean(workload, {});
  EXPECT_EQ(report.clamped_runtime, 1u);
  EXPECT_EQ(workload.jobs[0].requested_time, 300);
}

TEST(CleanerTest, FillsMissingEstimates) {
  Workload workload = make_workload({{1, 0, 300, 0, 4, 0}});
  clean(workload, {});
  EXPECT_EQ(workload.jobs[0].requested_time, 300);
}

TEST(CleanerTest, FlurryRemoval) {
  // User 9 submits 5 jobs within a minute; limit is 3 per hour window.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({i + 1, i * 10, 100, 200, 1, 9});
  }
  jobs.push_back({6, 20, 100, 200, 1, 7});  // different user unaffected
  Workload workload = make_workload(std::move(jobs));
  CleanOptions options;
  options.flurry_max_jobs = 3;
  options.flurry_window = 3600;
  const CleanReport report = clean(workload, options);
  EXPECT_EQ(report.dropped_flurry, 2u);
  EXPECT_EQ(report.kept, 4u);
}

TEST(CleanerTest, FlurryWindowSlides) {
  // Two bursts of 3, far apart: both survive a 3-jobs-per-window limit.
  std::vector<Job> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back({i + 1, i, 100, 200, 1, 9});
  for (int i = 0; i < 3; ++i) jobs.push_back({i + 4, 10000 + i, 100, 200, 1, 9});
  Workload workload = make_workload(std::move(jobs));
  CleanOptions options;
  options.flurry_max_jobs = 3;
  options.flurry_window = 3600;
  const CleanReport report = clean(workload, options);
  EXPECT_EQ(report.dropped_flurry, 0u);
  EXPECT_EQ(report.kept, 6u);
}

TEST(SliceTest, RebasesSubmitTimes) {
  const Workload workload = make_workload({
      {1, 100, 10, 20, 1, 0},
      {2, 250, 10, 20, 1, 0},
      {3, 400, 10, 20, 1, 0},
  });
  const Workload sliced = slice(workload, 1, 2);
  ASSERT_EQ(sliced.jobs.size(), 2u);
  EXPECT_EQ(sliced.jobs[0].submit, 0);
  EXPECT_EQ(sliced.jobs[1].submit, 150);
  EXPECT_EQ(sliced.jobs[0].id, 2);  // ids preserved
}

TEST(SliceTest, OutOfRangeRejected) {
  const Workload workload = make_workload({{1, 0, 10, 20, 1, 0}});
  EXPECT_THROW((void)slice(workload, 0, 2), Error);
  EXPECT_THROW((void)slice(workload, 2, 1), Error);
}

}  // namespace
}  // namespace bsld::wl
