#include "workload/workload_stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::wl {
namespace {

Workload make_workload() {
  Workload workload;
  workload.name = "stats";
  workload.cpus = 10;
  // {id, submit, run, requested, size, user}
  workload.jobs = {
      {1, 0, 100, 200, 1, 0},     // sequential, short
      {2, 500, 1000, 1000, 4, 0}, // exact estimate
      {3, 1000, 400, 800, 5, 1},  // short (< 600)
  };
  return workload;
}

TEST(WorkloadStatsTest, HandComputedMoments) {
  const WorkloadStats stats = compute_stats(make_workload());
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_NEAR(stats.mean_size, (1 + 4 + 5) / 3.0, 1e-12);
  EXPECT_NEAR(stats.mean_runtime, (100 + 1000 + 400) / 3.0, 1e-12);
  EXPECT_NEAR(stats.mean_requested, (200 + 1000 + 800) / 3.0, 1e-12);
  EXPECT_NEAR(stats.sequential_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.short_fraction, 2.0 / 3.0, 1e-12);  // 100 s and 400 s
  EXPECT_NEAR(stats.total_core_seconds, 100 + 4000 + 2000, 1e-12);
  EXPECT_EQ(stats.span, 1000);
  EXPECT_NEAR(stats.offered_load, 6100.0 / (10.0 * 1000.0), 1e-12);
  EXPECT_NEAR(stats.mean_overestimation, (2.0 + 1.0 + 2.0) / 3.0, 1e-12);
}

TEST(WorkloadStatsTest, SingleJobHasZeroSpanAndLoad) {
  Workload workload = make_workload();
  workload.jobs.resize(1);
  const WorkloadStats stats = compute_stats(workload);
  EXPECT_EQ(stats.span, 0);
  EXPECT_DOUBLE_EQ(stats.offered_load, 0.0);
}

TEST(WorkloadStatsTest, RejectsDegenerateInputs) {
  Workload empty;
  empty.cpus = 4;
  EXPECT_THROW((void)compute_stats(empty), Error);
  Workload no_cpus = make_workload();
  no_cpus.cpus = 0;
  EXPECT_THROW((void)compute_stats(no_cpus), Error);
}

TEST(WorkloadStatsTest, ToStringMentionsKeyNumbers) {
  const std::string rendered = to_string(compute_stats(make_workload()));
  EXPECT_NE(rendered.find("jobs=3"), std::string::npos);
  EXPECT_NE(rendered.find("offered_load"), std::string::npos);
}

}  // namespace
}  // namespace bsld::wl
