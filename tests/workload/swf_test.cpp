#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace bsld::wl {
namespace {

// One valid SWF line: id submit wait run alloc cpu mem reqprocs reqtime
// reqmem status user group exe queue part preceding think.
constexpr const char* kLine =
    "1 100 5 3600 16 -1 -1 16 7200 -1 1 42 -1 -1 -1 -1 -1 -1\n";

TEST(SwfTest, ParsesMandatoryFields) {
  const SwfTrace trace = parse_swf_text(kLine);
  ASSERT_EQ(trace.jobs.size(), 1u);
  const Job& job = trace.jobs[0];
  EXPECT_EQ(job.id, 1);
  EXPECT_EQ(job.submit, 100);
  EXPECT_EQ(job.run_time, 3600);
  EXPECT_EQ(job.size, 16);
  EXPECT_EQ(job.requested_time, 7200);
  EXPECT_EQ(job.user_id, 42);
}

TEST(SwfTest, HeaderDirectives) {
  const SwfTrace trace = parse_swf_text(
      "; MaxProcs: 430\n"
      "; UnixStartTime: 123456\n"
      ";   free-form comment without colon structure --\n" +
      std::string(kLine));
  EXPECT_EQ(trace.max_procs(0), 430);
  EXPECT_EQ(trace.header.at("UnixStartTime"), "123456");
}

TEST(SwfTest, MaxProcsFallback) {
  const SwfTrace trace = parse_swf_text(kLine);
  EXPECT_EQ(trace.max_procs(99), 99);
}

TEST(SwfTest, AllocatedFallsBackToRequestedProcs) {
  const SwfTrace trace = parse_swf_text(
      "1 0 -1 100 -1 -1 -1 8 200 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].size, 8);
}

TEST(SwfTest, RequestedTimeFallsBackToRuntime) {
  const SwfTrace trace = parse_swf_text(
      "1 0 -1 100 4 -1 -1 4 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].requested_time, 100);
}

TEST(SwfTest, SkipsUnusableLines) {
  // Bad size (0 procs) and bad id (0) are skipped, not fatal.
  const SwfTrace trace = parse_swf_text(
      "0 0 -1 100 4 -1 -1 4 200 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "2 0 -1 100 0 -1 -1 0 200 -1 1 0 -1 -1 -1 -1 -1 -1\n" +
      std::string(kLine));
  EXPECT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.skipped_lines, 2u);
}

TEST(SwfTest, StructurallyBrokenLineSkippedAndCounted) {
  // One mangled record in a multi-million-job archive must not abort an
  // hours-long sweep: the default mode skips it with a count.
  const SwfTrace trace = parse_swf_text("1 2 3\n" + std::string(kLine));
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.skipped_lines, 1u);
}

TEST(SwfTest, TimeFieldBeyondInt64RangeSkippedNotUndefined) {
  // A fractional-form time like 1e19 parses as a finite double but does
  // not fit int64; truncating it would be UB. It must read as a malformed
  // field (skipped/counted), not an arbitrary value.
  const SwfTrace trace = parse_swf_text(
      "1 1e19 -1 100 4 -1 -1 4 200 -1 1 0 -1 -1 -1 -1 -1 -1\n" +
      std::string(kLine));
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.skipped_lines, 1u);
}

TEST(SwfTest, UnparsableMandatoryFieldSkippedAndCounted) {
  const SwfTrace trace = parse_swf_text(
      "1 banana -1 100 4 -1 -1 4 200 -1 1 0 -1 -1 -1 -1 -1 -1\n" +
      std::string(kLine));
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.skipped_lines, 1u);
}

TEST(SwfTest, StrictModeNamesTheLine) {
  const SwfOptions strict{.strict = true};
  try {
    (void)parse_swf_text(std::string(kLine) + "1 2 3\n", strict);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  try {
    (void)parse_swf_text(
        "1 banana -1 100 4 -1 -1 4 200 -1 1 0 -1 -1 -1 -1 -1 -1\n", strict);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos);
  }
}

TEST(SwfTest, StrictModeStillSkipsUnusableValues) {
  // id/size <= 0 is the archives' own cancelled-job convention, not a
  // malformed file: strict mode keeps skipping those.
  const SwfTrace trace = parse_swf_text(
      "0 0 -1 100 4 -1 -1 4 200 -1 1 0 -1 -1 -1 -1 -1 -1\n" +
          std::string(kLine),
      SwfOptions{.strict = true});
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.skipped_lines, 1u);
}

TEST(SwfTest, SortsBySubmitThenId) {
  const SwfTrace trace = parse_swf_text(
      "5 300 -1 10 1 -1 -1 1 10 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "3 100 -1 10 1 -1 -1 1 10 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "4 100 -1 10 1 -1 -1 1 10 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(trace.jobs.size(), 3u);
  EXPECT_EQ(trace.jobs[0].id, 3);
  EXPECT_EQ(trace.jobs[1].id, 4);
  EXPECT_EQ(trace.jobs[2].id, 5);
}

TEST(SwfTest, ToleratesCrLfAndFractionalSeconds) {
  const SwfTrace trace = parse_swf_text(
      "1 100.7 -1 3600.2 4 -1 -1 4 7200 -1 1 0 -1 -1 -1 -1 -1 -1\r\n");
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].submit, 100);
  EXPECT_EQ(trace.jobs[0].run_time, 3600);
}

TEST(SwfTest, WriteReadRoundTrip) {
  Workload workload;
  workload.name = "roundtrip";
  workload.cpus = 64;
  workload.jobs = {
      {1, 0, 100, 200, 4, 7},
      {2, 50, 3600, 4000, 64, 8},
  };
  std::ostringstream out;
  write_swf(out, workload);
  const SwfTrace trace = parse_swf_text(out.str());
  EXPECT_EQ(trace.max_procs(0), 64);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.jobs[0], workload.jobs[0]);
  EXPECT_EQ(trace.jobs[1], workload.jobs[1]);
}

TEST(SwfTest, MissingFileThrows) {
  EXPECT_THROW((void)load_swf_file("/no/such/file.swf"), Error);
}

TEST(SwfTest, FileRoundTrip) {
  Workload workload;
  workload.name = "file-roundtrip";
  workload.cpus = 8;
  workload.jobs = {{1, 0, 10, 20, 2, 0}};
  const std::string path = testing::TempDir() + "/bsld_swf_test.swf";
  save_swf_file(path, workload);
  const SwfTrace trace = load_swf_file(path);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0], workload.jobs[0]);
}

}  // namespace
}  // namespace bsld::wl
