#include "workload/archives.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/workload_stats.hpp"

namespace bsld::wl {
namespace {

TEST(ArchivesTest, FiveArchivesInPaperOrder) {
  const auto& archives = all_archives();
  ASSERT_EQ(archives.size(), 5u);
  EXPECT_EQ(archive_name(archives[0]), "CTC");
  EXPECT_EQ(archive_name(archives[1]), "SDSC");
  EXPECT_EQ(archive_name(archives[2]), "SDSCBlue");
  EXPECT_EQ(archive_name(archives[3]), "LLNLThunder");
  EXPECT_EQ(archive_name(archives[4]), "LLNLAtlas");
}

TEST(ArchivesTest, NamesRoundTrip) {
  for (const Archive archive : all_archives()) {
    EXPECT_EQ(archive_from_name(archive_name(archive)), archive);
  }
  EXPECT_THROW((void)archive_from_name("NotAnArchive"), Error);
}

TEST(ArchivesTest, PaperMachineSizes) {
  EXPECT_EQ(paper_cpus(Archive::kCTC), 430);
  EXPECT_EQ(paper_cpus(Archive::kSDSC), 128);
  EXPECT_EQ(paper_cpus(Archive::kSDSCBlue), 1152);
  EXPECT_EQ(paper_cpus(Archive::kLLNLThunder), 4008);
  EXPECT_EQ(paper_cpus(Archive::kLLNLAtlas), 9216);
}

TEST(ArchivesTest, PaperBaselineBslds) {
  EXPECT_DOUBLE_EQ(paper_avg_bsld(Archive::kCTC), 4.66);
  EXPECT_DOUBLE_EQ(paper_avg_bsld(Archive::kSDSC), 24.91);
  EXPECT_DOUBLE_EQ(paper_avg_bsld(Archive::kSDSCBlue), 5.15);
  EXPECT_DOUBLE_EQ(paper_avg_bsld(Archive::kLLNLThunder), 1.0);
  EXPECT_DOUBLE_EQ(paper_avg_bsld(Archive::kLLNLAtlas), 1.08);
}

TEST(ArchivesTest, SpecsMatchMachines) {
  for (const Archive archive : all_archives()) {
    const WorkloadSpec spec = archive_spec(archive);
    EXPECT_EQ(spec.cpus, paper_cpus(archive));
    EXPECT_EQ(spec.num_jobs, 5000);
    EXPECT_EQ(spec.name, archive_name(archive));
  }
}

TEST(ArchivesTest, CanonicalTraceIsDeterministic) {
  const Workload a = make_archive_workload(Archive::kCTC, 200);
  const Workload b = make_archive_workload(Archive::kCTC, 200);
  EXPECT_EQ(a.jobs, b.jobs);
}

TEST(ArchivesTest, DistinctSeedsAcrossArchives) {
  std::set<std::uint64_t> seeds;
  for (const Archive archive : all_archives()) {
    seeds.insert(archive_seed(archive));
  }
  EXPECT_EQ(seeds.size(), all_archives().size());
}

TEST(ArchivesTest, BlueHasNoSequentialJobsAndNodeFloor) {
  const Workload workload = make_archive_workload(Archive::kSDSCBlue, 1500);
  for (const Job& job : workload.jobs) EXPECT_GE(job.size, 8);
}

TEST(ArchivesTest, ThunderIsShortJobHeavy) {
  const Workload workload = make_archive_workload(Archive::kLLNLThunder, 3000);
  const WorkloadStats stats = compute_stats(workload);
  EXPECT_GT(stats.short_fraction, 0.5);  // "majority shorter than Th=600s"
}

TEST(ArchivesTest, CtcHasManySequentialJobs) {
  const Workload workload = make_archive_workload(Archive::kCTC, 3000);
  const WorkloadStats stats = compute_stats(workload);
  EXPECT_GT(stats.sequential_fraction, 0.3);
  // SDSC has fewer sequential jobs than CTC (paper §3.2).
  const WorkloadStats sdsc =
      compute_stats(make_archive_workload(Archive::kSDSC, 3000));
  EXPECT_LT(sdsc.sequential_fraction, stats.sequential_fraction);
}

TEST(ArchivesTest, AtlasRunsLargeParallelJobs) {
  const WorkloadStats atlas =
      compute_stats(make_archive_workload(Archive::kLLNLAtlas, 2000));
  const WorkloadStats ctc =
      compute_stats(make_archive_workload(Archive::kCTC, 2000));
  EXPECT_GT(atlas.mean_size, 10 * ctc.mean_size);
}

TEST(ArchivesTest, InvalidJobCountRejected) {
  EXPECT_THROW((void)archive_spec(Archive::kCTC, 0), Error);
}

}  // namespace
}  // namespace bsld::wl
