#include "workload/source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "util/error.hpp"
#include "workload/swf.hpp"

namespace bsld::wl {
namespace {

/// Writes a workload as SWF to a unique temp path; removed on destruction.
class TempSwf {
 public:
  explicit TempSwf(const Workload& workload)
      : path_(::testing::TempDir() + "source_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".swf") {
    save_swf_file(path_, workload);
  }
  ~TempSwf() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(WorkloadSourceTest, ArchiveMatchesCanonicalWorkload) {
  const Workload canonical = make_archive_workload(Archive::kSDSC, 400);
  const Workload loaded =
      load_source(WorkloadSource::from_archive(Archive::kSDSC, 400));
  EXPECT_EQ(loaded.cpus, canonical.cpus);
  EXPECT_EQ(loaded.jobs, canonical.jobs);
}

TEST(WorkloadSourceTest, ArchiveSeedOverrideChangesTrace) {
  const Workload canonical =
      load_source(WorkloadSource::from_archive(Archive::kSDSC, 400));
  const Workload reseeded =
      load_source(WorkloadSource::from_archive(Archive::kSDSC, 400, 99));
  EXPECT_EQ(reseeded.jobs.size(), canonical.jobs.size());
  EXPECT_NE(reseeded.jobs, canonical.jobs);
  // And matches a direct generate() with the same seed.
  const Workload direct = generate(archive_spec(Archive::kSDSC, 400), 99);
  EXPECT_EQ(reseeded.jobs, direct.jobs);
}

TEST(WorkloadSourceTest, InlineSpecGenerates) {
  WorkloadSpec spec;
  spec.name = "custom";
  spec.cpus = 64;
  spec.num_jobs = 150;
  const WorkloadSource source = WorkloadSource::from_spec(spec, 7);
  const Workload workload = load_source(source);
  EXPECT_EQ(workload.name, "custom");
  EXPECT_EQ(workload.cpus, 64);
  EXPECT_EQ(workload.jobs.size(), 150u);
  EXPECT_EQ(workload.jobs, generate(spec, 7).jobs);
  // `jobs` > 0 overrides the spec's num_jobs.
  WorkloadSource shorter = source;
  shorter.jobs = 50;
  EXPECT_EQ(load_source(shorter).jobs.size(), 50u);
}

TEST(WorkloadSourceTest, SwfRoundTripsThroughCleanAndSlice) {
  const Workload original = make_archive_workload(Archive::kSDSC, 300);
  const TempSwf file(original);

  // Whole file.
  CleanReport report;
  const Workload whole =
      load_source(WorkloadSource::from_swf(file.path()), &report);
  EXPECT_EQ(whole.name, file.path());
  EXPECT_EQ(whole.cpus, original.cpus);  // MaxProcs header
  EXPECT_EQ(whole.jobs.size(), original.jobs.size());
  EXPECT_EQ(report.kept, original.jobs.size());

  // Sliced.
  const Workload sliced =
      load_source(WorkloadSource::from_swf(file.path(), /*jobs=*/100));
  EXPECT_EQ(sliced.jobs.size(), 100u);

  // Machine override clamps oversized jobs.
  const Workload clamped =
      load_source(WorkloadSource::from_swf(file.path(), 0, /*cpus=*/16));
  EXPECT_EQ(clamped.cpus, 16);
  for (const Job& job : clamped.jobs) EXPECT_LE(job.size, 16);
}

TEST(WorkloadSourceTest, MissingSwfFileThrows) {
  EXPECT_THROW(
      (void)load_source(WorkloadSource::from_swf("/no/such/file.swf")),
      Error);
}

TEST(WorkloadSourceTest, ResolveSourcePrefersArchiveNames) {
  const WorkloadSource archive = resolve_source("LLNLAtlas", 1000);
  EXPECT_EQ(archive.kind, WorkloadSource::Kind::kArchive);
  EXPECT_EQ(archive.archive, Archive::kLLNLAtlas);
  EXPECT_EQ(archive.jobs, 1000);

  const WorkloadSource file = resolve_source("some/trace.swf", 0);
  EXPECT_EQ(file.kind, WorkloadSource::Kind::kSwf);
  EXPECT_EQ(file.path, "some/trace.swf");
}

TEST(WorkloadSourceTest, LabelsAndSeeds) {
  EXPECT_EQ(source_label(WorkloadSource::from_archive(Archive::kCTC)), "CTC");
  EXPECT_EQ(source_label(WorkloadSource::from_swf("a.swf")), "a.swf");
  WorkloadSpec spec;
  spec.name = "mine";
  EXPECT_EQ(source_label(WorkloadSource::from_spec(spec, 1)), "mine");

  // Archive: canonical seed unless overridden.
  EXPECT_EQ(source_seed(WorkloadSource::from_archive(Archive::kCTC)),
            archive_seed(Archive::kCTC));
  EXPECT_EQ(source_seed(WorkloadSource::from_archive(Archive::kCTC, 100, 5)),
            5u);
  // SWF: deterministic per path, distinct across paths.
  EXPECT_EQ(source_seed(WorkloadSource::from_swf("a.swf")),
            source_seed(WorkloadSource::from_swf("a.swf")));
  EXPECT_NE(source_seed(WorkloadSource::from_swf("a.swf")),
            source_seed(WorkloadSource::from_swf("b.swf")));
}

TEST(WorkloadSourceConfigTest, RoundTripsEveryKind) {
  WorkloadSpec spec;
  spec.name = "inline-wl";
  spec.cpus = 96;
  spec.runtime.classes = {{0.7, 5.0, 0.8}, {0.3, 8.0, 1.2}};
  const std::vector<WorkloadSource> sources = {
      WorkloadSource::from_archive(Archive::kSDSCBlue, 1234, 42),
      WorkloadSource::from_swf("traces/ctc.swf", 500, 430),
      WorkloadSource::from_spec(spec, 11),
  };
  for (const WorkloadSource& source : sources) {
    util::Config config;
    source_to_config(source, config);
    const WorkloadSource parsed = source_from_config(config);
    EXPECT_EQ(parsed, source);
    // Re-serialization is byte-identical.
    util::Config again;
    source_to_config(parsed, again);
    EXPECT_EQ(again.to_string(), config.to_string());
  }
}

TEST(WorkloadSourceConfigTest, FullRangeSeedsRoundTrip) {
  // Seeds are uint64; values above INT64_MAX must still serialize and parse
  // (e.g. a CLI `--seed -1` wraps to 2^64 - 1).
  WorkloadSource source = WorkloadSource::from_archive(
      Archive::kCTC, 100, std::numeric_limits<std::uint64_t>::max());
  util::Config config;
  source_to_config(source, config);
  EXPECT_EQ(config.get_string("workload.seed", ""), "18446744073709551615");
  EXPECT_EQ(source_from_config(config), source);

  util::Config bad;
  bad.set("workload.seed", "not-a-seed");
  EXPECT_THROW((void)source_from_config(bad), Error);
}

TEST(WorkloadSourceTest, ResolveSourceArchiveIgnoresWholeFileJobs) {
  // jobs = 0 ("whole file") coming from an SWF-shaped invocation must not
  // produce an unloadable archive source.
  const WorkloadSource source = resolve_source("CTC", 0);
  EXPECT_EQ(source.kind, WorkloadSource::Kind::kArchive);
  EXPECT_EQ(source.jobs, 5000);
}

TEST(WorkloadSourceConfigTest, JobsDefaultMatchesTheFactories) {
  // Omitting workload.jobs must mean "paper slice" for archives but "whole
  // file" for SWF sources, exactly like the from_* factories.
  util::Config archive;
  archive.set("workload.source", "archive");
  archive.set("workload.archive", "CTC");
  EXPECT_EQ(source_from_config(archive).jobs, 5000);

  util::Config swf;
  swf.set("workload.source", "swf");
  swf.set("workload.path", "trace.swf");
  EXPECT_EQ(source_from_config(swf).jobs, 0);
}

TEST(WorkloadSourceConfigTest, UnknownKindThrows) {
  util::Config config;
  config.set("workload.source", "sql");
  EXPECT_THROW((void)source_from_config(config), Error);
}

TEST(WorkloadSourceConfigTest, SwfWithoutPathThrows) {
  util::Config config;
  config.set("workload.source", "swf");
  EXPECT_THROW((void)source_from_config(config), Error);
}

}  // namespace
}  // namespace bsld::wl
