/// \file stream_test.cpp
/// \brief Unit tests of the pull-based workload pipeline: open_stream /
/// materialize parity with load_source, SWF slicing through the streaming
/// parser, and SortingJobStream's bounded re-order window.
#include "workload/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "testing/helpers.hpp"
#include "util/error.hpp"
#include "workload/archives.hpp"
#include "workload/source.hpp"
#include "workload/swf.hpp"

namespace bsld::wl {
namespace {

using testing::job;
using testing::workload;

/// Writes a workload as SWF to a unique temp path; removed on destruction.
class TempSwf {
 public:
  explicit TempSwf(const Workload& load)
      : path_(::testing::TempDir() + "stream_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".swf") {
    save_swf_file(path_, load);
  }
  ~TempSwf() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(JobStreamTest, ArchiveStreamMaterializesToLoadSourceBytes) {
  const WorkloadSource source =
      WorkloadSource::from_archive(Archive::kCTC, 500);
  const Workload eager = load_source(source);

  const std::unique_ptr<JobStream> stream = open_stream(source);
  EXPECT_EQ(stream->name(), eager.name);
  EXPECT_EQ(stream->cpus(), eager.cpus);
  EXPECT_EQ(stream->size_hint(), 500);

  const Workload lazy = materialize(*open_stream(source));
  EXPECT_EQ(lazy.name, eager.name);
  EXPECT_EQ(lazy.cpus, eager.cpus);
  EXPECT_EQ(lazy.jobs, eager.jobs);  // identical bytes, job for job.
}

TEST(JobStreamTest, StreamIsSingleUseAndStaysExhausted) {
  const WorkloadSource source =
      WorkloadSource::from_archive(Archive::kSDSC, 50);
  const std::unique_ptr<JobStream> stream = open_stream(source);
  std::int64_t pulled = 0;
  while (stream->next()) ++pulled;
  EXPECT_EQ(pulled, 50);
  EXPECT_FALSE(stream->next().has_value());  // exhausted stays exhausted.
}

TEST(JobStreamTest, StreamEmitsInSubmitIdOrder) {
  const WorkloadSource source =
      WorkloadSource::from_archive(Archive::kSDSCBlue, 400);
  const std::unique_ptr<JobStream> stream = open_stream(source);
  std::optional<Job> previous;
  while (std::optional<Job> next = stream->next()) {
    if (previous) {
      EXPECT_TRUE(previous->submit < next->submit ||
                  (previous->submit == next->submit && previous->id < next->id));
    }
    previous = std::move(next);
  }
}

TEST(JobStreamTest, SwfStreamSlicesExactlyLikeLoadSource) {
  // Slicing an SWF trace through the streaming counting pre-pass must
  // reproduce the materialized parse -> sort -> clean -> slice pipeline.
  const TempSwf file(make_archive_workload(Archive::kSDSC, 300));
  const WorkloadSource sliced =
      WorkloadSource::from_swf(file.path(), /*jobs=*/120);
  const Workload eager = load_source(sliced);
  const Workload lazy = materialize(*open_stream(sliced));
  ASSERT_EQ(eager.jobs.size(), 120u);
  EXPECT_EQ(lazy.cpus, eager.cpus);
  EXPECT_EQ(lazy.jobs, eager.jobs);

  // And the whole-file form (jobs = 0) as well.
  const WorkloadSource whole = WorkloadSource::from_swf(file.path());
  EXPECT_EQ(materialize(*open_stream(whole)).jobs, load_source(whole).jobs);
}

TEST(JobStreamTest, VectorAndViewStreamsReplayTheWorkload) {
  const Workload load = workload(
      8, {job(1, 0, 50, 60, 2), job(2, 5, 40, 40, 4), job(3, 9, 10, 20, 1)});

  WorkloadViewStream view(load);  // non-owning replay.
  VectorJobStream owned(load);    // copy moved in.
  for (const Job& expected : load.jobs) {
    const std::optional<Job> from_view = view.next();
    const std::optional<Job> from_owned = owned.next();
    ASSERT_TRUE(from_view.has_value());
    ASSERT_TRUE(from_owned.has_value());
    EXPECT_EQ(*from_view, expected);
    EXPECT_EQ(*from_owned, expected);
  }
  EXPECT_FALSE(view.next().has_value());
  EXPECT_FALSE(owned.next().has_value());
  EXPECT_EQ(view.size_hint(), 3);
}

TEST(SortingJobStreamTest, ReordersWithinTheWindow) {
  // Jobs displaced by one position; a window of 2 restores strict
  // (submit, id) order without materializing the trace.
  const Workload shuffled = workload(
      8, {job(2, 5, 10, 10, 1), job(1, 0, 10, 10, 1), job(4, 9, 10, 10, 1),
          job(3, 7, 10, 10, 1)});
  SortingJobStream sorter(std::make_unique<VectorJobStream>(shuffled), 2);

  std::vector<JobId> order;
  while (const std::optional<Job> next = sorter.next()) {
    order.push_back(next->id);
  }
  EXPECT_EQ(order, (std::vector<JobId>{1, 2, 3, 4}));
}

TEST(SortingJobStreamTest, ViolationBeyondTheWindowThrows) {
  // Job 1 arrives three positions late but the window holds only two
  // pending jobs — emitting would time-travel, so next() must throw.
  const Workload shuffled = workload(
      8, {job(2, 5, 10, 10, 1), job(3, 7, 10, 10, 1), job(4, 9, 10, 10, 1),
          job(1, 0, 10, 10, 1)});
  SortingJobStream sorter(std::make_unique<VectorJobStream>(shuffled), 2);
  EXPECT_THROW(
      {
        while (sorter.next()) {
        }
      },
      Error);
}

}  // namespace
}  // namespace bsld::wl
