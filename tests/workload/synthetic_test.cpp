#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/workload_stats.hpp"

namespace bsld::wl {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.name = "unit";
  spec.cpus = 64;
  spec.num_jobs = 800;
  spec.arrival.load_target = 0.7;
  return spec;
}

TEST(SyntheticTest, DeterministicForSeed) {
  const WorkloadSpec spec = small_spec();
  const Workload a = generate(spec, 42);
  const Workload b = generate(spec, 42);
  EXPECT_EQ(a.jobs, b.jobs);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const WorkloadSpec spec = small_spec();
  const Workload a = generate(spec, 1);
  const Workload b = generate(spec, 2);
  EXPECT_NE(a.jobs, b.jobs);
}

TEST(SyntheticTest, StructuralInvariants) {
  const Workload workload = generate(small_spec(), 7);
  ASSERT_EQ(workload.jobs.size(), 800u);
  Time previous_submit = 0;
  JobId expected_id = 1;
  for (const Job& job : workload.jobs) {
    EXPECT_EQ(job.id, expected_id++);
    EXPECT_GE(job.submit, previous_submit);
    previous_submit = job.submit;
    EXPECT_GE(job.size, 1);
    EXPECT_LE(job.size, workload.cpus);
    EXPECT_GE(job.run_time, 1);
    EXPECT_GE(job.requested_time, job.run_time);  // estimates are upper bounds
    EXPECT_GE(job.user_id, 0);
  }
}

TEST(SyntheticTest, LoadTargetApproximatelyRealized) {
  WorkloadSpec spec = small_spec();
  spec.num_jobs = 4000;
  spec.arrival.daily_amplitude = 0.0;
  spec.arrival.burst_probability = 0.0;
  const Workload workload = generate(spec, 99);
  const WorkloadStats stats = compute_stats(workload);
  EXPECT_NEAR(stats.offered_load, spec.arrival.load_target,
              spec.arrival.load_target * 0.2);
}

TEST(SyntheticTest, SequentialFractionRespected) {
  WorkloadSpec spec = small_spec();
  spec.size.p_sequential = 0.5;
  spec.num_jobs = 4000;
  const Workload workload = generate(spec, 5);
  const WorkloadStats stats = compute_stats(workload);
  // Parallel jobs can also land on size 1, so >= the configured fraction.
  EXPECT_GE(stats.sequential_fraction, 0.45);
}

TEST(SyntheticTest, MinimumSizeFloor) {
  WorkloadSpec spec = small_spec();
  spec.size.p_sequential = 0.0;
  spec.size.min_size = 8;
  const Workload workload = generate(spec, 3);
  for (const Job& job : workload.jobs) EXPECT_GE(job.size, 8);
}

TEST(SyntheticTest, RuntimeClampedToModelRange) {
  WorkloadSpec spec = small_spec();
  spec.runtime.classes = {{1.0, 12.0, 2.0}};  // huge lognormal
  spec.runtime.max_runtime = 500;
  const Workload workload = generate(spec, 3);
  for (const Job& job : workload.jobs) {
    EXPECT_LE(job.run_time, 500);
    EXPECT_GE(job.run_time, spec.runtime.min_runtime);
  }
}

TEST(SyntheticTest, RequestedCappedBySiteLimit) {
  WorkloadSpec spec = small_spec();
  spec.estimate.max_requested = 1000;
  spec.runtime.max_runtime = 900;
  const Workload workload = generate(spec, 3);
  for (const Job& job : workload.jobs) {
    EXPECT_LE(job.requested_time, 1000);
  }
}

TEST(SyntheticTest, InvalidSpecsRejected) {
  WorkloadSpec spec = small_spec();
  spec.cpus = 0;
  EXPECT_THROW((void)generate(spec, 1), Error);

  spec = small_spec();
  spec.num_jobs = 0;
  EXPECT_THROW((void)generate(spec, 1), Error);

  spec = small_spec();
  spec.arrival.load_target = 0.0;
  EXPECT_THROW((void)generate(spec, 1), Error);

  spec = small_spec();
  spec.runtime.classes.clear();
  EXPECT_THROW((void)generate(spec, 1), Error);

  spec = small_spec();
  spec.arrival.daily_amplitude = 1.0;
  EXPECT_THROW((void)generate(spec, 1), Error);
}

TEST(RoundToNiceTest, Quantization) {
  EXPECT_EQ(round_to_nice_request(1), 300);        // 5-minute grid
  EXPECT_EQ(round_to_nice_request(300), 300);
  EXPECT_EQ(round_to_nice_request(301), 600);
  EXPECT_EQ(round_to_nice_request(2 * 3600), 7200);
  EXPECT_EQ(round_to_nice_request(2 * 3600 + 1), 9000);   // 30-minute grid
  EXPECT_EQ(round_to_nice_request(6 * 3600 + 1), 25200);  // 1-hour grid
  EXPECT_EQ(round_to_nice_request(0), 1);
}

// Property sweep: invariants hold across a grid of spec shapes and seeds.
struct SpecCase {
  double load;
  double p_seq;
  double amplitude;
  double burst;
};

class SyntheticPropertyTest
    : public ::testing::TestWithParam<std::tuple<SpecCase, std::uint64_t>> {};

TEST_P(SyntheticPropertyTest, InvariantsHold) {
  const auto& [spec_case, seed] = GetParam();
  WorkloadSpec spec = small_spec();
  spec.num_jobs = 400;
  spec.arrival.load_target = spec_case.load;
  spec.size.p_sequential = spec_case.p_seq;
  spec.arrival.daily_amplitude = spec_case.amplitude;
  spec.arrival.burst_probability = spec_case.burst;
  const Workload workload = generate(spec, seed);
  ASSERT_EQ(workload.jobs.size(), 400u);
  Time previous = 0;
  for (const Job& job : workload.jobs) {
    ASSERT_GE(job.submit, previous);
    previous = job.submit;
    ASSERT_GE(job.size, 1);
    ASSERT_LE(job.size, spec.cpus);
    ASSERT_GE(job.run_time, 1);
    ASSERT_GE(job.requested_time, job.run_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SyntheticPropertyTest,
    ::testing::Combine(
        ::testing::Values(SpecCase{0.3, 0.0, 0.0, 0.0},
                          SpecCase{0.9, 0.5, 0.8, 0.5},
                          SpecCase{1.2, 0.2, 0.5, 0.9},
                          SpecCase{0.05, 1.0, 0.95, 0.2}),
        ::testing::Values(1u, 17u, 91u)));

}  // namespace
}  // namespace bsld::wl
