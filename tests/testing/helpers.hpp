/// \file helpers.hpp
/// \brief Shared fixtures for scheduler/simulation tests: compact job
/// construction, a one-call simulation runner, and a fake SchedulerContext
/// for unit-testing frequency assigners without a full simulation.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/gears.hpp"
#include "core/policy_factory.hpp"
#include "core/scheduler.hpp"
#include "power/power_model.hpp"
#include "power/time_model.hpp"
#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "workload/job.hpp"

namespace bsld::testing {

/// Compact job literal: {id, submit, runtime, requested, size}.
inline wl::Job job(JobId id, Time submit, Time run_time, Time requested,
                   std::int32_t size) {
  wl::Job out;
  out.id = id;
  out.submit = submit;
  out.run_time = run_time;
  out.requested_time = requested;
  out.size = size;
  out.user_id = 0;
  return out;
}

inline wl::Workload workload(std::int32_t cpus, std::vector<wl::Job> jobs) {
  wl::Workload out;
  out.name = "test";
  out.cpus = cpus;
  out.jobs = std::move(jobs);
  return out;
}

/// Simulation models bundled for one-line test setup.
struct Models {
  cluster::GearSet gears = cluster::paper_gear_set();
  power::PowerModel power{gears};
  power::BetaTimeModel time{gears, 0.5};
};

/// Runs `workload` through a freshly-built policy and returns the result.
inline sim::SimulationResult run(
    const wl::Workload& load, const Models& models,
    core::BasePolicy base = core::BasePolicy::kEasy,
    std::optional<core::DvfsConfig> dvfs = std::nullopt,
    const std::string& selector = "FirstFit",
    sim::SimulationConfig config = {}) {
  const auto policy = core::make_policy(base, dvfs, selector);
  return sim::run_simulation(load, *policy, models.power, models.time, config);
}

/// Minimal SchedulerContext: a machine snapshot, a job table, and a fixed
/// clock. start_job records the call instead of simulating.
class FakeContext final : public core::SchedulerContext {
 public:
  FakeContext(std::int32_t cpus, const power::BetaTimeModel& time_model)
      : machine_(cpus), time_model_(time_model) {}

  void add_job(const wl::Job& job) { jobs_[job.id] = job; }
  void set_now(Time now) { now_ = now; }
  cluster::Machine& mutable_machine() { return machine_; }

  [[nodiscard]] Time now() const override { return now_; }
  [[nodiscard]] const cluster::Machine& machine() const override {
    return machine_;
  }
  [[nodiscard]] const wl::Job& job(JobId id) const override {
    const auto it = jobs_.find(id);
    BSLD_REQUIRE(it != jobs_.end(), "FakeContext: unknown job");
    return it->second;
  }
  [[nodiscard]] const power::BetaTimeModel& time_model() const override {
    return time_model_;
  }
  void start_job(JobId id, const std::vector<CpuId>& cpus,
                 GearIndex gear) override {
    started.push_back({id, cpus, gear});
  }
  [[nodiscard]] std::vector<JobId> running_jobs() const override {
    return fake_running;
  }
  [[nodiscard]] GearIndex running_gear(JobId id) const override {
    const auto it = fake_gears.find(id);
    BSLD_REQUIRE(it != fake_gears.end(), "FakeContext: job not running");
    return it->second;
  }
  void boost_job(JobId id, GearIndex gear) override {
    boosts.push_back({id, gear});
    fake_gears[id] = gear;
  }

  struct StartCall {
    JobId id;
    std::vector<CpuId> cpus;
    GearIndex gear;
  };
  struct BoostCall {
    JobId id;
    GearIndex gear;
  };
  std::vector<StartCall> started;
  std::vector<BoostCall> boosts;
  std::vector<JobId> fake_running;
  std::map<JobId, GearIndex> fake_gears;

 private:
  cluster::Machine machine_;
  const power::BetaTimeModel& time_model_;
  std::map<JobId, wl::Job> jobs_;
  Time now_ = 0;
};

}  // namespace bsld::testing
