#include "cluster/gears.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::cluster {
namespace {

TEST(GearsTest, PaperGearSetMatchesTable2) {
  const GearSet gears = paper_gear_set();
  ASSERT_EQ(gears.size(), 6u);
  EXPECT_DOUBLE_EQ(gears.lowest().frequency_ghz, 0.8);
  EXPECT_DOUBLE_EQ(gears.lowest().voltage_v, 1.0);
  EXPECT_DOUBLE_EQ(gears.top().frequency_ghz, 2.3);
  EXPECT_DOUBLE_EQ(gears.top().voltage_v, 1.5);
  EXPECT_DOUBLE_EQ(gears[2].frequency_ghz, 1.4);
  EXPECT_DOUBLE_EQ(gears[2].voltage_v, 1.2);
  EXPECT_EQ(gears.top_index(), 5);
}

TEST(GearsTest, FrequencyRatio) {
  const GearSet gears = paper_gear_set();
  EXPECT_DOUBLE_EQ(gears.frequency_ratio(gears.top_index()), 1.0);
  EXPECT_NEAR(gears.frequency_ratio(0), 2.3 / 0.8, 1e-12);
}

TEST(GearsTest, ValidationRejectsBadSets) {
  EXPECT_THROW(GearSet({}), Error);
  EXPECT_THROW(GearSet({{1.0, 1.0}, {0.9, 1.1}}), Error);   // freq not increasing
  EXPECT_THROW(GearSet({{1.0, 1.2}, {1.5, 1.0}}), Error);   // voltage decreasing
  EXPECT_THROW(GearSet({{0.0, 1.0}}), Error);               // non-positive
  EXPECT_THROW(GearSet({{1.0, -1.0}}), Error);
  EXPECT_THROW(GearSet({{1.0, 1.0}, {1.0, 1.1}}), Error);   // equal freq
}

TEST(GearsTest, IndexOutOfRangeRejected) {
  const GearSet gears = paper_gear_set();
  EXPECT_THROW((void)gears[-1], Error);
  EXPECT_THROW((void)gears[6], Error);
}

TEST(GearsTest, SingleGearSetIsValid) {
  const GearSet gears({{2.0, 1.3}});
  EXPECT_EQ(gears.top_index(), 0);
  EXPECT_DOUBLE_EQ(gears.frequency_ratio(0), 1.0);
}

TEST(GearsTest, ToStringListsAllGears) {
  const std::string rendered = paper_gear_set().to_string();
  EXPECT_NE(rendered.find("0.8GHz@1V"), std::string::npos);
  EXPECT_NE(rendered.find("2.3GHz@1.5V"), std::string::npos);
}

TEST(GearsTest, ConfigFallsBackToPaperSet) {
  const util::Config empty;
  EXPECT_EQ(gear_set_from_config(empty), paper_gear_set());
}

TEST(GearsTest, ConfigOverrides) {
  const util::Config config = util::Config::parse(
      "gears.frequencies_ghz = 1.0, 2.0\n"
      "gears.voltages_v = 1.1, 1.3\n");
  const GearSet gears = gear_set_from_config(config);
  ASSERT_EQ(gears.size(), 2u);
  EXPECT_DOUBLE_EQ(gears.top().frequency_ghz, 2.0);
}

TEST(GearsTest, ConfigLengthMismatchRejected) {
  const util::Config config = util::Config::parse(
      "gears.frequencies_ghz = 1.0, 2.0\n"
      "gears.voltages_v = 1.1\n");
  EXPECT_THROW((void)gear_set_from_config(config), Error);
}

}  // namespace
}  // namespace bsld::cluster
