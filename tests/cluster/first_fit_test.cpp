#include "cluster/first_fit.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::cluster {
namespace {

Reservation make_reservation(JobId job, Time start, std::vector<CpuId> cpus,
                             std::int32_t machine_cpus) {
  Reservation reservation;
  reservation.job = job;
  reservation.start = start;
  reservation.cpus = cpus;
  reservation.mask.assign(static_cast<std::size_t>(machine_cpus), 0);
  for (const CpuId cpu : cpus) {
    reservation.mask[static_cast<std::size_t>(cpu)] = 1;
  }
  return reservation;
}

TEST(FirstFitTest, SelectsLowestIndices) {
  Machine machine(6);
  machine.assign(1, {1, 2}, 1000);
  const FirstFit selector;
  const auto cpus = selector.select_at(machine, 3, 0, 0);
  EXPECT_EQ(cpus, (std::vector<CpuId>{0, 3, 4}));
}

TEST(FirstFitTest, SelectAtFutureIncludesFreeingCpus) {
  Machine machine(4);
  machine.assign(1, {0}, 100);
  machine.assign(2, {1}, 500);
  const FirstFit selector;
  // At t=100 cpu 0 frees; {0, 2, 3} are the lowest available by then.
  const auto cpus = selector.select_at(machine, 3, 100, 0);
  EXPECT_EQ(cpus, (std::vector<CpuId>{0, 2, 3}));
}

TEST(FirstFitTest, SelectAtThrowsWhenInsufficient) {
  Machine machine(2);
  machine.assign(1, {0}, 1000);
  const FirstFit selector;
  EXPECT_THROW((void)selector.select_at(machine, 2, 10, 0), Error);
}

TEST(FirstFitTest, BackfillWithoutReservationUsesAnyFree) {
  Machine machine(4);
  machine.assign(1, {0}, 1000);
  const FirstFit selector;
  const auto cpus = selector.select_backfill(machine, 2, 0, 99999, nullptr);
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<CpuId>{1, 2}));
}

TEST(FirstFitTest, BackfillFinishingBeforeShadowMayUseReservedCpus) {
  Machine machine(4);
  const Reservation reservation = make_reservation(9, 500, {0, 1}, 4);
  const FirstFit selector;
  // Ends at 400 <= 500: reserved CPUs are fair game; lowest indices win.
  const auto cpus = selector.select_backfill(machine, 2, 0, 400, &reservation);
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<CpuId>{0, 1}));
}

TEST(FirstFitTest, BackfillCrossingShadowAvoidsReservedCpus) {
  Machine machine(4);
  const Reservation reservation = make_reservation(9, 500, {0, 1}, 4);
  const FirstFit selector;
  // Ends at 600 > 500: only CPUs outside the reservation qualify.
  const auto cpus = selector.select_backfill(machine, 2, 0, 600, &reservation);
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<CpuId>{2, 3}));
}

TEST(FirstFitTest, BackfillCrossingShadowFailsWhenOnlyReservedLeft) {
  Machine machine(4);
  machine.assign(1, {2, 3}, 2000);
  const Reservation reservation = make_reservation(9, 500, {0, 1}, 4);
  const FirstFit selector;
  EXPECT_FALSE(
      selector.select_backfill(machine, 2, 0, 600, &reservation).has_value());
  // ...but fits if it ends before the shadow.
  EXPECT_TRUE(
      selector.select_backfill(machine, 2, 0, 500, &reservation).has_value());
}

TEST(FirstFitTest, BackfillSkipsBusyCpus) {
  Machine machine(4);
  machine.assign(1, {0}, 1000);
  const FirstFit selector;
  const auto cpus = selector.select_backfill(machine, 3, 0, 100, nullptr);
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<CpuId>{1, 2, 3}));
  EXPECT_FALSE(selector.select_backfill(machine, 4, 0, 100, nullptr).has_value());
}

TEST(LastFitTest, SelectsHighestIndices) {
  Machine machine(6);
  const LastFit selector;
  EXPECT_EQ(selector.select_at(machine, 2, 0, 0), (std::vector<CpuId>{5, 4}));
  const auto backfill = selector.select_backfill(machine, 2, 0, 10, nullptr);
  ASSERT_TRUE(backfill.has_value());
  EXPECT_EQ(*backfill, (std::vector<CpuId>{5, 4}));
}

TEST(SelectorFactoryTest, KnownAndUnknownNames) {
  EXPECT_EQ(make_selector("FirstFit")->name(), "FirstFit");
  EXPECT_EQ(make_selector("LastFit")->name(), "LastFit");
  EXPECT_THROW((void)make_selector("BestFit"), Error);
}

TEST(ReservationTest, ContainsUsesMask) {
  const Reservation reservation = make_reservation(1, 10, {2}, 4);
  EXPECT_TRUE(reservation.contains(2));
  EXPECT_FALSE(reservation.contains(0));
  EXPECT_FALSE(reservation.contains(99));  // out of mask: false, not UB
  EXPECT_TRUE(reservation.active());
  EXPECT_FALSE(Reservation{}.active());
}

}  // namespace
}  // namespace bsld::cluster
