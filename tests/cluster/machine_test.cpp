#include "cluster/machine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::cluster {
namespace {

TEST(MachineTest, StartsAllFree) {
  const Machine machine(4);
  EXPECT_EQ(machine.cpu_count(), 4);
  EXPECT_EQ(machine.free_now(), 4);
  EXPECT_EQ(machine.busy_now(), 0);
  for (CpuId cpu = 0; cpu < 4; ++cpu) {
    EXPECT_TRUE(machine.is_free(cpu));
    EXPECT_EQ(machine.running_job(cpu), kNoJob);
    EXPECT_EQ(machine.avail_time(cpu, 100), 100);
  }
}

TEST(MachineTest, AssignAndRelease) {
  Machine machine(4);
  machine.assign(7, {0, 2}, 500);
  EXPECT_EQ(machine.free_now(), 2);
  EXPECT_EQ(machine.running_job(0), 7);
  EXPECT_EQ(machine.running_job(2), 7);
  EXPECT_TRUE(machine.is_free(1));
  EXPECT_EQ(machine.avail_time(0, 100), 500);
  machine.release(7, {0, 2});
  EXPECT_EQ(machine.free_now(), 4);
  EXPECT_TRUE(machine.is_free(0));
}

TEST(MachineTest, OversubscriptionRejected) {
  Machine machine(4);
  machine.assign(1, {0}, 100);
  EXPECT_THROW(machine.assign(2, {0}, 200), Error);
  // Failed assignment must not corrupt counters.
  EXPECT_EQ(machine.free_now(), 3);
}

TEST(MachineTest, ReleaseWrongJobRejected) {
  Machine machine(2);
  machine.assign(1, {0}, 100);
  EXPECT_THROW(machine.release(2, {0}), Error);
  EXPECT_THROW(machine.release(1, {1}), Error);  // cpu 1 is free
}

TEST(MachineTest, AvailTimeClampsOverrunningJobs) {
  Machine machine(2);
  machine.assign(1, {0}, 50);  // expected end in the past from now=100
  // The job is still running, so the CPU must not look free "now".
  EXPECT_EQ(machine.avail_time(0, 100), 101);
}

TEST(MachineTest, EarliestStartImmediateWhenFree) {
  Machine machine(4);
  machine.assign(1, {0}, 1000);
  EXPECT_EQ(machine.earliest_start(3, 10), 10);
}

TEST(MachineTest, EarliestStartIsKthSmallestAvail) {
  Machine machine(4);
  machine.assign(1, {0}, 300);
  machine.assign(2, {1}, 500);
  machine.assign(3, {2}, 700);
  // 1 CPU free now; need 3 => wait until the 2nd busy CPU frees at 500.
  EXPECT_EQ(machine.earliest_start(3, 10), 500);
  EXPECT_EQ(machine.earliest_start(1, 10), 10);
  EXPECT_EQ(machine.earliest_start(4, 10), 700);
}

TEST(MachineTest, AvailableByCounts) {
  Machine machine(4);
  machine.assign(1, {0}, 300);
  machine.assign(2, {1}, 500);
  EXPECT_EQ(machine.available_by(10, 10), 2);
  EXPECT_EQ(machine.available_by(300, 10), 3);
  EXPECT_EQ(machine.available_by(499, 10), 3);
  EXPECT_EQ(machine.available_by(500, 10), 4);
}

TEST(MachineTest, InvalidArgumentsRejected) {
  Machine machine(4);
  EXPECT_THROW(Machine(0), Error);
  EXPECT_THROW((void)machine.earliest_start(0, 0), Error);
  EXPECT_THROW((void)machine.earliest_start(5, 0), Error);
  EXPECT_THROW((void)machine.avail_time(4, 0), Error);
  EXPECT_THROW(machine.assign(kNoJob, {0}, 10), Error);
  EXPECT_THROW(machine.assign(1, {}, 10), Error);
  EXPECT_THROW(machine.assign(1, {9}, 10), Error);
}

}  // namespace
}  // namespace bsld::cluster
