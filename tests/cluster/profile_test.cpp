#include "cluster/profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::cluster {
namespace {

TEST(ProfileTest, FullCapacityInitially) {
  const AvailabilityProfile profile(8, 100);
  EXPECT_EQ(profile.capacity(), 8);
  EXPECT_EQ(profile.free_at(100), 8);
  EXPECT_EQ(profile.free_at(1000000), 8);
}

TEST(ProfileTest, ReserveCarvesInterval) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(10, 20, 3);
  EXPECT_EQ(profile.free_at(9), 8);
  EXPECT_EQ(profile.free_at(10), 5);
  EXPECT_EQ(profile.free_at(19), 5);
  EXPECT_EQ(profile.free_at(20), 8);
}

TEST(ProfileTest, OverlappingReservationsStack) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(0, 100, 4);
  profile.reserve(50, 150, 4);
  EXPECT_EQ(profile.free_at(0), 4);
  EXPECT_EQ(profile.free_at(50), 0);
  EXPECT_EQ(profile.free_at(100), 4);
  EXPECT_EQ(profile.free_at(150), 8);
}

TEST(ProfileTest, OvercommitRejected) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(0, 100, 6);
  EXPECT_THROW(profile.reserve(50, 60, 3), Error);
  // The failed reservation must not corrupt the profile.
  EXPECT_EQ(profile.free_at(50), 2);
  profile.reserve(50, 60, 2);  // exactly fits
  EXPECT_EQ(profile.free_at(55), 0);
}

TEST(ProfileTest, OvercommitInsideIntervalDetected) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(50, 60, 6);
  // Starts where 8 are free, but the middle dips to 2 < 4.
  EXPECT_THROW(profile.reserve(40, 70, 4), Error);
}

TEST(ProfileTest, EarliestSlotImmediate) {
  const AvailabilityProfile profile(8, 0);
  EXPECT_EQ(profile.earliest_slot(8, 100, 0), 0);
  EXPECT_EQ(profile.earliest_slot(1, 1, 42), 42);
}

TEST(ProfileTest, EarliestSlotAfterRelease) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(0, 100, 6);
  EXPECT_EQ(profile.earliest_slot(2, 10, 0), 0);    // the 2 spare CPUs
  EXPECT_EQ(profile.earliest_slot(4, 10, 0), 100);  // must wait for release
}

TEST(ProfileTest, EarliestSlotSkipsTooShortHoles) {
  AvailabilityProfile profile(8, 0);
  // Free window of width 50 between two reservations, then free forever.
  profile.reserve(0, 100, 8);
  profile.reserve(150, 300, 8);
  EXPECT_EQ(profile.earliest_slot(1, 50, 0), 100);   // fits in the hole
  EXPECT_EQ(profile.earliest_slot(1, 51, 0), 300);   // must skip it
}

TEST(ProfileTest, EarliestSlotHonoursAfter) {
  AvailabilityProfile profile(8, 0);
  profile.reserve(100, 200, 8);
  EXPECT_EQ(profile.earliest_slot(4, 10, 50), 50);
  EXPECT_EQ(profile.earliest_slot(4, 10, 150), 200);
}

TEST(ProfileTest, StepsEnumerateBreakpoints) {
  AvailabilityProfile profile(4, 0);
  profile.reserve(10, 20, 1);
  const auto steps = profile.steps();
  ASSERT_GE(steps.size(), 3u);
  EXPECT_EQ(steps.front(), (std::pair<Time, std::int32_t>{0, 4}));
}

TEST(ProfileTest, InvalidInputsRejected) {
  EXPECT_THROW(AvailabilityProfile(0, 0), Error);
  AvailabilityProfile profile(4, 100);
  EXPECT_THROW(profile.reserve(50, 60, 1), Error);   // before origin
  EXPECT_THROW(profile.reserve(200, 200, 1), Error); // empty interval
  EXPECT_THROW(profile.reserve(200, 300, 0), Error); // zero size
  EXPECT_THROW((void)profile.free_at(50), Error);    // before origin
  EXPECT_THROW((void)profile.earliest_slot(5, 10, 100), Error);
  EXPECT_THROW((void)profile.earliest_slot(1, 0, 100), Error);
}

}  // namespace
}  // namespace bsld::cluster
