/// \file setpoint_test.cpp
/// \brief pm::SetpointController unit tests: construction guards, timer
/// arming, the integral control step (including the mid-run throttle when
/// the cap drops below demand), and clamping.

#include "pm/setpoint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pm/fake_context.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::pm {
namespace {

using testing::FakePmContext;
using testing::Models;

TEST(SetpointController, ConstructorRejectsNonPhysicalParameters) {
  const Models models;
  EXPECT_THROW(SetpointController(models.power, 0.0, 500.0, 300, 0.5), Error);
  EXPECT_THROW(SetpointController(models.power, 500.0, 500.0, 0, 0.5), Error);
  EXPECT_THROW(SetpointController(models.power, 500.0, 500.0, 300, 0.0),
               Error);
  EXPECT_THROW(SetpointController(models.power, 500.0, -1.0, 300, 0.5),
               Error);
}

TEST(SetpointController, ArmsOneTimerPerInterval) {
  const Models models;
  FakePmContext context(8, models.power);
  SetpointController controller(models.power, 500.0, 500.0, 300, 0.5);
  controller.on_run_begin(context);

  controller.on_job_submit(context, 1);
  ASSERT_EQ(context.timers.size(), 1U);
  EXPECT_EQ(context.timers[0], 300);
  // Further submits and starts while armed add no timer.
  controller.on_job_submit(context, 2);
  (void)controller.on_job_start(context, 1, {0}, 0);
  EXPECT_EQ(context.timers.size(), 1U);
}

TEST(SetpointController, StaysQuietOnAnEmptyCluster) {
  const Models models;
  FakePmContext context(8, models.power);
  SetpointController controller(models.power, 500.0, 500.0, 300, 0.5);
  controller.on_run_begin(context);

  // A timer fires with nothing admitted: no measurement, no re-arm —
  // otherwise an idle simulation would never drain its event queue.
  context.set_now(300);
  controller.on_timer(context);
  EXPECT_TRUE(context.events.empty());
  EXPECT_TRUE(context.timers.empty());

  // The next submission re-arms relative to now.
  context.set_now(400);
  controller.on_job_submit(context, 1);
  ASSERT_EQ(context.timers.size(), 1U);
  EXPECT_EQ(context.timers[0], 700);
}

TEST(SetpointController, IntegralStepsMoveTheCapAndThrottleMidRun) {
  const Models models;
  FakePmContext context(8, models.power);
  const GearIndex top = models.gears.top_index();
  const double setpoint = 300.0;
  const double gain = 0.5;
  SetpointController controller(models.power, setpoint, 500.0, 300, gain);
  controller.on_run_begin(context);

  // One 4-CPU job at the top gear; the other four CPUs idle.
  (void)controller.on_job_start(context, 1, {0, 1, 2, 3}, top);
  const double measured_at_top = 4.0 * models.power.active_power(top) +
                                 4.0 * models.power.idle_power();
  ASSERT_GT(measured_at_top, setpoint);  // The controller must push down.

  // Step 1: cap moves by gain * error but stays above the job's demand —
  // measured power is unchanged.
  context.set_now(300);
  controller.on_timer(context);
  const double cap1 = 500.0 + gain * (setpoint - measured_at_top);
  EXPECT_DOUBLE_EQ(controller.effective_cap(), cap1);
  ASSERT_GT(cap1, 4.0 * models.power.active_power(top));
  auto changes = context.of(PmEventKind::kCapChange);
  ASSERT_EQ(changes.size(), 1U);
  EXPECT_DOUBLE_EQ(changes[0].watts, cap1);
  EXPECT_DOUBLE_EQ(changes[0].aux_watts, measured_at_top);
  EXPECT_TRUE(context.gear_calls.empty());
  EXPECT_EQ(context.timers.size(), 2U);  // Re-armed while jobs are admitted.

  // Step 2: the integral keeps pushing; the cap drops below the top-gear
  // demand and the running job is throttled mid-run.
  context.set_now(600);
  controller.on_timer(context);
  const double cap2 = cap1 + gain * (setpoint - measured_at_top);
  EXPECT_DOUBLE_EQ(controller.effective_cap(), cap2);
  ASSERT_LT(cap2, 4.0 * models.power.active_power(top));
  ASSERT_FALSE(context.gear_calls.empty());
  const GearIndex throttled = context.gear_calls.back().gear;
  EXPECT_LT(throttled, top);
  EXPECT_LE(4.0 * models.power.active_power(throttled),
            controller.effective_cap() + 1e-6);
  const auto throttles = context.of(PmEventKind::kThrottle);
  ASSERT_EQ(throttles.size(), 1U);
  EXPECT_EQ(throttles[0].job, 1);
  EXPECT_EQ(throttles[0].gear_to, throttled);
}

TEST(SetpointController, CapIsClampedToThePhysicalRange) {
  const Models models;
  const GearIndex top = models.gears.top_index();
  const double max_cap = 8.0 * models.power.active_power(top);

  {
    // A huge positive error clamps at the cluster's maximum active power.
    FakePmContext context(8, models.power);
    SetpointController controller(models.power, 1e6, 500.0, 300, 1.0);
    controller.on_run_begin(context);
    (void)controller.on_job_start(context, 1, {0}, top);
    context.set_now(300);
    controller.on_timer(context);
    EXPECT_DOUBLE_EQ(controller.effective_cap(), max_cap);
  }
  {
    // A huge negative error clamps at zero instead of going negative.
    FakePmContext context(8, models.power);
    SetpointController controller(models.power, 1.0, 500.0, 300, 1e9);
    controller.on_run_begin(context);
    (void)controller.on_job_start(context, 1, {0}, top);
    context.set_now(300);
    controller.on_timer(context);
    EXPECT_DOUBLE_EQ(controller.effective_cap(), 0.0);
  }
}

}  // namespace
}  // namespace bsld::pm
