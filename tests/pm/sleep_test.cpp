/// \file sleep_test.cpp
/// \brief pm::SleepManager unit tests: the default C-state ladder, idle
/// span accounting across the ladder, wake-latency charging, and the
/// end-of-run flush.

#include "pm/sleep.hpp"

#include <gtest/gtest.h>

#include "pm/fake_context.hpp"
#include "testing/helpers.hpp"

namespace bsld::pm {
namespace {

using testing::FakePmContext;
using testing::Models;

TEST(SleepManager, DefaultLadderHalvesThenDecimatesIdlePower) {
  const Models models;
  const std::vector<power::SleepState> states =
      default_sleep_states(models.power);
  const double idle = models.power.idle_power();
  ASSERT_EQ(states.size(), 2U);
  EXPECT_DOUBLE_EQ(states[0].power_watts, idle * 0.5);
  EXPECT_EQ(states[0].enter_after_s, 300);
  EXPECT_EQ(states[0].wake_latency_s, 10);
  EXPECT_DOUBLE_EQ(states[1].power_watts, idle * 0.1);
  EXPECT_EQ(states[1].enter_after_s, 3600);
  EXPECT_EQ(states[1].wake_latency_s, 60);
}

TEST(SleepManager, ModelLadderOverridesTheDefault) {
  Models models;
  power::PowerModelConfig config;
  config.sleep_states.push_back(power::SleepState{1.0, 100, 5});
  const power::PowerModel model(models.gears, config);
  SleepManager manager(model);

  FakePmContext context(2, model);
  manager.on_run_begin(context);
  manager.on_job_submit(context, 1);
  context.set_now(200);
  const StartDecision decision = manager.on_job_start(context, 1, {0}, 0);
  // 200 s idle crossed the custom 100 s threshold: 100 core-seconds in
  // state 0 at 1 W, and the custom 5 s wake latency.
  EXPECT_EQ(decision.wake_delay, 5);
  const auto intervals = context.of(PmEventKind::kSleepInterval);
  ASSERT_EQ(intervals.size(), 1U);
  EXPECT_DOUBLE_EQ(intervals[0].watts, 1.0);
  EXPECT_DOUBLE_EQ(intervals[0].seconds, 100.0);
}

TEST(SleepManager, ShortIdleSpansSleepNothing) {
  const Models models;
  FakePmContext context(4, models.power);
  SleepManager manager(models.power);
  manager.on_run_begin(context);
  manager.on_job_submit(context, 1);

  // 200 s idle is below the 300 s first threshold: no events, no wake.
  context.set_now(200);
  const StartDecision decision = manager.on_job_start(context, 1, {0, 1}, 0);
  EXPECT_EQ(decision.wake_delay, 0);
  EXPECT_TRUE(context.events.empty());
}

TEST(SleepManager, LongIdleDescendsTheLadderAndChargesTheDeepestWake) {
  const Models models;
  FakePmContext context(4, models.power);
  const double idle = models.power.idle_power();
  SleepManager manager(models.power);
  manager.on_run_begin(context);
  manager.on_job_submit(context, 1);

  // One CPU idle for 4000 s: 300..3600 in the nap state (3300 s), then
  // 3600..4000 in deep sleep (400 s); the allocation pays the 60 s wake.
  context.set_now(4000);
  const StartDecision decision = manager.on_job_start(context, 1, {0}, 0);
  EXPECT_EQ(decision.wake_delay, 60);

  const auto intervals = context.of(PmEventKind::kSleepInterval);
  ASSERT_EQ(intervals.size(), 2U);
  EXPECT_EQ(intervals[0].sleep_state, 0);
  EXPECT_DOUBLE_EQ(intervals[0].seconds, 3300.0);
  EXPECT_DOUBLE_EQ(intervals[0].watts, idle * 0.5);
  EXPECT_EQ(intervals[0].cpu_count, 1);
  EXPECT_EQ(intervals[1].sleep_state, 1);
  EXPECT_DOUBLE_EQ(intervals[1].seconds, 400.0);
  EXPECT_DOUBLE_EQ(intervals[1].watts, idle * 0.1);

  const auto wakes = context.of(PmEventKind::kWake);
  ASSERT_EQ(wakes.size(), 1U);
  EXPECT_EQ(wakes[0].cpu_count, 1);
  EXPECT_DOUBLE_EQ(wakes[0].seconds, 60.0);
}

TEST(SleepManager, FinishRestartsTheIdleClock) {
  const Models models;
  FakePmContext context(4, models.power);
  SleepManager manager(models.power);
  manager.on_run_begin(context);
  manager.on_job_submit(context, 1);

  // CPUs 0-1 busy 0..50, idle 50..500: a 450 s span, not a 500 s one.
  (void)manager.on_job_start(context, 1, {0, 1}, 0);
  context.set_now(50);
  manager.on_job_finish(context, 1, {0, 1});
  context.set_now(500);
  const StartDecision decision = manager.on_job_start(context, 2, {0}, 0);
  EXPECT_EQ(decision.wake_delay, 10);
  const auto intervals = context.of(PmEventKind::kSleepInterval);
  ASSERT_EQ(intervals.size(), 1U);
  EXPECT_EQ(intervals[0].sleep_state, 0);
  EXPECT_DOUBLE_EQ(intervals[0].seconds, 150.0);  // 300..450 of the span.
}

TEST(SleepManager, TrackingStartsAtTheFirstSubmission) {
  const Models models;
  FakePmContext context(4, models.power);
  SleepManager manager(models.power);
  manager.on_run_begin(context);

  // No submission yet: pre-horizon idleness is never accounted.
  context.set_now(5000);
  const StartDecision decision = manager.on_job_start(context, 1, {0}, 0);
  EXPECT_EQ(decision.wake_delay, 0);
  EXPECT_TRUE(context.events.empty());
}

TEST(SleepManager, RunEndFlushesOpenSpansWithoutWaking) {
  const Models models;
  FakePmContext context(4, models.power);
  SleepManager manager(models.power);
  manager.on_run_begin(context);
  manager.on_job_submit(context, 1);

  // All four CPUs idle 0..1000; the run ends with them asleep.
  context.set_now(1000);
  manager.on_run_end(context);
  const auto intervals = context.of(PmEventKind::kSleepInterval);
  ASSERT_EQ(intervals.size(), 1U);
  EXPECT_EQ(intervals[0].sleep_state, 0);
  EXPECT_EQ(intervals[0].cpu_count, 4);
  EXPECT_DOUBLE_EQ(intervals[0].seconds, 4 * 700.0);
  EXPECT_TRUE(context.of(PmEventKind::kWake).empty());
}

}  // namespace
}  // namespace bsld::pm
