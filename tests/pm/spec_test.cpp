/// \file spec_test.cpp
/// \brief pm::PmSpec serialization, validation and registry resolution.

#include "pm/spec.hpp"

#include <gtest/gtest.h>

#include "pm/registry.hpp"
#include "power/power_model.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::pm {
namespace {

TEST(PmSpec, DefaultIsDisabledAndSerializesToNothing) {
  const PmSpec spec;
  EXPECT_FALSE(spec.enabled());
  util::Config config;
  pm_to_config(spec, config);
  // The no-op default must not change any serialized spec: every
  // pre-existing cache key depends on this.
  EXPECT_EQ(config.to_string(), "");
}

TEST(PmSpec, AbsentKeysParseToDefault) {
  const PmSpec spec = pm_from_config(util::Config::parse(""));
  EXPECT_EQ(spec, PmSpec{});
}

TEST(PmSpec, RoundTripsEveryFamily) {
  std::vector<PmSpec> specs;
  specs.push_back(PmSpec{});
  PmSpec uniform;
  uniform.name = "cap-uniform";
  uniform.cap_watts = 4000.0;
  specs.push_back(uniform);
  PmSpec proportional;
  proportional.name = "cap-proportional";
  proportional.cap_watts = 123.5;
  specs.push_back(proportional);
  PmSpec sleep;
  sleep.name = "sleep";
  specs.push_back(sleep);
  PmSpec setpoint;
  setpoint.name = "setpoint";
  setpoint.setpoint_watts = 350000.0;
  setpoint.cap_watts = 400000.0;
  setpoint.interval_s = 60;
  setpoint.gain = 0.25;
  specs.push_back(setpoint);

  for (const PmSpec& spec : specs) {
    util::Config config;
    pm_to_config(spec, config);
    const PmSpec parsed = pm_from_config(config);
    EXPECT_EQ(parsed, spec) << config.to_string();
    // Re-serialization is byte-identical (the spec's cache-key property).
    util::Config again;
    pm_to_config(parsed, again);
    EXPECT_EQ(again.to_string(), config.to_string());
  }
}

TEST(PmSpec, ValidateRejectsUnknownName) {
  PmSpec spec;
  spec.name = "no-such-manager";
  EXPECT_THROW(validate(spec), Error);
}

TEST(PmSpec, CapFamiliesRequireAPositiveCap) {
  PmSpec spec;
  spec.name = "cap-uniform";
  EXPECT_THROW(validate(spec), Error);  // Missing cap_watts.
  spec.cap_watts = 0.0;
  EXPECT_THROW(validate(spec), Error);  // Non-positive.
  spec.cap_watts = 100.0;
  EXPECT_NO_THROW(validate(spec));
  spec.name = "cap-proportional";
  EXPECT_NO_THROW(validate(spec));
  // Setpoint-only tunables are rejected on the cap families.
  spec.gain = 0.5;
  EXPECT_THROW(validate(spec), Error);
}

TEST(PmSpec, SetpointRequiresSetpointAndChecksTunables) {
  PmSpec spec;
  spec.name = "setpoint";
  EXPECT_THROW(validate(spec), Error);  // Missing setpoint_watts.
  spec.setpoint_watts = 1000.0;
  EXPECT_NO_THROW(validate(spec));
  spec.interval_s = 0;
  EXPECT_THROW(validate(spec), Error);  // Interval below one second.
  spec.interval_s = 1;
  spec.gain = -1.0;
  EXPECT_THROW(validate(spec), Error);
  spec.gain = 0.5;
  spec.cap_watts = -5.0;
  EXPECT_THROW(validate(spec), Error);  // Initial cap must be positive.
  spec.cap_watts = 2000.0;
  EXPECT_NO_THROW(validate(spec));
}

TEST(PmSpec, ParameterlessFamiliesRejectEveryTunable) {
  for (const char* name : {"none", "sleep"}) {
    PmSpec spec;
    spec.name = name;
    EXPECT_NO_THROW(validate(spec));
    PmSpec with_cap = spec;
    with_cap.cap_watts = 100.0;
    EXPECT_THROW(validate(with_cap), Error);
    PmSpec with_gain = spec;
    with_gain.gain = 0.5;
    EXPECT_THROW(validate(with_gain), Error);
  }
}

TEST(PmSpec, LabelsNameTheManagerAndItsBudget) {
  EXPECT_EQ(pm_label(PmSpec{}), "");
  PmSpec uniform;
  uniform.name = "cap-uniform";
  uniform.cap_watts = 4000.0;
  EXPECT_EQ(pm_label(uniform), "cap-uniform@4000W");
  PmSpec sleep;
  sleep.name = "sleep";
  EXPECT_EQ(pm_label(sleep), "sleep");
  PmSpec setpoint;
  setpoint.name = "setpoint";
  setpoint.setpoint_watts = 350000.0;
  EXPECT_EQ(pm_label(setpoint), "setpoint@350000W");
}

TEST(PmRegistry, KnowsTheBuiltIns) {
  const PowerManagerRegistry& registry = PowerManagerRegistry::global();
  for (const char* name :
       {"none", "cap-uniform", "cap-proportional", "sleep", "setpoint"}) {
    EXPECT_TRUE(registry.has(name)) << name;
  }
  EXPECT_FALSE(registry.has("no-such-manager"));
  EXPECT_THROW(registry.require("no-such-manager"), Error);
}

TEST(PmRegistry, EntriesAreSortedAndDescribed) {
  const auto entries = PowerManagerRegistry::global().entries();
  ASSERT_GE(entries.size(), 5U);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].first, entries[i].first);
  }
  for (const auto& [name, description] : entries) {
    EXPECT_FALSE(description.empty()) << name;
  }
}

TEST(PmRegistry, MakeBuildsTheNamedFamily) {
  const testing::Models models;
  const PowerManagerRegistry& registry = PowerManagerRegistry::global();

  PmSpec uniform;
  uniform.name = "cap-uniform";
  uniform.cap_watts = 4000.0;
  EXPECT_STREQ(registry.make(uniform, models.power)->name(), "cap-uniform");

  PmSpec sleep;
  sleep.name = "sleep";
  EXPECT_STREQ(registry.make(sleep, models.power)->name(), "sleep");

  PmSpec setpoint;
  setpoint.name = "setpoint";
  setpoint.setpoint_watts = 1000.0;
  EXPECT_STREQ(registry.make(setpoint, models.power)->name(), "setpoint");

  EXPECT_STREQ(registry.make(PmSpec{}, models.power)->name(), "none");

  // make() validates: a hand-built spec missing its cap fails the same
  // family rules a parsed one would.
  PmSpec invalid;
  invalid.name = "cap-proportional";
  EXPECT_THROW((void)registry.make(invalid, models.power), Error);
}

TEST(PmRegistry, RejectsDuplicateNames) {
  PowerManagerRegistry& registry = PowerManagerRegistry::global();
  EXPECT_THROW(
      registry.add("none", "duplicate",
                   [](const PmSpec&, const power::PowerModel&)
                       -> std::unique_ptr<PowerManager> { return nullptr; }),
      Error);
}

}  // namespace
}  // namespace bsld::pm
