/// \file fake_context.hpp
/// \brief A recording pm::PmContext for unit-testing power managers
/// without a simulation: every action the manager takes is captured for
/// assertion, and the clock is set by hand.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pm/event.hpp"
#include "pm/power_manager.hpp"
#include "power/power_model.hpp"

namespace bsld::testing {

class FakePmContext final : public pm::PmContext {
 public:
  FakePmContext(std::int32_t cpus, const power::PowerModel& model)
      : cpus_(cpus), model_(model) {}

  void set_now(Time now) { now_ = now; }

  [[nodiscard]] Time now() const override { return now_; }
  [[nodiscard]] std::int32_t cpu_count() const override { return cpus_; }
  [[nodiscard]] const power::PowerModel& power_model() const override {
    return model_;
  }
  void set_job_gear(JobId id, GearIndex gear) override {
    gear_calls.push_back({id, gear});
    gears[id] = gear;
  }
  void release_job(JobId id, GearIndex gear) override {
    releases.push_back({id, gear});
    gears[id] = gear;
  }
  void schedule_timer(Time at) override { timers.push_back(at); }
  void emit(const pm::PmEvent& event) override { events.push_back(event); }

  /// Events of one kind, in emission order.
  [[nodiscard]] std::vector<pm::PmEvent> of(pm::PmEventKind kind) const {
    std::vector<pm::PmEvent> out;
    for (const pm::PmEvent& event : events) {
      if (event.kind == kind) out.push_back(event);
    }
    return out;
  }

  struct GearCall {
    JobId id;
    GearIndex gear;
  };
  std::vector<GearCall> gear_calls;
  std::vector<GearCall> releases;
  std::vector<Time> timers;
  std::vector<pm::PmEvent> events;
  std::map<JobId, GearIndex> gears;  ///< Last gear seen per job.

 private:
  std::int32_t cpus_;
  const power::PowerModel& model_;
  Time now_ = 0;
};

}  // namespace bsld::testing
