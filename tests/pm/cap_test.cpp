/// \file cap_test.cpp
/// \brief pm::CapManager unit tests against a recording fake context:
/// level selection, slack redistribution, gating with FIFO release, and
/// the infeasible-cap edge cases (cap below the lowest-gear power, single
/// job on the cluster).

#include "pm/cap.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pm/fake_context.hpp"
#include "testing/helpers.hpp"

namespace bsld::pm {
namespace {

using testing::FakePmContext;
using testing::Models;

/// CPU ids [0, n).
std::vector<CpuId> cpus(std::int32_t n) {
  std::vector<CpuId> out(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), CpuId{0});
  return out;
}

TEST(CapManager, LooseCapLeavesTheStartUntouched) {
  const Models models;
  FakePmContext context(8, models.power);
  const GearIndex top = models.gears.top_index();
  CapManager manager(models.power, 1e9, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  const StartDecision decision =
      manager.on_job_start(context, 1, cpus(4), top);
  EXPECT_FALSE(decision.gate);
  EXPECT_EQ(decision.gear, top);
  EXPECT_EQ(decision.wake_delay, 0);
  EXPECT_TRUE(context.events.empty());
  EXPECT_TRUE(context.gear_calls.empty());
}

TEST(CapManager, UniformLevelThrottlesEveryoneToTheSameGear) {
  const Models models;
  FakePmContext context(8, models.power);
  const GearIndex top = models.gears.top_index();
  // Cap sized for four CPUs at gear 3: two 2-CPU jobs at the top gear are
  // over it, and gear 3 is the highest uniform level that fits.
  const double cap = 4.0 * models.power.active_power(3);
  ASSERT_GT(4.0 * models.power.active_power(top), cap);
  CapManager manager(models.power, cap, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  // Alone, job 1 fits at the top.
  const StartDecision first = manager.on_job_start(context, 1, {0, 1}, top);
  EXPECT_EQ(first.gear, top);

  // Job 2 pushes the set over: both land on the uniform level 3.
  const StartDecision second = manager.on_job_start(context, 2, {2, 3}, top);
  EXPECT_FALSE(second.gate);
  EXPECT_EQ(second.gear, 3);
  ASSERT_EQ(context.gear_calls.size(), 1U);  // Job 1 re-geared; job 2 starts at 3.
  EXPECT_EQ(context.gear_calls[0].id, 1);
  EXPECT_EQ(context.gear_calls[0].gear, 3);
  const auto throttles = context.of(PmEventKind::kThrottle);
  ASSERT_EQ(throttles.size(), 2U);  // One per throttled job.
  for (const PmEvent& event : throttles) {
    EXPECT_EQ(event.gear_from, top);
    EXPECT_EQ(event.gear_to, 3);
  }

  // Job 2 finishing hands the slack back: job 1 returns to the top.
  manager.on_job_finish(context, 2, {2, 3});
  const auto raises = context.of(PmEventKind::kRaise);
  ASSERT_EQ(raises.size(), 1U);
  EXPECT_EQ(raises[0].job, 1);
  EXPECT_EQ(raises[0].gear_to, top);
  EXPECT_EQ(context.gears.at(1), top);
}

TEST(CapManager, ProportionalAssignmentIsCapRespectingAndMaximal) {
  const Models models;
  FakePmContext context(8, models.power);
  const GearIndex top = models.gears.top_index();
  const double cap = 300.0;  // Binding: 4 CPUs at the top want ~380 W.
  CapManager manager(models.power, cap, CapManager::Share::kProportional);
  manager.on_run_begin(context);

  const StartDecision first = manager.on_job_start(context, 1, {0}, top);
  const StartDecision second =
      manager.on_job_start(context, 2, {1, 2, 3}, top);

  // A job's engaged gear is its start gear, updated by any re-gear call.
  const auto engaged = [&](JobId id, GearIndex start_gear) {
    GearIndex gear = start_gear;
    for (const auto& call : context.gear_calls) {
      if (call.id == id) gear = call.gear;
    }
    return gear;
  };
  const GearIndex gear1 = engaged(1, first.gear);
  const GearIndex gear2 = engaged(2, second.gear);
  const auto watts = [&](GearIndex g1, GearIndex g2) {
    return 1.0 * models.power.active_power(g1) +
           3.0 * models.power.active_power(g2);
  };
  // Nobody above their desired gear, the assignment fits the cap, and no
  // single one-step raise still fits (the slack loop ran dry).
  EXPECT_LE(gear1, top);
  EXPECT_LE(gear2, top);
  EXPECT_LE(watts(gear1, gear2), cap + 1e-6);
  if (gear1 < top) {
    EXPECT_GT(watts(gear1 + 1, gear2), cap);
  }
  if (gear2 < top) {
    EXPECT_GT(watts(gear1, gear2 + 1), cap);
  }
  // The binding cap really throttled someone.
  EXPECT_TRUE(gear1 < top || gear2 < top);
}

TEST(CapManager, GatesAdmissionsAndReleasesThemFifo) {
  const Models models;
  FakePmContext context(16, models.power);
  const GearIndex top = models.gears.top_index();
  // Room for 8 CPUs at the floor gear, not 12: job 1 runs, jobs 2 and 3
  // are gated in arrival order.
  const double cap = 8.0 * models.power.active_power(0);
  CapManager manager(models.power, cap, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  const StartDecision first = manager.on_job_start(context, 1, cpus(8), top);
  EXPECT_FALSE(first.gate);
  EXPECT_EQ(first.gear, 0);  // The cap only fits the floor.

  context.set_now(10);
  const StartDecision second =
      manager.on_job_start(context, 2, {8, 9, 10, 11}, top);
  EXPECT_TRUE(second.gate);
  context.set_now(20);
  const StartDecision third = manager.on_job_start(context, 3, {12, 13}, top);
  EXPECT_TRUE(third.gate);
  EXPECT_EQ(context.of(PmEventKind::kGate).size(), 2U);

  // Job 1 finishing frees the whole budget: both gated jobs release, FIFO.
  context.set_now(100);
  manager.on_job_finish(context, 1, cpus(8));
  ASSERT_EQ(context.releases.size(), 2U);
  EXPECT_EQ(context.releases[0].id, 2);
  EXPECT_EQ(context.releases[1].id, 3);
  const auto released = context.of(PmEventKind::kRelease);
  ASSERT_EQ(released.size(), 2U);
  EXPECT_DOUBLE_EQ(released[0].seconds, 90.0);  // Gated 10 -> 100.
  EXPECT_DOUBLE_EQ(released[1].seconds, 80.0);  // Gated 20 -> 100.
  EXPECT_TRUE(context.of(PmEventKind::kInfeasible).empty());
}

TEST(CapManager, CapBelowTheFloorForceAdmitsInsteadOfDeadlocking) {
  const Models models;
  FakePmContext context(4, models.power);
  const GearIndex top = models.gears.top_index();
  // Below even one CPU at the lowest gear: the cap can never be met.
  const double cap = models.power.active_power(0) * 0.5;
  CapManager manager(models.power, cap, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  // Nothing active to wait for: the start is forced through at the floor.
  const StartDecision decision = manager.on_job_start(context, 1, {0}, top);
  EXPECT_FALSE(decision.gate);
  EXPECT_EQ(decision.gear, 0);
  const auto infeasible = context.of(PmEventKind::kInfeasible);
  ASSERT_EQ(infeasible.size(), 1U);
  EXPECT_EQ(infeasible[0].job, 1);
  EXPECT_DOUBLE_EQ(infeasible[0].watts, cap);

  // A second arrival gates behind the running job...
  context.set_now(5);
  const StartDecision second = manager.on_job_start(context, 2, {1}, top);
  EXPECT_TRUE(second.gate);

  // ...and is force-released at the floor when the finish leaves nothing
  // active — the cap starves admission but the run always terminates.
  context.set_now(50);
  manager.on_job_finish(context, 1, {0});
  ASSERT_EQ(context.releases.size(), 1U);
  EXPECT_EQ(context.releases[0].id, 2);
  EXPECT_EQ(context.releases[0].gear, 0);
  EXPECT_EQ(context.of(PmEventKind::kInfeasible).size(), 2U);
}

TEST(CapManager, SingleJobClusterThrottlesAndFinishesCleanly) {
  const Models models;
  FakePmContext context(4, models.power);
  const GearIndex top = models.gears.top_index();
  const double cap = 4.0 * models.power.active_power(2);
  CapManager manager(models.power, cap, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  const StartDecision decision = manager.on_job_start(context, 1, cpus(4), top);
  EXPECT_FALSE(decision.gate);
  EXPECT_EQ(decision.gear, 2);
  const auto throttles = context.of(PmEventKind::kThrottle);
  ASSERT_EQ(throttles.size(), 1U);
  EXPECT_EQ(throttles[0].gear_from, top);
  EXPECT_EQ(throttles[0].gear_to, 2);

  manager.on_job_finish(context, 1, cpus(4));
  EXPECT_TRUE(context.releases.empty());
  EXPECT_EQ(context.of(PmEventKind::kInfeasible).size(), 0U);
}

TEST(CapManager, PolicyRaiseIsClampedBackUnderTheCap) {
  const Models models;
  FakePmContext context(8, models.power);
  const GearIndex top = models.gears.top_index();
  const double cap = 4.0 * models.power.active_power(3);
  CapManager manager(models.power, cap, CapManager::Share::kUniform);
  manager.on_run_begin(context);

  // Starts at its desired gear 2, well under the cap.
  const StartDecision decision = manager.on_job_start(context, 1, cpus(4), 2);
  EXPECT_EQ(decision.gear, 2);

  // The DVFS policy raises it to the top; the cap immediately takes the
  // raise back down to the highest level that fits (gear 3).
  manager.on_job_raised(context, 1, top);
  EXPECT_EQ(context.gears.at(1), 3);
  const auto throttles = context.of(PmEventKind::kThrottle);
  ASSERT_EQ(throttles.size(), 1U);
  EXPECT_EQ(throttles[0].gear_from, top);
  EXPECT_EQ(throttles[0].gear_to, 3);
}

}  // namespace
}  // namespace bsld::pm
