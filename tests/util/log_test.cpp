#include "util/log.hpp"

#include <gtest/gtest.h>

namespace bsld::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

  /// Captures stderr around `body`.
  template <typename F>
  std::string capture(F&& body) {
    ::testing::internal::CaptureStderr();
    body();
    return ::testing::internal::GetCapturedStderr();
  }

  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, DefaultLevelSuppressesInfo) {
  set_log_level(LogLevel::kWarn);
  const std::string out = capture([] { BSLD_LOG_INFO() << "hidden"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LogTest, WarningsPassAtDefaultLevel) {
  set_log_level(LogLevel::kWarn);
  const std::string out = capture([] { BSLD_LOG_WARN() << "visible"; });
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST_F(LogTest, DebugVisibleWhenEnabled) {
  set_log_level(LogLevel::kDebug);
  const std::string out = capture([] { BSLD_LOG_DEBUG() << "dbg " << 42; });
  EXPECT_NE(out.find("dbg 42"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarn) {
  set_log_level(LogLevel::kError);
  const std::string warn = capture([] { BSLD_LOG_WARN() << "w"; });
  EXPECT_TRUE(warn.empty());
  const std::string err = capture([] { BSLD_LOG_ERROR() << "boom"; });
  EXPECT_NE(err.find("boom"), std::string::npos);
}

TEST_F(LogTest, StreamingComposesTypes) {
  set_log_level(LogLevel::kInfo);
  const std::string out =
      capture([] { BSLD_LOG_INFO() << "x=" << 1.5 << " y=" << 'c'; });
  EXPECT_NE(out.find("x=1.5 y=c"), std::string::npos);
}

}  // namespace
}  // namespace bsld::util
