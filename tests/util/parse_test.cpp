#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(ParseTest, DoubleAcceptsPlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.125").value(), -0.125);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_double("3").value(), 3.0);
  EXPECT_DOUBLE_EQ(parse_double("+4.5").value(), 4.5);
  EXPECT_DOUBLE_EQ(parse_double("  1.5  ").value(), 1.5);
}

TEST(ParseTest, DoubleRejectsTrailingGarbage) {
  EXPECT_FALSE(parse_double("1.5abc").has_value());
  EXPECT_FALSE(parse_double("1.5 2.5").has_value());
  EXPECT_FALSE(parse_double("2x5").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("   ").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(ParseTest, DoubledSignsRejected) {
  // "+-5" must not sneak through as -5 via the '+' convenience strip.
  EXPECT_FALSE(parse_double("+-5").has_value());
  EXPECT_FALSE(parse_double("++5").has_value());
  EXPECT_FALSE(parse_double("--5").has_value());
  EXPECT_FALSE(parse_int("+-5").has_value());
  EXPECT_FALSE(parse_int("++5").has_value());
  EXPECT_FALSE(parse_uint("+-5").has_value());
}

TEST(ParseTest, DoubleRejectsNonFinite) {
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("NaN").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("-infinity").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());  // overflows to inf.
}

TEST(ParseTest, IntAcceptsAndRejects) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("+9").value(), 9);
  EXPECT_EQ(parse_int(" 10 ").value(), 10);
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  // Out of range must fail, not wrap or throw std::out_of_range.
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(ParseTest, UintSpansFullRange) {
  EXPECT_EQ(parse_uint("18446744073709551615").value(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("18446744073709551616").has_value());
}

TEST(ParseTest, RequireFormsNameTheOrigin) {
  EXPECT_DOUBLE_EQ(require_double("2", "flag --bsld"), 2.0);
  try {
    (void)require_double("2x", "flag --bsld");
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("flag --bsld"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("`2x`"), std::string::npos);
  }
  EXPECT_THROW((void)require_int("a", "key `jobs`"), Error);
  EXPECT_THROW((void)require_uint("-3", "key `seed`"), Error);
}

}  // namespace
}  // namespace bsld::util
