#include "util/config.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(ConfigTest, ParseBasics) {
  const Config config = Config::parse(
      "# platform file\n"
      "power.beta = 0.5\n"
      "gears.count = 6  # inline comment\n"
      "\n"
      "name = paper gear set\n");
  EXPECT_DOUBLE_EQ(config.get_double("power.beta", 0.0), 0.5);
  EXPECT_EQ(config.get_int("gears.count", 0), 6);
  EXPECT_EQ(config.get_string("name", ""), "paper gear set");
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  const Config config = Config::parse("");
  EXPECT_DOUBLE_EQ(config.get_double("absent", 2.5), 2.5);
  EXPECT_EQ(config.get_int("absent", -7), -7);
  EXPECT_TRUE(config.get_bool("absent", true));
  EXPECT_EQ(config.get_string("absent", "x"), "x");
}

TEST(ConfigTest, BooleanSpellings) {
  const Config config = Config::parse(
      "a = true\nb = YES\nc = 1\nd = off\ne = False\nf = 0\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_TRUE(config.get_bool("b", false));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
  EXPECT_FALSE(config.get_bool("e", true));
  EXPECT_FALSE(config.get_bool("f", true));
}

TEST(ConfigTest, DoubleList) {
  const Config config = Config::parse("gears.frequencies_ghz = 0.8, 1.1,1.4\n");
  const auto list = config.get_double_list("gears.frequencies_ghz", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 1.1);
}

TEST(ConfigTest, TypeErrorsThrow) {
  const Config config = Config::parse("x = not_a_number\n");
  EXPECT_THROW((void)config.get_double("x", 0.0), Error);
  EXPECT_THROW((void)config.get_int("x", 0), Error);
  EXPECT_THROW((void)config.get_bool("x", false), Error);
}

TEST(ConfigTest, NumericDiagnosticsNameTheKey) {
  // Every malformed numeric value must surface as a bsld::Error that
  // names the offending key — never an uncaught std::invalid_argument
  // aborting the process.
  const Config config = Config::parse(
      "threshold = 2x5\nbig = 99999999999999999999999\nbad_nan = nan\n"
      "list = 1.5, oops, 3\n");
  try {
    (void)config.get_double("threshold", 0.0);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("threshold"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("2x5"), std::string::npos);
  }
  EXPECT_THROW((void)config.get_int("big", 0), Error);
  EXPECT_THROW((void)config.get_double("bad_nan", 0.0), Error);
  try {
    (void)config.get_double_list("list", {});
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("list"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("oops"), std::string::npos);
  }
}

TEST(ConfigTest, MalformedLineRejected) {
  EXPECT_THROW((void)Config::parse("just words\n"), Error);
  EXPECT_THROW((void)Config::parse("= value\n"), Error);
}

TEST(ConfigTest, DuplicateKeyRejected) {
  EXPECT_THROW((void)Config::parse("a = 1\na = 2\n"), Error);
}

TEST(ConfigTest, SetAndContains) {
  Config config;
  EXPECT_FALSE(config.contains("k"));
  config.set("k", "v");
  EXPECT_TRUE(config.contains("k"));
  EXPECT_EQ(config.get_string("k", ""), "v");
}

TEST(ConfigTest, RoundTripThroughToString) {
  Config config;
  config.set("b.key", "2");
  config.set("a.key", "1");
  const Config reparsed = Config::parse(config.to_string());
  EXPECT_EQ(reparsed.keys(), config.keys());
  EXPECT_EQ(reparsed.get_int("a.key", 0), 1);
}

TEST(ConfigTest, MissingFileThrows) {
  EXPECT_THROW((void)Config::load_file("/nonexistent/path/x.conf"), Error);
}

}  // namespace
}  // namespace bsld::util
