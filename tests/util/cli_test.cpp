#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::util {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_flag("archive", "CTC", "workload name");
  cli.add_flag("jobs", "5000", "job count");
  cli.add_flag("verbose", "false", "chatty output");
  return cli;
}

TEST(CliTest, DefaultsWhenUnset) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("archive"), "CTC");
  EXPECT_EQ(cli.get_int("jobs"), 5000);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliTest, EqualsForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--archive=SDSC", "--jobs=100"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("archive"), "SDSC");
  EXPECT_EQ(cli.get_int("jobs"), 100);
}

TEST(CliTest, SpaceForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--archive", "SDSCBlue"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("archive"), "SDSCBlue");
}

TEST(CliTest, BareBooleanForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliTest, PositionalArguments) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "input.swf", "--jobs=10", "more.txt"};
  ASSERT_TRUE(cli.parse(4, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.swf");
  EXPECT_EQ(cli.positional()[1], "more.txt");
}

TEST(CliTest, HelpShortCircuits) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, UnknownFlagRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW((void)cli.parse(2, argv), Error);
}

TEST(CliTest, NumericParseErrors) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--jobs=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW((void)cli.get_int("jobs"), Error);
  EXPECT_THROW((void)cli.get_double("jobs"), Error);
}

TEST(CliTest, TrailingGarbageRejected) {
  // std::stod-era behaviour silently accepted "12x" as 12 — a typo'd
  // threshold then ran a wrong experiment. Full-token parsing rejects it,
  // naming the flag.
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--jobs=12x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW((void)cli.get_int("jobs"), Error);
  try {
    (void)cli.get_double("jobs");
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("--jobs"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("12x"), std::string::npos);
  }
}

TEST(CliTest, NonFiniteDoubleRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--jobs=nan"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW((void)cli.get_double("jobs"), Error);
  const char* argv_inf[] = {"prog", "--jobs=inf"};
  Cli cli_inf = make_cli();
  ASSERT_TRUE(cli_inf.parse(2, argv_inf));
  EXPECT_THROW((void)cli_inf.get_double("jobs"), Error);
}

TEST(CliTest, OutOfRangeIntRejectedNotFatal) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--jobs=99999999999999999999999"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW((void)cli.get_int("jobs"), Error);  // not std::out_of_range.
}

TEST(CliTest, DuplicateFlagRegistrationRejected) {
  Cli cli("p", "s");
  cli.add_flag("x", "1", "first");
  EXPECT_THROW(cli.add_flag("x", "2", "again"), Error);
}

TEST(CliTest, HelpTextListsFlags) {
  Cli cli = make_cli();
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--archive"), std::string::npos);
  EXPECT_NE(help.find("default: 5000"), std::string::npos);
}

}  // namespace
}  // namespace bsld::util
