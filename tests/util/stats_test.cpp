#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsBulk) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentileTest, MedianAndInterpolation) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({10, 20}, 25), 12.5);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 100), 5.0);
}

TEST(PercentileTest, Rejections) {
  EXPECT_THROW((void)percentile({}, 50), Error);
  EXPECT_THROW((void)percentile({1.0}, -1), Error);
  EXPECT_THROW((void)percentile({1.0}, 101), Error);
}

TEST(MeanOfTest, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_THROW((void)mean_of({}), Error);
}

TEST(TimeWeightedAverageTest, StepFunction) {
  // Value 2 on [0,10), 6 on [10,20): average over [0,20] = 4.
  const std::vector<std::pair<double, double>> steps = {{0, 2}, {10, 6}};
  EXPECT_DOUBLE_EQ(time_weighted_average(steps, 20), 4.0);
}

TEST(TimeWeightedAverageTest, HorizonCutsLastStep) {
  const std::vector<std::pair<double, double>> steps = {{0, 2}, {10, 6}};
  EXPECT_DOUBLE_EQ(time_weighted_average(steps, 10), 2.0);
}

TEST(TimeWeightedAverageTest, Rejections) {
  EXPECT_THROW((void)time_weighted_average({}, 1), Error);
  const std::vector<std::pair<double, double>> steps = {{10, 1}};
  EXPECT_THROW((void)time_weighted_average(steps, 5), Error);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(50.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_EQ(h.to_string(), "[2 0 1 0 2]");
}

TEST(HistogramTest, Rejections) {
  EXPECT_THROW(Histogram(0, 1, 0), Error);
  EXPECT_THROW(Histogram(1, 1, 3), Error);
  Histogram h(0, 1, 2);
  EXPECT_THROW((void)h.bin_count(2), Error);
}

}  // namespace
}  // namespace bsld::util
