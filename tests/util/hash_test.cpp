#include "util/hash.hpp"

#include <gtest/gtest.h>

namespace bsld::util {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Published FNV-1a 64 test vectors: the offset basis for "", and the
  // classic single-character probes. These must never change — cache entry
  // names and shard assignment are persisted/distributed on them.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, SensitiveToEveryByte) {
  EXPECT_NE(fnv1a64("workload.archive = CTC\n"),
            fnv1a64("workload.archive = SDSC\n"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
  EXPECT_NE(fnv1a64("x"), fnv1a64(std::string_view("x\0", 2)));
}

TEST(HashTest, Hex64FormatsFixedWidth) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hex64(0xcbf29ce484222325ULL), "cbf29ce484222325");
  EXPECT_EQ(hex64(~0ULL), "ffffffffffffffff");
}

}  // namespace
}  // namespace bsld::util
