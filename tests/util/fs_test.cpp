#include "util/fs.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::util {
namespace {

namespace fs = std::filesystem;

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bsld-fs-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FsTest, ReadMissingFileIsNullopt) {
  EXPECT_FALSE(read_file_bytes(dir_ / "nope").has_value());
}

TEST_F(FsTest, AtomicWriteRoundTripsAndCreatesParents) {
  const fs::path path = dir_ / "a" / "b" / "file.txt";
  std::string bytes = "line one\nline two\n";
  bytes.push_back('\0');  // embedded nul: writes must be binary-faithful.
  bytes += "with a nul";
  atomic_write_file(path, bytes);
  const auto back = read_file_bytes(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST_F(FsTest, AtomicWriteReplacesExistingContent) {
  const fs::path path = dir_ / "file.txt";
  atomic_write_file(path, "old old old old old");
  atomic_write_file(path, "new");
  EXPECT_EQ(read_file_bytes(path).value(), "new");
  // No temporary left behind.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    files += 1;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FsTest, AtomicWriteEmptyFile) {
  const fs::path path = dir_ / "empty";
  atomic_write_file(path, "");
  EXPECT_EQ(read_file_bytes(path).value(), "");
}

TEST_F(FsTest, FileLockSerializesCriticalSections) {
  const fs::path lock_path = dir_ / "x.lock";
  // A deliberately non-atomic read-modify-write: without mutual exclusion,
  // concurrent increments lose updates with near certainty at this volume.
  const fs::path counter_path = dir_ / "counter";
  atomic_write_file(counter_path, "0");

  constexpr int kThreads = 4;
  constexpr int kIncrements = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const FileLock lock(lock_path);
        const std::int64_t value = require_int(
            read_file_bytes(counter_path).value(), "counter file");
        atomic_write_file(counter_path, std::to_string(value + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(require_int(read_file_bytes(counter_path).value(), "counter file"),
            kThreads * kIncrements);
  EXPECT_TRUE(fs::exists(lock_path));  // lock files persist by design.
}

TEST_F(FsTest, FileLockUnwritableDirectoryThrows) {
  EXPECT_THROW(FileLock(fs::path("/proc/definitely/not/writable.lock")),
               Error);
}

}  // namespace
}  // namespace bsld::util
