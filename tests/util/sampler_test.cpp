/// \file sampler_test.cpp
/// \brief Unit tests of util::SeriesSampler: exactness below the cap,
/// deterministic stride decimation, uniform reservoir retention, and the
/// instrument-reuse reset contract.
#include "util/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bsld::util {
namespace {

std::vector<double> values(const std::vector<SeriesSampler<double>::Item>& items) {
  std::vector<double> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.value);
  return out;
}

TEST(SeriesSamplerTest, CapZeroRetainsEverything) {
  SeriesSampler<double> sampler;  // default plan: cap == 0.
  for (int i = 0; i < 1000; ++i) sampler.push(i * 0.5);
  EXPECT_EQ(sampler.seen(), 1000u);
  EXPECT_EQ(sampler.retained(), 1000u);
  const auto& items = sampler.sorted();
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].seq, i);
    EXPECT_EQ(items[i].value, i * 0.5);
  }
}

TEST(SeriesSamplerTest, ExactBelowTheCap) {
  // The load-bearing property behind every golden: a series that never
  // exceeds the cap is retained in full, bit-identical to cap == 0.
  for (const SamplePlan::Mode mode :
       {SamplePlan::Mode::kDecimate, SamplePlan::Mode::kReservoir}) {
    SamplePlan plan;
    plan.mode = mode;
    plan.cap = 64;
    plan.seed = 7;
    SeriesSampler<double> sampler(plan);
    for (int i = 0; i < 64; ++i) sampler.push(i + 0.25);
    EXPECT_EQ(sampler.retained(), 64u);
    const auto& items = sampler.sorted();
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(items[i].seq, i);
      EXPECT_EQ(items[i].value, i + 0.25);
    }
  }
}

TEST(SeriesSamplerTest, DecimateDoublesStrideAndStaysBounded) {
  SamplePlan plan;
  plan.cap = 8;
  SeriesSampler<double> sampler(plan);
  for (int i = 0; i < 10000; ++i) sampler.push(static_cast<double>(i));
  EXPECT_LE(sampler.retained(), 8u);
  EXPECT_GE(sampler.retained(), 4u);  // at least cap/2 after a halving.

  // Retention is a systematic 1-in-2^k sample: seqs are multiples of one
  // power-of-two stride, and the value still matches its seq.
  const auto& items = sampler.sorted();
  ASSERT_FALSE(items.empty());
  ASSERT_GE(items.size(), 2u);
  const std::uint64_t stride = items[1].seq - items[0].seq;
  EXPECT_EQ(stride & (stride - 1), 0u);  // power of two.
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].seq, i * stride);
    EXPECT_EQ(items[i].value, static_cast<double>(items[i].seq));
  }
}

TEST(SeriesSamplerTest, DecimateIsDeterministic) {
  SamplePlan plan;
  plan.cap = 16;
  SeriesSampler<double> a(plan);
  SeriesSampler<double> b(plan);
  for (int i = 0; i < 5000; ++i) {
    a.push(i * 1.5);
    b.push(i * 1.5);
  }
  ASSERT_EQ(a.retained(), b.retained());
  EXPECT_EQ(values(a.sorted()), values(b.sorted()));
}

TEST(SeriesSamplerTest, ReservoirHoldsExactlyCapSortedBySeq) {
  SamplePlan plan;
  plan.mode = SamplePlan::Mode::kReservoir;
  plan.cap = 32;
  plan.seed = 42;
  SeriesSampler<double> sampler(plan);
  for (int i = 0; i < 20000; ++i) sampler.push(static_cast<double>(i));
  EXPECT_EQ(sampler.seen(), 20000u);
  EXPECT_EQ(sampler.retained(), 32u);

  const auto& items = sampler.sorted();
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].seq, items[i].seq);  // strictly ascending.
  }
  for (const auto& item : items) {
    EXPECT_LT(item.seq, 20000u);
    EXPECT_EQ(item.value, static_cast<double>(item.seq));
  }
}

TEST(SeriesSamplerTest, ReservoirSeedSelectsTheSample) {
  SamplePlan base;
  base.mode = SamplePlan::Mode::kReservoir;
  base.cap = 16;
  base.seed = 1;
  SamplePlan other = base;
  other.seed = 2;

  SeriesSampler<double> a(base);
  SeriesSampler<double> a2(base);
  SeriesSampler<double> b(other);
  for (int i = 0; i < 4000; ++i) {
    a.push(static_cast<double>(i));
    a2.push(static_cast<double>(i));
    b.push(static_cast<double>(i));
  }
  EXPECT_EQ(values(a.sorted()), values(a2.sorted()));  // same seed, same sample.
  EXPECT_NE(values(a.sorted()), values(b.sorted()));   // seed matters.
}

TEST(SeriesSamplerTest, ResetRestartsTheSeries) {
  SamplePlan plan;
  plan.mode = SamplePlan::Mode::kReservoir;
  plan.cap = 8;
  plan.seed = 9;
  SeriesSampler<double> sampler(plan);
  for (int i = 0; i < 1000; ++i) sampler.push(static_cast<double>(i));
  const std::vector<double> first = values(sampler.sorted());

  sampler.reset();
  EXPECT_EQ(sampler.seen(), 0u);
  EXPECT_EQ(sampler.retained(), 0u);
  for (int i = 0; i < 1000; ++i) sampler.push(static_cast<double>(i));
  // Reset restores the RNG too: the replay is bit-identical.
  EXPECT_EQ(values(sampler.sorted()), first);
}

}  // namespace
}  // namespace bsld::util
