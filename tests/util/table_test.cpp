#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.set_align(1, Align::kRight);
  table.add_row({"CTC", "4.66"});
  table.add_row({"SDSCBlue", "5.15"});
  const std::string expected =
      "name     | value\n"
      "---------+------\n"
      "CTC      |  4.66\n"
      "SDSCBlue |  5.15\n";
  EXPECT_EQ(table.to_string(), expected);
}

TEST(TableTest, HeaderWiderThanCells) {
  Table table({"wide header", "x"});
  table.add_row({"a", "b"});
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("wide header | x"), std::string::npos);
  EXPECT_NE(rendered.find("a           | b"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchRejected) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), Error);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), Error);
}

TEST(TableTest, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), Error);
}

TEST(TableTest, AlignOutOfRangeRejected) {
  Table table({"a"});
  EXPECT_THROW(table.set_align(1, Align::kRight), Error);
}

TEST(TableTest, RowCount) {
  Table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"x"});
  table.add_row({"y"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(FmtTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 3), "3.142");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FmtTest, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.173), "17.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.005, 1), "0.5%");
}

}  // namespace
}  // namespace bsld::util
