#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitIsDeterministicAndIndependent) {
  const Rng parent(77);
  Rng child1 = parent.split("size");
  Rng child1_again = parent.split("size");
  Rng child2 = parent.split("runtime");
  EXPECT_EQ(child1(), child1_again());
  EXPECT_NE(child1(), child2());
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.split("x");
  EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 4), Error);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / kN, 40.0, 0.5);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(4.0, 1.0));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(4.0), std::exp(4.0) * 0.05);
}

TEST(RngTest, WeibullShapeOneIsExponential) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.weibull(1.0, 25.0);
  EXPECT_NEAR(sum / kN, 25.0, 0.5);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.15);
}

TEST(RngTest, DiscreteRejectsAllZero) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW((void)rng.discrete(weights), Error);
}

TEST(RngTest, DiscreteRejectsNegative) {
  Rng rng(1);
  std::vector<double> weights = {1.0, -0.5};
  EXPECT_THROW((void)rng.discrete(weights), Error);
}

TEST(RngTest, HashLabelStable) {
  EXPECT_EQ(hash_label("abc"), hash_label("abc"));
  EXPECT_NE(hash_label("abc"), hash_label("abd"));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace bsld::util
