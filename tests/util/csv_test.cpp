#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace bsld::util {
namespace {

TEST(CsvTest, EscapePlainCellUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("123.45"), "123.45");
}

TEST(CsvTest, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(CsvTest, WriterProducesParsableRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"id", "name", "note"});
  writer.write_row({"1", "a,b", "he said \"x\""});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "a,b");
  EXPECT_EQ(rows[1][2], "he said \"x\"");
}

TEST(CsvTest, ParseSimple) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, ParseQuotedWithEmbeddedNewline) {
  const auto rows = parse_csv("\"x\ny\",z\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x\ny");
  EXPECT_EQ(rows[0][1], "z");
}

TEST(CsvTest, ParseCrLf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvTest, ParseMissingFinalNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, ParseEmptyCells) {
  const auto rows = parse_csv(",x,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_THROW((void)parse_csv("\"oops\n"), Error);
}

TEST(CsvTest, EmptyInputNoRows) {
  EXPECT_TRUE(parse_csv("").empty());
}

}  // namespace
}  // namespace bsld::util
