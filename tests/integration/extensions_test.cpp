/// \file extensions_test.cpp
/// \brief End-to-end coverage of the future-work extensions wired through
/// the experiment layer: per-job beta and dynamic frequency raising.
#include <gtest/gtest.h>

#include <cmath>

#include "report/figures.hpp"
#include "testing/helpers.hpp"

namespace bsld {
namespace {

TEST(PerJobBetaTest, BetaZeroJobsDontDilate) {
  testing::Models models;
  wl::Workload load = testing::workload(
      4, {testing::job(1, 0, 1000, 1200, 2), testing::job(2, 0, 1000, 1200, 2)});
  load.jobs[0].beta = 0.0;  // frequency-insensitive
  load.jobs[1].beta = 1.0;  // fully CPU-bound
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  const auto result =
      testing::run(load, models, core::BasePolicy::kEasy, dvfs);
  // beta=0: lowest gear is free -> chosen, runtime unchanged.
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.jobs[0].scaled_runtime, 1000);
  // beta=1: coef(g) = fmax/f; lowest gear passing BSLD<=2 (zero wait) is
  // the one with fmax/f <= 2 -> 1.4 GHz (2.3/1.4 = 1.64), gear 2.
  EXPECT_EQ(result.jobs[1].gear, 2);
  EXPECT_EQ(result.jobs[1].scaled_runtime,
            static_cast<Time>(std::llround(1000 * (2.3 / 1.4))));
}

TEST(PerJobBetaTest, NegativeBetaFallsBackToModel) {
  testing::Models models;
  EXPECT_DOUBLE_EQ(models.time.coefficient_with_beta(0, -1.0),
                   models.time.coefficient(0));
  EXPECT_THROW((void)models.time.coefficient_with_beta(0, 1.5), Error);
}

TEST(PerJobBetaTest, RunSpecSamplesDeterministically) {
  report::RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kLLNLThunder, 300);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  spec.policy.dvfs = dvfs;
  spec.per_job_beta = {{0.2, 0.8}};
  const auto a = report::run_one(spec);
  const auto b = report::run_one(spec);
  EXPECT_DOUBLE_EQ(a.sim().avg_bsld, b.sim().avg_bsld);
  EXPECT_DOUBLE_EQ(a.sim().energy.total_joules, b.sim().energy.total_joules);
}

TEST(PerJobBetaTest, SpreadBracketsTheUniformCase) {
  // Mean-preserving beta spread keeps energy near the uniform-beta run
  // (coef is linear in beta, so only scheduling feedback differs).
  report::RunSpec uniform;
  uniform.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kLLNLThunder, 800);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  uniform.policy.dvfs = dvfs;

  report::RunSpec spread = uniform;
  spread.per_job_beta = {{0.2, 0.8}};

  const auto results = report::run_all({uniform, spread});
  const double ratio = results[1].sim().energy.computational_joules /
                       results[0].sim().energy.computational_joules;
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(DynamicRaiseSpecTest, RaiseThroughRunSpec) {
  report::RunSpec plain;
  plain.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kLLNLThunder, 1000);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  plain.policy.dvfs = dvfs;

  report::RunSpec raised = plain;
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 4;
  raised.policy.raise = raise;

  const auto results = report::run_all({plain, raised});
  // Raising can only help performance and costs some of the savings.
  EXPECT_LE(results[1].sim().avg_bsld, results[0].sim().avg_bsld + 1e-9);
  EXPECT_GE(results[1].sim().energy.computational_joules,
            results[0].sim().energy.computational_joules * 0.999);
  EXPECT_GT(results[1].sim().boosted_jobs, 0);
}

TEST(DynamicRaiseSpecTest, NoBoostsWithoutPressure) {
  report::RunSpec spec;
  spec.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kLLNLAtlas, 300);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 0;
  spec.policy.dvfs = dvfs;
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 1000000;  // unreachable
  spec.policy.raise = raise;
  const auto result = report::run_one(spec);
  EXPECT_EQ(result.sim().boosted_jobs, 0);
}

}  // namespace
}  // namespace bsld
