/// \file streaming_scale_test.cpp
/// \brief The streaming pipeline's scale criteria: aggregates bit-identical
/// to the materialized path (including the machine-scaling and per-job-beta
/// stream decorators), and a 10^6-job streaming run whose per-job memory
/// stays window-bounded — asserted through the simulation's own
/// peak_live_jobs counter, not process RSS — with every time-series
/// instrument capped at O(1) retention.
///
/// The million-job run uses an undersaturated inline generator profile:
/// archive profiles run near saturation, so their wait queue (and with it
/// the scheduler's per-event cost) grows with trace length — fine for the
/// paper's 5000-job evaluations, far too slow for a 10^6-job unit of CI.
/// Window-boundedness is a property of the pipeline, not of the workload.
#include <gtest/gtest.h>

#include <cstdint>

#include "report/experiment.hpp"
#include "sim/instruments.hpp"
#include "workload/source.hpp"
#include "workload/synthetic.hpp"

namespace bsld::report {
namespace {

/// A 256-CPU profile at ~35% offered load with short runtimes: the queue
/// stays shallow, so simulation cost is linear in jobs and the test's
/// duration is dominated by event throughput, not backlog scans.
wl::WorkloadSpec low_load_profile(std::int64_t jobs) {
  wl::WorkloadSpec spec;
  spec.name = "lowload";
  spec.cpus = 256;
  spec.num_jobs = jobs;
  spec.arrival.load_target = 0.35;
  spec.runtime.classes = {{1.0, 4.0, 1.0}};
  return spec;
}

void expect_bit_identical(const RunResult& lazy, const RunResult& eager) {
  // Bit-identical, not approximately equal: the streaming path must pop
  // the exact same event sequence as the materialized one.
  EXPECT_EQ(lazy.sim().job_count, eager.sim().job_count);
  EXPECT_EQ(lazy.sim().avg_bsld, eager.sim().avg_bsld);
  EXPECT_EQ(lazy.sim().avg_wait, eager.sim().avg_wait);
  EXPECT_EQ(lazy.sim().energy.total_joules, eager.sim().energy.total_joules);
  EXPECT_EQ(lazy.sim().makespan, eager.sim().makespan);
  EXPECT_EQ(lazy.sim().reduced_jobs, eager.sim().reduced_jobs);
  EXPECT_EQ(lazy.sim().jobs_per_gear, eager.sim().jobs_per_gear);
  EXPECT_EQ(lazy.sim().utilization, eager.sim().utilization);
  EXPECT_EQ(lazy.sim().events_processed, eager.sim().events_processed);
}

TEST(StreamingScaleTest, StreamingAggregatesMatchMaterializedPrefix) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_spec(low_load_profile(100000), 11);
  spec.retain_jobs = false;  // aggregate-only on both paths.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 4;
  spec.policy.dvfs = dvfs;

  RunSpec streamed = spec;
  streamed.stream = true;

  const RunResult eager = run_one(spec);
  const RunResult lazy = run_one(streamed);
  expect_bit_identical(lazy, eager);

  // The materialized run holds the whole trace; the streaming run holds a
  // window of it.
  EXPECT_EQ(eager.sim().peak_live_jobs, eager.sim().job_count);
  EXPECT_LT(lazy.sim().peak_live_jobs, lazy.sim().job_count / 10);
}

TEST(StreamingScaleTest, StreamDecoratorsReproduceTheEagerTransforms) {
  // Machine scaling below 1 clamps job sizes and per-job beta draws one
  // value per trace position — both are applied by stream decorators on
  // the lazy path and must reproduce run_workload()'s loops exactly.
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 5000);
  spec.size_scale = 0.8;  // scaled machine smaller: sizes clamp.
  spec.per_job_beta = {{0.3, 0.7}};
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 1.5;
  spec.policy.dvfs = dvfs;
  spec.instruments = {"wait-trace", "utilization"};

  RunSpec streamed = spec;
  streamed.stream = true;

  const RunResult eager = run_one(spec);
  const RunResult lazy = run_one(streamed);
  expect_bit_identical(lazy, eager);

  // Instrument output is bit-identical too (sampling off by default).
  const auto* eager_waits =
      instrument_as<sim::WaitQueueTrace>(eager, "wait-trace");
  const auto* lazy_waits =
      instrument_as<sim::WaitQueueTrace>(lazy, "wait-trace");
  ASSERT_NE(eager_waits, nullptr);
  ASSERT_NE(lazy_waits, nullptr);
  ASSERT_EQ(lazy_waits->waits().size(), eager_waits->waits().size());
  for (std::size_t i = 0; i < eager_waits->waits().size(); ++i) {
    EXPECT_EQ(lazy_waits->waits()[i].wait, eager_waits->waits()[i].wait);
    EXPECT_EQ(lazy_waits->waits()[i].start, eager_waits->waits()[i].start);
  }
}

TEST(StreamingScaleTest, MillionJobRunStaysWindowBounded) {
  constexpr std::int64_t kJobs = 1000000;
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_spec(low_load_profile(kJobs), 11);
  spec.stream = true;
  spec.retain_jobs = false;
  spec.instruments = {"wait-trace", "utilization"};
  spec.sample.cap = 512;

  const RunResult result = run_one(spec);
  EXPECT_EQ(result.sim().job_count, kJobs);
  EXPECT_TRUE(result.sim().jobs.empty());  // no per-job retention.

  // The windowed core's own high-water counter is the memory bound: jobs
  // resident at once are capped by the submit lookahead (4096) plus the
  // queue backlog and the batched-delivery flush cadence — never O(jobs).
  EXPECT_GT(result.sim().peak_live_jobs, 0);
  EXPECT_LT(result.sim().peak_live_jobs, 16384);

  // Sampled instruments cap their retention regardless of series length.
  const auto* waits =
      instrument_as<sim::WaitQueueTrace>(result, "wait-trace");
  ASSERT_NE(waits, nullptr);
  EXPECT_LE(waits->waits().size(), 512u);
  EXPECT_LE(waits->depth().size(), 512u);
  const auto* utilization =
      instrument_as<sim::UtilizationTrace>(result, "utilization");
  ASSERT_NE(utilization, nullptr);
  EXPECT_LE(utilization->samples().size(), 512u);
  EXPECT_GT(utilization->samples().size(), 0u);
}

}  // namespace
}  // namespace bsld::report
