/// \file properties_test.cpp
/// \brief Property-based sweeps: structural invariants of complete
/// simulations across random workloads, policies and DVFS settings.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/synthetic.hpp"

namespace bsld {
namespace {

struct PropertyCase {
  std::int32_t cpus;
  double load;
  core::BasePolicy base;
  bool dvfs;
  std::optional<std::int64_t> wq;

  friend std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
    return os << "cpus" << c.cpus << "_load" << c.load << "_"
              << (c.base == core::BasePolicy::kEasy ? "easy" : "fcfs")
              << (c.dvfs ? "_dvfs" : "_top");
  }
};

class SimulationPropertyTest
    : public ::testing::TestWithParam<std::tuple<PropertyCase, std::uint64_t>> {
 protected:
  sim::SimulationResult run_case(const PropertyCase& c, std::uint64_t seed) {
    wl::WorkloadSpec spec;
    spec.name = "prop";
    spec.cpus = c.cpus;
    spec.num_jobs = 300;
    spec.arrival.load_target = c.load;
    spec.arrival.daily_amplitude = 0.6;
    spec.arrival.burst_probability = 0.3;
    const wl::Workload load = wl::generate(spec, seed);
    std::optional<core::DvfsConfig> dvfs;
    if (c.dvfs) {
      core::DvfsConfig config;
      config.bsld_threshold = 2.0;
      config.wq_threshold = c.wq;
      dvfs = config;
    }
    return testing::run(load, models_, c.base, dvfs);
  }

  testing::Models models_;
};

TEST_P(SimulationPropertyTest, StructuralInvariants) {
  const auto& [c, seed] = GetParam();
  const sim::SimulationResult result = run_case(c, seed);
  const GearIndex top = models_.gears.top_index();

  ASSERT_EQ(result.jobs.size(), 300u);
  std::int64_t reduced = 0;
  for (const sim::JobOutcome& job : result.jobs) {
    // Causality and completeness.
    ASSERT_NE(job.start, kNoTime);
    ASSERT_GE(job.start, job.submit);
    ASSERT_EQ(job.end, job.start + job.scaled_runtime);
    // Dilation laws.
    ASSERT_GE(job.scaled_runtime, job.run_time_top);
    ASSERT_GE(job.scaled_requested, job.scaled_runtime);
    if (job.gear == top) {
      ASSERT_EQ(job.scaled_runtime, job.run_time_top);
    }
    // Metric law.
    ASSERT_GE(job.bsld, 1.0);
    if (job.gear != top) ++reduced;
  }
  EXPECT_EQ(reduced, result.reduced_jobs);

  // No DVFS => nothing reduced, ever.
  if (!c.dvfs) {
    EXPECT_EQ(result.reduced_jobs, 0);
  }

  // Energy laws.
  EXPECT_GT(result.energy.computational_joules, 0.0);
  EXPECT_LE(result.energy.computational_joules, result.energy.total_joules);
  EXPECT_GE(result.energy.idle_joules, 0.0);
  EXPECT_GE(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);

  // Gear histogram sums to the job count.
  std::int64_t total = 0;
  for (const std::int64_t count : result.jobs_per_gear) total += count;
  EXPECT_EQ(total, 300);
}

TEST_P(SimulationPropertyTest, DeterministicReplay) {
  const auto& [c, seed] = GetParam();
  const sim::SimulationResult a = run_case(c, seed);
  const sim::SimulationResult b = run_case(c, seed);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].start, b.jobs[i].start);
    ASSERT_EQ(a.jobs[i].end, b.jobs[i].end);
    ASSERT_EQ(a.jobs[i].gear, b.jobs[i].gear);
  }
  EXPECT_DOUBLE_EQ(a.avg_bsld, b.avg_bsld);
  EXPECT_DOUBLE_EQ(a.energy.total_joules, b.energy.total_joules);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulationPropertyTest,
    ::testing::Combine(
        ::testing::Values(
            PropertyCase{16, 0.5, core::BasePolicy::kEasy, false, {}},
            PropertyCase{16, 1.1, core::BasePolicy::kEasy, false, {}},
            PropertyCase{64, 0.8, core::BasePolicy::kEasy, true,
                         std::nullopt},
            PropertyCase{64, 0.8, core::BasePolicy::kEasy, true,
                         std::int64_t{0}},
            PropertyCase{64, 1.2, core::BasePolicy::kEasy, true,
                         std::int64_t{4}},
            PropertyCase{32, 0.7, core::BasePolicy::kFcfs, false, {}},
            PropertyCase{32, 0.7, core::BasePolicy::kFcfs, true,
                         std::nullopt}),
        ::testing::Values(11u, 29u, 83u)));

// The selector must not change schedule metrics on a flat machine —
// feasibility is count-based, identity-free.
class SelectorInvarianceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SelectorInvarianceTest, FirstFitAndLastFitAgreeOnMetrics) {
  wl::WorkloadSpec spec;
  spec.name = "selector";
  spec.cpus = 48;
  spec.num_jobs = 250;
  spec.arrival.load_target = 0.9;
  const wl::Workload load = wl::generate(spec, GetParam());
  testing::Models models;
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 16;
  const auto first =
      testing::run(load, models, core::BasePolicy::kEasy, dvfs, "FirstFit");
  const auto last =
      testing::run(load, models, core::BasePolicy::kEasy, dvfs, "LastFit");
  EXPECT_DOUBLE_EQ(first.avg_bsld, last.avg_bsld);
  EXPECT_DOUBLE_EQ(first.avg_wait, last.avg_wait);
  EXPECT_EQ(first.reduced_jobs, last.reduced_jobs);
  EXPECT_DOUBLE_EQ(first.energy.total_joules, last.energy.total_joules);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorInvarianceTest,
                         ::testing::Values(3u, 59u, 101u));

}  // namespace
}  // namespace bsld
