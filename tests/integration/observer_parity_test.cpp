/// \file observer_parity_test.cpp
/// \brief The observer refactor's contract, end to end on all five
/// archives: the default observer set reproduces the pre-observer
/// SimulationResult bit for bit (golden assertions), streaming
/// (retain_jobs=false) aggregates exactly match the retained-jobs path,
/// parallel and serial sweeps observe identical instrument streams, and
/// mid-flight boosts report identical gear segments.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "report/sinks.hpp"
#include "report/sweep.hpp"
#include "sim/instruments.hpp"

namespace bsld::report {
namespace {

RunSpec dvfs_spec(wl::Archive archive, std::int32_t jobs = 1500) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive, jobs);
  core::DvfsConfig config;
  config.bsld_threshold = 2.0;
  config.wq_threshold = 16;
  spec.policy.dvfs = config;
  return spec;
}

/// avg BSLD / avg wait recorded from the pre-observer implementation
/// (inline accumulation in sim::Simulation) at 1500 jobs, DVFS(2,16).
struct Golden {
  wl::Archive archive;
  double avg_bsld;
  double avg_wait;
};
constexpr Golden kGolden[] = {
    {wl::Archive::kCTC, 6.6193209596277605, 9885.873333333333},
    {wl::Archive::kSDSC, 102.92361397253214, 152024.27266666666},
    {wl::Archive::kSDSCBlue, 31.945993077994043, 44912.908000000003},
    {wl::Archive::kLLNLThunder, 1.4776295383179061, 344.32733333333334},
    {wl::Archive::kLLNLAtlas, 2.8084632783076806, 2668.9373333333333},
};

TEST(ObserverParityTest, DefaultObserverSetMatchesPreRefactorGoldens) {
  for (const Golden& golden : kGolden) {
    const RunResult result = run_one(dvfs_spec(golden.archive));
    EXPECT_NEAR(result.sim().avg_bsld, golden.avg_bsld,
                golden.avg_bsld * 1e-12)
        << wl::source_label(result.spec.workload);
    EXPECT_NEAR(result.sim().avg_wait, golden.avg_wait,
                golden.avg_wait * 1e-12)
        << wl::source_label(result.spec.workload);
  }
}

TEST(ObserverParityTest, StreamingAggregatesExactlyMatchRetainedPath) {
  for (const wl::Archive archive : wl::all_archives()) {
    const RunSpec retained = dvfs_spec(archive);
    RunSpec streaming = retained;
    streaming.retain_jobs = false;
    const auto results = run_all({retained, streaming});
    const sim::SimulationResult& a = results[0].sim();
    const sim::SimulationResult& b = results[1].sim();

    ASSERT_FALSE(a.jobs.empty());
    ASSERT_TRUE(b.jobs.empty());
    EXPECT_EQ(a.job_count, b.job_count);
    // Exact equality, not near: both paths are the same accumulators.
    EXPECT_EQ(a.avg_bsld, b.avg_bsld) << wl::archive_name(archive);
    EXPECT_EQ(a.avg_wait, b.avg_wait);
    EXPECT_EQ(a.reduced_jobs, b.reduced_jobs);
    EXPECT_EQ(a.boosted_jobs, b.boosted_jobs);
    EXPECT_EQ(a.jobs_per_gear, b.jobs_per_gear);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.energy.computational_joules, b.energy.computational_joules);
    EXPECT_EQ(a.energy.total_joules, b.energy.total_joules);

    // The retained vector reproduces the aggregates by naive trace-order
    // recomputation — the exact summation contract of the accumulator.
    double bsld_sum = 0.0;
    double wait_sum = 0.0;
    for (const sim::JobOutcome& job : a.jobs) {
      bsld_sum += job.bsld;
      wait_sum += static_cast<double>(job.wait());
    }
    const auto n = static_cast<double>(a.jobs.size());
    EXPECT_EQ(a.avg_bsld, bsld_sum / n) << wl::archive_name(archive);
    EXPECT_EQ(a.avg_wait, wait_sum / n);
  }
}

TEST(ObserverParityTest, ParallelEqualsSerialWithInstrumentsAttached) {
  std::vector<RunSpec> specs;
  for (const wl::Archive archive :
       {wl::Archive::kCTC, wl::Archive::kSDSC, wl::Archive::kLLNLAtlas}) {
    RunSpec spec = dvfs_spec(archive, 400);
    spec.instruments = {"wait-trace", "utilization", "energy"};
    specs.push_back(spec);
  }

  const auto serial = run_all(specs, 1);
  const auto parallel = run_all(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].sim().avg_bsld, parallel[i].sim().avg_bsld);
    ASSERT_EQ(serial[i].instruments.size(), 3u);
    ASSERT_EQ(parallel[i].instruments.size(), 3u);
    for (std::size_t k = 0; k < serial[i].instruments.size(); ++k) {
      std::ostringstream a;
      std::ostringstream b;
      serial[i].instruments[k]->write_csv(a);
      parallel[i].instruments[k]->write_csv(b);
      // Byte-for-byte: observer call ordering is deterministic.
      EXPECT_EQ(a.str(), b.str())
          << specs[i].label() << " " << serial[i].instruments[k]->name();
    }
  }
}

TEST(ObserverParityTest, BoostedRunsStreamIdenticallyToRetainedRuns) {
  // Dynamic raise exercises on_gear_change on a real archive; streaming
  // and retained paths must agree on every aggregate, including the
  // boost-dependent energy split.
  RunSpec retained = dvfs_spec(wl::Archive::kSDSCBlue, 800);
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 4;
  retained.policy.raise = raise;
  RunSpec streaming = retained;
  streaming.retain_jobs = false;

  const auto results = run_all({retained, streaming});
  const sim::SimulationResult& a = results[0].sim();
  const sim::SimulationResult& b = results[1].sim();
  ASSERT_GT(a.boosted_jobs, 0);
  EXPECT_EQ(a.boosted_jobs, b.boosted_jobs);
  EXPECT_EQ(a.avg_bsld, b.avg_bsld);
  EXPECT_EQ(a.energy.computational_joules, b.energy.computational_joules);
  EXPECT_EQ(a.energy.total_joules, b.energy.total_joules);
  EXPECT_EQ(a.makespan, b.makespan);

  // Boost bookkeeping is consistent inside the retained records.
  std::int64_t boosted = 0;
  for (const sim::JobOutcome& job : a.jobs) {
    if (job.boosted) {
      ++boosted;
      EXPECT_GT(job.final_gear, job.gear);
    } else {
      EXPECT_EQ(job.final_gear, job.gear);
    }
  }
  EXPECT_EQ(boosted, a.boosted_jobs);
}

TEST(ObserverParityTest, ReturnedInstrumentsOutliveTheRunPlatform) {
  RunSpec spec = dvfs_spec(wl::Archive::kCTC, 300);
  spec.instruments = {"energy"};
  const RunResult result = run_one(spec);
  const auto* probe = instrument_as<sim::EnergyProbe>(result, "energy");
  ASSERT_NE(probe, nullptr);
  // The probe's meter references the run's platform models; the result's
  // instruments co-own them, so post-run queries through the meter must
  // stay valid (the ASan job guards the lifetime).
  EXPECT_GT(probe->meter().model().gears().size(), 0u);
  EXPECT_EQ(probe->report().total_joules, result.sim().energy.total_joules);
  EXPECT_EQ(probe->utilization(), result.sim().utilization);
}

TEST(ObserverParityTest, JsonlSinkEmitsOneObjectPerRun) {
  RunSpec spec = dvfs_spec(wl::Archive::kCTC, 300);
  spec.instruments = {"wait-trace"};
  std::ostringstream out;
  JsonlResultSink sink(out);
  SweepRunner runner;
  runner.add_sink(sink);
  (void)runner.run({spec, spec});

  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"avg_bsld\":"), std::string::npos);
  EXPECT_NE(text.find("\"instruments\":[\"wait-trace\"]"), std::string::npos);
  EXPECT_NE(text.find("\"jobs\":300"), std::string::npos);
}

}  // namespace
}  // namespace bsld::report
