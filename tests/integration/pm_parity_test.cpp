/// \file pm_parity_test.cpp
/// \brief The power-management subsystem's correctness anchor: with
/// pm=none (the default), every archive x policy-mode run renders CSV and
/// JSONL output byte-identical to the goldens captured before the pm
/// subsystem existed (tests/golden/pm_parity/). Any drift here means the
/// subsystem perturbed an unmanaged simulation.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "report/experiment.hpp"
#include "report/sinks.hpp"
#include "workload/source.hpp"

namespace bsld::report {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The spec of one golden run, mirroring the bsldsim invocations the
/// goldens were captured with: 5000 jobs, canonical seed, EASY/FirstFit;
/// "base" = no DVFS, "dvfs" = BSLD<=2 WQ<=16, "raise" = dvfs + raise@16.
RunSpec golden_spec(const std::string& archive, const std::string& mode) {
  RunSpec spec;
  spec.workload = wl::resolve_source(archive, 5000, 0);
  if (mode == "base") {
    spec.policy.dvfs = std::nullopt;
  } else {
    core::DvfsConfig dvfs;
    dvfs.bsld_threshold = 2.0;
    dvfs.wq_threshold = 16;
    spec.policy.dvfs = dvfs;
    if (mode == "raise") {
      core::DynamicRaiseConfig raise;
      raise.queue_limit = 16;
      spec.policy.raise = raise;
    }
  }
  return spec;
}

TEST(PmParity, DefaultSpecRendersTheGoldenBytesOnEveryArchive) {
  const std::string dir = BSLD_PM_PARITY_GOLDEN_DIR;
  for (const char* archive :
       {"CTC", "SDSC", "SDSCBlue", "LLNLThunder", "LLNLAtlas"}) {
    for (const char* mode : {"base", "dvfs", "raise"}) {
      const RunSpec spec = golden_spec(archive, mode);
      ASSERT_FALSE(spec.pm.enabled());
      const RunResult result = run_one(spec);

      const std::string stem =
          dir + "/" + archive + "_" + mode;
      std::ostringstream csv;
      CsvResultSink csv_sink(csv);
      csv_sink.on_result(0, result);
      EXPECT_EQ(csv.str(), read_file(stem + ".csv")) << stem;

      std::ostringstream jsonl;
      JsonlResultSink jsonl_sink(jsonl);
      jsonl_sink.on_result(0, result);
      EXPECT_EQ(jsonl.str(), read_file(stem + ".jsonl")) << stem;
    }
  }
}

}  // namespace
}  // namespace bsld::report
